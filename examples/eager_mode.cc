/**
 * @file
 * Example: imperative (eager) execution — where only Capuchin works.
 *
 * Eager mode has no computation graph, so vDNN and gradient-checkpointing
 * cannot even be configured (the executor rejects them). Capuchin's
 * access-pattern approach is mode-blind: this example reproduces the
 * paper's Table-3 scenario on DenseNet.
 *
 *   $ eager_mode [batch]
 */

#include <cstdlib>
#include <iostream>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"
#include "stats/table.hh"
#include "support/logging.hh"

using namespace capu;

int
main(int argc, char **argv)
{
    const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 160;

    std::cout << "== Eager-mode DenseNet training, batch " << batch
              << " ==\n\n";

    ExecConfig eager;
    eager.eagerMode = true;

    // Graph-bound policies are rejected up front.
    try {
        VdnnPolicy vdnn;
        Executor ex(buildDenseNet121(1), eager, &vdnn);
        std::cout << "unexpected: vDNN accepted in eager mode\n";
    } catch (const FatalError &e) {
        std::cout << "vDNN in eager mode: rejected as expected (\""
                  << e.what() << "\")\n\n";
    }

    Session base(buildDenseNet121(batch), eager, makeNoOpPolicy());
    auto rb = base.run(1);
    std::cout << "TF-original (eager): "
              << (rb.oom ? "OOM at this batch" : "fits") << "\n";

    Session capu(buildDenseNet121(batch), eager, makeCapuchinPolicy());
    auto rc = capu.run(10);
    if (rc.oom) {
        std::cout << "Capuchin (eager): OOM — " << rc.oomMessage << "\n";
        return 1;
    }
    std::cout << "Capuchin (eager): "
              << cellDouble(rc.steadyThroughput(batch, 5), 1)
              << " img/s at batch " << batch << "\n\n";

    // The paper's DenseNet curiosity: throughput *rises* with batch while
    // the GPU is under-utilized (Figure 10b).
    Table t({"batch", "Capuchin img/s"});
    for (std::int64_t b : {60L, 90L, 120L, 150L, 180L}) {
        Session s(buildDenseNet121(b), eager, makeCapuchinPolicy());
        auto r = s.run(10);
        t.addRow({cellInt(b),
                  r.oom ? "OOM" : cellDouble(r.steadyThroughput(b, 5), 1)});
    }
    t.print(std::cout);
    return 0;
}
