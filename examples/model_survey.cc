/**
 * @file
 * Example: survey the memory demand and baseline speed of the model zoo.
 *
 * For each workload this runs two unmodified (TF-original) training
 * iterations on a simulated P100 with an *uncapped* memory pool and reports
 * weights, peak activation footprint, op counts and training throughput —
 * the numbers you need to predict whether a given batch size fits a real
 * 16 GB card, and the calibration points for EXPERIMENTS.md.
 *
 * Usage: model_survey [batch]   (default: each model's paper TF-ori max)
 */

#include <cstdlib>
#include <iostream>

#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "stats/table.hh"

using namespace capu;

int
main(int argc, char **argv)
{
    std::int64_t forced_batch = argc > 1 ? std::atoll(argv[1]) : 0;

    // Paper Table 2 TF-ori maxima: the batch each model should roughly
    // saturate a 16 GB P100 at.
    struct Row
    {
        ModelKind kind;
        std::int64_t paper_batch;
    };
    const Row rows[] = {
        {ModelKind::Vgg16, 228},       {ModelKind::ResNet50, 190},
        {ModelKind::ResNet152, 86},    {ModelKind::InceptionV3, 160},
        {ModelKind::InceptionV4, 88},  {ModelKind::DenseNet121, 70},
        {ModelKind::BertBase, 64},
    };

    Table table({"model", "batch", "ops", "tensors", "weights",
                 "act peak", "iter time", "img/s"});

    for (const Row &row : rows) {
        std::int64_t batch = forced_batch ? forced_batch : row.paper_batch;
        Graph g = buildModel(row.kind, batch);

        ExecConfig cfg;
        cfg.device = GpuDeviceSpec::p100();
        cfg.device.memCapacity = 512ull << 30; // uncapped: measure demand
        Session session(std::move(g), cfg, makeNoOpPolicy());
        SessionResult res = session.run(2);
        if (res.oom) {
            std::cerr << "unexpected OOM: " << res.oomMessage << "\n";
            return 1;
        }

        const auto &it = res.last();
        std::uint64_t act_peak =
            it.peakGpuBytes - res.graphStats.weightBytes;
        table.addRow({modelName(row.kind), cellInt(batch),
                      cellInt(static_cast<std::int64_t>(
                          res.graphStats.opCount)),
                      cellInt(static_cast<std::int64_t>(
                          res.graphStats.tensorCount)),
                      formatBytes(res.graphStats.weightBytes),
                      formatBytes(act_peak), formatTicks(it.duration()),
                      cellDouble(it.throughput(batch), 1)});
    }

    std::cout << "Model survey (simulated P100, uncapped memory, "
                 "TF-original policy)\n\n";
    table.print(std::cout);
    std::cout << "\nA batch fits a 16 GB card when weights + act peak + "
                 "workspace < 15 GiB.\n";
    return 0;
}
