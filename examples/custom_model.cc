/**
 * @file
 * Example: define your own architecture and train it under Capuchin.
 *
 * Capuchin is computation-graph agnostic — it learns tensor lifetimes by
 * watching accesses, so a model it has never seen (here: a wide U-Net-ish
 * encoder/decoder with skip connections, a shape none of the paper's
 * heuristic baselines anticipate) needs no policy changes at all.
 *
 *   $ custom_model [batch]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/builder.hh"
#include "policy/noop_policy.hh"
#include "stats/table.hh"

using namespace capu;

namespace
{

/** A small U-Net-style segmenter: encoder, bottleneck, skip-connected
 *  decoder (upsampling approximated by 1x1 conv + concat at full res). */
Graph
buildMiniUnet(std::int64_t batch)
{
    ModelBuilder b("MiniUNet", batch);
    TensorId x = b.input(3, 192, 192);

    // Encoder: keep each stage's output for the skip connections — these
    // long-lived tensors are exactly what Capuchin evicts.
    std::vector<TensorId> skips;
    std::int64_t ch = 32;
    for (int stage = 0; stage < 3; ++stage) {
        x = b.convBnRelu(x, ch, 3);
        x = b.convBnRelu(x, ch, 3);
        skips.push_back(x);
        x = b.maxpool(x, 2, 2);
        ch *= 2;
    }

    // Bottleneck.
    x = b.convBnRelu(x, ch, 3);
    x = b.convBnRelu(x, ch, 3);

    // Decoder: fuse each skip back in (channel-space fusion at the skip's
    // resolution via 1x1 convs on pooled features).
    for (int stage = 2; stage >= 0; --stage) {
        ch /= 2;
        // Reduce and "broadcast" the deep features to the skip resolution
        // (modelled as a strided-transpose-equivalent 1x1 + concat).
        TensorId up = b.convBnRelu(x, ch, 1, 1, 0);
        // Project the skip and concatenate.
        TensorId skip = b.convBnRelu(skips[stage], ch, 1, 1, 0);
        // Match spatial dims: pool the skip projection down to `up`.
        for (std::int64_t s = b.dims(skip).h / b.dims(up).h; s > 1; s /= 2)
            skip = b.maxpool(skip, 2, 2);
        x = b.concat({up, skip});
        x = b.convBnRelu(x, ch, 3);
    }

    x = b.globalAvgPool(x);
    x = b.fc(x, 21); // 21-class segmentation-ish head
    return b.finalize(b.softmaxLoss(x));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 600;

    std::cout << "== Custom architecture (MiniUNet) under Capuchin ==\n\n";
    {
        Graph g = buildMiniUnet(batch);
        auto s = g.stats();
        std::cout << "graph: " << s.opCount << " ops, " << s.tensorCount
                  << " tensors, weights " << formatBytes(s.weightBytes)
                  << ", feature maps " << formatBytes(s.featureMapBytes)
                  << "\n\n";
    }

    Session base(buildMiniUnet(batch), ExecConfig{}, makeNoOpPolicy());
    auto rb = base.run(1);
    std::cout << "TF-original @ batch " << batch << ": "
              << (rb.oom ? "OOM" : "fits") << "\n";

    Session capu(buildMiniUnet(batch), ExecConfig{}, makeCapuchinPolicy());
    auto rc = capu.run(8);
    if (rc.oom) {
        std::cout << "Capuchin: OOM — " << rc.oomMessage << "\n";
        return 1;
    }
    std::cout << "Capuchin    @ batch " << batch << ": "
              << cellDouble(rc.steadyThroughput(batch, 4), 1)
              << " img/s (peak "
              << formatBytes(rc.iterations.back().peakGpuBytes) << ", swap "
              << formatBytes(rc.iterations.back().swapOutBytes)
              << ", recompute "
              << formatTicks(rc.iterations.back().recomputeBusy) << ")\n\n"
              << "No model-specific tuning was involved: the policy came "
                 "entirely from the measured access pattern.\n";
    return 0;
}
