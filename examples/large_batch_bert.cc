/**
 * @file
 * Example: pushing BERT pre-training batch sizes (the paper's NLP
 * headline — 7x the framework's maximum batch).
 *
 * Finds the largest feasible batch for the stock framework, OpenAI
 * gradient-checkpointing, and Capuchin, then trains at a batch only
 * Capuchin can hold and reports where the memory went.
 *
 *   $ large_batch_bert
 */

#include <iostream>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/noop_policy.hh"
#include "stats/table.hh"

using namespace capu;

int
main()
{
    std::cout << "== BERT-base pre-training on a simulated P100 ==\n\n";

    auto builder = [](std::int64_t b) { return buildBert(b); };
    ExecConfig cfg;

    auto tf = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, cfg);
    auto oai = findMaxBatch(
        builder,
        [] {
            return makeCheckpointingPolicy(
                CheckpointingPolicy::Mode::Memory);
        },
        cfg);
    auto capu = findMaxBatch(builder, [] { return makeCapuchinPolicy(); },
                             cfg);

    Table t({"system", "max batch", "vs TF-ori"});
    t.addRow({"TF-original", cellInt(tf), "1.0x"});
    t.addRow({"gradient-checkpointing", cellInt(oai),
              cellDouble(static_cast<double>(oai) / tf, 2) + "x"});
    t.addRow({"Capuchin", cellInt(capu),
              cellDouble(static_cast<double>(capu) / tf, 2) + "x"});
    t.print(std::cout);
    std::cout << "(paper: 64 / 210 / 450 — 7x and 2.1x gains)\n\n";

    // Train at a batch far beyond both baselines.
    std::int64_t batch = oai + (capu - oai) / 2;
    std::cout << "training at batch " << batch
              << " (beyond gradient-checkpointing's limit)...\n";
    Session session(buildBert(batch), cfg, makeCapuchinPolicy());
    auto r = session.run(10);
    if (r.oom) {
        std::cout << "OOM: " << r.oomMessage << "\n";
        return 1;
    }
    const auto &it = r.iterations.back();
    std::cout << "  steady speed: " << cellDouble(r.steadyThroughput(batch), 1)
              << " samples/s\n"
              << "  swap traffic: " << formatBytes(it.swapOutBytes)
              << " out / " << formatBytes(it.swapInBytes) << " in\n"
              << "  recomputation: " << it.recomputeOps << " ops, "
              << formatTicks(it.recomputeBusy) << "\n"
              << "  GPU peak: " << formatBytes(it.peakGpuBytes) << " of "
              << formatBytes(cfg.device.memCapacity) << "\n";
    return 0;
}
