/**
 * @file
 * Example: offline analysis of a captured tensor-access trace.
 *
 * Capuchin's entire world-view is the access trace, so planning can run
 * *offline*: capture once (here from a simulated measured execution; in a
 * real deployment from the framework's instrumentation), then explore
 * what-if policies without re-running training.
 *
 *   $ trace_analysis [trace.csv]
 *
 * With no argument, captures a fresh ResNet-50@400 trace first (the same
 * thing `capusim --dump-trace` does).
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "core/capuchin_policy.hh"
#include "core/policy_maker.hh"
#include "core/trace_io.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "stats/table.hh"

using namespace capu;

int
main(int argc, char **argv)
{
    std::cout << "== Offline trace analysis ==\n\n";

    // The graph supplies lineage; the trace supplies timing.
    const std::int64_t batch = 400;
    Graph graph = buildResNet(batch, 50);

    TensorTrace trace;
    if (argc > 1) {
        trace = loadTraceFile(argv[1]);
        std::cout << "loaded " << trace.records.size() << " accesses from "
                  << argv[1] << "\n";
    } else {
        CapuchinPolicy *capu = nullptr;
        auto p = makeCapuchinPolicy();
        capu = static_cast<CapuchinPolicy *>(p.get());
        Session s(buildResNet(batch, 50), ExecConfig{}, std::move(p));
        auto r = s.run(1);
        if (r.oom) {
            std::cerr << "capture failed: " << r.oomMessage << "\n";
            return 1;
        }
        trace = captureTrace(capu->tracker(), s.graph());
        saveTraceFile("resnet50_b400.trace.csv", trace);
        std::cout << "captured " << trace.records.size()
                  << " accesses (saved to resnet50_b400.trace.csv)\n";
    }

    AccessTracker tracker = trace.toTracker();

    // 1. Access-count histogram (the paper's Figure-3 regularity classes).
    std::map<std::size_t, int> by_count;
    for (const auto &info : trace.tensors)
        by_count[tracker.accessesOf(info.id).size()]++;
    std::cout << "\naccesses-per-tensor histogram:\n";
    for (const auto &[n, tensors] : by_count) {
        if (n > 0 && tensors > 5)
            std::cout << "  " << n << " accesses: " << tensors
                      << " tensors\n";
    }

    // 2. Hypothetical memory curve and peak window.
    std::map<TensorId, std::uint64_t> bytes_of;
    for (const auto &info : trace.tensors)
        bytes_of[info.id] =
            info.kind == TensorKind::Weight ? 0 : info.bytes;
    auto bytes_fn = [&](TensorId id) {
        auto it = bytes_of.find(id);
        return it == bytes_of.end() ? std::uint64_t{0} : it->second;
    };
    GpuDeviceSpec dev = GpuDeviceSpec::p100();
    auto window = tracker.peakWindow(bytes_fn, dev.memCapacity);
    std::cout << "\nhypothetical activation peak: "
              << formatBytes(tracker.hypotheticalPeak(bytes_fn))
              << " (device holds " << formatBytes(dev.memCapacity) << ")\n";
    if (window.valid) {
        std::cout << "oversubscribed window: " << formatTicks(window.lo)
                  << " .. " << formatTicks(window.hi) << "\n";
    }

    // 3. What-if planning: how does the swap/recompute mix shift with the
    // memory-saving target?
    std::cout << "\nwhat-if plans (PolicyMaker on the captured trace):\n";
    Table t({"saving target", "swap items", "recompute items",
             "planned bytes"});
    PcieLink link(dev.pcieBandwidth, dev.pcieLatency);
    for (double gib : {4.0, 8.0, 16.0, 24.0}) {
        PolicyMaker maker(graph, tracker, {});
        auto plan = maker.build(
            static_cast<std::uint64_t>(gib * (1ull << 30)), bytes_fn,
            [&](std::uint64_t b) { return link.transferTime(b); },
            dev.memCapacity);
        t.addRow({cellDouble(gib, 0) + " GiB",
                  cellInt(static_cast<std::int64_t>(plan.swapCount)),
                  cellInt(static_cast<std::int64_t>(plan.recomputeCount)),
                  formatBytes(plan.plannedBytes)});
    }
    t.print(std::cout);
    std::cout << "\nSmall targets ride the PCIe lanes for free; as the "
                 "target grows the lanes saturate and the hybrid policy "
                 "shifts the balance toward recomputation.\n";
    return 0;
}
