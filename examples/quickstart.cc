/**
 * @file
 * Quickstart: train a model that does not fit GPU memory.
 *
 * ResNet-50 at batch 320 needs roughly twice a P100's memory; stock
 * execution dies with OOM. Attaching a CapuchinPolicy makes the same
 * training run: iteration 0 measures the tensor access pattern in passive
 * mode, iteration 1 derives the swap/recompute plan, and the feedback loop
 * then polishes prefetch timing.
 *
 *   $ quickstart [batch]
 */

#include <cstdlib>
#include <iostream>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "stats/table.hh"

using namespace capu;

int
main(int argc, char **argv)
{
    const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 320;

    std::cout << "== Capuchin quickstart: ResNet-50, batch " << batch
              << ", simulated P100 (15.5 GiB usable) ==\n\n";

    // 1. Stock framework: no memory management.
    {
        Session session(buildResNet(batch, 50), ExecConfig{},
                        makeNoOpPolicy());
        auto result = session.run(1);
        std::cout << "TF-original: "
                  << (result.oom ? "OOM — " + result.oomMessage
                                 : "unexpectedly fit!")
                  << "\n\n";
    }

    // 2. Same training, Capuchin attached.
    CapuchinPolicy *capuchin = nullptr;
    auto policy = [&] {
        auto p = makeCapuchinPolicy();
        capuchin = static_cast<CapuchinPolicy *>(p.get());
        return p;
    }();
    Session session(buildResNet(batch, 50), ExecConfig{},
                    std::move(policy));
    auto result = session.run(12);
    if (result.oom) {
        std::cout << "Capuchin: OOM — " << result.oomMessage << "\n";
        return 1;
    }

    Table t({"iter", "img/s", "swap out", "recompute time", "passive evts",
             "phase"});
    for (const auto &it : result.iterations) {
        std::string phase = it.iteration == 0 ? "measured (passive)"
                                              : "guided";
        t.addRow({cellInt(it.iteration),
                  cellDouble(it.throughput(batch), 1),
                  formatBytes(it.swapOutBytes),
                  formatTicks(it.recomputeBusy), cellInt(it.oomEvictions),
                  phase});
    }
    t.print(std::cout);

    std::cout << "\n" << capuchin->plan().summary() << "\n"
              << "feedback adjustments applied: "
              << capuchin->feedbackAdjustments() << "\n\n"
              << "Capuchin trains a batch the stock framework cannot, "
                 "converging to "
              << cellDouble(result.iterations.back().throughput(batch), 1)
              << " img/s.\n";
    return 0;
}
