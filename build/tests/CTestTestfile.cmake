# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_policy_maker[1]_include.cmake")
include("/root/repo/build/tests/test_capuchin[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_policy[1]_include.cmake")
