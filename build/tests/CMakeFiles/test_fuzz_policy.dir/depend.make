# Empty dependencies file for test_fuzz_policy.
# This may be replaced when dependencies are built.
