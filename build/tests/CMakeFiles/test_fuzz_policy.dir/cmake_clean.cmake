file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_policy.dir/fuzz_policy_test.cc.o"
  "CMakeFiles/test_fuzz_policy.dir/fuzz_policy_test.cc.o.d"
  "test_fuzz_policy"
  "test_fuzz_policy.pdb"
  "test_fuzz_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
