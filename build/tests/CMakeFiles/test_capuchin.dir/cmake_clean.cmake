file(REMOVE_RECURSE
  "CMakeFiles/test_capuchin.dir/capuchin_test.cc.o"
  "CMakeFiles/test_capuchin.dir/capuchin_test.cc.o.d"
  "test_capuchin"
  "test_capuchin.pdb"
  "test_capuchin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capuchin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
