# Empty compiler generated dependencies file for test_capuchin.
# This may be replaced when dependencies are built.
