file(REMOVE_RECURSE
  "CMakeFiles/test_policy_maker.dir/policy_maker_test.cc.o"
  "CMakeFiles/test_policy_maker.dir/policy_maker_test.cc.o.d"
  "test_policy_maker"
  "test_policy_maker.pdb"
  "test_policy_maker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_maker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
