# Empty dependencies file for test_policy_maker.
# This may be replaced when dependencies are built.
