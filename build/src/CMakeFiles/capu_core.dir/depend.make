# Empty dependencies file for capu_core.
# This may be replaced when dependencies are built.
