file(REMOVE_RECURSE
  "CMakeFiles/capu_core.dir/core/access_tracker.cc.o"
  "CMakeFiles/capu_core.dir/core/access_tracker.cc.o.d"
  "CMakeFiles/capu_core.dir/core/capuchin_policy.cc.o"
  "CMakeFiles/capu_core.dir/core/capuchin_policy.cc.o.d"
  "CMakeFiles/capu_core.dir/core/policy_maker.cc.o"
  "CMakeFiles/capu_core.dir/core/policy_maker.cc.o.d"
  "CMakeFiles/capu_core.dir/core/trace_io.cc.o"
  "CMakeFiles/capu_core.dir/core/trace_io.cc.o.d"
  "libcapu_core.a"
  "libcapu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
