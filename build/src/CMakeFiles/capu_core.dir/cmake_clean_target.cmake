file(REMOVE_RECURSE
  "libcapu_core.a"
)
