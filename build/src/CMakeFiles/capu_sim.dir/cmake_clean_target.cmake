file(REMOVE_RECURSE
  "libcapu_sim.a"
)
