file(REMOVE_RECURSE
  "CMakeFiles/capu_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/capu_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/capu_sim.dir/sim/gpu_device.cc.o"
  "CMakeFiles/capu_sim.dir/sim/gpu_device.cc.o.d"
  "CMakeFiles/capu_sim.dir/sim/pcie_link.cc.o"
  "CMakeFiles/capu_sim.dir/sim/pcie_link.cc.o.d"
  "CMakeFiles/capu_sim.dir/sim/stream.cc.o"
  "CMakeFiles/capu_sim.dir/sim/stream.cc.o.d"
  "libcapu_sim.a"
  "libcapu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
