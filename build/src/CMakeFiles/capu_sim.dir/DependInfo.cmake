
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/capu_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/capu_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/gpu_device.cc" "src/CMakeFiles/capu_sim.dir/sim/gpu_device.cc.o" "gcc" "src/CMakeFiles/capu_sim.dir/sim/gpu_device.cc.o.d"
  "/root/repo/src/sim/pcie_link.cc" "src/CMakeFiles/capu_sim.dir/sim/pcie_link.cc.o" "gcc" "src/CMakeFiles/capu_sim.dir/sim/pcie_link.cc.o.d"
  "/root/repo/src/sim/stream.cc" "src/CMakeFiles/capu_sim.dir/sim/stream.cc.o" "gcc" "src/CMakeFiles/capu_sim.dir/sim/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
