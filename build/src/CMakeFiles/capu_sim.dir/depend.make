# Empty dependencies file for capu_sim.
# This may be replaced when dependencies are built.
