
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/autograd.cc" "src/CMakeFiles/capu_graph.dir/graph/autograd.cc.o" "gcc" "src/CMakeFiles/capu_graph.dir/graph/autograd.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/capu_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/capu_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/operation.cc" "src/CMakeFiles/capu_graph.dir/graph/operation.cc.o" "gcc" "src/CMakeFiles/capu_graph.dir/graph/operation.cc.o.d"
  "/root/repo/src/graph/tensor.cc" "src/CMakeFiles/capu_graph.dir/graph/tensor.cc.o" "gcc" "src/CMakeFiles/capu_graph.dir/graph/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
