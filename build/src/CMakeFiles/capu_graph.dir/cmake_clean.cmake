file(REMOVE_RECURSE
  "CMakeFiles/capu_graph.dir/graph/autograd.cc.o"
  "CMakeFiles/capu_graph.dir/graph/autograd.cc.o.d"
  "CMakeFiles/capu_graph.dir/graph/graph.cc.o"
  "CMakeFiles/capu_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/capu_graph.dir/graph/operation.cc.o"
  "CMakeFiles/capu_graph.dir/graph/operation.cc.o.d"
  "CMakeFiles/capu_graph.dir/graph/tensor.cc.o"
  "CMakeFiles/capu_graph.dir/graph/tensor.cc.o.d"
  "libcapu_graph.a"
  "libcapu_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
