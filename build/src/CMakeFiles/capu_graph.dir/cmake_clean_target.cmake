file(REMOVE_RECURSE
  "libcapu_graph.a"
)
