# Empty dependencies file for capu_graph.
# This may be replaced when dependencies are built.
