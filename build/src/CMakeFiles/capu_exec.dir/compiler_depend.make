# Empty compiler generated dependencies file for capu_exec.
# This may be replaced when dependencies are built.
