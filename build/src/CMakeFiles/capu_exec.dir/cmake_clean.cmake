file(REMOVE_RECURSE
  "CMakeFiles/capu_exec.dir/exec/cost_model.cc.o"
  "CMakeFiles/capu_exec.dir/exec/cost_model.cc.o.d"
  "CMakeFiles/capu_exec.dir/exec/executor.cc.o"
  "CMakeFiles/capu_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/capu_exec.dir/exec/memory_manager.cc.o"
  "CMakeFiles/capu_exec.dir/exec/memory_manager.cc.o.d"
  "CMakeFiles/capu_exec.dir/exec/session.cc.o"
  "CMakeFiles/capu_exec.dir/exec/session.cc.o.d"
  "libcapu_exec.a"
  "libcapu_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
