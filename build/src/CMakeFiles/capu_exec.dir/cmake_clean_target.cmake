file(REMOVE_RECURSE
  "libcapu_exec.a"
)
