
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cost_model.cc" "src/CMakeFiles/capu_exec.dir/exec/cost_model.cc.o" "gcc" "src/CMakeFiles/capu_exec.dir/exec/cost_model.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/capu_exec.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/capu_exec.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/memory_manager.cc" "src/CMakeFiles/capu_exec.dir/exec/memory_manager.cc.o" "gcc" "src/CMakeFiles/capu_exec.dir/exec/memory_manager.cc.o.d"
  "/root/repo/src/exec/session.cc" "src/CMakeFiles/capu_exec.dir/exec/session.cc.o" "gcc" "src/CMakeFiles/capu_exec.dir/exec/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
