file(REMOVE_RECURSE
  "libcapu_stats.a"
)
