# Empty dependencies file for capu_stats.
# This may be replaced when dependencies are built.
