file(REMOVE_RECURSE
  "CMakeFiles/capu_stats.dir/stats/table.cc.o"
  "CMakeFiles/capu_stats.dir/stats/table.cc.o.d"
  "CMakeFiles/capu_stats.dir/stats/timeline.cc.o"
  "CMakeFiles/capu_stats.dir/stats/timeline.cc.o.d"
  "libcapu_stats.a"
  "libcapu_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
