file(REMOVE_RECURSE
  "CMakeFiles/capu_support.dir/support/logging.cc.o"
  "CMakeFiles/capu_support.dir/support/logging.cc.o.d"
  "CMakeFiles/capu_support.dir/support/rng.cc.o"
  "CMakeFiles/capu_support.dir/support/rng.cc.o.d"
  "CMakeFiles/capu_support.dir/support/units.cc.o"
  "CMakeFiles/capu_support.dir/support/units.cc.o.d"
  "libcapu_support.a"
  "libcapu_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
