file(REMOVE_RECURSE
  "libcapu_support.a"
)
