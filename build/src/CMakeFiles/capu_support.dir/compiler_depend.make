# Empty compiler generated dependencies file for capu_support.
# This may be replaced when dependencies are built.
