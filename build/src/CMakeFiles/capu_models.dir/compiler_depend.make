# Empty compiler generated dependencies file for capu_models.
# This may be replaced when dependencies are built.
