
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bert.cc" "src/CMakeFiles/capu_models.dir/models/bert.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/bert.cc.o.d"
  "/root/repo/src/models/builder.cc" "src/CMakeFiles/capu_models.dir/models/builder.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/builder.cc.o.d"
  "/root/repo/src/models/densenet.cc" "src/CMakeFiles/capu_models.dir/models/densenet.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/densenet.cc.o.d"
  "/root/repo/src/models/inception.cc" "src/CMakeFiles/capu_models.dir/models/inception.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/inception.cc.o.d"
  "/root/repo/src/models/lstm.cc" "src/CMakeFiles/capu_models.dir/models/lstm.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/lstm.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/CMakeFiles/capu_models.dir/models/resnet.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/resnet.cc.o.d"
  "/root/repo/src/models/vgg.cc" "src/CMakeFiles/capu_models.dir/models/vgg.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/vgg.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/CMakeFiles/capu_models.dir/models/zoo.cc.o" "gcc" "src/CMakeFiles/capu_models.dir/models/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
