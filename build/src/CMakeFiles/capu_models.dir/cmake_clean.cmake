file(REMOVE_RECURSE
  "CMakeFiles/capu_models.dir/models/bert.cc.o"
  "CMakeFiles/capu_models.dir/models/bert.cc.o.d"
  "CMakeFiles/capu_models.dir/models/builder.cc.o"
  "CMakeFiles/capu_models.dir/models/builder.cc.o.d"
  "CMakeFiles/capu_models.dir/models/densenet.cc.o"
  "CMakeFiles/capu_models.dir/models/densenet.cc.o.d"
  "CMakeFiles/capu_models.dir/models/inception.cc.o"
  "CMakeFiles/capu_models.dir/models/inception.cc.o.d"
  "CMakeFiles/capu_models.dir/models/lstm.cc.o"
  "CMakeFiles/capu_models.dir/models/lstm.cc.o.d"
  "CMakeFiles/capu_models.dir/models/resnet.cc.o"
  "CMakeFiles/capu_models.dir/models/resnet.cc.o.d"
  "CMakeFiles/capu_models.dir/models/vgg.cc.o"
  "CMakeFiles/capu_models.dir/models/vgg.cc.o.d"
  "CMakeFiles/capu_models.dir/models/zoo.cc.o"
  "CMakeFiles/capu_models.dir/models/zoo.cc.o.d"
  "libcapu_models.a"
  "libcapu_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
