file(REMOVE_RECURSE
  "libcapu_models.a"
)
