file(REMOVE_RECURSE
  "libcapu_policy.a"
)
