
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/checkpointing_policy.cc" "src/CMakeFiles/capu_policy.dir/policy/checkpointing_policy.cc.o" "gcc" "src/CMakeFiles/capu_policy.dir/policy/checkpointing_policy.cc.o.d"
  "/root/repo/src/policy/noop_policy.cc" "src/CMakeFiles/capu_policy.dir/policy/noop_policy.cc.o" "gcc" "src/CMakeFiles/capu_policy.dir/policy/noop_policy.cc.o.d"
  "/root/repo/src/policy/vdnn_policy.cc" "src/CMakeFiles/capu_policy.dir/policy/vdnn_policy.cc.o" "gcc" "src/CMakeFiles/capu_policy.dir/policy/vdnn_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
