file(REMOVE_RECURSE
  "CMakeFiles/capu_policy.dir/policy/checkpointing_policy.cc.o"
  "CMakeFiles/capu_policy.dir/policy/checkpointing_policy.cc.o.d"
  "CMakeFiles/capu_policy.dir/policy/noop_policy.cc.o"
  "CMakeFiles/capu_policy.dir/policy/noop_policy.cc.o.d"
  "CMakeFiles/capu_policy.dir/policy/vdnn_policy.cc.o"
  "CMakeFiles/capu_policy.dir/policy/vdnn_policy.cc.o.d"
  "libcapu_policy.a"
  "libcapu_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
