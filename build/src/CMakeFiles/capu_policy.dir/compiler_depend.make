# Empty compiler generated dependencies file for capu_policy.
# This may be replaced when dependencies are built.
