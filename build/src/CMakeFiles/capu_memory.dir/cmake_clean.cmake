file(REMOVE_RECURSE
  "CMakeFiles/capu_memory.dir/memory/bfc_allocator.cc.o"
  "CMakeFiles/capu_memory.dir/memory/bfc_allocator.cc.o.d"
  "CMakeFiles/capu_memory.dir/memory/deferred_free.cc.o"
  "CMakeFiles/capu_memory.dir/memory/deferred_free.cc.o.d"
  "CMakeFiles/capu_memory.dir/memory/host_pool.cc.o"
  "CMakeFiles/capu_memory.dir/memory/host_pool.cc.o.d"
  "libcapu_memory.a"
  "libcapu_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capu_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
