
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/bfc_allocator.cc" "src/CMakeFiles/capu_memory.dir/memory/bfc_allocator.cc.o" "gcc" "src/CMakeFiles/capu_memory.dir/memory/bfc_allocator.cc.o.d"
  "/root/repo/src/memory/deferred_free.cc" "src/CMakeFiles/capu_memory.dir/memory/deferred_free.cc.o" "gcc" "src/CMakeFiles/capu_memory.dir/memory/deferred_free.cc.o.d"
  "/root/repo/src/memory/host_pool.cc" "src/CMakeFiles/capu_memory.dir/memory/host_pool.cc.o" "gcc" "src/CMakeFiles/capu_memory.dir/memory/host_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
