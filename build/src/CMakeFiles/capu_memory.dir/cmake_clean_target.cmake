file(REMOVE_RECURSE
  "libcapu_memory.a"
)
