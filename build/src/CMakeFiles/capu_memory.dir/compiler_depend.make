# Empty compiler generated dependencies file for capu_memory.
# This may be replaced when dependencies are built.
