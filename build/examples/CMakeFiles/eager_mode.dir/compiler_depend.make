# Empty compiler generated dependencies file for eager_mode.
# This may be replaced when dependencies are built.
