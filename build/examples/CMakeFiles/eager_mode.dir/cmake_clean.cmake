file(REMOVE_RECURSE
  "CMakeFiles/eager_mode.dir/eager_mode.cc.o"
  "CMakeFiles/eager_mode.dir/eager_mode.cc.o.d"
  "eager_mode"
  "eager_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
