file(REMOVE_RECURSE
  "CMakeFiles/model_survey.dir/model_survey.cc.o"
  "CMakeFiles/model_survey.dir/model_survey.cc.o.d"
  "model_survey"
  "model_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
