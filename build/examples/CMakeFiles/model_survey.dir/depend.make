# Empty dependencies file for model_survey.
# This may be replaced when dependencies are built.
