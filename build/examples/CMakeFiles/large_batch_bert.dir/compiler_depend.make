# Empty compiler generated dependencies file for large_batch_bert.
# This may be replaced when dependencies are built.
