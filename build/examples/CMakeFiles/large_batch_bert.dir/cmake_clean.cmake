file(REMOVE_RECURSE
  "CMakeFiles/large_batch_bert.dir/large_batch_bert.cc.o"
  "CMakeFiles/large_batch_bert.dir/large_batch_bert.cc.o.d"
  "large_batch_bert"
  "large_batch_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_batch_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
