# Empty dependencies file for capusim.
# This may be replaced when dependencies are built.
