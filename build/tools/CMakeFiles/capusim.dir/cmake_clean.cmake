file(REMOVE_RECURSE
  "CMakeFiles/capusim.dir/capusim.cc.o"
  "CMakeFiles/capusim.dir/capusim.cc.o.d"
  "capusim"
  "capusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
