file(REMOVE_RECURSE
  "CMakeFiles/abl_feedback.dir/abl_feedback.cc.o"
  "CMakeFiles/abl_feedback.dir/abl_feedback.cc.o.d"
  "abl_feedback"
  "abl_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
