# Empty compiler generated dependencies file for abl_feedback.
# This may be replaced when dependencies are built.
