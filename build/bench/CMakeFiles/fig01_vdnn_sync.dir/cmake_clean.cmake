file(REMOVE_RECURSE
  "CMakeFiles/fig01_vdnn_sync.dir/fig01_vdnn_sync.cc.o"
  "CMakeFiles/fig01_vdnn_sync.dir/fig01_vdnn_sync.cc.o.d"
  "fig01_vdnn_sync"
  "fig01_vdnn_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_vdnn_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
