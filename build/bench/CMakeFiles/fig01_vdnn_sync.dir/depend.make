# Empty dependencies file for fig01_vdnn_sync.
# This may be replaced when dependencies are built.
