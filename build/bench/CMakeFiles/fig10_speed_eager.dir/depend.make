# Empty dependencies file for fig10_speed_eager.
# This may be replaced when dependencies are built.
