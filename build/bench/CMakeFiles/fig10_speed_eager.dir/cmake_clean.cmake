file(REMOVE_RECURSE
  "CMakeFiles/fig10_speed_eager.dir/fig10_speed_eager.cc.o"
  "CMakeFiles/fig10_speed_eager.dir/fig10_speed_eager.cc.o.d"
  "fig10_speed_eager"
  "fig10_speed_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_speed_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
