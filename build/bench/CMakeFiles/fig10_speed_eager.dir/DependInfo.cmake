
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_speed_eager.cc" "bench/CMakeFiles/fig10_speed_eager.dir/fig10_speed_eager.cc.o" "gcc" "bench/CMakeFiles/fig10_speed_eager.dir/fig10_speed_eager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
