# Empty compiler generated dependencies file for fig08b_recompute_breakdown.
# This may be replaced when dependencies are built.
