file(REMOVE_RECURSE
  "CMakeFiles/fig08b_recompute_breakdown.dir/fig08b_recompute_breakdown.cc.o"
  "CMakeFiles/fig08b_recompute_breakdown.dir/fig08b_recompute_breakdown.cc.o.d"
  "fig08b_recompute_breakdown"
  "fig08b_recompute_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_recompute_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
