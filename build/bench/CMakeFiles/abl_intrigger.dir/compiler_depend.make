# Empty compiler generated dependencies file for abl_intrigger.
# This may be replaced when dependencies are built.
