file(REMOVE_RECURSE
  "CMakeFiles/abl_intrigger.dir/abl_intrigger.cc.o"
  "CMakeFiles/abl_intrigger.dir/abl_intrigger.cc.o.d"
  "abl_intrigger"
  "abl_intrigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_intrigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
