# Empty compiler generated dependencies file for abl_allocator.
# This may be replaced when dependencies are built.
