# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab02_max_batch_graph.
