# Empty dependencies file for tab02_max_batch_graph.
# This may be replaced when dependencies are built.
