file(REMOVE_RECURSE
  "CMakeFiles/tab02_max_batch_graph.dir/tab02_max_batch_graph.cc.o"
  "CMakeFiles/tab02_max_batch_graph.dir/tab02_max_batch_graph.cc.o.d"
  "tab02_max_batch_graph"
  "tab02_max_batch_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_max_batch_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
