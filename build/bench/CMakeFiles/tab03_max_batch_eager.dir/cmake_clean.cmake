file(REMOVE_RECURSE
  "CMakeFiles/tab03_max_batch_eager.dir/tab03_max_batch_eager.cc.o"
  "CMakeFiles/tab03_max_batch_eager.dir/tab03_max_batch_eager.cc.o.d"
  "tab03_max_batch_eager"
  "tab03_max_batch_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_max_batch_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
