# Empty dependencies file for tab03_max_batch_eager.
# This may be replaced when dependencies are built.
