file(REMOVE_RECURSE
  "CMakeFiles/fig03_access_pattern.dir/fig03_access_pattern.cc.o"
  "CMakeFiles/fig03_access_pattern.dir/fig03_access_pattern.cc.o.d"
  "fig03_access_pattern"
  "fig03_access_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
