# Empty dependencies file for fig03_access_pattern.
# This may be replaced when dependencies are built.
