file(REMOVE_RECURSE
  "CMakeFiles/fig09_speed_graph.dir/fig09_speed_graph.cc.o"
  "CMakeFiles/fig09_speed_graph.dir/fig09_speed_graph.cc.o.d"
  "fig09_speed_graph"
  "fig09_speed_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_speed_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
