# Empty compiler generated dependencies file for fig09_speed_graph.
# This may be replaced when dependencies are built.
