file(REMOVE_RECURSE
  "CMakeFiles/tab_overhead_tracking.dir/tab_overhead_tracking.cc.o"
  "CMakeFiles/tab_overhead_tracking.dir/tab_overhead_tracking.cc.o.d"
  "tab_overhead_tracking"
  "tab_overhead_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
