# Empty compiler generated dependencies file for tab_overhead_tracking.
# This may be replaced when dependencies are built.
