# Empty dependencies file for fig08a_swap_breakdown.
# This may be replaced when dependencies are built.
