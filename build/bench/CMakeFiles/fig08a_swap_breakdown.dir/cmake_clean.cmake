file(REMOVE_RECURSE
  "CMakeFiles/fig08a_swap_breakdown.dir/fig08a_swap_breakdown.cc.o"
  "CMakeFiles/fig08a_swap_breakdown.dir/fig08a_swap_breakdown.cc.o.d"
  "fig08a_swap_breakdown"
  "fig08a_swap_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_swap_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
