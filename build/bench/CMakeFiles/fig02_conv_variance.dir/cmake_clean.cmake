file(REMOVE_RECURSE
  "CMakeFiles/fig02_conv_variance.dir/fig02_conv_variance.cc.o"
  "CMakeFiles/fig02_conv_variance.dir/fig02_conv_variance.cc.o.d"
  "fig02_conv_variance"
  "fig02_conv_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_conv_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
