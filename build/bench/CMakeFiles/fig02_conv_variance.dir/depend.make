# Empty dependencies file for fig02_conv_variance.
# This may be replaced when dependencies are built.
