/**
 * @file
 * capumutate — seeded mutation corpus for the capuverify analyses.
 *
 * Builds a clean plan from a saved access trace (same flow as capulint),
 * verifies the happens-before and lifetime analyses report zero errors on
 * it (the false-positive gate), then injects ~10 classes of plan/schedule
 * corruptions and checks the analyses catch each one with the expected
 * rule (the detection gate). Corruption classes:
 *
 *   event surgery      trigger-after-back, swapin-during-swapout — reorder
 *                      prefetch triples in the event list, exactly the
 *                      schedules a buggy executor would produce
 *   rule knockouts     drop-sync-edge, early-free, copy-before-retire —
 *                      re-enumerate edges with one executor guarantee
 *                      disabled (OrderingRules), modelling a runtime that
 *                      forgot to enforce it
 *   plan mutations     use-after-evict-hole, empty-interval — corrupt
 *                      PlannedEviction intervals
 *   graph surgery      cyclic-lineage, lost-source — corrupt the lineage
 *                      the recompute replay depends on
 *   timestamp skew     clock-skew — a synthetic capuscope timeline whose
 *                      measured times contradict an ordering edge
 *
 * The corpus composition (class, case count, expected rule) lives in
 * tools/capumutate_manifest.txt so CI runs a fixed corpus; the built-in
 * default is identical. Exit 0 when the catch rate is >= 95% with zero
 * false positives and no class lacking an injection site; exit 4 when the
 * gate fails; exit 1 on usage/trace errors.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/happens_before.hh"
#include "analysis/lifetime_analysis.hh"
#include "core/policy_maker.hh"
#include "core/trace_io.hh"
#include "exec/ordering.hh"
#include "obs/event_adapter.hh"
#include "sim/gpu_device.hh"
#include "sim/pcie_link.hh"
#include "support/logging.hh"
#include "support/rng.hh"

using namespace capu;

namespace
{

struct Options
{
    std::string trace;
    std::string manifest;
    std::string device = "p100";
    std::uint64_t capacity = 0;
    std::uint64_t savingBytes = 0;
    std::size_t maxChain = 256;
    std::uint64_t seed = 1;
    bool noSwap = false;
    bool noRecompute = false;
    bool verbose = false;
};

std::uint64_t
parseBytes(const std::string &s)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || v < 0)
        fatal("bad byte count '{}'", s);
    std::string suffix = end;
    if (suffix == "" || suffix == "B")
        return static_cast<std::uint64_t>(v);
    if (suffix == "K" || suffix == "KB")
        return static_cast<std::uint64_t>(v * (1ull << 10));
    if (suffix == "M" || suffix == "MB")
        return static_cast<std::uint64_t>(v * (1ull << 20));
    if (suffix == "G" || suffix == "GB")
        return static_cast<std::uint64_t>(v * (1ull << 30));
    fatal("bad byte suffix '{}' (use K/M/G)", suffix);
}

void
usage()
{
    std::cout <<
        "capumutate — mutation corpus gate for the capuverify analyses\n"
        "\n"
        "  --trace <file>       access trace from capusim --dump-trace\n"
        "  --manifest <file>    corpus manifest (default: built-in corpus,\n"
        "                       mirrored in tools/capumutate_manifest.txt)\n"
        "  --device <name>      p100 (default) | v100\n"
        "  --capacity <bytes>   GPU pool capacity (K/M/G suffixes)\n"
        "  --saving <bytes>     memory-saving target for the PolicyMaker\n"
        "  --no-swap            recompute-only plan\n"
        "  --no-recompute       swap-only plan\n"
        "  --max-chain <n>      recompute chain budget (default 256)\n"
        "  --seed <n>           base corpus seed (default 1)\n"
        "  --verbose            per-case detail\n"
        "\n"
        "exit status:\n"
        "  0  catch rate >= 95%, zero false positives\n"
        "  1  usage error or the trace failed to load/parse\n"
        "  4  the detection or false-positive gate failed\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after {}", a);
            return argv[++i];
        };
        if (a == "--trace")
            opt.trace = next();
        else if (a == "--manifest")
            opt.manifest = next();
        else if (a == "--device")
            opt.device = next();
        else if (a == "--capacity")
            opt.capacity = parseBytes(next());
        else if (a == "--saving")
            opt.savingBytes = parseBytes(next());
        else if (a == "--no-swap")
            opt.noSwap = true;
        else if (a == "--no-recompute")
            opt.noRecompute = true;
        else if (a == "--max-chain")
            opt.maxChain = static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--seed")
            opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
        else if (a == "--verbose")
            opt.verbose = true;
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '{}' (see --help)", a);
        }
    }
    if (opt.trace.empty())
        fatal("--trace is required (see --help)");
    return true;
}

// ---------------------------------------------------------------------------
// Corpus manifest
// ---------------------------------------------------------------------------

struct CorpusClass
{
    std::string name;
    int cases = 0;
    std::string rule; ///< the diagnostic that counts as a catch
};

std::vector<CorpusClass>
defaultManifest()
{
    return {
        {"trigger-after-back", 5, "hb-unsequenced-prefetch"},
        {"drop-sync-edge", 5, "hb-unsequenced-prefetch"},
        {"early-free", 5, "hb-free-racing-swapout"},
        {"copy-before-retire", 5, "hb-copy-before-retire"},
        {"swapin-during-swapout", 5, "hb-swapin-before-swapout"},
        {"use-after-evict-hole", 5, "lifetime-use-after-free"},
        {"empty-interval", 5, "lifetime-empty-interval"},
        {"cyclic-lineage", 5, "lifetime-lineage-cycle"},
        {"lost-source", 5, "lifetime-source-window"},
        {"clock-skew", 5, "hb-timestamp-violation"},
    };
}

std::vector<CorpusClass>
loadManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open manifest '{}'", path);
    std::vector<CorpusClass> classes;
    std::string line;
    while (std::getline(in, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        CorpusClass c;
        if (!(ls >> c.name >> c.cases >> c.rule))
            continue;
        if (c.cases <= 0)
            fatal("manifest class '{}' has no cases", c.name);
        classes.push_back(std::move(c));
    }
    if (classes.empty())
        fatal("manifest '{}' lists no corpus classes", path);
    return classes;
}

// ---------------------------------------------------------------------------
// Mutation machinery
// ---------------------------------------------------------------------------

/** Outcome of one injected case. */
struct CaseResult
{
    bool injected = false; ///< a mutation site existed
    bool caught = false;   ///< the expected rule fired
    std::string note;      ///< site description / fired rules
};

bool
hasRule(const LintReport &report, const std::string &rule)
{
    for (const auto &d : report.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

std::string
firedRules(const LintReport &report)
{
    std::string out;
    std::vector<std::string> seen;
    for (const auto &d : report.diags) {
        if (std::find(seen.begin(), seen.end(), d.rule) != seen.end())
            continue;
        seen.push_back(d.rule);
        if (!out.empty())
            out += ",";
        out += d.rule;
    }
    return out.empty() ? "none" : out;
}

/**
 * Move the `count` events starting at `first` so they sit immediately
 * after the event at original index `destAfter` (not inside the block).
 * Event ids and cause references are remapped to the new listed order —
 * the result is a valid issue-order list for enumerateOrderingEdges.
 */
std::vector<hb::HbEvent>
reorderEvents(const std::vector<hb::HbEvent> &events, std::size_t first,
              std::size_t count, std::size_t destAfter)
{
    const std::size_t n = events.size();
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        if (k >= first && k < first + count)
            continue;
        order.push_back(k);
        if (k == destAfter) {
            for (std::size_t b = first; b < first + count; ++b)
                order.push_back(b);
        }
    }
    std::vector<std::uint32_t> oldToNew(n, 0);
    for (std::size_t k = 0; k < order.size(); ++k)
        oldToNew[order[k]] = static_cast<std::uint32_t>(k);
    std::vector<hb::HbEvent> out;
    out.reserve(n);
    for (std::size_t k = 0; k < order.size(); ++k) {
        hb::HbEvent ev = events[order[k]];
        ev.id = static_cast<std::uint32_t>(k);
        if (ev.cause >= 0)
            ev.cause =
                static_cast<std::int32_t>(oldToNew[static_cast<std::size_t>(
                    ev.cause)]);
        out.push_back(ev);
    }
    return out;
}

/** Everything a mutator needs; built once per corpus run. */
struct Corpus
{
    const Plan *plan = nullptr;
    const Graph *graph = nullptr;
    const AccessTracker *tracker = nullptr;
    PlanChecker::BytesFn bytesOf;
    PlanChecker::SwapTimeFn swapTime;
    LifetimeOptions lopts;
    HbAnalysis base; ///< clean static event graph, default rules
};

LintReport
scanEvents(std::vector<hb::HbEvent> events, const Corpus &c)
{
    HbAnalysis m;
    m.events = std::move(events);
    m.edges = hb::enumerateOrderingEdges(m.events);
    return checkHappensBefore(m, c.graph);
}

LintReport
scanKnockout(const Corpus &c, const hb::OrderingRules &rules)
{
    HbAnalysis m = buildPlanEventGraph(*c.plan, *c.graph, *c.tracker,
                                       c.bytesOf, c.swapTime, rules);
    return checkHappensBefore(m, c.graph);
}

/** Is event `i` the SwapInStart of a contiguous alloc/start/end triple? */
bool
swapInTripleAt(const std::vector<hb::HbEvent> &evs, std::size_t i)
{
    return i >= 1 && i + 1 < evs.size() &&
           evs[i].op == hb::HbOp::SwapInStart &&
           evs[i - 1].op == hb::HbOp::BufferAlloc &&
           evs[i - 1].tensor == evs[i].tensor &&
           evs[i + 1].op == hb::HbOp::SwapInEnd &&
           evs[i + 1].tensor == evs[i].tensor;
}

// --- class: trigger-after-back ---------------------------------------------
// A buggy executor issues the prefetch triple after the access it was meant
// to hide — "ordered", but the access reads a buffer nothing has filled.
CaseResult
mutateTriggerAfterBack(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    const auto &evs = c.base.events;
    struct Site
    {
        std::size_t triple; ///< index of the BufferAlloc
        std::size_t back;   ///< the access the triple is moved after
    };
    std::vector<Site> sites;
    for (std::size_t i = 1; i + 1 < evs.size(); ++i) {
        if (!swapInTripleAt(evs, i) || evs[i].cause < 0)
            continue; // only triggered prefetches model this bug
        for (std::size_t j = i + 2; j < evs.size(); ++j) {
            if (evs[j].op == hb::HbOp::KernelAccess &&
                evs[j].tensor == evs[i].tensor &&
                evs[j].buffer == evs[i].buffer) {
                sites.push_back({i - 1, j});
                break;
            }
        }
    }
    if (sites.empty())
        return res;
    res.injected = true;
    Site s = sites[rng.uniformInt(0, sites.size() - 1)];
    std::vector<hb::HbEvent> copy = evs;
    for (std::size_t k = s.triple; k < s.triple + 3; ++k)
        copy[k].cause = -1; // the late issue has no trigger
    LintReport report = scanEvents(reorderEvents(copy, s.triple, 3, s.back), c);
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

// --- class: swapin-during-swapout ------------------------------------------
// The prefetch is issued while the same host copy is still being written
// by the swap-out (out-before-in violated by reordering, not by knockout).
CaseResult
mutateSwapinDuringSwapout(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    const auto &evs = c.base.events;
    struct Site
    {
        std::size_t triple;
        std::size_t outStart;
    };
    std::vector<Site> sites;
    for (std::size_t i = 1; i + 1 < evs.size(); ++i) {
        if (!swapInTripleAt(evs, i))
            continue;
        for (std::size_t j = i - 1; j-- > 0;) {
            if (evs[j].op == hb::HbOp::SwapOutStart &&
                evs[j].tensor == evs[i].tensor &&
                evs[j].accessIndex == evs[i].accessIndex) {
                sites.push_back({i - 1, j});
                break;
            }
        }
    }
    if (sites.empty())
        return res;
    res.injected = true;
    Site s = sites[rng.uniformInt(0, sites.size() - 1)];
    std::vector<hb::HbEvent> copy = evs;
    for (std::size_t k = s.triple; k < s.triple + 3; ++k)
        copy[k].cause = -1;
    LintReport report =
        scanEvents(reorderEvents(copy, s.triple, 3, s.outStart), c);
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

// --- classes: rule knockouts ------------------------------------------------
// Model an executor that forgot one sequencing guarantee. Detection is
// deterministic per plan; seeds exist for manifest uniformity.
CaseResult
mutateKnockout(const Corpus &c, const std::string &rule,
               bool hb::OrderingRules::*knob, hb::HbOp siteOp)
{
    CaseResult res;
    for (const hb::HbEvent &ev : c.base.events) {
        if (ev.op == siteOp) {
            res.injected = true;
            break;
        }
    }
    if (!res.injected)
        return res;
    hb::OrderingRules rules;
    rules.*knob = false;
    LintReport report = scanKnockout(c, rules);
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

// --- class: use-after-evict-hole --------------------------------------------
// Stretch an eviction interval over a real access: the abstract state says
// the buffer is gone when the kernel reads it.
CaseResult
mutateEvictHole(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    std::vector<std::size_t> extendBack;
    std::vector<std::size_t> shrinkEvict;
    for (std::size_t i = 0; i < c.plan->items.size(); ++i) {
        const PlannedEviction &item = c.plan->items[i];
        const auto &recs = c.tracker->accessesOf(item.tensor);
        if (recs.empty())
            continue;
        if (recs.back().accessIndex > item.backAccess)
            extendBack.push_back(i);
        else if (item.evictAfterAccess > 1 &&
                 item.backAccess > item.evictAfterAccess)
            shrinkEvict.push_back(i);
    }
    const auto &sites = extendBack.empty() ? shrinkEvict : extendBack;
    if (sites.empty())
        return res;
    res.injected = true;
    std::size_t idx = sites[rng.uniformInt(0, sites.size() - 1)];
    Plan mutated = *c.plan;
    PlannedEviction &item = mutated.items[idx];
    if (!extendBack.empty())
        item.backAccess =
            c.tracker->accessesOf(item.tensor).back().accessIndex;
    else
        --item.evictAfterAccess;
    LintReport report = analyzeLifetimes(mutated, *c.graph, *c.tracker,
                                         c.bytesOf, c.swapTime, c.lopts)
                            .report;
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

// --- class: empty-interval ---------------------------------------------------
CaseResult
mutateEmptyInterval(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    if (c.plan->items.empty())
        return res;
    res.injected = true;
    Plan mutated = *c.plan;
    PlannedEviction &item =
        mutated.items[rng.uniformInt(0, mutated.items.size() - 1)];
    item.backAccess = item.evictAfterAccess;
    LintReport report = analyzeLifetimes(mutated, *c.graph, *c.tracker,
                                         c.bytesOf, c.swapTime, c.lopts)
                            .report;
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

/** Recompute-mode plan items placed on the timeline (valid anchors only). */
struct RecomputeSite
{
    std::size_t idx = 0;
    TensorId tensor = kInvalidTensor;
    OpId producer = kInvalidOp;
    Tick evictTime = 0;
    Tick backTime = 0;
};

std::vector<RecomputeSite>
recomputeSites(const Corpus &c)
{
    std::vector<RecomputeSite> out;
    for (std::size_t i = 0; i < c.plan->items.size(); ++i) {
        const PlannedEviction &item = c.plan->items[i];
        if (item.mode != RegenChoice::Recompute)
            continue;
        OpId prod = c.graph->tensor(item.tensor).producer;
        if (prod == kInvalidOp || !c.graph->op(prod).recomputable)
            continue;
        RecomputeSite s;
        s.idx = i;
        s.tensor = item.tensor;
        s.producer = prod;
        bool ok = false;
        for (const AccessRecord &r : c.tracker->accessesOf(item.tensor)) {
            if (r.accessIndex == item.evictAfterAccess)
                s.evictTime = r.time;
            if (r.accessIndex == item.backAccess) {
                s.backTime = r.time;
                ok = true;
            }
        }
        if (ok)
            out.push_back(s);
    }
    return out;
}

// --- class: cyclic-lineage ---------------------------------------------------
// Route a recompute replay into a tensor whose own replay needs itself:
// root's producer reads u (evicted across root's replay time), and u's
// producer reads u. The DFS must report the cycle, not spin or mislabel.
CaseResult
mutateCyclicLineage(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    auto sites = recomputeSites(c);
    struct Pair
    {
        std::size_t root;
        std::size_t u;
    };
    std::vector<Pair> pairs;
    for (std::size_t r = 0; r < sites.size(); ++r) {
        for (std::size_t u = 0; u < sites.size(); ++u) {
            if (u == r)
                continue;
            if (sites[u].evictTime < sites[r].backTime &&
                sites[r].backTime < sites[u].backTime)
                pairs.push_back({r, u});
        }
    }
    if (pairs.empty())
        return res;
    res.injected = true;
    Pair p = pairs[rng.uniformInt(0, pairs.size() - 1)];
    Graph mutated = *c.graph;
    // Front-insert so the DFS meets the cycle before any legitimate input
    // can divert it into a different diagnostic.
    auto &rootIn = mutated.mutableOp(sites[p.root].producer).inputs;
    rootIn.insert(rootIn.begin(), sites[p.u].tensor);
    auto &uIn = mutated.mutableOp(sites[p.u].producer).inputs;
    uIn.insert(uIn.begin(), sites[p.u].tensor);
    LintReport report = analyzeLifetimes(*c.plan, mutated, *c.tracker,
                                         c.bytesOf, c.swapTime, c.lopts)
                            .report;
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

// --- class: lost-source ------------------------------------------------------
// The plan recomputes a tensor whose producer cannot be replayed (think: a
// data-dependent op) — no host copy, no lineage path, the value is gone.
CaseResult
mutateLostSource(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    auto sites = recomputeSites(c);
    if (sites.empty())
        return res;
    res.injected = true;
    const RecomputeSite &s = sites[rng.uniformInt(0, sites.size() - 1)];
    Graph mutated = *c.graph;
    mutated.mutableOp(s.producer).recomputable = false;
    LintReport report = analyzeLifetimes(*c.plan, mutated, *c.tracker,
                                         c.bytesOf, c.swapTime, c.lopts)
                            .report;
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

// --- class: clock-skew -------------------------------------------------------
// A synthetic capuscope timeline (dynamic mode): swap round-trips plus one
// recompute, times chosen so every ordering edge is timestamp-consistent.
// The mutation starts the recompute before its compute-stream predecessor
// retires — the cross-check must flag the contradiction.
std::vector<obs::TimelineRecord>
syntheticTimeline(Rng &rng, bool skew)
{
    std::vector<obs::TimelineRecord> recs;
    auto add = [&](obs::TimelineKind kind, std::int64_t tensor, Tick start,
                   Tick end, int accessIndex, bool write) {
        obs::TimelineRecord r;
        r.kind = kind;
        r.tensor = tensor;
        r.start = start;
        r.end = end;
        r.accessIndex = accessIndex;
        r.write = write;
        recs.push_back(r);
    };
    using K = obs::TimelineKind;
    std::size_t nswap = 2 + rng.uniformInt(0, 2);
    for (std::size_t k = 0; k < nswap; ++k) {
        Tick base = 1000 * static_cast<Tick>(k + 1);
        add(K::Access, static_cast<std::int64_t>(k), base, base, 1, true);
        add(K::Access, static_cast<std::int64_t>(k), base + 100, base + 100,
            2, false);
        add(K::SwapOut, static_cast<std::int64_t>(k), base + 110, base + 200,
            0, false);
        add(K::SwapIn, static_cast<std::int64_t>(k), base + 400, base + 490,
            0, false);
        add(K::Access, static_cast<std::int64_t>(k), base + 500, base + 500,
            3, false);
    }
    Tick rbase = 1000 * static_cast<Tick>(nswap + 2);
    std::int64_t rt = 90;
    add(K::Access, rt, rbase, rbase, 1, true);
    add(K::Access, rt, rbase + 100, rbase + 100, 2, false);
    // Clean: the replay starts well after the previous access retires.
    // Skewed: it starts before that access's tick — impossible on a FIFO
    // stream, so some measured serialization claim is a lie.
    Tick rstart = skew ? rbase + 99 - static_cast<Tick>(rng.uniformInt(0, 50))
                       : rbase + 400;
    add(K::Recompute, rt, rstart, rbase + 490, 0, true);
    add(K::Access, rt, rbase + 500, rbase + 500, 3, false);
    return recs;
}

LintReport
scanTimeline(const std::vector<obs::TimelineRecord> &recs, const Corpus &c)
{
    HbAnalysis m = buildTraceEventGraph(recs);
    LintReport report = checkHappensBefore(m, c.graph);
    LintReport stamps = checkTimestamps(m, c.graph);
    for (auto &d : stamps.diags)
        report.diags.push_back(std::move(d));
    return report;
}

CaseResult
mutateClockSkew(const Corpus &c, Rng &rng, const std::string &rule)
{
    CaseResult res;
    res.injected = true; // the fixture always exists
    LintReport report = scanTimeline(syntheticTimeline(rng, true), c);
    res.caught = hasRule(report, rule);
    res.note = firedRules(report);
    return res;
}

CaseResult
runCase(const std::string &cls, const Corpus &c, Rng &rng,
        const std::string &rule)
{
    if (cls == "trigger-after-back")
        return mutateTriggerAfterBack(c, rng, rule);
    if (cls == "drop-sync-edge")
        return mutateKnockout(c, rule, &hb::OrderingRules::completeBeforeUse,
                              hb::HbOp::SwapInEnd);
    if (cls == "early-free")
        return mutateKnockout(c, rule, &hb::OrderingRules::completeBeforeFree,
                              hb::HbOp::SwapOutStart);
    if (cls == "copy-before-retire")
        return mutateKnockout(c, rule, &hb::OrderingRules::retireBeforeCopy,
                              hb::HbOp::SwapOutStart);
    if (cls == "swapin-during-swapout")
        return mutateSwapinDuringSwapout(c, rng, rule);
    if (cls == "use-after-evict-hole")
        return mutateEvictHole(c, rng, rule);
    if (cls == "empty-interval")
        return mutateEmptyInterval(c, rng, rule);
    if (cls == "cyclic-lineage")
        return mutateCyclicLineage(c, rng, rule);
    if (cls == "lost-source")
        return mutateLostSource(c, rng, rule);
    if (cls == "clock-skew")
        return mutateClockSkew(c, rng, rule);
    fatal("unknown corpus class '{}' in manifest", cls);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;
        setLogEnabled(opt.verbose);

        GpuDeviceSpec device = GpuDeviceSpec::p100();
        if (opt.device == "v100")
            device = GpuDeviceSpec::v100();
        else if (opt.device != "p100")
            fatal("unknown device '{}' (p100 or v100)", opt.device);
        std::uint64_t capacity =
            opt.capacity ? opt.capacity : device.memCapacity;

        TensorTrace trace = loadTraceFile(opt.trace);
        Graph graph = reconstructGraph(trace);
        AccessTracker tracker = trace.toTracker();
        if (tracker.empty())
            fatal("trace '{}' has no access records", opt.trace);

        auto bytes_of = [&graph](TensorId id) {
            return graph.tensor(id).bytes;
        };
        PcieLink pcie(device.pcieBandwidth, device.pcieLatency);
        auto swap_time = [&pcie](std::uint64_t b) {
            return pcie.transferTime(b);
        };

        std::uint64_t weight_bytes = graph.bytesOfKind(TensorKind::Weight);
        std::uint64_t target = opt.savingBytes;
        if (target == 0) {
            std::uint64_t peak = tracker.hypotheticalPeak([&](TensorId id) {
                const TensorDesc &t = graph.tensor(id);
                return t.kind == TensorKind::Weight ? 0 : t.bytes;
            });
            std::uint64_t budget =
                capacity > weight_bytes ? capacity - weight_bytes : 0;
            target = peak > budget ? peak - budget : 0;
            if (target == 0)
                fatal("trace fits {} without a plan; pass --saving or a "
                      "tighter --capacity to force one",
                      formatBytes(capacity));
        }

        PolicyMakerOptions pm_opts;
        pm_opts.enableSwap = !opt.noSwap;
        pm_opts.enableRecompute = !opt.noRecompute;
        PolicyMaker maker(graph, tracker, pm_opts);
        Plan plan = maker.build(target, bytes_of, swap_time, capacity);
        if (plan.items.empty())
            fatal("PolicyMaker produced an empty plan; nothing to mutate");

        Corpus corpus;
        corpus.plan = &plan;
        corpus.graph = &graph;
        corpus.tracker = &tracker;
        corpus.bytesOf = bytes_of;
        corpus.swapTime = swap_time;
        corpus.lopts.gpuCapacity = capacity;
        corpus.lopts.capacitySlack = capacity / 20;
        corpus.lopts.maxRecomputeChain = opt.maxChain;
        corpus.base = buildPlanEventGraph(plan, graph, tracker, bytes_of,
                                          swap_time);

        std::size_t swapItems = 0;
        for (const PlannedEviction &item : plan.items)
            swapItems += item.mode == RegenChoice::Swap ? 1 : 0;
        std::cout << "capumutate: trace " << opt.trace << ": plan "
                  << plan.items.size() << " items (" << swapItems
                  << " swap / " << plan.items.size() - swapItems
                  << " recompute), " << corpus.base.events.size()
                  << " events\n";

        // --- False-positive gate: the clean plan and the clean synthetic
        // timeline must produce zero error-level findings.
        std::size_t falsePositives = 0;
        {
            LintReport clean = checkHappensBefore(corpus.base, &graph);
            LintReport lt = analyzeLifetimes(plan, graph, tracker, bytes_of,
                                             swap_time, corpus.lopts)
                                .report;
            for (auto &d : lt.diags)
                clean.diags.push_back(std::move(d));
            Rng fixtureRng(hashCombine(opt.seed, hashString("clean")));
            LintReport synth =
                scanTimeline(syntheticTimeline(fixtureRng, false), corpus);
            for (auto &d : synth.diags)
                clean.diags.push_back(std::move(d));
            falsePositives = clean.errorCount();
            std::cout << "clean baseline: " << clean.errorCount()
                      << " errors, " << clean.warningCount()
                      << " warnings ("
                      << (falsePositives == 0 ? "PASS" : "FAIL") << ")\n";
            if (falsePositives != 0)
                printLintReport(std::cout, clean, graph);
        }

        // --- Detection gate.
        std::vector<CorpusClass> classes = opt.manifest.empty()
                                               ? defaultManifest()
                                               : loadManifest(opt.manifest);
        std::size_t injected = 0;
        std::size_t caught = 0;
        std::size_t skippedClasses = 0;
        std::cout << "\n"
                  << std::left << std::setw(24) << "class" << std::right
                  << std::setw(7) << "cases" << std::setw(8) << "caught"
                  << std::setw(8) << "missed" << std::setw(9) << "skipped"
                  << "  expected rule\n";
        for (const CorpusClass &cls : classes) {
            std::size_t clsInjected = 0;
            std::size_t clsCaught = 0;
            for (int s = 0; s < cls.cases; ++s) {
                Rng rng(hashCombine(hashCombine(opt.seed,
                                                hashString(cls.name.c_str())),
                                    static_cast<std::uint64_t>(s)));
                CaseResult res = runCase(cls.name, corpus, rng, cls.rule);
                clsInjected += res.injected ? 1 : 0;
                clsCaught += res.caught ? 1 : 0;
                if (opt.verbose)
                    std::cout << "  " << cls.name << " seed " << s << ": "
                              << (res.injected
                                      ? (res.caught ? "caught" : "MISSED")
                                      : "skipped (no site)")
                              << " [" << res.note << "]\n";
            }
            injected += clsInjected;
            caught += clsCaught;
            if (clsInjected == 0)
                ++skippedClasses;
            std::cout << std::left << std::setw(24) << cls.name << std::right
                      << std::setw(7) << cls.cases << std::setw(8)
                      << clsCaught << std::setw(8) << clsInjected - clsCaught
                      << std::setw(9)
                      << static_cast<std::size_t>(cls.cases) - clsInjected
                      << "  " << cls.rule << "\n";
        }

        double rate = injected == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(caught) /
                                static_cast<double>(injected);
        bool pass = falsePositives == 0 && skippedClasses == 0 &&
                    injected > 0 && rate >= 95.0;
        std::cout << "\ntotal: " << injected << " injected, " << caught
                  << " caught (" << std::fixed << std::setprecision(1)
                  << rate << "%), " << skippedClasses
                  << " classes without a site, " << falsePositives
                  << " false positives\n"
                  << "gate: " << (pass ? "PASS" : "FAIL")
                  << " (requires >= 95% catch, 0 false positives, every "
                     "class injectable)\n";
        return pass ? 0 : 4;
    } catch (const FatalError &e) {
        std::cerr << "capumutate: " << e.what() << "\n";
        return 1;
    }
}
