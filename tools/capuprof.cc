/**
 * @file
 * capuprof — post-hoc trace analytics for capusim runs.
 *
 * Consumes either a Chrome-trace artifact (capusim --trace-json) or a
 * profile JSON previously written by capuprof itself, and produces:
 *
 *   report  critical-path attribution, wall-clock bucket split
 *           (compute / recompute / swap-in stall / oom protocol / idle),
 *           per-tensor cost accounting with prefetch timeliness, and the
 *           ranked top-K costly tensors.
 *   diff    aligns two runs by iteration digest and reports per-bucket
 *           and per-tensor/per-op deltas, localizing a regression to the
 *           first diverging iteration/op/tensor.
 *
 *   capusim --model vgg16 --batch 230 --policy capuchin --trace-json t.json
 *   capuprof report t.json
 *   capuprof report t.json --format json --out profile.json
 *   capuprof diff profile.json other.json
 *
 * Exit status: 0 ok, 1 usage/input error, 5 runs differ under
 * --expect-identical, 6 bucket conservation violated under --strict.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "prof/diff.hh"
#include "prof/profile.hh"
#include "prof/report.hh"
#include "prof/trace_io.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace capu;

namespace
{

void
usage()
{
    std::cout <<
        "capuprof — trace analytics for capusim runs\n"
        "\n"
        "  capuprof report <trace.json|profile.json> [options]\n"
        "  capuprof diff <a.json> <b.json> [options]\n"
        "\n"
        "inputs may be Chrome-trace artifacts (capusim --trace-json) or\n"
        "profile JSON written by `capuprof report --format json`; the two\n"
        "are distinguished automatically.\n"
        "\n"
        "options:\n"
        "  --format <f>         text (default) | md | json\n"
        "  --out <file>         write the report there instead of stdout\n"
        "  --topk <n>           costly-tensor table size (default 10)\n"
        "  --no-critical-path   skip the happens-before critical path\n"
        "  --strict             exit 6 if bucket attribution does not sum\n"
        "                       to wall-clock within 1%\n"
        "  --expect-identical   (diff) exit 5 unless the runs are\n"
        "                       bit-identical under digest alignment\n"
        "  --quiet              suppress informational log output\n"
        "\n"
        "exit status:\n"
        "  0  ok\n"
        "  1  usage error or an input failed to load/parse\n"
        "  5  runs differ and --expect-identical was given\n"
        "  6  conservation violated and --strict was given\n";
}

struct Options
{
    std::string command;
    std::vector<std::string> inputs;
    prof::ReportFormat format = prof::ReportFormat::Text;
    std::string out;
    std::size_t topK = 10;
    bool withCriticalPath = true;
    bool strict = false;
    bool expectIdentical = false;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    if (argc < 2) {
        usage();
        return false;
    }
    opt.command = argv[1];
    if (opt.command == "--help" || opt.command == "-h") {
        usage();
        return false;
    }
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after {}", a);
            return argv[++i];
        };
        if (a == "--format") {
            std::string f = next();
            if (!prof::parseReportFormat(f, opt.format))
                fatal("unknown format '{}' (text, md, json)", f);
        } else if (a == "--out")
            opt.out = next();
        else if (a == "--topk")
            opt.topK = static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--no-critical-path")
            opt.withCriticalPath = false;
        else if (a == "--strict")
            opt.strict = true;
        else if (a == "--expect-identical")
            opt.expectIdentical = true;
        else if (a == "--quiet")
            setLogEnabled(false);
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else if (!a.empty() && a[0] == '-')
            fatal("unknown argument '{}' (see --help)", a);
        else
            opt.inputs.push_back(a);
    }
    return true;
}

/**
 * Load either input flavor into a Profile. Chrome traces are profiled on
 * the spot; profile JSON is loaded as-is (its critical path and buckets
 * were computed when it was written).
 */
prof::Profile
loadInput(const std::string &path, const Options &opt)
{
    json::Value root;
    std::string err;
    if (!json::parseFile(path, root, &err))
        fatal("{}: {}", path, err);

    if (root.has("capuprof")) {
        prof::Profile p;
        if (!prof::loadProfileJson(path, p, &err))
            fatal("{}: {}", path, err);
        return p;
    }
    if (root.has("traceEvents")) {
        prof::TraceBundle bundle;
        if (!prof::importChromeTrace(path, bundle, &err))
            fatal("{}: {}", path, err);
        prof::ProfileOptions popts;
        popts.droppedEvents = bundle.dropped;
        popts.meta = bundle.meta;
        popts.withCriticalPath = opt.withCriticalPath;
        return prof::buildProfile(bundle.events, popts);
    }
    fatal("{}: neither a Chrome trace (traceEvents) nor a capuprof "
          "profile (capuprof)", path);
}

/** The 1% acceptance gate, shared by report --strict and CI. */
bool
conservationOk(const prof::Profile &p)
{
    return p.conservationError() * 100 <= p.wallTicks;
}

int
runReport(const Options &opt)
{
    if (opt.inputs.size() != 1)
        fatal("report takes exactly one input (see --help)");
    prof::Profile p = loadInput(opt.inputs[0], opt);

    if (!opt.out.empty()) {
        if (opt.format == prof::ReportFormat::Json) {
            if (!prof::writeProfileJsonFile(opt.out, p))
                return 1;
        } else {
            std::ofstream os(opt.out);
            if (!os) {
                warn("capuprof: cannot write '{}'", opt.out);
                return 1;
            }
            prof::renderProfile(os, p, opt.format, opt.topK);
        }
    } else {
        prof::renderProfile(std::cout, p, opt.format, opt.topK);
    }

    if (opt.strict && !conservationOk(p)) {
        std::cerr << "capuprof: bucket attribution off by "
                  << p.conservationError() << " ns of " << p.wallTicks
                  << " ns wall (limit 1%)\n";
        return 6;
    }
    return 0;
}

int
runDiff(const Options &opt)
{
    if (opt.inputs.size() != 2)
        fatal("diff takes exactly two inputs (see --help)");
    prof::Profile a = loadInput(opt.inputs[0], opt);
    prof::Profile b = loadInput(opt.inputs[1], opt);
    prof::ProfileDiff d = prof::diffProfiles(a, b);

    if (!opt.out.empty()) {
        std::ofstream os(opt.out);
        if (!os) {
            warn("capuprof: cannot write '{}'", opt.out);
            return 1;
        }
        prof::renderDiff(os, a, b, d, opt.format);
    } else {
        prof::renderDiff(std::cout, a, b, d, opt.format);
    }

    if (opt.expectIdentical && !d.identical) {
        std::cerr << "capuprof: runs differ (first diverging iteration "
                  << d.firstDivergingIteration << ")\n";
        return 5;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;
        if (opt.command == "report")
            return runReport(opt);
        if (opt.command == "diff")
            return runDiff(opt);
        fatal("unknown command '{}' (report or diff; see --help)",
              opt.command);
    } catch (const FatalError &e) {
        std::cerr << "capuprof: " << e.what() << "\n";
        return 1;
    }
}
