/**
 * @file
 * capuserve — multi-tenant planning service driver.
 *
 * Feeds a request stream (scripted file or generated zoo mix) through the
 * PlanService + RequestQueue and reports cache behaviour and latency:
 *
 *   capuserve --mix 40 --gpus 4                 # generated zoo mix
 *   capuserve --stream requests.txt --plan-dir plans/
 *   capuserve --mix 40 --metrics serve.csv --csv
 *
 * Stream file format, one request per line (# starts a comment):
 *   <model> <batch> [policy] [warm-iterations]
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "serve/request_queue.hh"
#include "serve/service.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/units.hh"

using namespace capu;
using namespace capu::serve;

namespace
{

struct Options
{
    std::string device = "p100";
    std::string stream;
    int mix = 0;
    std::uint64_t seed = 0;
    int gpus = 4;
    std::size_t queueBatch = 8;
    std::size_t cacheEntries = 64;
    std::uint64_t cacheBytes = 64ull << 20;
    int coldIterations = 4;
    int warmIterations = 1;
    std::string planDir;
    std::string metricsFile;
    bool csv = false;
};

void
usage()
{
    std::cout <<
        "capuserve — multi-tenant Capuchin planning service\n"
        "\n"
        "  --stream <file>      scripted request stream (one request per\n"
        "                       line: <model> <batch> [policy] [warm-iters])\n"
        "  --mix <n>            generate n requests over the model zoo\n"
        "                       (deterministic per --seed; default 24 when\n"
        "                       no --stream is given)\n"
        "  --seed <n>           seed for --mix (default 0)\n"
        "  --device <name>      p100 (default) | v100\n"
        "  --gpus <n>           admission tokens: planning sessions in\n"
        "                       flight at once (default 4)\n"
        "  --queue-batch <n>    requests fanned per drain round (default 8)\n"
        "  --cache-entries <n>  plan cache entry capacity (default 64)\n"
        "  --cache-bytes <n>    plan cache byte capacity (default 64 MiB)\n"
        "  --cold-iters <n>     iterations of a cold planning session\n"
        "                       (default 4)\n"
        "  --warm-iters <n>     guided iterations run on each warm fork\n"
        "                       (default 1)\n"
        "  --plan-dir <dir>     serialize plans to <dir> and reload them on\n"
        "                       miss (cross-process warm start)\n"
        "  --metrics <f>        write capu.serve.* metrics (.json => JSON,\n"
        "                       else CSV)\n"
        "  --csv                machine-readable per-request output\n"
        "  --quiet / --verbose  log verbosity\n"
        "\n"
        "exit status: 0 ok; 1 usage error; 3 warm/cold digest mismatch\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after {}", a);
            return argv[++i];
        };
        if (a == "--stream")
            opt.stream = next();
        else if (a == "--mix")
            opt.mix = std::atoi(next());
        else if (a == "--seed")
            opt.seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--device")
            opt.device = next();
        else if (a == "--gpus")
            opt.gpus = std::atoi(next());
        else if (a == "--queue-batch")
            opt.queueBatch = static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--cache-entries")
            opt.cacheEntries = static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--cache-bytes")
            opt.cacheBytes = std::strtoull(next(), nullptr, 10);
        else if (a == "--cold-iters")
            opt.coldIterations = std::atoi(next());
        else if (a == "--warm-iters")
            opt.warmIterations = std::atoi(next());
        else if (a == "--plan-dir")
            opt.planDir = next();
        else if (a == "--metrics")
            opt.metricsFile = next();
        else if (a == "--csv")
            opt.csv = true;
        else if (a == "--quiet")
            setLogEnabled(false);
        else if (a == "--verbose")
            setLogEnabled(true);
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '{}' (see --help)", a);
        }
    }
    return true;
}

std::vector<PlanRequest>
loadStream(const std::string &path, int default_warm)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read request stream '{}'", path);
    std::vector<PlanRequest> reqs;
    std::string line;
    while (std::getline(is, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        PlanRequest r;
        r.warmIterations = default_warm;
        if (!(ls >> r.model >> r.batch))
            continue; // blank / comment-only line
        ls >> r.policy >> r.warmIterations;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/**
 * Deterministic zoo request mix: a handful of (model, batch) tenants with
 * Zipf-ish popularity, so the stream exercises both cold planning and the
 * warm fork path. Batches stay modest to keep cold sessions quick.
 */
std::vector<PlanRequest>
generateMix(int n, std::uint64_t seed, int warm_iters)
{
    struct Tenant
    {
        const char *model;
        std::int64_t batch;
    };
    static const Tenant kTenants[] = {
        {"resnet50", 192}, {"resnet50", 256}, {"vgg16", 96},
        {"densenet", 96},  {"inceptionv3", 128},
    };
    constexpr std::size_t kTenantCount =
        sizeof(kTenants) / sizeof(kTenants[0]);
    Rng rng(seed ^ 0x5e57e5e57ull);
    std::vector<PlanRequest> reqs;
    reqs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        // Harmonic weights: tenant k drawn with weight 1/(k+1).
        double total = 0;
        for (std::size_t k = 0; k < kTenantCount; ++k)
            total += 1.0 / static_cast<double>(k + 1);
        double roll = rng.uniformReal(0.0, total);
        std::size_t pick = 0;
        for (; pick + 1 < kTenantCount; ++pick) {
            roll -= 1.0 / static_cast<double>(pick + 1);
            if (roll <= 0)
                break;
        }
        PlanRequest r;
        r.model = kTenants[pick].model;
        r.batch = kTenants[pick].batch;
        r.warmIterations = warm_iters;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;

        PlanServiceConfig cfg;
        if (opt.device == "p100")
            cfg.exec.device = GpuDeviceSpec::p100();
        else if (opt.device == "v100")
            cfg.exec.device = GpuDeviceSpec::v100();
        else
            fatal("unknown device '{}' (p100 or v100)", opt.device);
        cfg.cacheEntries = opt.cacheEntries;
        cfg.cacheBytes = opt.cacheBytes;
        cfg.coldIterations = opt.coldIterations;
        cfg.planDir = opt.planDir;

        std::vector<PlanRequest> reqs;
        if (!opt.stream.empty())
            reqs = loadStream(opt.stream, opt.warmIterations);
        else
            reqs = generateMix(opt.mix > 0 ? opt.mix : 24, opt.seed,
                               opt.warmIterations);
        if (reqs.empty())
            fatal("request stream is empty");

        obs::MetricsRegistry metrics;
        metrics.setEnabled(true);
        PlanService service(cfg, &metrics);
        RequestQueueConfig qcfg;
        qcfg.gpus = opt.gpus;
        qcfg.batchSize = opt.queueBatch;
        RequestQueue queue(service, qcfg);
        for (const auto &r : reqs)
            queue.enqueue(r); // keep reqs intact for the digest check below

        auto t0 = std::chrono::steady_clock::now();
        std::vector<PlanResponse> resps = queue.drain();
        auto t1 = std::chrono::steady_clock::now();
        double wall_s =
            std::chrono::duration<double>(t1 - t0).count();
        service.publishGauges();
        metrics.snapshotIteration(0);

        // Warm responses must agree with the cold plan they were served
        // from: same key => same digest (bit-identical plan).
        std::vector<double> cold_ms, warm_ms;
        int errors = 0;
        bool digest_mismatch = false;
        std::unordered_map<ServeKey, std::uint64_t, ServeKeyHash>
            seen_digest;
        if (opt.csv)
            std::cout << "req,hit,from_disk,digest,version,plan_items,"
                         "latency_ms,img_per_s,error\n";
        for (std::size_t i = 0; i < resps.size(); ++i) {
            const PlanResponse &r = resps[i];
            if (!r.ok)
                ++errors;
            (r.hit ? warm_ms : cold_ms).push_back(r.latencyMs);
            if (r.ok) {
                ServeKey key = service.keyFor(reqs[i]);
                auto it = seen_digest.find(key);
                if (it == seen_digest.end())
                    seen_digest.emplace(key, r.digest);
                else if (it->second != r.digest)
                    digest_mismatch = true;
            }
            if (opt.csv) {
                std::cout << i << ',' << (r.hit ? 1 : 0) << ','
                          << (r.fromDisk ? 1 : 0) << ',' << std::hex
                          << r.digest << std::dec << ',' << r.version << ','
                          << r.planItems << ',' << r.latencyMs << ','
                          << r.imagesPerSec << ','
                          << (r.ok ? "" : r.error) << '\n';
            }
        }

        const PlanCacheStats &cs = service.cacheStats();
        std::cout << "serve: " << resps.size() << " requests in " << wall_s
                  << " s (" << (wall_s > 0
                                    ? static_cast<double>(resps.size()) /
                                          wall_s
                                    : 0.0)
                  << " req/s), " << errors << " errors\n";
        std::cout << "cache: " << cs.hits << " hits, " << cs.misses
                  << " misses (" << static_cast<int>(cs.hitRate() * 100)
                  << "% hit rate), " << cs.evictions << " evictions, "
                  << service.cacheEntries() << " entries / "
                  << formatBytes(service.cacheBytes()) << " resident, "
                  << service.templateSessions() << " template sessions\n";
        std::cout << "latency: cold p50 " << percentile(cold_ms, 0.50)
                  << " ms p99 " << percentile(cold_ms, 0.99)
                  << " ms (" << cold_ms.size() << "), warm p50 "
                  << percentile(warm_ms, 0.50) << " ms p99 "
                  << percentile(warm_ms, 0.99) << " ms ("
                  << warm_ms.size() << ")\n";
        std::cout << "admission: peak " << queue.stats().peakAdmitted
                  << " of " << opt.gpus << " gpus\n";

        if (!opt.metricsFile.empty() &&
            obs::writeMetricsFile(opt.metricsFile, metrics))
            inform("wrote serve metrics to {}", opt.metricsFile);

        if (digest_mismatch) {
            std::cerr << "capuserve: DIGEST MISMATCH: a warm response "
                         "disagrees with the cold plan for its key\n";
            return 3;
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << "capuserve: " << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << "capuserve: " << e.what() << "\n";
        return 3;
    }
}
