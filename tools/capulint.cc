/**
 * @file
 * capulint — offline plan verifier for capuchin access traces.
 *
 * Loads a trace written by `capusim --dump-trace`, rebuilds the skeletal
 * graph and tracker, runs the PolicyMaker exactly as guided execution
 * would, and lints the resulting plan against the full rule set
 * (src/analysis/plan_checker.hh). Lets planner changes be validated
 * against a corpus of saved traces without re-simulating training.
 *
 *   capusim --model resnet50 --batch 400 --dump-trace r50.csv
 *   capulint --trace r50.csv
 *   capulint --trace r50.csv --device v100 --saving 6G --no-recompute
 *
 * Exit status: 0 clean (warnings allowed), 1 usage/trace error, 4 the
 * plan has error-level findings.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/happens_before.hh"
#include "analysis/lifetime_analysis.hh"
#include "analysis/plan_checker.hh"
#include "core/policy_maker.hh"
#include "core/trace_io.hh"
#include "sim/gpu_device.hh"
#include "sim/pcie_link.hh"
#include "support/logging.hh"

using namespace capu;

namespace
{

struct Options
{
    std::string trace;
    std::string device = "p100";
    std::uint64_t capacity = 0;     ///< 0 = device default
    std::uint64_t hostCapacity = 256ull << 30;
    std::uint64_t savingBytes = 0;  ///< 0 = derive from peak vs capacity
    std::uint64_t slack = 0;        ///< memory-window tolerance
    std::size_t maxChain = 256;
    bool noSwap = false;
    bool noRecompute = false;
    bool hb = false;       ///< happens-before race scan
    bool lifetime = false; ///< tensor-lifetime dataflow analysis
    bool csv = false;
    bool verbose = false;
};

/** Parse "12G", "512M", "4096" into bytes. */
std::uint64_t
parseBytes(const std::string &s)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || v < 0)
        fatal("bad byte count '{}'", s);
    std::string suffix = end;
    if (suffix == "" || suffix == "B")
        return static_cast<std::uint64_t>(v);
    if (suffix == "K" || suffix == "KB")
        return static_cast<std::uint64_t>(v * (1ull << 10));
    if (suffix == "M" || suffix == "MB")
        return static_cast<std::uint64_t>(v * (1ull << 20));
    if (suffix == "G" || suffix == "GB")
        return static_cast<std::uint64_t>(v * (1ull << 30));
    fatal("bad byte suffix '{}' (use K/M/G)", suffix);
}

void
usage()
{
    std::cout <<
        "capulint — static verifier for Capuchin memory plans\n"
        "\n"
        "  --trace <file>       access trace from capusim --dump-trace\n"
        "  --device <name>      p100 (default) | v100\n"
        "  --capacity <bytes>   GPU pool capacity (default: device size;\n"
        "                       accepts K/M/G suffixes)\n"
        "  --host-capacity <b>  host staging capacity (default 256G)\n"
        "  --saving <bytes>     memory-saving target for the PolicyMaker\n"
        "                       (default: hypothetical peak minus capacity)\n"
        "  --slack <bytes>      tolerated overshoot in the memory-window\n"
        "                       rule (default: capacity / 20)\n"
        "  --no-swap            recompute-only plan\n"
        "  --no-recompute       swap-only plan\n"
        "  --max-chain <n>      recompute chain budget (default 256)\n"
        "  --hb                 also run the happens-before race scan\n"
        "                       (capuverify, rules hb-*)\n"
        "  --lifetime           also run the tensor-lifetime dataflow\n"
        "                       analysis (capuverify, rules lifetime-*)\n"
        "  --csv                machine-readable findings\n"
        "  --quiet              suppress informational log output\n"
        "  --verbose            print the plan summary too\n"
        "\n"
        "exit status:\n"
        "  0  plan is clean (warning-level findings allowed)\n"
        "  1  usage error or the trace failed to load/parse\n"
        "  4  the plan has error-level findings\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after {}", a);
            return argv[++i];
        };
        if (a == "--trace")
            opt.trace = next();
        else if (a == "--device")
            opt.device = next();
        else if (a == "--capacity")
            opt.capacity = parseBytes(next());
        else if (a == "--host-capacity")
            opt.hostCapacity = parseBytes(next());
        else if (a == "--saving")
            opt.savingBytes = parseBytes(next());
        else if (a == "--slack")
            opt.slack = parseBytes(next());
        else if (a == "--no-swap")
            opt.noSwap = true;
        else if (a == "--no-recompute")
            opt.noRecompute = true;
        else if (a == "--max-chain")
            opt.maxChain = static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--hb")
            opt.hb = true;
        else if (a == "--lifetime")
            opt.lifetime = true;
        else if (a == "--csv")
            opt.csv = true;
        else if (a == "--quiet")
            setLogEnabled(false);
        else if (a == "--verbose") {
            opt.verbose = true;
            setLogEnabled(true);
        } else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '{}' (see --help)", a);
        }
    }
    if (opt.trace.empty())
        fatal("--trace is required (see --help)");
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;

        GpuDeviceSpec device = GpuDeviceSpec::p100();
        if (opt.device == "v100")
            device = GpuDeviceSpec::v100();
        else if (opt.device != "p100")
            fatal("unknown device '{}' (p100 or v100)", opt.device);
        std::uint64_t capacity =
            opt.capacity ? opt.capacity : device.memCapacity;

        TensorTrace trace = loadTraceFile(opt.trace);
        Graph graph = reconstructGraph(trace);
        AccessTracker tracker = trace.toTracker();
        if (tracker.empty())
            fatal("trace '{}' has no access records", opt.trace);

        auto bytes_of = [&](TensorId id) {
            return graph.tensor(id).bytes;
        };
        PcieLink pcie(device.pcieBandwidth, device.pcieLatency);
        auto swap_time = [&](std::uint64_t b) {
            return pcie.transferTime(b);
        };

        // Weights never leave the GPU; the activation curve competes for
        // what remains.
        std::uint64_t weight_bytes = 0;
        for (const TensorDesc &t : graph.tensors()) {
            if (t.kind == TensorKind::Weight)
                weight_bytes += t.bytes;
        }
        auto activation_bytes = [&](TensorId id) {
            const TensorDesc &t = graph.tensor(id);
            return t.kind == TensorKind::Weight ? 0 : t.bytes;
        };

        std::uint64_t target = opt.savingBytes;
        if (target == 0) {
            std::uint64_t peak = tracker.hypotheticalPeak(activation_bytes);
            std::uint64_t budget =
                capacity > weight_bytes ? capacity - weight_bytes : 0;
            target = peak > budget ? peak - budget : 0;
            if (target == 0) {
                std::cout << "trace fits " << formatBytes(capacity)
                          << " without a plan (peak "
                          << formatBytes(peak + weight_bytes)
                          << "); nothing to lint\n";
                return 0;
            }
        }

        PolicyMakerOptions pm_opts;
        pm_opts.enableSwap = !opt.noSwap;
        pm_opts.enableRecompute = !opt.noRecompute;
        PolicyMaker maker(graph, tracker, pm_opts);
        Plan plan = maker.build(target, bytes_of, swap_time, capacity);
        if (opt.verbose)
            std::cout << plan.summary() << "\n";

        PlanCheckerOptions copts;
        copts.gpuCapacity = capacity;
        copts.hostCapacity = opt.hostCapacity;
        copts.capacitySlack = opt.slack ? opt.slack : capacity / 20;
        copts.maxRecomputeChain = opt.maxChain;
        PlanChecker checker(graph, tracker, copts);
        LintReport report = checker.check(plan, bytes_of, swap_time);

        if (opt.hb) {
            HbAnalysis hb = buildPlanEventGraph(plan, graph, tracker,
                                                bytes_of, swap_time);
            LintReport races = checkHappensBefore(hb, &graph);
            if (opt.verbose)
                std::cout << "happens-before: " << hb.events.size()
                          << " events, " << hb.edges.size() << " edges\n";
            for (auto &d : races.diags)
                report.diags.push_back(std::move(d));
        }
        if (opt.lifetime) {
            LifetimeOptions lopts;
            lopts.gpuCapacity = copts.gpuCapacity;
            lopts.capacitySlack = copts.capacitySlack;
            lopts.maxRecomputeChain = copts.maxRecomputeChain;
            LifetimeResult lt = analyzeLifetimes(plan, graph, tracker,
                                                 bytes_of, swap_time, lopts);
            if (opt.verbose)
                std::cout << "lifetime: " << lt.lifetimes.size()
                          << " planned tensors, static peak bound "
                          << formatBytes(lt.peakBound) << " at tick "
                          << lt.peakAt << "\n";
            for (auto &d : lt.report.diags)
                report.diags.push_back(std::move(d));
        }

        if (opt.csv) {
            std::cout << "severity,rule,tensor,access,message\n";
            for (const auto &d : report.diags) {
                std::string msg = d.message;
                for (char &c : msg) {
                    if (c == ',' || c == '\n')
                        c = ';';
                }
                std::cout << lintSeverityName(d.severity) << ',' << d.rule
                          << ','
                          << (d.tensor == kInvalidTensor
                                  ? std::string("-")
                                  : graph.tensor(d.tensor).name)
                          << ',' << d.accessIndex << ',' << msg << '\n';
            }
            // CSV rows alone leave a warning-only run looking identical to
            // a clean one; always state the verdict on stderr.
            std::cerr << "capulint: " << report.summary() << "\n";
        } else {
            printLintReport(std::cout, report, graph);
        }
        return report.clean() ? 0 : 4;
    } catch (const FatalError &e) {
        std::cerr << "capulint: " << e.what() << "\n";
        return 1;
    }
}
