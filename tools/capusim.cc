/**
 * @file
 * capusim — command-line driver for the Capuchin reproduction.
 *
 * Runs any (model, batch, policy) combination on a simulated device and
 * reports per-iteration statistics; can also binary-search the maximum
 * batch or dump the measured tensor-access trace for offline analysis.
 *
 *   capusim --model resnet50 --batch 400 --policy capuchin --iters 12
 *   capusim --model bert --policy capuchin --max-batch
 *   capusim --model inceptionv3 --batch 300 --policy vdnn --eager
 *   capusim --model resnet50 --batch 400 --dump-trace trace.csv
 *   capusim --list
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint_hooks.hh"
#include "core/capuchin_policy.hh"
#include "core/trace_io.hh"
#include "exec/session.hh"
#include "faults/fault_spec.hh"
#include "models/workload.hh"
#include "models/zoo.hh"
#include "analysis/happens_before.hh"
#include "obs/chrome_trace.hh"
#include "obs/obs.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"
#include "prof/profile.hh"
#include "prof/report.hh"
#include "serve/request_queue.hh"
#include "serve/service.hh"
#include "stats/table.hh"
#include "support/logging.hh"

using namespace capu;

namespace
{

struct Options
{
    std::string model = "resnet50";
    std::string policy = "capuchin";
    std::string device = "p100";
    std::int64_t batch = 256;
    int iterations = 10;
    int repeat = 1;
    int warmup = 0;
    bool eager = false;
    bool lint = false;
    bool findMax = false;
    unsigned jobs = 1;
    bool csv = false;
    bool list = false;
    bool serveSmoke = false;
    bool obsSelfcheck = false;
    bool verify = false;
    bool profile = false;
    std::string dumpTrace;
    std::string traceJson;
    std::string metricsFile;
    std::string profileJson;
    std::size_t traceCap = 0; ///< 0 = library default
    std::string faults;
    std::string workload = "static";
    std::uint64_t workloadSeed = 0;
    std::uint64_t seed = 0;
    obs::ObsLevel obsLevel = obs::ObsLevel::Off;
    bool obsLevelSet = false;
    bool replay = true;
    int replayAudit = -1; ///< -1 = library default
};

const std::map<std::string, ModelKind> kModels = {
    {"vgg16", ModelKind::Vgg16},
    {"resnet50", ModelKind::ResNet50},
    {"resnet152", ModelKind::ResNet152},
    {"inceptionv3", ModelKind::InceptionV3},
    {"inceptionv4", ModelKind::InceptionV4},
    {"densenet", ModelKind::DenseNet121},
    {"bert", ModelKind::BertBase},
};

Graph
buildByName(const std::string &name, std::int64_t batch)
{
    if (name == "lstm")
        return buildLstm(batch);
    auto it = kModels.find(name);
    if (it == kModels.end())
        fatal("unknown model '{}' (try --list)", name);
    return buildModel(it->second, batch);
}

std::unique_ptr<MemoryPolicy>
policyByName(const std::string &name, bool lint, bool faults_on = false)
{
    auto vdnn = [&](VdnnPolicy::Mode mode) -> std::unique_ptr<MemoryPolicy> {
        auto p = std::make_unique<VdnnPolicy>(mode);
        if (lint)
            enablePlanLint(*p);
        return p;
    };
    auto openai = [&](CheckpointingPolicy::Mode mode)
        -> std::unique_ptr<MemoryPolicy> {
        auto p = std::make_unique<CheckpointingPolicy>(mode);
        if (lint)
            enablePlanLint(*p);
        return p;
    };
    auto capuchin =
        [&](CapuchinOptions o) -> std::unique_ptr<MemoryPolicy> {
        if (faults_on) {
            // Under fault injection, arm the plan-drift watchdog so the
            // policy re-measures when the environment shifts under it.
            o.driftThreshold = 0.35;
        }
        if (lint)
            enablePlanLint(o);
        return makeCapuchinPolicy(o);
    };

    if (name == "tf" || name == "none") {
        if (lint)
            warn("--lint has no effect on the '{}' policy", name);
        return makeNoOpPolicy();
    }
    if (name == "vdnn")
        return vdnn(VdnnPolicy::Mode::All);
    if (name == "vdnn-conv")
        return vdnn(VdnnPolicy::Mode::ConvOnly);
    if (name == "openai-m")
        return openai(CheckpointingPolicy::Mode::Memory);
    if (name == "openai-s")
        return openai(CheckpointingPolicy::Mode::Speed);
    if (name == "capuchin")
        return capuchin(CapuchinOptions{});
    if (name == "capuchin-swap") {
        CapuchinOptions o;
        o.enableRecompute = false;
        return capuchin(o);
    }
    if (name == "capuchin-recompute") {
        CapuchinOptions o;
        o.enableSwap = false;
        return capuchin(o);
    }
    fatal("unknown policy '{}' (try --list)", name);
}

GpuDeviceSpec
deviceByName(const std::string &name)
{
    if (name == "p100")
        return GpuDeviceSpec::p100();
    if (name == "v100")
        return GpuDeviceSpec::v100();
    fatal("unknown device '{}' (p100 or v100)", name);
}

void
usage()
{
    std::cout <<
        "capusim — Capuchin GPU-memory-management simulator\n"
        "\n"
        "  --model <name>     vgg16 resnet50 resnet152 inceptionv3\n"
        "                     inceptionv4 densenet bert lstm\n"
        "  --policy <name>    tf vdnn vdnn-conv openai-m openai-s\n"
        "                     capuchin capuchin-swap capuchin-recompute\n"
        "  --device <name>    p100 (default) | v100\n"
        "  --batch <n>        batch size (default 256)\n"
        "  --iters <n>        training iterations (default 10)\n"
        "  --repeat <n>       run the whole workload n times and report\n"
        "                     the median host wall-clock (default 1);\n"
        "                     simulated results are identical every time\n"
        "  --warmup <n>       untimed runs before the timed repeats\n"
        "                     (default 0)\n"
        "  --eager            imperative execution (graph-agnostic\n"
        "                     policies only)\n"
        "  --lint             verify the memory plan (capulint rules)\n"
        "                     before guided execution; error-level\n"
        "                     findings abort the run\n"
        "  --verify           after the run, replay the capuscope trace\n"
        "                     through the happens-before engine\n"
        "                     (capuverify dynamic mode): race scan plus a\n"
        "                     timestamp cross-check of every ordering edge\n"
        "                     the executor claims; implies --obs-level\n"
        "                     full; findings exit 4\n"
        "  --max-batch        binary-search the maximum feasible batch;\n"
        "                     prints a `search:` summary line with the\n"
        "                     probe count (and, with --jobs > 1, how many\n"
        "                     probes were speculated on the pool and how\n"
        "                     many of those the search consumed)\n"
        "  --jobs <n>         worker threads for --max-batch (capufork\n"
        "                     speculative probing; default 1). The answer\n"
        "                     is bit-identical at any job count —\n"
        "                     parallelism only changes where probe\n"
        "                     sessions run, never which results the\n"
        "                     search sees\n"
        "  --dump-trace <f>   run 1 iteration under Capuchin and write the\n"
        "                     measured tensor-access trace to <f>\n"
        "  --csv              machine-readable per-iteration output\n"
        "  --obs-level <l>    observability level: off (default) | metrics\n"
        "                     | full (metrics + event tracing)\n"
        "  --trace-json <f>   write a Chrome trace_event JSON (open in\n"
        "                     Perfetto / chrome://tracing); implies\n"
        "                     --obs-level full\n"
        "  --metrics <f>      write per-iteration metrics (.json => JSON,\n"
        "                     else CSV); implies --obs-level metrics\n"
        "  --profile          print a capuprof summary after the run\n"
        "                     (bucket attribution, top costly tensors,\n"
        "                     critical path); implies --obs-level full\n"
        "  --profile-json <f> write the full capuprof profile as JSON\n"
        "                     (input for `capuprof diff`); implies\n"
        "                     --obs-level full\n"
        "  --trace-cap <n>    event ring capacity when tracing; oldest\n"
        "                     events drop on wrap (default "
        "1048576)\n"
        "  --obs-selfcheck    run the workload at every obs level and\n"
        "                     report the observability overhead\n"
        "  --serve-smoke      drive a scripted request stream through the\n"
        "                     capuserve planning service and assert every\n"
        "                     warm (cache-hit) response is digest-identical\n"
        "                     to its key's cold plan; honours --device and\n"
        "                     --metrics (capu.serve.* counters)\n"
        "  --replay           steady-state iteration replay: once the\n"
        "                     policy stabilizes, synthesize iterations\n"
        "                     from the cached fixed point instead of\n"
        "                     re-executing (default on; bit-identical,\n"
        "                     audited periodically)\n"
        "  --no-replay        execute every iteration for real\n"
        "  --replay-audit <n> re-execute an audit iteration every n\n"
        "                     synthesized ones (0 = never audit)\n"
        "  --workload <kind>  iteration-shape dynamism (capudrift):\n"
        "                     static (default; plain single-shape run)\n"
        "                     varlen (variable sequence length; bert or\n"
        "                     lstm only) | batch-ramp (mid-training batch\n"
        "                     change) | branchy (per-iteration control\n"
        "                     flow; ignores --model)\n"
        "  --workload-seed <n> seed for the workload's variant schedule\n"
        "                     (default 0; deterministic per seed)\n"
        "  --faults <spec>    capuchaos fault plan, e.g.\n"
        "                     \"pcie:0.5@2000-4000;jitter:0.1;hostcap:8GiB;"
        "swapfail:p=0.01,retries=3\"\n"
        "                     (@<file> reads the spec from a file)\n"
        "  --seed <n>         RNG seed for fault injection (default 0);\n"
        "                     recorded in metrics and trace metadata\n"
        "  --quiet            suppress informational log output\n"
        "  --verbose          force informational log output on\n"
        "  --list             print models and policies\n"
        "\n"
        "exit status:\n"
        "  0  run completed (lint/verify/profile clean when requested)\n"
        "  1  usage error or fatal setup failure\n"
        "  2  the workload ran out of GPU memory\n"
        "  3  simulator self-check failed (--lint audit abort, panic, or\n"
        "     an observer effect under --obs-selfcheck)\n"
        "  4  --verify found races or ordering violations\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after {}", a);
            return argv[++i];
        };
        if (a == "--model")
            opt.model = next();
        else if (a == "--policy")
            opt.policy = next();
        else if (a == "--device")
            opt.device = next();
        else if (a == "--batch")
            opt.batch = std::atoll(next());
        else if (a == "--iters")
            opt.iterations = std::atoi(next());
        else if (a == "--repeat")
            opt.repeat = std::atoi(next());
        else if (a == "--warmup")
            opt.warmup = std::atoi(next());
        else if (a == "--eager")
            opt.eager = true;
        else if (a == "--lint")
            opt.lint = true;
        else if (a == "--max-batch")
            opt.findMax = true;
        else if (a == "--jobs") {
            long v = std::atol(next());
            if (v < 1)
                fatal("--jobs needs a positive worker count");
            opt.jobs = static_cast<unsigned>(v);
        }
        else if (a == "--dump-trace")
            opt.dumpTrace = next();
        else if (a == "--csv")
            opt.csv = true;
        else if (a == "--obs-level") {
            std::string level = next();
            auto parsed = obs::obsLevelFromString(level);
            if (!parsed)
                fatal("unknown obs level '{}' (off, metrics, full)", level);
            opt.obsLevel = *parsed;
            opt.obsLevelSet = true;
        } else if (a == "--trace-json")
            opt.traceJson = next();
        else if (a == "--metrics")
            opt.metricsFile = next();
        else if (a == "--profile")
            opt.profile = true;
        else if (a == "--profile-json")
            opt.profileJson = next();
        else if (a == "--trace-cap")
            opt.traceCap = static_cast<std::size_t>(std::atoll(next()));
        else if (a == "--obs-selfcheck")
            opt.obsSelfcheck = true;
        else if (a == "--serve-smoke")
            opt.serveSmoke = true;
        else if (a == "--verify")
            opt.verify = true;
        else if (a == "--replay")
            opt.replay = true;
        else if (a == "--no-replay")
            opt.replay = false;
        else if (a == "--replay-audit")
            opt.replayAudit = std::atoi(next());
        else if (a == "--faults")
            opt.faults = next();
        else if (a == "--workload")
            opt.workload = next();
        else if (a == "--workload-seed")
            opt.workloadSeed = std::strtoull(next(), nullptr, 10);
        else if (a == "--seed")
            opt.seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--quiet")
            setLogEnabled(false);
        else if (a == "--verbose")
            setLogEnabled(true);
        else if (a == "--list")
            opt.list = true;
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '{}' (see --help)", a);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;
        if (opt.list) {
            std::cout << "models:  vgg16 resnet50 resnet152 inceptionv3 "
                         "inceptionv4 densenet bert lstm\n"
                      << "policies: tf vdnn vdnn-conv openai-m openai-s "
                         "capuchin capuchin-swap capuchin-recompute\n"
                      << "workloads: static varlen batch-ramp branchy\n";
            return 0;
        }

        // Output files imply the obs level they need.
        if (!opt.traceJson.empty() && opt.obsLevel != obs::ObsLevel::Full) {
            if (opt.obsLevelSet)
                warn("--trace-json requires --obs-level full; upgrading");
            opt.obsLevel = obs::ObsLevel::Full;
        }
        if (!opt.metricsFile.empty() &&
            opt.obsLevel == obs::ObsLevel::Off) {
            if (opt.obsLevelSet)
                warn("--metrics requires --obs-level metrics; upgrading");
            opt.obsLevel = obs::ObsLevel::Metrics;
        }
        if (opt.verify && opt.obsLevel != obs::ObsLevel::Full) {
            if (opt.obsLevelSet)
                warn("--verify requires --obs-level full; upgrading");
            opt.obsLevel = obs::ObsLevel::Full;
        }
        if ((opt.profile || !opt.profileJson.empty()) &&
            opt.obsLevel != obs::ObsLevel::Full) {
            if (opt.obsLevelSet)
                warn("--profile requires --obs-level full; upgrading");
            opt.obsLevel = obs::ObsLevel::Full;
        }

        ExecConfig cfg;
        cfg.device = deviceByName(opt.device);
        cfg.eagerMode = opt.eager;
        cfg.obsLevel = opt.obsLevel;
        cfg.seed = opt.seed;
        if (opt.traceCap > 0)
            cfg.obsRingCapacity = opt.traceCap;
        std::string spec_text = opt.faults;
        if (!spec_text.empty() && spec_text[0] == '@') {
            std::ifstream f(spec_text.substr(1));
            if (!f)
                fatal("cannot read fault spec file '{}'",
                      spec_text.substr(1));
            std::stringstream ss;
            ss << f.rdbuf();
            spec_text = ss.str();
        }
        cfg.faults = faults::parseFaultSpec(spec_text);
        const bool faults_on = cfg.faults.enabled();
        // Long --iters runs auto-replay; the executor force-disarms it
        // whenever a fault plan is active.
        cfg.replay.enabled = opt.replay;
        if (opt.replayAudit >= 0)
            cfg.replay.auditInterval = opt.replayAudit;

        // Dynamic workloads (capudrift): the builder returns the variant
        // union graph and the seeded schedule rides in the ExecConfig. The
        // static kind routes through the same buildByName path as ever.
        WorkloadKind wkind;
        if (!workloadFromString(opt.workload, wkind))
            fatal("unknown workload '{}' (static, varlen, batch-ramp, "
                  "branchy)",
                  opt.workload);
        auto buildG = [&](std::int64_t b) -> Graph {
            if (wkind == WorkloadKind::Static)
                return buildByName(opt.model, b);
            return buildWorkload(wkind, opt.model, b, opt.workloadSeed)
                .graph;
        };
        if (wkind != WorkloadKind::Static)
            cfg.variantSchedule =
                buildWorkload(wkind, opt.model, opt.batch, opt.workloadSeed)
                    .schedule;

        if (opt.serveSmoke) {
            // Embedded capuserve request stream: three tenants, repeated,
            // so every key is answered cold exactly once and warm after.
            // A warm response must carry its key's cold digest — the plan
            // the fork-cloned template runs is bit-identical to the one
            // the cold measured session produced.
            serve::PlanServiceConfig scfg;
            scfg.exec = cfg;
            obs::MetricsRegistry metrics;
            metrics.setEnabled(true);
            serve::PlanService svc(scfg, &metrics);
            serve::RequestQueue queue(svc);
            std::vector<serve::PlanRequest> reqs;
            auto add = [&](const char *m, std::int64_t b) {
                serve::PlanRequest r;
                r.model = m;
                r.batch = b;
                reqs.push_back(r);
            };
            add("resnet50", 192);
            add("vgg16", 96);
            add("densenet", 96);
            add("resnet50", 192);
            add("vgg16", 96);
            add("resnet50", 192);
            for (const auto &r : reqs)
                queue.enqueue(r);
            auto resps = queue.drain();
            svc.publishGauges();
            metrics.snapshotIteration(0);
            if (!opt.metricsFile.empty() &&
                obs::writeMetricsFile(opt.metricsFile, metrics))
                inform("wrote serve metrics to {}", opt.metricsFile);
            if (!opt.profileJson.empty()) {
                // Serve runs have no single session trace; the profile
                // carries only the additive "serve" section.
                prof::Profile sp;
                sp.meta.emplace_back("mode", "serve-smoke");
                sp.serve = prof::serveSummaryFromMetrics(metrics);
                if (prof::writeProfileJsonFile(opt.profileJson, sp))
                    inform("wrote capuprof profile to {}", opt.profileJson);
            }
            std::unordered_map<std::string, std::uint64_t> cold;
            bool bad = false;
            for (std::size_t i = 0; i < resps.size(); ++i) {
                const auto &r = resps[i];
                std::string tag = reqs[i].model + "@" +
                                  std::to_string(reqs[i].batch);
                if (!r.ok) {
                    std::cerr << "serve-smoke: request " << tag
                              << " failed: " << r.error << "\n";
                    bad = true;
                    continue;
                }
                auto it = cold.find(tag);
                if (it == cold.end())
                    cold.emplace(tag, r.digest);
                else if (it->second != r.digest) {
                    std::cerr << "serve-smoke: warm digest for " << tag
                              << " differs from its cold plan\n";
                    bad = true;
                }
            }
            const serve::PlanCacheStats &scs = svc.cacheStats();
            std::cout << "serve-smoke: " << resps.size() << " requests, "
                      << scs.hits << " hits, " << scs.misses << " misses, "
                      << svc.templateSessions() << " template sessions\n";
            if (scs.hits != resps.size() - cold.size()) {
                std::cerr << "serve-smoke: expected every repeat to hit "
                             "the cache\n";
                bad = true;
            }
            if (bad)
                return 3;
            std::cout << "serve-smoke: all warm responses digest-identical "
                         "to their cold plans\n";
            return 0;
        }

        if (opt.obsSelfcheck) {
            // Self-measurement: run the same workload at every obs level,
            // compare host wall-clock (the observability overhead) and
            // verify the simulated result is bit-identical (observer
            // effect must be zero).
            struct LevelRun
            {
                obs::ObsLevel level;
                double wallMs = 0;
                Tick simTicks = 0;
                std::uint64_t events = 0;
            };
            std::vector<LevelRun> runs;
            {
                // Untimed warm-up so the first timed run does not pay
                // allocator/page-cache cold-start.
                Session warm(buildG(opt.batch), cfg,
                             policyByName(opt.policy, opt.lint, faults_on));
                (void)warm.run(1);
            }
            for (auto level : {obs::ObsLevel::Off, obs::ObsLevel::Metrics,
                               obs::ObsLevel::Full}) {
                ExecConfig c = cfg;
                c.obsLevel = level;
                Session s(buildG(opt.batch), c,
                          policyByName(opt.policy, opt.lint, faults_on));
                auto t0 = std::chrono::steady_clock::now();
                auto rr = s.run(opt.iterations);
                auto t1 = std::chrono::steady_clock::now();
                if (rr.oom)
                    fatal("selfcheck run failed: {}", rr.oomMessage);
                LevelRun lr;
                lr.level = level;
                lr.wallMs =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                for (const auto &it : rr.iterations)
                    lr.simTicks += it.duration();
                lr.events = s.executor().obs().tracer.recorded();
                runs.push_back(lr);
            }
            Table t({"obs level", "wall ms", "overhead", "sim time",
                     "events"});
            for (const auto &lr : runs) {
                double over = runs[0].wallMs > 0
                                  ? lr.wallMs / runs[0].wallMs - 1.0
                                  : 0.0;
                t.addRow({obs::obsLevelName(lr.level),
                          cellDouble(lr.wallMs, 2), cellPercent(over),
                          formatTicks(lr.simTicks),
                          cellInt(static_cast<std::int64_t>(lr.events))});
            }
            t.print(std::cout);
            for (const auto &lr : runs) {
                if (lr.simTicks != runs[0].simTicks) {
                    std::cerr << "capusim: OBSERVER EFFECT: simulated time "
                                 "differs between obs levels\n";
                    return 3;
                }
            }
            std::cout << "observer effect: none (simulated time identical "
                         "at every obs level)\n";
            return 0;
        }

        if (opt.findMax) {
            MaxBatchStats mstats;
            auto mb = findMaxBatch(
                [&](std::int64_t b) { return buildG(b); },
                [&] { return policyByName(opt.policy, opt.lint, faults_on); },
                cfg, 3, 1, 4096, opt.jobs, &mstats);
            std::cout << "max batch for " << opt.model << " under "
                      << opt.policy << (opt.eager ? " (eager)" : "")
                      << ": " << mb << "\n";
            std::cout << "search: " << mstats.probes << " probe sessions";
            if (mstats.jobs > 1)
                std::cout << " on " << mstats.jobs << " jobs ("
                          << mstats.speculated << " speculated, "
                          << mstats.servedFromWarm << " consumed, "
                          << mstats.wasted << " wasted)";
            std::cout << "\n";
            return 0;
        }

        if (!opt.dumpTrace.empty()) {
            CapuchinPolicy *capu = nullptr;
            auto p = makeCapuchinPolicy();
            capu = static_cast<CapuchinPolicy *>(p.get());
            Session session(buildG(opt.batch), cfg,
                            std::move(p));
            auto r = session.run(1);
            if (r.oom)
                fatal("measured execution failed: {}", r.oomMessage);
            auto trace = captureTrace(capu->tracker(), session.graph());
            saveTraceFile(opt.dumpTrace, trace);
            std::cout << "wrote " << trace.records.size() << " accesses of "
                      << trace.tensors.size() << " tensors to "
                      << opt.dumpTrace << "\n";
            return 0;
        }

        // Median-of-N host timing: untimed warm-ups hide allocator and
        // page-cache cold-start, then each timed repeat runs a fresh
        // Session over the same config (the simulated result is
        // deterministic — only the host wall-clock varies). The last
        // repeat's session feeds the normal reporting path.
        const int warmup = std::max(opt.warmup, 0);
        const int repeat = std::max(opt.repeat, 1);
        for (int w = 0; w < warmup; ++w) {
            Session s(buildG(opt.batch), cfg,
                      policyByName(opt.policy, opt.lint, faults_on));
            (void)s.run(opt.iterations);
        }
        std::vector<double> wall_ms;
        wall_ms.reserve(static_cast<std::size_t>(repeat));
        std::optional<Session> session;
        std::optional<SessionResult> result;
        for (int rep = 0; rep < repeat; ++rep) {
            session.emplace(buildG(opt.batch), cfg,
                            policyByName(opt.policy, opt.lint, faults_on));
            auto t0 = std::chrono::steady_clock::now();
            result = session->run(opt.iterations);
            auto t1 = std::chrono::steady_clock::now();
            wall_ms.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count());
        }
        SessionResult &r = *result;

        // Export observability artifacts even on OOM — a truncated trace
        // of a failed run is exactly what post-mortem debugging wants.
        obs::Obs &o = session->executor().obs();
        if (!opt.traceJson.empty() &&
            obs::writeChromeTraceFile(opt.traceJson, o.tracer))
            inform("wrote Chrome trace ({} events, {} dropped) to {}",
                   o.tracer.size(), o.tracer.dropped(), opt.traceJson);
        if (!opt.metricsFile.empty() &&
            obs::writeMetricsFile(opt.metricsFile, o.metrics))
            inform("wrote per-iteration metrics to {}", opt.metricsFile);
        if (opt.profile || !opt.profileJson.empty()) {
            prof::Profile profile = prof::buildProfile(o.tracer);
            if (!opt.profileJson.empty() &&
                prof::writeProfileJsonFile(opt.profileJson, profile))
                inform("wrote capuprof profile to {}", opt.profileJson);
            if (opt.profile)
                prof::renderProfile(std::cout, profile,
                                    prof::ReportFormat::Text);
        }

        if (opt.csv) {
            std::cout << "iter,images_per_s,duration_ms,peak_bytes,"
                         "swap_out_bytes,swap_in_bytes,recompute_ms,"
                         "stall_ms,oom_evictions\n";
            for (const auto &it : r.iterations) {
                std::cout << it.iteration << ','
                          << it.throughput(opt.batch) << ','
                          << ticksToMs(it.duration()) << ','
                          << it.peakGpuBytes << ',' << it.swapOutBytes
                          << ',' << it.swapInBytes << ','
                          << ticksToMs(it.recomputeBusy) << ','
                          << ticksToMs(it.inputStall + it.allocStall)
                          << ',' << it.oomEvictions << '\n';
            }
        } else {
            Table t({"iter", "img/s", "peak", "swap out", "recompute",
                     "stalls"});
            for (const auto &it : r.iterations) {
                t.addRow({cellInt(it.iteration),
                          cellDouble(it.throughput(opt.batch), 1),
                          formatBytes(it.peakGpuBytes),
                          formatBytes(it.swapOutBytes),
                          formatTicks(it.recomputeBusy),
                          formatTicks(it.inputStall + it.allocStall)});
            }
            t.print(std::cout);
        }
        if (repeat > 1 || warmup > 0) {
            std::vector<double> sorted = wall_ms;
            std::sort(sorted.begin(), sorted.end());
            double median =
                sorted.size() % 2 == 1
                    ? sorted[sorted.size() / 2]
                    : 0.5 * (sorted[sorted.size() / 2 - 1] +
                             sorted[sorted.size() / 2]);
            std::cout << "timing: median wall " << median << " ms over "
                      << repeat << " repeats (" << warmup
                      << " warmup), min " << sorted.front() << " ms, max "
                      << sorted.back() << " ms\n";
        }
        if (!opt.csv && (r.replay.replayed > 0 || r.replay.audits > 0)) {
            std::cout << "replay: " << r.replay.executed << " executed, "
                      << r.replay.replayed << " synthesized, "
                      << r.replay.audits << " audits ("
                      << r.replay.auditMismatches << " mismatches)\n";
        }
        if (faults_on) {
            const faults::FaultStats &fs =
                session->executor().faultEngine().stats();
            std::cout << "chaos: degraded_transfers=" << fs.degradedTransfers
                      << " jittered_kernels=" << fs.jitteredKernels
                      << " host_rejects=" << fs.hostRejects
                      << " swap_failures=" << fs.swapAttemptFailures
                      << " swap_retries=" << fs.swapRetries
                      << " swap_forced=" << fs.swapForced
                      << " drop_fallbacks=" << fs.dropFallbacks
                      << " prefetch_misses=" << fs.prefetchMisses
                      << " remeasures=" << fs.remeasures
                      << " feedback_shifts=" << fs.feedbackShifts << "\n";
        }
        bool verify_failed = false;
        if (opt.verify) {
            // Dynamic-mode capuverify: lift the run's capuscope trace into
            // the happens-before event model, race-scan it, and cross-check
            // every ordering edge the executor claims against the
            // timestamps it actually produced.
            auto timeline = obs::extractTimeline(o.tracer);
            HbAnalysis hb = buildTraceEventGraph(timeline);
            LintReport races = checkHappensBefore(hb, &session->graph());
            LintReport stamps = checkTimestamps(hb, &session->graph());
            for (auto &d : stamps.diags)
                races.diags.push_back(std::move(d));
            std::cout << "verify: " << timeline.size()
                      << " timeline records, " << hb.events.size()
                      << " events, " << hb.edges.size() << " edges checked"
                      << (o.tracer.dropped() > 0
                              ? " (ring dropped " +
                                    std::to_string(o.tracer.dropped()) +
                                    " events; head of run not covered)"
                              : "")
                      << "\n";
            if (races.diags.empty()) {
                std::cout << "verify: trace is race-free; all ordering "
                             "edges consistent with observed timestamps\n";
            } else {
                printLintReport(std::cout, races, session->graph());
                verify_failed = races.errorCount() > 0;
            }
        }
        if (r.oom) {
            std::cout << "OOM after " << r.iterations.size()
                      << " iterations: " << r.oomMessage << "\n";
            std::cout << r.postMortem() << "\n";
            return 2;
        }
        return verify_failed ? 4 : 0;
    } catch (const FatalError &e) {
        std::cerr << "capusim: " << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        // A --lint audit (or any simulator self-check) rejected the run.
        std::cerr << "capusim: " << e.what() << "\n";
        return 3;
    }
}
