/**
 * @file
 * Table 3: maximum batch size in eager (imperative) mode.
 *
 * Paper values: ResNet-50 122 -> 300 (2.46x), DenseNet 70 -> 190 (2.71x).
 * No prior memory-management system runs eagerly at all: Capuchin's
 * graph-agnostic design is the paper's headline generality claim, so only
 * TF-ori and Capuchin appear.
 */

#include <iostream>
#include <map>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Maximum batch size, eager mode", "Table 3");

    const std::map<ModelKind, std::array<int, 2>> paper = {
        {ModelKind::ResNet50, {122, 300}},
        {ModelKind::DenseNet121, {70, 190}},
    };

    ExecConfig cfg;
    cfg.eagerMode = true;

    Table t({"model", "TF-ori", "Capuchin", "gain",
             "paper (TF/Capu = gain)"});
    double t0 = wallMs();
    for (ModelKind kind : eagerModeModels()) {
        std::int64_t tf = maxBatch(kind, System::TfOri, cfg);
        std::int64_t capu = maxBatch(kind, System::Capuchin, cfg);
        const auto &p = paper.at(kind);
        t.addRow({modelName(kind), cellInt(tf), cellInt(capu),
                  ratioCell(static_cast<double>(capu),
                            static_cast<double>(tf)),
                  fmt("{}/{} = {}x", p[0], p[1],
                      cellDouble(static_cast<double>(p[1]) / p[0], 2))});
    }
    double search_ms = wallMs() - t0;
    t.print(std::cout);
    std::cout << "\nSearch wall: " << cellDouble(search_ms / 1000.0, 2)
              << " s (memoized max-batch searches, replay-armed "
                 "probes).\n";

    // Eager-vs-graph footprint check (§6.4.1): eager fits less.
    std::int64_t graph_tf = maxBatch(ModelKind::ResNet50, System::TfOri);
    std::int64_t eager_tf = maxBatch(ModelKind::ResNet50, System::TfOri,
                                     cfg);
    std::cout << "\nResNet-50 TF-ori max batch: graph " << graph_tf
              << " vs eager " << eager_tf
              << " (paper: 190 vs 122) — eager lacks graph-mode buffer "
                 "forwarding and pruning.\n";
    return 0;
}
