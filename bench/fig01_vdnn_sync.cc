/**
 * @file
 * Figure 1: vDNN's synchronization overhead on Vgg16 (batch 230).
 *
 * Paper findings: the largest tensor's swap-out/in each take more than 3x
 * the execution time of the layer meant to overlap them, and the
 * accumulated synchronization costs 41.3% of training performance.
 *
 * This bench runs vDNN on Vgg16@230 with full event tracing, renders the
 * compute/memory timeline around the largest swap from the trace, and
 * quantifies the loss against a hypothetical no-eviction run (uncapped
 * pool).
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("vDNN synchronization overhead on Vgg16 (batch 230)",
           "Figure 1 / section 3.1");

    const std::int64_t batch = 230;

    // Hypothetical memory-unconstrained baseline (what perfect hiding
    // would achieve).
    ExecConfig ideal_cfg;
    ideal_cfg.device.memCapacity = 512ull << 30;
    Session ideal(buildVgg16(batch), ideal_cfg, makeNoOpPolicy());
    auto r_ideal = ideal.run(3);

    // vDNN on the real card.
    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Full;
    Session vdnn(buildVgg16(batch), cfg, makePolicy(System::Vdnn));
    auto r_vdnn = vdnn.run(3);
    if (r_vdnn.oom) {
        std::cout << "vDNN OOM: " << r_vdnn.oomMessage << "\n";
        return 1;
    }

    Tick ideal_iter = r_ideal.steadyIterationTicks(1);
    Tick vdnn_iter = r_vdnn.steadyIterationTicks(1);
    double loss = 1.0 - static_cast<double>(ideal_iter) /
                            static_cast<double>(vdnn_iter);

    // Largest swap-out on the D2H track vs the compute that "covers" it.
    const obs::Tracer &tracer = vdnn.executor().obs().tracer;
    obs::TraceEvent largest;
    bool found = false;
    tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.phase != obs::EventPhase::Complete ||
            ev.track != obs::kTrackD2H)
            return;
        if (!found || ev.dur > largest.dur) {
            largest = ev;
            found = true;
        }
    });

    Table t({"metric", "paper", "measured"});
    t.addRow({"performance loss vs no-eviction", "41.3%",
              cellPercent(loss)});
    if (found) {
        Tick swap = largest.dur;
        Tick sw_end = largest.ts + largest.dur;
        // Compute busy inside the swap window = the overlap achieved.
        Tick overlap = static_cast<Tick>(
            trackUtilization(tracer, obs::kTrackCompute, largest.ts,
                             sw_end) *
            static_cast<double>(swap));
        t.addRow({"largest swap-out", "-", formatTicks(swap)});
        t.addRow({"compute overlapped with it", "-", formatTicks(overlap)});
        t.addRow({"swap / overlapped-compute", "> 3x",
                  ratioCell(static_cast<double>(swap),
                            static_cast<double>(overlap))});
    }
    t.addRow({"swap traffic per iteration (out)", "-",
              formatBytes(r_vdnn.last().swapOutBytes)});
    t.print(std::cout);

    if (found) {
        std::cout << "\nTimeline around the largest swap-out (comp = "
                     "kernels, d2h/h2d = PCIe lanes):\n\n";
        Tick span = largest.dur;
        Tick sw_end = largest.ts + largest.dur;
        Tick lo = largest.ts > span / 2 ? largest.ts - span / 2 : 0;
        Tick hi = sw_end + span / 2;
        renderTimeline(std::cout, tracer,
                       {{"comp", obs::kTrackCompute},
                        {"d2h", obs::kTrackD2H},
                        {"h2d", obs::kTrackH2D}},
                       lo, hi, 96);
    }
    std::cout << "\nTakeaway: layer-wise coupled swapping leaves the "
                 "compute stream idle whenever a layer is too short to "
                 "cover its transfer.\n";
    return 0;
}
