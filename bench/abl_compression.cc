/**
 * @file
 * Extension study: copy-engine swap compression (CDMA/Gist-style).
 *
 * The paper's §7 classes compression as orthogonal related work; this
 * bench quantifies how it composes with Capuchin: compressing swapped
 * activations (ReLU sparsity makes ~2x lossless realistic for CNNs)
 * relieves exactly the PCIe saturation that forces the hybrid policy into
 * recomputation at large batches.
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Extension: swap compression x Capuchin (ResNet-50)",
           "design study (section 7's orthogonal-work claim)");

    Table t({"compression", "img/s @ batch 500", "swap planned",
             "recompute planned", "max batch"});
    for (double ratio : {1.0, 1.5, 2.0, 4.0}) {
        ExecConfig cfg;
        cfg.swapCompressionRatio = ratio;

        CapuchinPolicy *policy = nullptr;
        auto p = makeCapuchinPolicy();
        policy = static_cast<CapuchinPolicy *>(p.get());
        Session session(buildResNet(500, 50), cfg, std::move(p));
        auto r = session.run(16);
        double speed = r.oom ? 0.0 : r.steadyThroughput(500, 10);

        auto mb = findMaxBatch(
            [](std::int64_t b) { return buildResNet(b, 50); },
            [] { return makeCapuchinPolicy(); }, cfg, 3, 1, 4096);

        t.addRow({ratio == 1.0 ? "off" : cellDouble(ratio, 1) + "x",
                  cellDouble(speed, 1),
                  cellInt(static_cast<std::int64_t>(
                      policy->plan().swapCount)),
                  cellInt(static_cast<std::int64_t>(
                      policy->plan().recomputeCount)),
                  cellInt(mb)});
    }
    t.print(std::cout);
    std::cout << "\nTakeaway: compression shifts the plan's swap/recompute "
                 "crossover — cheaper transfers let more tensors ride the "
                 "PCIe lanes before Algorithm 1 switches to replay.\n";
    return 0;
}
