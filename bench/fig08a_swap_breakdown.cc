/**
 * @file
 * Figure 8(a): breakdown of Capuchin's swap mechanisms on InceptionV3.
 *
 * Paper findings (batch 200 / 400, swap-only Capuchin vs vDNN):
 *  - batch 200: ATP+DS beats vDNN by 73.9%; adding FA gains another 21.9%
 *  - batch 400: ~25 GB must be evicted; swap-out/in take 1.97 s / 2.60 s
 *    against ~2.0 s of overlappable compute, so the gain shrinks to 5.5%
 *
 * ATP = access-time profiling (measured execution + quantitative plan),
 * DS = decoupled computation/swapping (always on for Capuchin),
 * FA = feedback-driven in-trigger adjustment.
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct Variant
{
    const char *label;
    bool feedback;
};

double
runVariant(std::int64_t batch, bool feedback, IterationStats *last = nullptr)
{
    CapuchinOptions opts;
    opts.enableRecompute = false; // swap-only, per the figure
    opts.enableFeedback = feedback;
    Session s(buildInceptionV3(batch), ExecConfig{},
              makeCapuchinPolicy(opts));
    auto r = s.run(16);
    if (r.oom)
        return 0.0;
    if (last)
        *last = r.iterations.back();
    return r.steadyThroughput(batch, 8);
}

} // namespace

int
main()
{
    banner("Swap-mechanism breakdown on InceptionV3 (swap-only Capuchin)",
           "Figure 8(a)");

    Table t({"batch", "system", "img/s", "vs vDNN", "paper"});
    for (std::int64_t batch : {std::int64_t{200}, std::int64_t{400}}) {
        double vdnn = steadySpeed(ModelKind::InceptionV3, batch,
                                  System::Vdnn, {}, 8, 3);
        double atp_ds = runVariant(batch, false);
        IterationStats fa_stats;
        double atp_ds_fa = runVariant(batch, true, &fa_stats);

        t.addRow({cellInt(batch), "vDNN", cellDouble(vdnn, 1), "1.00x",
                  "baseline"});
        t.addRow({"", "ATP+DS", cellDouble(atp_ds, 1),
                  ratioCell(atp_ds, vdnn),
                  batch == 200 ? "+73.9% over vDNN" : "small gain"});
        t.addRow({"", "ATP+DS+FA", cellDouble(atp_ds_fa, 1),
                  ratioCell(atp_ds_fa, vdnn),
                  batch == 200 ? "+21.9% over ATP+DS" : "+5.5% over vDNN"});

        if (batch == 400) {
            // The paper's saturation analysis at batch 400.
            std::cout << "batch-400 saturation analysis (paper: ~25 GB "
                         "evicted, 1.97 s out / 2.60 s in vs ~2.0 s "
                         "compute):\n"
                      << "  measured: evicted "
                      << formatBytes(fa_stats.swapOutBytes) << " out, "
                      << formatBytes(fa_stats.swapInBytes) << " in; "
                      << "kernel time "
                      << formatTicks(fa_stats.kernelBusy) << "; stalls "
                      << formatTicks(fa_stats.inputStall +
                                     fa_stats.allocStall)
                      << "\n\n";
        }
    }
    t.print(std::cout);
    std::cout << "\nTakeaway: quantitative planning (ATP) + decoupled "
                 "swapping dominate vDNN's static layer-wise scheme; "
                 "feedback recovers the residual mistimed prefetches; at "
                 "batch 400 the PCIe lanes saturate and swap-only gains "
                 "collapse (the hybrid policy's motivation).\n";
    return 0;
}
