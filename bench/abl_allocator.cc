/**
 * @file
 * Ablation: allocator anti-fragmentation features vs achievable batch.
 *
 * DESIGN.md documents two deviations from TensorFlow's single-ended BFC:
 * size-segregated placement (large chunks at the arena top) and geometric
 * size classes for large requests. This bench quantifies what they buy —
 * under eviction churn, fragmentation (not capacity) is what caps the
 * batch size, and the paper's own Table-2 numbers are only reachable with
 * fragmentation kept in check.
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Ablation: BFC anti-fragmentation features (max batch, "
           "Capuchin on ResNet-50)",
           "design study (DESIGN.md deviation)");

    struct Variant
    {
        const char *label;
        bool segregate;
        bool classes;
    };
    const Variant variants[] = {
        {"plain BFC (TensorFlow-like)", false, false},
        {"+ size classes", false, true},
        {"+ segregated placement", true, false},
        {"+ both (default)", true, true},
    };

    Table t({"allocator", "OpenAI-M max batch", "Capuchin max batch",
             "TF-ori max batch"});
    for (const Variant &v : variants) {
        ExecConfig cfg;
        cfg.allocator.segregateLarge = v.segregate;
        cfg.allocator.sizeClasses = v.classes;
        auto oai = findMaxBatch(
            [](std::int64_t b) { return buildResNet(b, 50); },
            [] { return makePolicy(System::OpenAiM); }, cfg, 3, 1, 4096);
        auto capu = findMaxBatch(
            [](std::int64_t b) { return buildResNet(b, 50); },
            [] { return makePolicy(System::Capuchin); }, cfg, 3, 1, 4096);
        auto tf = findMaxBatch(
            [](std::int64_t b) { return buildResNet(b, 50); },
            [] { return makePolicy(System::TfOri); }, cfg, 3, 1, 4096);
        t.addRow({v.label, cellInt(oai), cellInt(capu), cellInt(tf)});
    }
    t.print(std::cout);
    std::cout << "\nTakeaway: static policies without a retry mechanism "
                 "(OpenAI-M) depend on the allocator keeping large holes "
                 "available; Capuchin's targeted eviction plus iterative "
                 "abort-recovery largely compensates for fragmentation on "
                 "its own, so for it the allocator features are close to "
                 "neutral.\n";
    return 0;
}
