/**
 * @file
 * capuserve throughput harness: cold vs warm requests/sec and latency.
 *
 * Phase 1 (cold) sends one request per tenant — every one a cache miss
 * that runs a full measured planning session. Phase 2 (warm) repeats the
 * mix — every one a cache hit answered by forking the cached template
 * session, no re-measurement. A third phase runs one guided iteration on
 * each warm fork to show the fork is a *live* session, not just a stored
 * plan. Two hard gates:
 *
 *  - identity: every warm response's plan digest equals the digest of the
 *    cold measured plan for its key (plan_io digests hash every field of
 *    every item, so equal digests mean bit-identical plans);
 *  - speedup: warm requests/sec must be >= 10x cold requests/sec — the
 *    capuserve acceptance floor. The ratio is host-time based but
 *    self-relative (both phases run on the same machine in the same
 *    process), so no calibration normalization is needed.
 *
 * --verify adds an eviction-churn stress: a service capped at 2 cache
 * entries is driven round-robin over 4 tenants, so every request misses
 * and every insert evicts. Each re-measured plan must digest-match the
 * first plan ever built for its key — determinism under churn — and the
 * cache must stay at its capacity floor with live eviction counts.
 *
 * Exit status: 0 ok; 1 gate failure; 2 usage error.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/serve_common.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/units.hh"

using namespace capu;
using namespace capu::bench;
using namespace capu::serve;

namespace
{

struct Options
{
    bool quick = false;
    bool verify = false;
    std::size_t warmRequests = 0; ///< 0 = default (64 full, 24 quick)
    int gpus = 4;
    std::string device = "p100";
    std::string json;
};

void
usage()
{
    std::cout <<
        "usage: serve_throughput [options]\n"
        "  --quick           2-tenant mix, fewer warm requests (CI smoke)\n"
        "  --verify          add the eviction-churn stress phase\n"
        "  --warm-requests N warm-phase request count (default 64; 24\n"
        "                    with --quick)\n"
        "  --gpus N          admission tokens for the request queue\n"
        "  --device NAME     p100 (default) | v100\n"
        "  --json FILE       write machine-readable results here\n";
}

double
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::atof(buf);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--verify")
            opt.verify = true;
        else if (arg == "--warm-requests")
            opt.warmRequests =
                static_cast<std::size_t>(std::atoll(next()));
        else if (arg == "--gpus")
            opt.gpus = std::atoi(next());
        else if (arg == "--device")
            opt.device = next();
        else if (arg == "--json")
            opt.json = next();
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }
    setLogEnabled(false);

    const ServeTenant *tenants =
        opt.quick ? kQuickServeTenants : kServeTenants;
    std::size_t n_tenants =
        opt.quick ? std::size(kQuickServeTenants) : std::size(kServeTenants);
    std::size_t warm_requests =
        opt.warmRequests ? opt.warmRequests : (opt.quick ? 24u : 64u);

    try {
        PlanServiceConfig cfg;
        if (opt.device == "v100")
            cfg.exec.device = GpuDeviceSpec::v100();
        else
            cfg.exec.device = GpuDeviceSpec::p100();
        obs::MetricsRegistry metrics;
        metrics.setEnabled(true);
        PlanService service(cfg, &metrics);
        RequestQueueConfig qcfg;
        qcfg.gpus = opt.gpus;
        RequestQueue queue(service, qcfg);

        bool ok = true;
        ServeDigestLedger ledger;

        // ---- phase 1: cold (every request measures and plans) -----------
        std::vector<PlanRequest> cold_reqs =
            serveMix(tenants, n_tenants, n_tenants, /*warm_iters=*/0);
        ServePhaseResult cold = runServePhase(queue, cold_reqs);
        ledger.observe(cold_reqs, cold.responses);

        // ---- phase 2: warm (every request forks the cached template) ----
        std::vector<PlanRequest> warm_reqs =
            serveMix(tenants, n_tenants, warm_requests, /*warm_iters=*/0);
        ServePhaseResult warm = runServePhase(queue, warm_reqs);
        ledger.observe(warm_reqs, warm.responses);

        // ---- phase 3: warm fork + 1 guided iteration (reported only) ----
        std::vector<PlanRequest> run_reqs =
            serveMix(tenants, n_tenants, n_tenants, /*warm_iters=*/1);
        ServePhaseResult forkrun = runServePhase(queue, run_reqs);
        ledger.observe(run_reqs, forkrun.responses);

        const PlanCacheStats &cs = service.cacheStats();
        double speedup =
            cold.reqPerSec > 0 ? warm.reqPerSec / cold.reqPerSec : 0.0;

        std::cout << "capuserve throughput (" << n_tenants
                  << " tenants, device " << opt.device << ")\n";
        std::cout << "  cold: " << cold.requests << " req, "
                  << cold.reqPerSec << " req/s, p50 " << cold.p50Ms
                  << " ms, p99 " << cold.p99Ms << " ms\n";
        std::cout << "  warm: " << warm.requests << " req, "
                  << warm.reqPerSec << " req/s, p50 " << warm.p50Ms
                  << " ms, p99 " << warm.p99Ms << " ms\n";
        std::cout << "  fork+run: " << forkrun.requests << " req, p50 "
                  << forkrun.p50Ms << " ms (1 guided iteration each)\n";
        std::cout << "  speedup: " << speedup << "x warm over cold; cache "
                  << cs.hits << " hits / " << cs.misses << " misses, "
                  << service.templateSessions() << " template sessions\n";

        int errors = cold.errors + warm.errors + forkrun.errors;
        if (errors) {
            std::cerr << "SERVE ERRORS: " << errors
                      << " requests failed\n";
            ok = false;
        }
        if (!ledger.identical()) {
            std::cerr << "SERVE DIGEST MISMATCH: a warm response disagrees "
                         "with the cold plan for its key\n";
            ok = false;
        }
        if (cs.misses != n_tenants ||
            cs.hits != warm.requests + forkrun.requests) {
            std::cerr << "SERVE CACHE ACCOUNTING OFF: " << cs.hits
                      << " hits / " << cs.misses << " misses, expected "
                      << warm.requests + forkrun.requests << " / "
                      << n_tenants << "\n";
            ok = false;
        }
        if (speedup < 10.0) {
            std::cerr << "SERVE WARM SPEEDUP " << speedup
                      << "x BELOW 10x COLD\n";
            ok = false;
        }

        // ---- eviction-churn stress (--verify) ---------------------------
        std::uint64_t churn_evictions = 0;
        std::size_t churn_requests = 0;
        bool churn_identical = true;
        if (opt.verify) {
            PlanServiceConfig ccfg = cfg;
            ccfg.cacheEntries = 2; // 4 tenants round-robin: always evicting
            ccfg.coldIterations = 2;
            obs::MetricsRegistry cmetrics;
            cmetrics.setEnabled(true);
            PlanService churn_svc(ccfg, &cmetrics);
            RequestQueue churn_queue(churn_svc, qcfg);
            ServeDigestLedger churn_ledger;
            int rounds = opt.quick ? 2 : 3;
            for (int round = 0; round < rounds; ++round) {
                std::vector<PlanRequest> reqs =
                    serveMix(kServeTenants, std::size(kServeTenants),
                             std::size(kServeTenants), /*warm_iters=*/0);
                ServePhaseResult res = runServePhase(churn_queue, reqs);
                churn_ledger.observe(reqs, res.responses);
                churn_requests += res.requests;
                if (res.errors) {
                    std::cerr << "CHURN ERRORS in round " << round << "\n";
                    ok = false;
                }
            }
            const PlanCacheStats &ccs = churn_svc.cacheStats();
            churn_evictions = ccs.evictions;
            churn_identical = churn_ledger.identical();
            std::cout << "  churn: " << churn_requests
                      << " req over capacity-2 cache, " << ccs.evictions
                      << " evictions, " << churn_svc.cacheEntries()
                      << " resident, re-measured plans identical: "
                      << (churn_identical ? "yes" : "NO") << "\n";
            if (!churn_identical) {
                std::cerr << "CHURN DIGEST MISMATCH: a re-measured plan "
                             "differs from the first plan for its key\n";
                ok = false;
            }
            if (ccs.evictions == 0 || churn_svc.cacheEntries() > 2) {
                std::cerr << "CHURN DID NOT EVICT (evictions="
                          << ccs.evictions << ", entries="
                          << churn_svc.cacheEntries() << ")\n";
                ok = false;
            }
            if (churn_svc.templateSessions() > churn_svc.cacheEntries()) {
                std::cerr << "TEMPLATE SESSION LEAK: "
                          << churn_svc.templateSessions()
                          << " sessions for " << churn_svc.cacheEntries()
                          << " cache entries\n";
                ok = false;
            }
        }

        if (!opt.json.empty()) {
            std::ofstream js(opt.json);
            js << "{\n  \"schema\": \"capu-serve-v1\",\n"
               << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
               << "  \"tenants\": " << n_tenants << ",\n"
               << "  \"cold\": {\"requests\": " << cold.requests
               << ", \"req_per_sec\": " << jsonNum(cold.reqPerSec)
               << ", \"p50_ms\": " << jsonNum(cold.p50Ms)
               << ", \"p99_ms\": " << jsonNum(cold.p99Ms) << "},\n"
               << "  \"warm\": {\"requests\": " << warm.requests
               << ", \"req_per_sec\": " << jsonNum(warm.reqPerSec)
               << ", \"p50_ms\": " << jsonNum(warm.p50Ms)
               << ", \"p99_ms\": " << jsonNum(warm.p99Ms) << "},\n"
               << "  \"fork_run_p50_ms\": " << jsonNum(forkrun.p50Ms)
               << ",\n"
               << "  \"warm_speedup\": " << jsonNum(speedup) << ",\n"
               << "  \"identical\": "
               << (ledger.identical() ? "true" : "false") << ",\n"
               << "  \"hits\": " << cs.hits << ",\n"
               << "  \"misses\": " << cs.misses << ",\n"
               << "  \"churn\": {\"requests\": " << churn_requests
               << ", \"evictions\": " << churn_evictions
               << ", \"identical\": "
               << (churn_identical ? "true" : "false") << "}\n}\n";
            std::cout << "  wrote " << opt.json << "\n";
        }

        if (!ok) {
            std::cout << "SERVE THROUGHPUT FAILED (see messages above)\n";
            return 1;
        }
        return 0;
    } catch (const FatalError &e) {
        std::cerr << "serve_throughput: " << e.what() << "\n";
        return 1;
    } catch (const PanicError &e) {
        std::cerr << "serve_throughput: " << e.what() << "\n";
        return 1;
    }
}
