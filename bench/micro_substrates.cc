/**
 * @file
 * google-benchmark microbenches for the substrate hot paths: the event
 * queue, the BFC allocator, the access tracker, graph construction, the
 * policy maker, and a whole simulated training iteration. These guard the
 * simulator's own performance (a full Table-2 sweep runs ~10^4 simulated
 * iterations).
 */

#include <benchmark/benchmark.h>

#include "core/access_tracker.hh"
#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "memory/bfc_allocator.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "sim/event_queue.hh"
#include "support/logging.hh"
#include "support/rng.hh"

using namespace capu;

namespace
{
// Policy-internal inform() chatter would pollute the benchmark table.
[[maybe_unused]] const bool g_quiet = (setLogEnabled(false), true);
} // namespace

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<Tick>(i * 7 % 997), [&](Tick) { ++sink; });
        q.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_BfcAllocFreeCycle(benchmark::State &state)
{
    BfcAllocator alloc(1ull << 30);
    Rng rng(42);
    std::vector<MemHandle> live;
    for (auto _ : state) {
        if (live.size() < 256 && (live.empty() || rng.chance(0.6))) {
            auto h = alloc.allocate(rng.uniformInt(256, 1 << 20));
            if (h)
                live.push_back(*h);
        } else {
            std::size_t i = rng.uniformInt(0, live.size() - 1);
            alloc.deallocate(live[i]);
            live[i] = live.back();
            live.pop_back();
        }
    }
    for (auto h : live)
        alloc.deallocate(h);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BfcAllocFreeCycle);

static void
BM_AccessTrackerRecord(benchmark::State &state)
{
    AccessTracker tracker;
    Tick t = 0;
    for (auto _ : state) {
        AccessRecord r;
        r.tensor = static_cast<TensorId>(t % 1000);
        r.accessIndex = static_cast<int>(t / 1000) + 1;
        r.time = t += 100;
        tracker.record(r);
        if (tracker.size() > 100000) {
            state.PauseTiming();
            tracker.reset();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccessTrackerRecord);

static void
BM_BuildResNet50Graph(benchmark::State &state)
{
    for (auto _ : state) {
        Graph g = buildResNet(64, 50);
        benchmark::DoNotOptimize(g.numOps());
    }
}
BENCHMARK(BM_BuildResNet50Graph);

static void
BM_SimulateResNet50Iteration(benchmark::State &state)
{
    Graph g = buildResNet(64, 50);
    ExecConfig cfg;
    Executor ex(g, cfg, nullptr);
    ex.setup();
    for (auto _ : state) {
        auto stats = ex.runIteration();
        benchmark::DoNotOptimize(stats.duration());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateResNet50Iteration);

static void
BM_CapuchinPlanBuild(benchmark::State &state)
{
    // Measure planning cost on a real oversubscribed trace: run the
    // measured iteration once, then rebuild plans repeatedly.
    Graph g = buildResNet(300, 50);
    for (auto _ : state) {
        state.PauseTiming();
        ExecConfig cfg;
        auto policy = makeCapuchinPolicy();
        Executor ex(g, cfg, policy.get());
        ex.setup();
        ex.runIteration(); // measured execution
        state.ResumeTiming();
        ex.runIteration(); // first guided iteration includes buildPlan
    }
}
BENCHMARK(BM_CapuchinPlanBuild);

BENCHMARK_MAIN();
