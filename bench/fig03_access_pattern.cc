/**
 * @file
 * Figure 3: regularity of tensor accesses across training iterations.
 *
 * Paper findings on ResNet-50: tensor access counts and timestamps
 * (relative to iteration start) are essentially identical at iterations
 * 5, 10 and 15 — one tensor is accessed 4 times, two others 6 times, and
 * the cross-iteration time variance is under 1 ms. This regularity is the
 * license for Capuchin's measure-once-then-guide design.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("ResNet-50 tensor access timeline across iterations 5/10/15",
           "Figure 3");

    const std::int64_t batch = 64;
    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Full;
    Session s(buildResNet(batch, 50), cfg, makeNoOpPolicy());
    auto r = s.run(16);
    if (r.oom) {
        std::cout << "unexpected OOM\n";
        return 1;
    }

    // Reconstruct per-iteration access timestamps from the trace: the host
    // track carries an "iter:N" marker at each iteration start followed by
    // one Access instant per tensor touch, all in emission order.
    // tensor -> iteration -> relative access times
    std::map<TensorId, std::map<int, std::vector<Tick>>> log;
    int cur_iter = -1;
    Tick iter_start = 0;
    s.executor().obs().tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.kind == obs::EventKind::Marker &&
            ev.phase == obs::EventPhase::Instant &&
            ev.name.rfind("iter:", 0) == 0) {
            cur_iter = std::stoi(ev.name.substr(5));
            iter_start = ev.ts;
            return;
        }
        if (ev.kind != obs::EventKind::Access || cur_iter < 0)
            return;
        log[static_cast<TensorId>(ev.tensor)][cur_iter].push_back(
            ev.ts - iter_start);
    });

    // Pick the paper's tensor shapes: one 4-access and two 6-access
    // feature maps (choose the largest of each class for relevance).
    const Graph &g = s.graph();
    auto pick = [&](std::size_t accesses, int skip) -> TensorId {
        std::vector<std::pair<std::uint64_t, TensorId>> hits;
        for (const auto &[tid, iters] : log) {
            if (g.tensor(tid).kind != TensorKind::FeatureMap)
                continue;
            auto it = iters.find(5);
            if (it != iters.end() && it->second.size() == accesses)
                hits.emplace_back(g.tensor(tid).bytes, tid);
        }
        std::sort(hits.rbegin(), hits.rend());
        if (hits.empty())
            return kInvalidTensor;
        return hits[std::min<std::size_t>(skip, hits.size() - 1)].second;
    };
    TensorId t1 = pick(4, 0);
    TensorId t2 = pick(6, 0);
    TensorId t3 = pick(6, 1);

    Table t({"tensor", "accesses", "iter", "timestamps (ms from iter start)",
             "max drift vs iter 5"});
    for (auto [label, tid] :
         {std::pair{"T1", t1}, std::pair{"T2", t2}, std::pair{"T3", t3}}) {
        if (tid == kInvalidTensor)
            continue;
        const auto &ref = log[tid][5];
        for (int iter : {5, 10, 15}) {
            const auto &times = log[tid][iter];
            std::string ts;
            for (Tick v : times)
                ts += (ts.empty() ? "" : ", ") + cellDouble(ticksToMs(v), 2);
            Tick drift = 0;
            for (std::size_t i = 0;
                 i < std::min(times.size(), ref.size()); ++i) {
                Tick d = times[i] > ref[i] ? times[i] - ref[i]
                                           : ref[i] - times[i];
                drift = std::max(drift, d);
            }
            t.addRow({iter == 5 ? label : "",
                      iter == 5 ? cellInt(static_cast<std::int64_t>(
                                      times.size()))
                                : "",
                      cellInt(iter), ts, formatTicks(drift)});
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper: \"the number of occurrences and timestamps in an "
                 "iteration are mostly fixed ... time variance of the same "
                 "tensor access across iterations is less than 1 ms\".\n"
                 "Measured drift above confirms the same regularity in the "
                 "simulated pipeline.\n";
    return 0;
}
