/**
 * @file
 * Figure 8(b): breakdown of Capuchin's recomputation on ResNet-50.
 *
 * Paper findings (recompute-only Capuchin vs OpenAI checkpointing):
 *  - OpenAI speed mode is ~8.3% *slower* than memory mode (layer-type
 *    heuristics backfire);
 *  - at OpenAI-S's max batch (300): ATP alone gives +37.9% over OpenAI-S
 *    (collective recomputation does not trigger: single-target replays);
 *  - at OpenAI-M's max batch (540): Capuchin beats OpenAI-M by 17.8%
 *    (ATP +10.7%, CR +7.1% more).
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

double
runVariant(std::int64_t batch, bool collective)
{
    CapuchinOptions opts;
    opts.enableSwap = false; // recompute-only, per the figure
    ExecConfig cfg;
    cfg.collectiveRecompute = collective;
    Session s(buildResNet(batch, 50), cfg, makeCapuchinPolicy(opts));
    auto r = s.run(12);
    return r.oom ? 0.0 : r.steadyThroughput(batch, 6);
}

} // namespace

int
main()
{
    banner("Recomputation breakdown on ResNet-50 (recompute-only Capuchin)",
           "Figure 8(b)");

    // The paper evaluates at each OpenAI mode's own maximum batch
    // (300 / 540 on their testbed); we calibrate the same way.
    std::int64_t s_max = maxBatch(ModelKind::ResNet50, System::OpenAiS);
    std::int64_t m_max = maxBatch(ModelKind::ResNet50, System::OpenAiM);
    std::cout << "measured maxima: OpenAI-S " << s_max << " (paper 300), "
              << "OpenAI-M " << m_max << " (paper 540)\n\n";

    Table t({"batch", "system", "img/s", "note"});
    for (std::int64_t batch : {s_max, m_max}) {
        double oai_s = steadySpeed(ModelKind::ResNet50, batch,
                                   System::OpenAiS, {}, 6, 3);
        double oai_m = steadySpeed(ModelKind::ResNet50, batch,
                                   System::OpenAiM, {}, 6, 3);
        double atp = runVariant(batch, false);
        double atp_cr = runVariant(batch, true);

        t.addRow({cellInt(batch), "OpenAI-S",
                  oai_s > 0 ? cellDouble(oai_s, 1) : "OOM",
                  batch == s_max ? "OpenAI-S max" : "beyond its max"});
        t.addRow({"", "OpenAI-M",
                  oai_m > 0 ? cellDouble(oai_m, 1) : "OOM",
                  batch == m_max ? "OpenAI-M max" : ""});
        t.addRow({"", "ATP", cellDouble(atp, 1),
                  "measured-cost recompute, no CR"});
        t.addRow({"", "ATP+CR", cellDouble(atp_cr, 1),
                  "with collective recomputation"});

        if (oai_s > 0 && oai_m > 0) {
            std::cout << "batch " << batch << ": OpenAI-S vs OpenAI-M = "
                      << cellPercent(oai_s / oai_m - 1.0)
                      << " (paper at their maxima: -8.3%)\n";
        }
        if (atp_cr > 0 && oai_m > 0) {
            double delta = atp_cr / oai_m - 1.0;
            std::cout << "batch " << batch << ": ATP+CR vs OpenAI-M = "
                      << (delta >= 0 ? "+" : "") << cellPercent(delta)
                      << (batch == m_max ? "  (paper: +17.8%)" : "")
                      << "\n";
        }
        std::cout << "\n";
    }
    t.print(std::cout);
    std::cout << "\nTakeaway: choosing recompute targets by measured cost "
                 "(MSPS) beats both checkpointing heuristics; collective "
                 "recomputation adds a further gain once replay segments "
                 "carry multiple targets.\n";
    return 0;
}
