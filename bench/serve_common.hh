/**
 * @file
 * Shared request-mix and phase-timing helpers for the capuserve benches
 * (serve_throughput and the perf_harness "serve" section).
 *
 * A serve bench runs two phases against one PlanService: a *cold* phase
 * (one request per tenant, every one a cache miss that runs a measured
 * planning session) and a *warm* phase (repeats over the same tenants,
 * every one a cache hit answered by forking the template session). The
 * acceptance floor compares the two phases' requests/sec; the identity
 * check compares plan digests, which plan_io defines such that equal
 * digests mean bit-identical plans.
 */

#ifndef CAPU_BENCH_SERVE_COMMON_HH
#define CAPU_BENCH_SERVE_COMMON_HH

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/request_queue.hh"
#include "serve/service.hh"

namespace capu::bench
{

struct ServeTenant
{
    const char *model;
    std::int64_t batch;
};

/** The zoo request mix: four tenants across model families, batches kept
 *  modest so a cold planning session stays in the hundreds of ms. */
inline constexpr ServeTenant kServeTenants[] = {
    {"resnet50", 192},
    {"vgg16", 96},
    {"densenet", 96},
    {"inceptionv3", 128},
};

inline constexpr ServeTenant kQuickServeTenants[] = {
    {"resnet50", 192},
    {"vgg16", 96},
};

/** Nearest-rank percentile over a copy of `v` (p in [0, 1]). */
inline double
servePercentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/**
 * Round-robin request stream over `tenants`: every tenant appears once
 * per cycle, so `count >= n_tenants` guarantees full coverage and the
 * stream is deterministic without a seed.
 */
inline std::vector<serve::PlanRequest>
serveMix(const ServeTenant *tenants, std::size_t n_tenants,
         std::size_t count, int warm_iters)
{
    std::vector<serve::PlanRequest> reqs;
    reqs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const ServeTenant &t = tenants[i % n_tenants];
        serve::PlanRequest r;
        r.model = t.model;
        r.batch = t.batch;
        r.warmIterations = warm_iters;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/** One timed drain of a request batch through the queue. */
struct ServePhaseResult
{
    std::size_t requests = 0;
    int errors = 0;
    double wallMs = 0;
    double reqPerSec = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    std::vector<serve::PlanResponse> responses;
};

inline ServePhaseResult
runServePhase(serve::RequestQueue &queue,
              const std::vector<serve::PlanRequest> &reqs)
{
    for (const serve::PlanRequest &r : reqs)
        queue.enqueue(r);
    auto t0 = std::chrono::steady_clock::now();
    ServePhaseResult res;
    res.responses = queue.drain();
    auto t1 = std::chrono::steady_clock::now();
    res.requests = res.responses.size();
    res.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::vector<double> lat;
    lat.reserve(res.responses.size());
    for (const serve::PlanResponse &r : res.responses) {
        if (!r.ok)
            ++res.errors;
        lat.push_back(r.latencyMs);
    }
    res.reqPerSec = res.wallMs > 0
                        ? static_cast<double>(res.requests) * 1e3 / res.wallMs
                        : 0.0;
    res.p50Ms = servePercentile(lat, 0.50);
    res.p99Ms = servePercentile(lat, 0.99);
    return res;
}

/**
 * Record the first digest seen per (model, batch) tag and flag any later
 * disagreement — the warm/cold bit-identity check. Returns true while
 * all phases agree.
 */
class ServeDigestLedger
{
  public:
    void
    observe(const std::vector<serve::PlanRequest> &reqs,
            const std::vector<serve::PlanResponse> &resps)
    {
        for (std::size_t i = 0; i < resps.size() && i < reqs.size(); ++i) {
            if (!resps[i].ok)
                continue;
            std::string tag =
                reqs[i].model + "@" + std::to_string(reqs[i].batch);
            auto it = first_.find(tag);
            if (it == first_.end())
                first_.emplace(std::move(tag), resps[i].digest);
            else if (it->second != resps[i].digest)
                identical_ = false;
        }
    }

    bool identical() const { return identical_; }
    std::size_t keys() const { return first_.size(); }

  private:
    std::unordered_map<std::string, std::uint64_t> first_;
    bool identical_ = true;
};

} // namespace capu::bench

#endif // CAPU_BENCH_SERVE_COMMON_HH
