/**
 * @file
 * Figure 10: training speed vs batch size in eager mode.
 *
 * Paper shape: ResNet-50 loses ~23.1% speed for an 83.6% batch gain;
 * DenseNet's speed *rises* with batch (GPU utilization head-room, like
 * BERT in graph mode). TF-ori appears only below its eager memory wall.
 */

#include <iostream>
#include <vector>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Training speed vs batch size, eager mode", "Figure 10");

    ExecConfig cfg;
    cfg.eagerMode = true;

    struct Sweep
    {
        ModelKind kind;
        std::vector<std::int64_t> batches;
    };
    const Sweep sweeps[] = {
        {ModelKind::ResNet50, {90, 110, 130, 150, 170, 190, 210, 230, 250}},
        {ModelKind::DenseNet121, {50, 65, 80, 95, 110, 125, 140, 155}},
    };

    for (const Sweep &sweep : sweeps) {
        std::cout << "--- " << modelName(sweep.kind) << " (eager) ---\n";
        Table t({"batch", "TF-ori", "Capuchin"});
        double tf_best = 0, capu_at_184pct = 0;
        std::int64_t tf_max = 0;
        for (std::int64_t batch : sweep.batches) {
            double tf = steadySpeed(sweep.kind, batch, System::TfOri, cfg,
                                    4, 1);
            double capu = steadySpeed(sweep.kind, batch, System::Capuchin,
                                      cfg, 16, 10);
            if (tf > 0) {
                tf_best = tf;
                tf_max = batch;
            }
            t.addRow({cellInt(batch), tf > 0 ? cellDouble(tf, 1) : "OOM",
                      capu > 0 ? cellDouble(capu, 1) : "OOM"});
            (void)capu_at_184pct;
        }
        t.print(std::cout);

        if (sweep.kind == ModelKind::ResNet50 && tf_max > 0) {
            std::int64_t big = static_cast<std::int64_t>(tf_max * 1.836);
            double capu_big = steadySpeed(sweep.kind, big,
                                          System::Capuchin, cfg, 16, 10);
            std::cout << "\nResNet-50 at +83.6% batch (" << big
                      << "): " << cellDouble(capu_big, 1) << " img/s = "
                      << cellPercent(1.0 - capu_big / tf_best)
                      << " below TF-ori's best (paper: -23.1%).\n";
        }
        std::cout << "\n";
    }
    return 0;
}
