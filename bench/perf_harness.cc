/**
 * @file
 * Self-timing perf harness + regression gate (BENCH_perf.json).
 *
 * Measures the hot paths this repo optimises, per zoo model:
 *
 *  - plan derivation: PolicyMaker::build with the incremental Algorithm-2
 *    engine vs the reference full-rescan loop, on a tracker filled by a
 *    real measured iteration at an oversubscribed batch. The two plans
 *    are asserted byte-identical before any timing is reported.
 *  - simulation throughput: executed schedule steps per wall second for
 *    a Capuchin-managed training run.
 *  - allocator latency: ns per BfcAllocator allocate/deallocate over a
 *    deterministic mixed small/large workload.
 *  - sweep parallelism: wall time of a zoo mini-sweep serial vs on the
 *    work-stealing pool (reported only; the speedup gate applies when
 *    >= 4 workers are available).
 *  - steady-state replay: a long training session with capureplay on vs
 *    off. The two runs are asserted bit-identical (every IterationStats
 *    field, including begin/end ticks) before the speedup is reported;
 *    the full run must clear 3x.
 *  - max-batch search: findMaxBatch (memoized, galloping, replay-armed
 *    probes) vs an inline replica of the pre-capureplay bisection,
 *    asserted to agree on the result.
 *
 * Timings are median-of-N (--repeat). A calibration spin — a fixed
 * integer workload timed on the same machine — is recorded next to the
 * metrics so the regression gate can compare *machine-normalized* times:
 * with --baseline FILE the harness fails (exit 1) when a gated metric,
 * divided by its run's calibration time, exceeds 2x the baseline's
 * normalized value. The tolerance is deliberately generous: this gate
 * catches algorithmic regressions (an accidental O(n^2) rescan), not
 * noise.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "bench/serve_common.hh"
#include "core/policy_maker.hh"
#include "memory/bfc_allocator.hh"
#include "models/workload.hh"
#include "prof/profile.hh"
#include "support/units.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct Options
{
    bool quick = false;
    int repeat = 3;
    unsigned threads = 0; ///< ladder/jobs cap; 0 = uncapped (1/2/4/8)
    std::string out = "BENCH_perf.json";
    std::string baseline;
};

/** Oversubscribed batches: passive mode must evict, so the tracker and
 *  measured-eviction target feed PolicyMaker a non-trivial problem. */
struct ModelCase
{
    ModelKind kind;
    std::int64_t batch;
};

const ModelCase kCases[] = {
    {ModelKind::Vgg16, 260},       {ModelKind::ResNet50, 240},
    {ModelKind::ResNet152, 110},   {ModelKind::InceptionV3, 210},
    {ModelKind::InceptionV4, 120}, {ModelKind::DenseNet121, 200},
    {ModelKind::BertBase, 110},
};

const ModelCase kQuickCases[] = {
    {ModelKind::Vgg16, 260},
    {ModelKind::ResNet50, 240},
};

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Median of the collected samples (sorted copy; even count averages). */
double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/**
 * Calibration spin: a fixed xorshift64 integer workload. Its wall time
 * scales with single-core speed the same way the plan/sim loops do, so
 * metric / spin is comparable across machines (and across Debug-ish
 * compiler updates) in a way raw milliseconds are not.
 */
double
calibrationSpinMs()
{
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    volatile std::uint64_t sink = 0;
    double t0 = nowMs();
    for (int i = 0; i < 50'000'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    sink = x;
    (void)sink;
    return nowMs() - t0;
}

bool
itemsEqual(const PlannedEviction &a, const PlannedEviction &b)
{
    return a.tensor == b.tensor && a.mode == b.mode && a.bytes == b.bytes &&
           a.evictAfterAccess == b.evictAfterAccess &&
           a.backAccess == b.backAccess && a.evictTime == b.evictTime &&
           a.backTime == b.backTime && a.swapTime == b.swapTime &&
           a.freeTime == b.freeTime &&
           a.desiredSwapInStart == b.desiredSwapInStart &&
           a.triggerTensor == b.triggerTensor &&
           a.triggerAccess == b.triggerAccess &&
           a.recomputeTime == b.recomputeTime &&
           a.estimatedOverhead == b.estimatedOverhead;
}

bool
plansEqual(const Plan &a, const Plan &b)
{
    if (a.items.size() != b.items.size() ||
        a.targetBytes != b.targetBytes ||
        a.plannedBytes != b.plannedBytes || a.swapCount != b.swapCount ||
        a.recomputeCount != b.recomputeCount)
        return false;
    for (std::size_t i = 0; i < a.items.size(); ++i) {
        if (!itemsEqual(a.items[i], b.items[i]))
            return false;
    }
    return true;
}

struct ModelResult
{
    std::string name;
    std::int64_t batch = 0;
    double planRefMs = 0;
    double planIncMs = 0;
    std::size_t planItems = 0;
    bool plansEqual = true;
    double simWallMs = 0;
    double simStepsPerSec = 0;
};

/**
 * One model's measurements. The Session run supplies three things at
 * once: the measured tracker + eviction target PolicyMaker needs, the
 * sim-throughput sample, and proof the batch actually oversubscribes.
 */
ModelResult
runModel(const ModelCase &mc, const Options &opt)
{
    ModelResult res;
    res.name = modelName(mc.kind);
    res.batch = mc.batch;

    ExecConfig cfg;
    CapuchinOptions copts;
    Session session(buildModel(mc.kind, mc.batch), cfg,
                    makeCapuchinPolicy(copts));
    const int iters = opt.quick ? 2 : 3;
    double t0 = nowMs();
    auto r = session.run(iters);
    res.simWallMs = nowMs() - t0;
    if (r.oom) {
        std::cerr << res.name << "@" << mc.batch
                  << ": unexpected OOM\n" << r.postMortem() << "\n";
        res.plansEqual = false;
        return res;
    }
    Executor &ex = session.executor();
    res.simStepsPerSec = res.simWallMs > 0
                             ? static_cast<double>(ex.schedule().size()) *
                                   iters / (res.simWallMs / 1000.0)
                             : 0;

    auto *capu = dynamic_cast<CapuchinPolicy *>(session.policy());
    if (capu == nullptr || !capu->planBuilt()) {
        std::cerr << res.name << ": no plan was built (batch not "
                     "oversubscribed?)\n";
        res.plansEqual = false;
        return res;
    }

    // Rebuild the plan standalone, with the exact inputs
    // CapuchinPolicy::buildPlan uses, under both engines.
    auto target = static_cast<std::uint64_t>(
        static_cast<double>(capu->measuredEvictedBytes()) *
        copts.savingMargin);
    auto bytes_fn = [&](TensorId id) { return ex.tensorBytes(id); };
    auto swap_fn = [&](std::uint64_t b) { return ex.swapTime(b); };

    Plan ref_plan, inc_plan;
    std::vector<double> ref_ms, inc_ms;
    for (int i = 0; i < opt.repeat; ++i) {
        PolicyMakerOptions pmo;
        pmo.incremental = false;
        PolicyMaker ref_maker(session.graph(), capu->tracker(), pmo);
        double a = nowMs();
        ref_plan =
            ref_maker.build(target, bytes_fn, swap_fn, ex.gpuCapacity());
        ref_ms.push_back(nowMs() - a);

        pmo.incremental = true;
        PolicyMaker inc_maker(session.graph(), capu->tracker(), pmo);
        a = nowMs();
        inc_plan =
            inc_maker.build(target, bytes_fn, swap_fn, ex.gpuCapacity());
        inc_ms.push_back(nowMs() - a);
    }
    res.planRefMs = median(ref_ms);
    res.planIncMs = median(inc_ms);
    res.planItems = inc_plan.items.size();
    res.plansEqual = plansEqual(ref_plan, inc_plan);
    if (!res.plansEqual)
        std::cerr << res.name << ": INCREMENTAL PLAN DIVERGES FROM "
                     "REFERENCE\n  ref: " << ref_plan.summary()
                  << "\n  inc: " << inc_plan.summary() << "\n";
    return res;
}

/** One rung of the sweep scaling ladder. */
struct SweepConfig
{
    unsigned threads = 1;
    double parallelMs = 0;
    double speedup = 1.0;
    /** Whether the hard floor applied (enough hardware threads). */
    bool gated = false;
};

struct SweepResult
{
    unsigned hardwareThreads = 0;
    double serialMs = 0;
    bool resultsIdentical = true;
    std::vector<SweepConfig> configs;
};

/**
 * Parallel-sweep scaling ladder: the same cell list run serially, then
 * on pools of 1/2/4/8 workers. Cells are small independent sims (the
 * pattern every bench sweep uses), so this measures pool overhead +
 * scaling, not model size. Every rung's results must be bit-identical
 * to the serial pass; speedup floors are enforced only on rungs the
 * hardware can actually parallelize (hardware_concurrency >= rung), so
 * a 1-core CI box records honest numbers without false-failing.
 */
SweepResult
runSweep(unsigned max_threads, bool quick)
{
    SweepResult res;
    res.hardwareThreads = std::thread::hardware_concurrency();
    const std::size_t n = 16;
    auto cell = [&](std::size_t i) {
        ModelKind kind =
            i % 2 ? ModelKind::ResNet50 : ModelKind::Vgg16;
        Session session(buildModel(kind, 32), ExecConfig{},
                        makeNoOpPolicy());
        auto r = session.run(quick ? 1 : 2);
        return r.oom ? 0.0 : r.steadyThroughput(32, 0);
    };

    std::vector<double> serial(n);
    double t0 = nowMs();
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = cell(i);
    res.serialMs = nowMs() - t0;

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        if (max_threads && threads > max_threads)
            break;
        SweepConfig cfg;
        cfg.threads = threads;
        std::vector<double> par(n);
        t0 = nowMs();
        {
            ThreadPool pool(threads);
            pool.forEachIndex(n, [&](std::size_t i) { par[i] = cell(i); });
        }
        cfg.parallelMs = nowMs() - t0;
        cfg.speedup =
            cfg.parallelMs > 0 ? res.serialMs / cfg.parallelMs : 1.0;
        cfg.gated = res.hardwareThreads >= threads;
        if (par != serial) {
            res.resultsIdentical = false;
            std::cerr << "SWEEP RESULTS DIVERGE between serial and "
                      << threads << "-thread runs\n";
        }
        res.configs.push_back(cfg);
    }
    return res;
}

struct AllocResult
{
    double nsPerOp = 0;
    std::uint64_t ops = 0;
};

/**
 * Deterministic allocator churn: a sliding window of live allocations
 * with xorshift-chosen sizes spanning both the small best-fit path and
 * the large (segregated, high-address) path, plus periodic frees that
 * force coalescing.
 */
AllocResult
runAllocator(bool quick)
{
    AllocResult res;
    BfcAllocator alloc(16ull << 30);
    std::vector<MemHandle> live;
    live.reserve(4096);
    std::uint64_t x = 0x2545f4914f6cdd1dull;
    auto rnd = [&] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    const std::uint64_t target_ops = quick ? 50'000 : 400'000;
    std::uint64_t ops = 0;
    double t0 = nowMs();
    while (ops < target_ops) {
        std::uint64_t r = rnd();
        bool do_free = !live.empty() && (live.size() > 2048 || (r & 7) == 0);
        if (do_free) {
            std::size_t idx = rnd() % live.size();
            alloc.deallocate(live[idx]);
            live[idx] = live.back();
            live.pop_back();
            ++ops;
            continue;
        }
        // 1-in-16 large (64..320 MiB), else small (4 KiB..4 MiB).
        std::uint64_t bytes =
            (r & 15) == 0 ? (64ull << 20) + (rnd() % (256ull << 20))
                          : (4ull << 10) + (rnd() % (4ull << 20));
        auto h = alloc.allocate(bytes);
        if (h)
            live.push_back(*h);
        else if (!live.empty()) {
            alloc.deallocate(live.back());
            live.pop_back();
        }
        ++ops;
    }
    double wall = nowMs() - t0;
    alloc.checkInvariants();
    res.ops = ops;
    res.nsPerOp = ops > 0 ? wall * 1e6 / static_cast<double>(ops) : 0;
    return res;
}

/** Replay-friendly cases: the Capuchin feedback loop reaches a fixed
 *  point within the first ~10 iterations at these batches, so a long
 *  session is dominated by synthesized iterations. */
const ModelCase kReplayCases[] = {
    {ModelKind::Vgg16, 230},
    {ModelKind::ResNet50, 200},
    {ModelKind::BertBase, 64},
};

const ModelCase kQuickReplayCases[] = {
    {ModelKind::Vgg16, 230},
};

struct ReplayResult
{
    std::string name;
    std::int64_t batch = 0;
    int iterations = 0;
    double offMs = 0;
    double onMs = 0;
    double speedup = 0;
    int executed = 0;
    int replayed = 0;
    bool identical = true;
};

/** Every field of every iteration, including absolute begin/end ticks:
 *  replay is only a win if it is indistinguishable from execution. */
bool
resultsIdentical(const SessionResult &a, const SessionResult &b)
{
    if (a.oom || b.oom || a.iterations.size() != b.iterations.size())
        return false;
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        const IterationStats &x = a.iterations[i];
        const IterationStats &y = b.iterations[i];
        if (x.iteration != y.iteration || x.begin != y.begin ||
            x.end != y.end || x.kernelBusy != y.kernelBusy ||
            x.recomputeBusy != y.recomputeBusy ||
            x.inputStall != y.inputStall ||
            x.allocStall != y.allocStall ||
            x.swapOutBytes != y.swapOutBytes ||
            x.swapInBytes != y.swapInBytes ||
            x.swapOutCount != y.swapOutCount ||
            x.swapInCount != y.swapInCount ||
            x.recomputedTensors != y.recomputedTensors ||
            x.recomputeOps != y.recomputeOps ||
            x.droppedTensors != y.droppedTensors ||
            x.droppedBytes != y.droppedBytes ||
            x.inplaceForwards != y.inplaceForwards ||
            x.fallbackKernels != y.fallbackKernels ||
            x.oomEvictions != y.oomEvictions ||
            x.prefetchBusy != y.prefetchBusy ||
            x.prefetchStall != y.prefetchStall ||
            x.peakGpuBytes != y.peakGpuBytes)
            return false;
    }
    return true;
}

/**
 * One long Capuchin session with replay off, then on. Graph building is
 * kept outside the timed region (both variants pay it identically).
 */
ReplayResult
runReplay(const ModelCase &mc, const Options &opt)
{
    ReplayResult res;
    res.name = modelName(mc.kind);
    res.batch = mc.batch;
    res.iterations = opt.quick ? 40 : 100;

    Graph g_off = buildModel(mc.kind, mc.batch);
    Graph g_on = buildModel(mc.kind, mc.batch);

    ExecConfig cfg_off;
    double t0 = nowMs();
    Session off(std::move(g_off), cfg_off, makeCapuchinPolicy());
    auto r_off = off.run(res.iterations);
    res.offMs = nowMs() - t0;

    ExecConfig cfg_on;
    cfg_on.replay.enabled = true;
    t0 = nowMs();
    Session on(std::move(g_on), cfg_on, makeCapuchinPolicy());
    auto r_on = on.run(res.iterations);
    res.onMs = nowMs() - t0;

    res.executed = r_on.replay.executed;
    res.replayed = r_on.replay.replayed;
    res.speedup = res.onMs > 0 ? res.offMs / res.onMs : 0;
    res.identical = resultsIdentical(r_off, r_on);
    if (!res.identical)
        std::cerr << res.name << "@" << mc.batch
                  << ": REPLAY RUN DIVERGES FROM EXECUTED RUN\n";
    return res;
}

struct ProfileBenchResult
{
    std::string name;
    std::int64_t batch = 0;
    std::uint64_t events = 0;
    double buildMs = 0; ///< median buildProfile wall over --repeat
    double eventsPerSec = 0;
    bool conserved = false; ///< bucket sum == wall, exactly
};

/**
 * capuprof analytics cost: buildProfile (bucket sweep + tensor ledger +
 * happens-before critical path) over a fully traced Capuchin session.
 * Post-hoc tooling must stay cheap enough to run after every sweep job,
 * so the throughput is recorded and the conservation invariant — the
 * analytics' correctness gate — feeds the harness verdict.
 */
ProfileBenchResult
runProfileBench(const ModelCase &mc, const Options &opt)
{
    ProfileBenchResult res;
    res.name = modelName(mc.kind);
    res.batch = mc.batch;

    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Full;
    Session s(buildModel(mc.kind, mc.batch), cfg, makeCapuchinPolicy());
    auto r = s.run(opt.quick ? 4 : 8);
    if (r.oom) {
        std::cerr << res.name << "@" << mc.batch
                  << ": PROFILE BENCH RUN OOMED: " << r.oomMessage << "\n";
        return res;
    }

    const obs::Tracer &tracer = s.executor().obs().tracer;
    res.events = tracer.size();
    prof::Profile p;
    std::vector<double> samples;
    for (int rep = 0; rep < opt.repeat; ++rep) {
        double t0 = nowMs();
        p = prof::buildProfile(tracer);
        samples.push_back(nowMs() - t0);
    }
    res.buildMs = median(samples);
    res.eventsPerSec =
        res.buildMs > 0 ? static_cast<double>(res.events) /
                              (res.buildMs / 1000.0)
                        : 0;
    res.conserved = p.conservationError() == 0;
    if (!res.conserved)
        std::cerr << res.name << "@" << mc.batch
                  << ": PROFILE BUCKETS DO NOT SUM TO WALL-CLOCK (off by "
                  << p.conservationError() << " ns)\n";
    return res;
}

const ModelKind kMaxBatchCases[] = {ModelKind::Vgg16, ModelKind::BertBase};
const ModelKind kQuickMaxBatchCases[] = {ModelKind::Vgg16};

struct MaxBatchResult
{
    std::string name;
    std::int64_t newBatch = 0;
    std::int64_t legacyBatch = 0;
    double newMs = 0;
    double legacyMs = 0;
    int newProbes = 0;
    int legacyProbes = 0;
    bool equal = true;
    /** Parallel (speculative) search at `parJobs` workers vs serial. */
    unsigned parJobs = 1;
    std::int64_t parBatch = 0;
    double parMs = 0;
    double parSpeedup = 1.0;
    bool parEqual = true;
    int speculated = 0;
    int servedFromWarm = 0;
    /** Whether the parallel floor applied (enough hardware threads). */
    bool parGated = false;
};

/**
 * Pre-memo findMaxBatch, replicated inline as the comparison baseline:
 * no memo, no gallop — feasibility is re-probed on every robust() call
 * and the search opens with full-range bisection from hi.
 */
std::int64_t
legacyFindMaxBatch(const GraphBuilderFn &builder,
                   const PolicyFactoryFn &make_policy,
                   const ExecConfig &config, int iterations,
                   std::int64_t lo, std::int64_t hi, int &probes)
{
    auto feasible = [&](std::int64_t batch) {
        ++probes;
        Session session(builder(batch), config, make_policy());
        return !session.run(iterations).oom;
    };
    auto robust = [&](std::int64_t batch) {
        std::int64_t step = std::max<std::int64_t>(1, batch / 32);
        return feasible(batch) &&
               (batch - step < lo || feasible(batch - step));
    };
    if (!feasible(lo))
        return 0;
    if (robust(hi))
        return hi;
    std::int64_t good = lo;
    std::int64_t bad = hi;
    while (good + 1 < bad) {
        std::int64_t mid = good + (bad - good) / 2;
        if (robust(mid))
            good = mid;
        else
            bad = mid;
    }
    return good;
}

/**
 * The zoo search the tab02/tab03 benches run — Capuchin over [1, 4096] —
 * at a 60-iteration feasibility horizon (long enough that steady-state
 * fragmentation drift would surface, and that replay-armed probes can
 * synthesize the stable tail). The legacy replica runs the same horizon
 * the pre-capureplay way: every iteration executed, every probe re-run.
 */
MaxBatchResult
runMaxBatch(ModelKind kind, unsigned par_jobs)
{
    MaxBatchResult res;
    res.name = modelName(kind);
    const int horizon = 60;
    ExecConfig cfg;
    auto builder = [kind](std::int64_t b) { return buildModel(kind, b); };
    auto policy = [] { return makeVdnnPolicy(); };

    std::atomic<int> new_probes{0};
    auto counting_builder = [&](std::int64_t b) {
        ++new_probes;
        return buildModel(kind, b);
    };
    double t0 = nowMs();
    res.newBatch =
        findMaxBatch(counting_builder, policy, cfg, horizon, 1, 4096);
    res.newMs = nowMs() - t0;
    res.newProbes = new_probes;

    t0 = nowMs();
    res.legacyBatch = legacyFindMaxBatch(builder, policy, cfg, horizon, 1,
                                         4096, res.legacyProbes);
    res.legacyMs = nowMs() - t0;
    res.equal = res.newBatch == res.legacyBatch;
    if (!res.equal)
        std::cerr << res.name << ": MAX-BATCH SEARCH DIVERGES (new "
                  << res.newBatch << " vs legacy " << res.legacyBatch
                  << ")\n";

    // Parallel speculative search: same answer required at any job
    // count; the speedup floor only applies with the hardware to back it.
    res.parJobs = par_jobs;
    res.parGated =
        std::thread::hardware_concurrency() >= par_jobs && par_jobs > 1;
    MaxBatchStats pstats;
    t0 = nowMs();
    res.parBatch = findMaxBatch(builder, policy, cfg, horizon, 1, 4096,
                                par_jobs, &pstats);
    res.parMs = nowMs() - t0;
    res.parSpeedup = res.parMs > 0 ? res.newMs / res.parMs : 1.0;
    res.speculated = pstats.speculated;
    res.servedFromWarm = pstats.servedFromWarm;
    res.parEqual = res.parBatch == res.newBatch;
    if (!res.parEqual)
        std::cerr << res.name << ": PARALLEL MAX-BATCH SEARCH DIVERGES ("
                  << res.parBatch << " at " << par_jobs << " jobs vs "
                  << res.newBatch << " serial)\n";
    return res;
}

/** Dynamic-workload cases (capudrift): the full dynamic zoo, one per
 *  family; quick keeps the cheapest (varlen lstm). */
struct DriftCase
{
    WorkloadKind kind;
    const char *model; ///< "" where the family ignores it (branchy)
    std::int64_t batch;
};

const DriftCase kDriftCases[] = {
    {WorkloadKind::Varlen, "bert", 48},
    {WorkloadKind::BatchRamp, "resnet50", 256},
    {WorkloadKind::Branchy, "", 256},
};

const DriftCase kQuickDriftCases[] = {
    {WorkloadKind::Varlen, "lstm", 8},
};

struct DriftBenchResult
{
    std::string name; ///< "varlen-bert" etc.
    std::int64_t batch = 0;
    int iterations = 0;
    int classes = 0;
    int measuredIters = 0;
    double adaptiveMs = 0; ///< simulated wall of the adaptive session
    double oracleMs = 0;   ///< schedule-weighted per-class steady state
    double replanMs = 0;   ///< schedule-weighted per-class measured iter
    double overheadFrac = 0; ///< adaptive / oracle - 1
    bool ok = false;
};

/**
 * Bounded-degradation gate: an adaptive Capuchin session over a dynamic
 * schedule vs two counterfactuals built from per-class *pinned* sessions on
 * the same union graph (same footprint, so the comparison is fair):
 *
 *  - oracle: every iteration billed at its class's steady-state duration —
 *    as if a measured plan had existed for every class from iteration 0;
 *  - replan-from-scratch: every iteration billed at its class's first
 *    (measured, passive-mode) duration — as if the plan cache did not
 *    exist and every shape change forced a full re-measurement.
 *
 * Times are *simulated* ticks, not host wall, so the floor is noise-free
 * and the assertion runs in-process (no calibration normalization needed;
 * these deliberately stay out of the flat "gate" blob, which normalizes by
 * host speed and would false-trip on simulated quantities).
 */
DriftBenchResult
runDrift(const DriftCase &dc)
{
    DriftBenchResult res;
    res.name = std::string(workloadName(dc.kind)) +
               (*dc.model ? std::string("-") + dc.model : "");
    res.batch = dc.batch;

    DynamicWorkload dw = buildWorkload(dc.kind, dc.model, dc.batch, 0);
    const std::vector<std::size_t> &sched = dw.schedule;
    res.iterations = static_cast<int>(sched.size()) * 2;

    ExecConfig cfg;
    cfg.variantSchedule = sched;
    cfg.replay.enabled = true;
    cfg.obsLevel = obs::ObsLevel::Metrics;
    Session adaptive(Graph(dw.graph), cfg, makeCapuchinPolicy());
    auto ra = adaptive.run(res.iterations);
    if (ra.oom) {
        std::cerr << res.name << "@" << dc.batch
                  << ": ADAPTIVE DRIFT RUN OOMED: " << ra.oomMessage
                  << "\n";
        return res;
    }
    Tick adaptive_ticks = 0;
    for (const IterationStats &it : ra.iterations)
        adaptive_ticks += it.duration();

    const obs::MetricsRegistry &metrics = adaptive.executor().obs().metrics;
    res.classes =
        static_cast<int>(metrics.counter("capu.drift.novel_class"));
    res.measuredIters =
        static_cast<int>(metrics.counter("capu.drift.measured_iters"));

    // Per-class counterfactual rates from pinned single-class sessions.
    std::size_t n_classes = dw.graph.variants().size();
    std::vector<Tick> steady(n_classes, 0), first(n_classes, 0);
    for (std::size_t k = 0; k < n_classes; ++k) {
        ExecConfig pc;
        pc.variantSchedule = {k};
        Session pinned(Graph(dw.graph), pc, makeCapuchinPolicy());
        auto rp = pinned.run(8);
        if (rp.oom) {
            std::cerr << res.name << ": PINNED CLASS " << k
                      << " OOMED: " << rp.oomMessage << "\n";
            return res;
        }
        steady[k] = rp.steadyIterationTicks(3);
        first[k] = rp.iterations.front().duration();
    }
    Tick oracle_ticks = 0, replan_ticks = 0;
    for (int i = 0; i < res.iterations; ++i) {
        std::size_t cls = sched[static_cast<std::size_t>(i) % sched.size()];
        oracle_ticks += steady[cls];
        replan_ticks += first[cls];
    }

    res.adaptiveMs = ticksToMs(adaptive_ticks);
    res.oracleMs = ticksToMs(oracle_ticks);
    res.replanMs = ticksToMs(replan_ticks);
    res.overheadFrac =
        oracle_ticks > 0 ? static_cast<double>(adaptive_ticks) /
                                   static_cast<double>(oracle_ticks) -
                               1.0
                         : 0.0;
    res.ok = res.overheadFrac <= 0.15;
    if (!res.ok)
        std::cerr << res.name << "@" << dc.batch
                  << ": DRIFT ADAPTATION OVERHEAD "
                  << cellDouble(res.overheadFrac * 100.0, 1)
                  << "% ABOVE 15% OF PER-SHAPE ORACLE\n";
    return res;
}

/**
 * Planning-service bench (capuserve): a cold phase (one measured planning
 * session per tenant) vs a warm phase (cache hits answered by forking the
 * template session). Warm responses must digest-match the cold plan for
 * their key — plan_io digests hash every item field, so equality means
 * bit-identical plans — and warm requests/sec must clear 10x cold. The
 * ratio is self-relative host time (both phases in one process), so like
 * the drift floors it gates in-process and stays out of the
 * calibration-normalized "gate" blob.
 */
struct ServeBenchResult
{
    std::size_t tenants = 0;
    std::size_t coldRequests = 0;
    std::size_t warmRequests = 0;
    double coldReqPerSec = 0, coldP50Ms = 0, coldP99Ms = 0;
    double warmReqPerSec = 0, warmP50Ms = 0, warmP99Ms = 0;
    double speedup = 0;
    std::uint64_t hits = 0, misses = 0;
    bool identical = false;
    bool ok = false;
};

ServeBenchResult
runServeBench(bool quick)
{
    ServeBenchResult res;
    const ServeTenant *tenants = quick ? kQuickServeTenants : kServeTenants;
    res.tenants =
        quick ? std::size(kQuickServeTenants) : std::size(kServeTenants);
    std::size_t warm_count = quick ? 24 : 64;

    serve::PlanServiceConfig cfg;
    serve::PlanService service(cfg, nullptr);
    serve::RequestQueue queue(service);
    ServeDigestLedger ledger;

    std::vector<serve::PlanRequest> cold_reqs =
        serveMix(tenants, res.tenants, res.tenants, /*warm_iters=*/0);
    ServePhaseResult cold = runServePhase(queue, cold_reqs);
    ledger.observe(cold_reqs, cold.responses);

    std::vector<serve::PlanRequest> warm_reqs =
        serveMix(tenants, res.tenants, warm_count, /*warm_iters=*/0);
    ServePhaseResult warm = runServePhase(queue, warm_reqs);
    ledger.observe(warm_reqs, warm.responses);

    res.coldRequests = cold.requests;
    res.warmRequests = warm.requests;
    res.coldReqPerSec = cold.reqPerSec;
    res.coldP50Ms = cold.p50Ms;
    res.coldP99Ms = cold.p99Ms;
    res.warmReqPerSec = warm.reqPerSec;
    res.warmP50Ms = warm.p50Ms;
    res.warmP99Ms = warm.p99Ms;
    res.speedup =
        cold.reqPerSec > 0 ? warm.reqPerSec / cold.reqPerSec : 0.0;
    res.hits = service.cacheStats().hits;
    res.misses = service.cacheStats().misses;
    res.identical = ledger.identical() && !cold.errors && !warm.errors;
    res.ok = res.identical && res.speedup >= 10.0;
    if (!ledger.identical())
        std::cerr << "SERVE DIGEST MISMATCH: warm response disagrees with "
                     "its cold plan\n";
    if (cold.errors || warm.errors)
        std::cerr << "SERVE ERRORS: " << cold.errors + warm.errors
                  << " requests failed\n";
    if (res.speedup < 10.0)
        std::cerr << "SERVE WARM SPEEDUP " << cellDouble(res.speedup, 2)
                  << "x BELOW 10x COLD\n";
    return res;
}

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** Scan `text` for `"key": <number>`; returns false when absent. */
bool
findJsonNumber(const std::string &text, const std::string &key, double &out)
{
    std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() && text[pos] == ' ')
        ++pos;
    try {
        out = std::stod(text.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

void
usage()
{
    std::cout <<
        "usage: perf_harness [options]\n"
        "  --quick           small model subset, short loops (CI smoke)\n"
        "  --repeat N        median-of-N timing samples (default 3)\n"
        "  --threads N       cap the sweep scaling ladder and parallel\n"
        "                    max-batch jobs at N (default: full 1/2/4/8\n"
        "                    ladder and 8 jobs regardless of cores;\n"
        "                    floors only gate where the hardware has\n"
        "                    enough threads)\n"
        "  --out FILE        write BENCH_perf.json here (default ./)\n"
        "  --baseline FILE   compare against a previous BENCH_perf.json;\n"
        "                    exit 1 when a calibration-normalized metric\n"
        "                    regresses by more than 2x\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--repeat")
            opt.repeat = std::max(1, std::atoi(next()));
        else if (arg == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--out")
            opt.out = next();
        else if (arg == "--baseline")
            opt.baseline = next();
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }
    banner("Hot-path perf harness (plan / sim / allocator / sweep)",
           "capuspeed regression gate");

    double calib_ms = calibrationSpinMs();
    std::cout << "calibration spin: " << cellDouble(calib_ms, 1)
              << " ms  (thread cap="
              << (opt.threads ? std::to_string(opt.threads) : "none")
              << ", repeat=" << opt.repeat
              << (opt.quick ? ", quick" : "") << ")\n\n";

    const ModelCase *cases = opt.quick ? kQuickCases : kCases;
    std::size_t n_cases =
        opt.quick ? std::size(kQuickCases) : std::size(kCases);

    bool ok = true;
    std::vector<ModelResult> models;
    Table t({"model", "batch", "plan ref (ms)", "plan incr (ms)",
             "speedup", "items", "equal", "sim steps/s"});
    for (std::size_t i = 0; i < n_cases; ++i) {
        ModelResult res = runModel(cases[i], opt);
        ok = ok && res.plansEqual;
        t.addRow({res.name, cellInt(res.batch),
                  cellDouble(res.planRefMs, 2),
                  cellDouble(res.planIncMs, 2),
                  ratioCell(res.planRefMs, res.planIncMs),
                  cellInt(static_cast<std::int64_t>(res.planItems)),
                  res.plansEqual ? "yes" : "NO",
                  cellDouble(res.simStepsPerSec, 0)});
        models.push_back(std::move(res));
    }
    t.print(std::cout);

    AllocResult alloc = runAllocator(opt.quick);
    std::cout << "\nallocator: " << cellDouble(alloc.nsPerOp, 1)
              << " ns/op over " << alloc.ops << " alloc/free ops\n";

    SweepResult sweep = runSweep(opt.threads, opt.quick);
    std::cout << "sweep scaling ladder (serial "
              << cellDouble(sweep.serialMs, 0) << " ms, "
              << sweep.hardwareThreads << " hardware threads)\n";
    ok = ok && sweep.resultsIdentical;
    for (const SweepConfig &sc : sweep.configs) {
        std::cout << "  " << sc.threads << " thread"
                  << (sc.threads == 1 ? " " : "s") << ": "
                  << cellDouble(sc.parallelMs, 0) << " ms -> "
                  << cellDouble(sc.speedup, 2) << "x"
                  << (sc.gated ? "" : "  (floor skipped: not enough cores)")
                  << "\n";
        // Hard scaling floors, hardware-conditional: >=2x at 4 workers,
        // >=3x at 8 (the capufork acceptance bar).
        double floor =
            sc.threads >= 8 ? 3.0 : (sc.threads >= 4 ? 2.0 : 0.0);
        if (sc.gated && floor > 0 && sc.speedup < floor) {
            std::cerr << "PARALLEL SWEEP SPEEDUP "
                      << cellDouble(sc.speedup, 2) << "x BELOW "
                      << cellDouble(floor, 1) << "x with " << sc.threads
                      << " workers\n";
            ok = false;
        }
    }

    // ---- steady-state replay --------------------------------------------
    const ModelCase *rcases =
        opt.quick ? kQuickReplayCases : kReplayCases;
    std::size_t n_rcases = opt.quick ? std::size(kQuickReplayCases)
                                     : std::size(kReplayCases);
    // 40-iteration quick runs leave less room to amortize the executed
    // warm-up prefix, so the quick bar is lower.
    const double min_replay_speedup = opt.quick ? 2.0 : 3.0;
    std::vector<ReplayResult> replays;
    Table rt({"model", "batch", "iters", "replay off (ms)",
              "replay on (ms)", "speedup", "executed", "synthesized",
              "identical"});
    for (std::size_t i = 0; i < n_rcases; ++i) {
        ReplayResult res = runReplay(rcases[i], opt);
        ok = ok && res.identical;
        if (res.speedup < min_replay_speedup) {
            std::cerr << res.name << "@" << res.batch
                      << ": REPLAY SPEEDUP " << cellDouble(res.speedup, 2)
                      << "x BELOW " << cellDouble(min_replay_speedup, 1)
                      << "x\n";
            ok = false;
        }
        rt.addRow({res.name, cellInt(res.batch), cellInt(res.iterations),
                   cellDouble(res.offMs, 0), cellDouble(res.onMs, 0),
                   ratioCell(res.offMs, res.onMs), cellInt(res.executed),
                   cellInt(res.replayed), res.identical ? "yes" : "NO"});
        replays.push_back(std::move(res));
    }
    std::cout << "\nsteady-state replay ("
              << (opt.quick ? 40 : 100) << "-iteration Capuchin sessions)\n";
    rt.print(std::cout);

    // ---- capuprof analytics ----------------------------------------------
    std::vector<ProfileBenchResult> profiles;
    Table pt({"model", "batch", "events", "build (ms)", "events/s",
              "conserved"});
    for (std::size_t i = 0; i < n_cases && i < 3; ++i) {
        ProfileBenchResult res = runProfileBench(cases[i], opt);
        ok = ok && res.conserved;
        pt.addRow({res.name, cellInt(res.batch),
                   cellInt(static_cast<std::int64_t>(res.events)),
                   cellDouble(res.buildMs, 2),
                   cellDouble(res.eventsPerSec, 0),
                   res.conserved ? "yes" : "NO"});
        profiles.push_back(std::move(res));
    }
    std::cout << "\ncapuprof buildProfile (bucket sweep + tensor ledger + "
                 "critical path)\n";
    pt.print(std::cout);

    // ---- max-batch search -----------------------------------------------
    const ModelKind *bcases =
        opt.quick ? kQuickMaxBatchCases : kMaxBatchCases;
    std::size_t n_bcases = opt.quick ? std::size(kQuickMaxBatchCases)
                                     : std::size(kMaxBatchCases);
    std::vector<MaxBatchResult> maxbatches;
    Table bt({"model", "max batch", "new (ms)", "probes", "legacy (ms)",
              "probes", "speedup", "par (ms)", "par x", "equal"});
    // Catches the search regressing to executed-everything probes;
    // measured headroom is ~4x, so the floor trips well before noise.
    const double min_search_speedup = opt.quick ? 1.5 : 2.0;
    const unsigned par_jobs =
        opt.threads ? std::min(8u, opt.threads) : 8u;
    for (std::size_t i = 0; i < n_bcases; ++i) {
        MaxBatchResult res = runMaxBatch(bcases[i], par_jobs);
        ok = ok && res.equal && res.parEqual;
        double sp = res.newMs > 0 ? res.legacyMs / res.newMs : 0;
        if (sp < min_search_speedup) {
            std::cerr << res.name << ": MAX-BATCH SEARCH SPEEDUP "
                      << cellDouble(sp, 2) << "x BELOW "
                      << cellDouble(min_search_speedup, 1) << "x\n";
            ok = false;
        }
        // Parallel-search floor: >=3x at 8 jobs, hardware permitting.
        if (res.parGated && res.parJobs >= 8 && res.parSpeedup < 3.0) {
            std::cerr << res.name << ": PARALLEL MAX-BATCH SPEEDUP "
                      << cellDouble(res.parSpeedup, 2) << "x BELOW 3x at "
                      << res.parJobs << " jobs\n";
            ok = false;
        }
        bt.addRow({res.name, cellInt(res.newBatch),
                   cellDouble(res.newMs, 0), cellInt(res.newProbes),
                   cellDouble(res.legacyMs, 0), cellInt(res.legacyProbes),
                   ratioCell(res.legacyMs, res.newMs),
                   cellDouble(res.parMs, 0),
                   ratioCell(res.newMs, res.parMs),
                   res.equal && res.parEqual ? "yes" : "NO"});
        maxbatches.push_back(std::move(res));
    }
    std::cout << "\nmax-batch search (findMaxBatch vs pre-capureplay "
                 "bisection, [1, 4096], 60-iteration probes; par = "
                 "speculative search at "
              << par_jobs << " jobs)\n";
    bt.print(std::cout);

    // ---- dynamic-workload adaptation (capudrift) ------------------------
    const DriftCase *dcases = opt.quick ? kQuickDriftCases : kDriftCases;
    std::size_t n_dcases = opt.quick ? std::size(kQuickDriftCases)
                                     : std::size(kDriftCases);
    std::vector<DriftBenchResult> drifts;
    Table dt({"workload", "batch", "iters", "classes", "measured",
              "adaptive (ms)", "oracle (ms)", "replan (ms)", "overhead",
              "<=15%"});
    for (std::size_t i = 0; i < n_dcases; ++i) {
        DriftBenchResult res = runDrift(dcases[i]);
        ok = ok && res.ok; // hard floor; runDrift already printed why
        dt.addRow({res.name, cellInt(res.batch), cellInt(res.iterations),
                   cellInt(res.classes), cellInt(res.measuredIters),
                   cellDouble(res.adaptiveMs, 1),
                   cellDouble(res.oracleMs, 1),
                   cellDouble(res.replanMs, 1),
                   cellDouble(res.overheadFrac * 100.0, 1) + "%",
                   res.ok ? "yes" : "NO"});
        drifts.push_back(std::move(res));
    }
    std::cout << "\ndynamic-workload adaptation (adaptive vs per-shape "
                 "oracle vs replan-from-scratch, simulated ms)\n";
    dt.print(std::cout);

    // ---- planning service (capuserve) -----------------------------------
    ServeBenchResult sv = runServeBench(opt.quick);
    ok = ok && sv.ok; // hard floor; runServeBench already printed why
    std::cout << "\nplanning service (cold measured sessions vs warm "
                 "template forks, "
              << sv.tenants << " tenants)\n"
              << "  cold: " << cellDouble(sv.coldReqPerSec, 0)
              << " req/s (p50 " << cellDouble(sv.coldP50Ms, 2) << " ms, p99 "
              << cellDouble(sv.coldP99Ms, 2) << " ms)  warm: "
              << cellDouble(sv.warmReqPerSec, 0) << " req/s (p50 "
              << cellDouble(sv.warmP50Ms, 3) << " ms, p99 "
              << cellDouble(sv.warmP99Ms, 3) << " ms)  -> "
              << cellDouble(sv.speedup, 1) << "x, digests "
              << (sv.identical ? "identical" : "MISMATCHED") << "\n";

    // ---- BENCH_perf.json -------------------------------------------------
    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": \"capu-perf-v1\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"repeat\": " << opt.repeat << ",\n"
       << "  \"threads\": "
       << (sweep.configs.empty() ? 1u : sweep.configs.back().threads)
       << ",\n"
       << "  \"calib_ms\": " << jsonNum(calib_ms) << ",\n"
       << "  \"models\": [\n";
    for (std::size_t i = 0; i < models.size(); ++i) {
        const ModelResult &m = models[i];
        js << "    {\"model\": \"" << m.name << "\", \"batch\": "
           << m.batch << ", \"plan_ref_ms\": " << jsonNum(m.planRefMs)
           << ", \"plan_inc_ms\": " << jsonNum(m.planIncMs)
           << ", \"plan_speedup\": "
           << jsonNum(m.planIncMs > 0 ? m.planRefMs / m.planIncMs : 0)
           << ", \"plan_items\": " << m.planItems
           << ", \"plans_equal\": " << (m.plansEqual ? "true" : "false")
           << ", \"sim_wall_ms\": " << jsonNum(m.simWallMs)
           << ", \"sim_steps_per_sec\": " << jsonNum(m.simStepsPerSec)
           << "}" << (i + 1 < models.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"allocator\": {\"ns_per_op\": " << jsonNum(alloc.nsPerOp)
       << ", \"ops\": " << alloc.ops << "},\n"
       << "  \"sweep\": {\"hardware_threads\": " << sweep.hardwareThreads
       << ", \"serial_ms\": " << jsonNum(sweep.serialMs)
       << ", \"results_identical\": "
       << (sweep.resultsIdentical ? "true" : "false")
       << ", \"configs\": [";
    for (std::size_t i = 0; i < sweep.configs.size(); ++i) {
        const SweepConfig &sc = sweep.configs[i];
        js << (i ? ", " : "") << "{\"threads\": " << sc.threads
           << ", \"parallel_ms\": " << jsonNum(sc.parallelMs)
           << ", \"speedup\": " << jsonNum(sc.speedup)
           << ", \"floor_enforced\": " << (sc.gated ? "true" : "false")
           << "}";
    }
    js << "]},\n"
       << "  \"replay\": [\n";
    for (std::size_t i = 0; i < replays.size(); ++i) {
        const ReplayResult &r = replays[i];
        js << "    {\"model\": \"" << r.name << "\", \"batch\": "
           << r.batch << ", \"iterations\": " << r.iterations
           << ", \"off_ms\": " << jsonNum(r.offMs)
           << ", \"on_ms\": " << jsonNum(r.onMs)
           << ", \"speedup\": " << jsonNum(r.speedup)
           << ", \"executed\": " << r.executed
           << ", \"replayed\": " << r.replayed
           << ", \"identical\": " << (r.identical ? "true" : "false")
           << "}" << (i + 1 < replays.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"max_batch\": [\n";
    for (std::size_t i = 0; i < maxbatches.size(); ++i) {
        const MaxBatchResult &b = maxbatches[i];
        js << "    {\"model\": \"" << b.name << "\", \"max_batch\": "
           << b.newBatch << ", \"new_ms\": " << jsonNum(b.newMs)
           << ", \"new_probes\": " << b.newProbes
           << ", \"legacy_ms\": " << jsonNum(b.legacyMs)
           << ", \"legacy_probes\": " << b.legacyProbes
           << ", \"search_speedup\": "
           << jsonNum(b.newMs > 0 ? b.legacyMs / b.newMs : 0)
           << ", \"equal\": " << (b.equal ? "true" : "false")
           << ",\n     \"par_jobs\": " << b.parJobs
           << ", \"par_ms\": " << jsonNum(b.parMs)
           << ", \"par_speedup\": " << jsonNum(b.parSpeedup)
           << ", \"par_equal\": " << (b.parEqual ? "true" : "false")
           << ", \"speculated\": " << b.speculated
           << ", \"served_from_warm\": " << b.servedFromWarm
           << ", \"par_floor_enforced\": "
           << (b.parGated ? "true" : "false")
           << "}" << (i + 1 < maxbatches.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"profile\": [\n";
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const ProfileBenchResult &p = profiles[i];
        js << "    {\"model\": \"" << p.name << "\", \"batch\": "
           << p.batch << ", \"events\": " << p.events
           << ", \"build_ms\": " << jsonNum(p.buildMs)
           << ", \"events_per_sec\": " << jsonNum(p.eventsPerSec)
           << ", \"conserved\": " << (p.conserved ? "true" : "false")
           << "}" << (i + 1 < profiles.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"drift\": [\n";
    for (std::size_t i = 0; i < drifts.size(); ++i) {
        const DriftBenchResult &d = drifts[i];
        js << "    {\"workload\": \"" << d.name << "\", \"batch\": "
           << d.batch << ", \"iterations\": " << d.iterations
           << ", \"classes\": " << d.classes
           << ", \"measured_iters\": " << d.measuredIters
           << ", \"adaptive_ms\": " << jsonNum(d.adaptiveMs)
           << ", \"oracle_ms\": " << jsonNum(d.oracleMs)
           << ", \"replan_ms\": " << jsonNum(d.replanMs)
           << ", \"overhead_frac\": " << jsonNum(d.overheadFrac)
           << ", \"ok\": " << (d.ok ? "true" : "false") << "}"
           << (i + 1 < drifts.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    // Additive serve section (capuserve): self-relative host-time floor,
    // gated in-process above — kept out of the "gate" blob like drift.
    js << "  \"serve\": {\"tenants\": " << sv.tenants
       << ", \"cold_requests\": " << sv.coldRequests
       << ", \"warm_requests\": " << sv.warmRequests
       << ", \"cold_req_per_sec\": " << jsonNum(sv.coldReqPerSec)
       << ", \"cold_p50_ms\": " << jsonNum(sv.coldP50Ms)
       << ", \"cold_p99_ms\": " << jsonNum(sv.coldP99Ms)
       << ",\n    \"warm_req_per_sec\": " << jsonNum(sv.warmReqPerSec)
       << ", \"warm_p50_ms\": " << jsonNum(sv.warmP50Ms)
       << ", \"warm_p99_ms\": " << jsonNum(sv.warmP99Ms)
       << ", \"warm_speedup\": " << jsonNum(sv.speedup)
       << ", \"hits\": " << sv.hits << ", \"misses\": " << sv.misses
       << ", \"identical\": " << (sv.identical ? "true" : "false")
       << ", \"ok\": " << (sv.ok ? "true" : "false") << "},\n";
    // Flat gate metrics: "time-like, lower is better" keys the baseline
    // comparison scans for by name. Drift numbers are simulated ticks, not
    // host time — they gate in-process (<= 15% of the per-shape oracle)
    // and stay out of this calibration-normalized blob.
    js << "  \"gate\": {";
    bool first = true;
    auto gate = [&](const std::string &key, double v) {
        js << (first ? "" : ", ") << "\"" << key << "\": " << jsonNum(v);
        first = false;
    };
    for (const ModelResult &m : models) {
        gate("plan_inc_ms_" + m.name, m.planIncMs);
        gate("sim_wall_ms_" + m.name, m.simWallMs);
    }
    gate("alloc_ns_per_op", alloc.nsPerOp);
    for (const ReplayResult &r : replays)
        gate("replay_on_ms_" + r.name, r.onMs);
    for (const MaxBatchResult &b : maxbatches)
        gate("max_batch_ms_" + b.name, b.newMs);
    js << "}\n}\n";

    std::ofstream out(opt.out);
    out << js.str();
    out.close();
    std::cout << "\nwrote " << opt.out << "\n";

    // ---- regression gate -------------------------------------------------
    if (!opt.baseline.empty()) {
        std::ifstream in(opt.baseline);
        if (!in) {
            std::cerr << "cannot read baseline " << opt.baseline << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        std::string base = buf.str();

        double base_calib = 0;
        if (!findJsonNumber(base, "calib_ms", base_calib) ||
            base_calib <= 0) {
            std::cerr << "baseline has no calibration spin; cannot "
                         "normalize\n";
            return 1;
        }
        // Re-scan the freshly written gate keys against the baseline.
        std::string cur = js.str();
        auto gate_start = cur.find("\"gate\"");
        std::string gate_blob = cur.substr(gate_start);
        std::size_t checked = 0;
        std::size_t scan = 0;
        for (;;) {
            auto open = gate_blob.find('"', scan);
            if (open == std::string::npos)
                break;
            auto close = gate_blob.find('"', open + 1);
            if (close == std::string::npos)
                break;
            std::string key = gate_blob.substr(open + 1, close - open - 1);
            scan = close + 1;
            if (key == "gate")
                continue;
            double cur_v = 0, base_v = 0;
            if (!findJsonNumber(cur, key, cur_v))
                continue;
            if (!findJsonNumber(base, key, base_v))
                continue; // metric new in this run: no baseline to gate on
            ++checked;
            // Normalize by each run's calibration spin; sub-millisecond
            // metrics are all noise, skip them.
            if (cur_v < 1.0 || base_v < 1.0)
                continue;
            double cur_norm = cur_v / calib_ms;
            double base_norm = base_v / base_calib;
            if (cur_norm > 2.0 * base_norm) {
                std::cerr << "PERF REGRESSION: " << key << " = "
                          << cellDouble(cur_v, 2) << " ms (normalized "
                          << cellDouble(cur_norm, 3) << ") vs baseline "
                          << cellDouble(base_v, 2) << " (normalized "
                          << cellDouble(base_norm, 3) << "), > 2x\n";
                ok = false;
            }
        }
        std::cout << "baseline gate: checked " << checked
                  << " metrics against " << opt.baseline
                  << (ok ? " -- ok\n" : " -- FAILED\n");
    }

    if (!ok) {
        std::cout << "\nPERF HARNESS FAILED (see messages above)\n";
        return 1;
    }
    return 0;
}
