/**
 * @file
 * Self-timing perf harness + regression gate (BENCH_perf.json).
 *
 * Measures the hot paths this repo optimises, per zoo model:
 *
 *  - plan derivation: PolicyMaker::build with the incremental Algorithm-2
 *    engine vs the reference full-rescan loop, on a tracker filled by a
 *    real measured iteration at an oversubscribed batch. The two plans
 *    are asserted byte-identical before any timing is reported.
 *  - simulation throughput: executed schedule steps per wall second for
 *    a Capuchin-managed training run.
 *  - allocator latency: ns per BfcAllocator allocate/deallocate over a
 *    deterministic mixed small/large workload.
 *  - sweep parallelism: wall time of a zoo mini-sweep serial vs on the
 *    work-stealing pool (reported only; the speedup gate applies when
 *    >= 4 workers are available).
 *
 * Timings are median-of-N (--repeat). A calibration spin — a fixed
 * integer workload timed on the same machine — is recorded next to the
 * metrics so the regression gate can compare *machine-normalized* times:
 * with --baseline FILE the harness fails (exit 1) when a gated metric,
 * divided by its run's calibration time, exceeds 2x the baseline's
 * normalized value. The tolerance is deliberately generous: this gate
 * catches algorithmic regressions (an accidental O(n^2) rescan), not
 * noise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/policy_maker.hh"
#include "memory/bfc_allocator.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct Options
{
    bool quick = false;
    int repeat = 3;
    unsigned threads = 0; ///< 0 = benchThreads()
    std::string out = "BENCH_perf.json";
    std::string baseline;
};

/** Oversubscribed batches: passive mode must evict, so the tracker and
 *  measured-eviction target feed PolicyMaker a non-trivial problem. */
struct ModelCase
{
    ModelKind kind;
    std::int64_t batch;
};

const ModelCase kCases[] = {
    {ModelKind::Vgg16, 260},       {ModelKind::ResNet50, 240},
    {ModelKind::ResNet152, 110},   {ModelKind::InceptionV3, 210},
    {ModelKind::InceptionV4, 120}, {ModelKind::DenseNet121, 200},
    {ModelKind::BertBase, 110},
};

const ModelCase kQuickCases[] = {
    {ModelKind::Vgg16, 260},
    {ModelKind::ResNet50, 240},
};

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** Median of the collected samples (sorted copy; even count averages). */
double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/**
 * Calibration spin: a fixed xorshift64 integer workload. Its wall time
 * scales with single-core speed the same way the plan/sim loops do, so
 * metric / spin is comparable across machines (and across Debug-ish
 * compiler updates) in a way raw milliseconds are not.
 */
double
calibrationSpinMs()
{
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    volatile std::uint64_t sink = 0;
    double t0 = nowMs();
    for (int i = 0; i < 50'000'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    sink = x;
    (void)sink;
    return nowMs() - t0;
}

bool
itemsEqual(const PlannedEviction &a, const PlannedEviction &b)
{
    return a.tensor == b.tensor && a.mode == b.mode && a.bytes == b.bytes &&
           a.evictAfterAccess == b.evictAfterAccess &&
           a.backAccess == b.backAccess && a.evictTime == b.evictTime &&
           a.backTime == b.backTime && a.swapTime == b.swapTime &&
           a.freeTime == b.freeTime &&
           a.desiredSwapInStart == b.desiredSwapInStart &&
           a.triggerTensor == b.triggerTensor &&
           a.triggerAccess == b.triggerAccess &&
           a.recomputeTime == b.recomputeTime &&
           a.estimatedOverhead == b.estimatedOverhead;
}

bool
plansEqual(const Plan &a, const Plan &b)
{
    if (a.items.size() != b.items.size() ||
        a.targetBytes != b.targetBytes ||
        a.plannedBytes != b.plannedBytes || a.swapCount != b.swapCount ||
        a.recomputeCount != b.recomputeCount)
        return false;
    for (std::size_t i = 0; i < a.items.size(); ++i) {
        if (!itemsEqual(a.items[i], b.items[i]))
            return false;
    }
    return true;
}

struct ModelResult
{
    std::string name;
    std::int64_t batch = 0;
    double planRefMs = 0;
    double planIncMs = 0;
    std::size_t planItems = 0;
    bool plansEqual = true;
    double simWallMs = 0;
    double simStepsPerSec = 0;
};

/**
 * One model's measurements. The Session run supplies three things at
 * once: the measured tracker + eviction target PolicyMaker needs, the
 * sim-throughput sample, and proof the batch actually oversubscribes.
 */
ModelResult
runModel(const ModelCase &mc, const Options &opt)
{
    ModelResult res;
    res.name = modelName(mc.kind);
    res.batch = mc.batch;

    ExecConfig cfg;
    CapuchinOptions copts;
    Session session(buildModel(mc.kind, mc.batch), cfg,
                    makeCapuchinPolicy(copts));
    const int iters = opt.quick ? 2 : 3;
    double t0 = nowMs();
    auto r = session.run(iters);
    res.simWallMs = nowMs() - t0;
    if (r.oom) {
        std::cerr << res.name << "@" << mc.batch
                  << ": unexpected OOM\n" << r.postMortem() << "\n";
        res.plansEqual = false;
        return res;
    }
    Executor &ex = session.executor();
    res.simStepsPerSec = res.simWallMs > 0
                             ? static_cast<double>(ex.schedule().size()) *
                                   iters / (res.simWallMs / 1000.0)
                             : 0;

    auto *capu = dynamic_cast<CapuchinPolicy *>(session.policy());
    if (capu == nullptr || !capu->planBuilt()) {
        std::cerr << res.name << ": no plan was built (batch not "
                     "oversubscribed?)\n";
        res.plansEqual = false;
        return res;
    }

    // Rebuild the plan standalone, with the exact inputs
    // CapuchinPolicy::buildPlan uses, under both engines.
    auto target = static_cast<std::uint64_t>(
        static_cast<double>(capu->measuredEvictedBytes()) *
        copts.savingMargin);
    auto bytes_fn = [&](TensorId id) { return ex.tensorBytes(id); };
    auto swap_fn = [&](std::uint64_t b) { return ex.swapTime(b); };

    Plan ref_plan, inc_plan;
    std::vector<double> ref_ms, inc_ms;
    for (int i = 0; i < opt.repeat; ++i) {
        PolicyMakerOptions pmo;
        pmo.incremental = false;
        PolicyMaker ref_maker(session.graph(), capu->tracker(), pmo);
        double a = nowMs();
        ref_plan =
            ref_maker.build(target, bytes_fn, swap_fn, ex.gpuCapacity());
        ref_ms.push_back(nowMs() - a);

        pmo.incremental = true;
        PolicyMaker inc_maker(session.graph(), capu->tracker(), pmo);
        a = nowMs();
        inc_plan =
            inc_maker.build(target, bytes_fn, swap_fn, ex.gpuCapacity());
        inc_ms.push_back(nowMs() - a);
    }
    res.planRefMs = median(ref_ms);
    res.planIncMs = median(inc_ms);
    res.planItems = inc_plan.items.size();
    res.plansEqual = plansEqual(ref_plan, inc_plan);
    if (!res.plansEqual)
        std::cerr << res.name << ": INCREMENTAL PLAN DIVERGES FROM "
                     "REFERENCE\n  ref: " << ref_plan.summary()
                  << "\n  inc: " << inc_plan.summary() << "\n";
    return res;
}

struct SweepResult
{
    unsigned threads = 1;
    double serialMs = 0;
    double parallelMs = 0;
    double speedup = 1.0;
};

/**
 * Parallel-sweep speedup: the same cell list run serially, then on the
 * pool. Cells are small independent sims (the pattern every bench
 * sweep uses), so this measures pool overhead + scaling, not model
 * size.
 */
SweepResult
runSweep(unsigned threads, bool quick)
{
    SweepResult res;
    res.threads = threads;
    const std::size_t n = std::max<std::size_t>(8, 2 * threads);
    auto cell = [&](std::size_t i) {
        ModelKind kind =
            i % 2 ? ModelKind::ResNet50 : ModelKind::Vgg16;
        Session session(buildModel(kind, 32), ExecConfig{},
                        makeNoOpPolicy());
        auto r = session.run(quick ? 1 : 2);
        return r.oom ? 0.0 : r.steadyThroughput(32, 0);
    };

    std::vector<double> serial(n), par(n);
    double t0 = nowMs();
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = cell(i);
    res.serialMs = nowMs() - t0;

    t0 = nowMs();
    {
        ThreadPool pool(threads);
        pool.forEachIndex(n, [&](std::size_t i) { par[i] = cell(i); });
    }
    res.parallelMs = nowMs() - t0;
    res.speedup =
        res.parallelMs > 0 ? res.serialMs / res.parallelMs : 1.0;
    if (serial != par)
        std::cerr << "SWEEP RESULTS DIVERGE between serial and parallel "
                     "runs\n";
    return res;
}

struct AllocResult
{
    double nsPerOp = 0;
    std::uint64_t ops = 0;
};

/**
 * Deterministic allocator churn: a sliding window of live allocations
 * with xorshift-chosen sizes spanning both the small best-fit path and
 * the large (segregated, high-address) path, plus periodic frees that
 * force coalescing.
 */
AllocResult
runAllocator(bool quick)
{
    AllocResult res;
    BfcAllocator alloc(16ull << 30);
    std::vector<MemHandle> live;
    live.reserve(4096);
    std::uint64_t x = 0x2545f4914f6cdd1dull;
    auto rnd = [&] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    const std::uint64_t target_ops = quick ? 50'000 : 400'000;
    std::uint64_t ops = 0;
    double t0 = nowMs();
    while (ops < target_ops) {
        std::uint64_t r = rnd();
        bool do_free = !live.empty() && (live.size() > 2048 || (r & 7) == 0);
        if (do_free) {
            std::size_t idx = rnd() % live.size();
            alloc.deallocate(live[idx]);
            live[idx] = live.back();
            live.pop_back();
            ++ops;
            continue;
        }
        // 1-in-16 large (64..320 MiB), else small (4 KiB..4 MiB).
        std::uint64_t bytes =
            (r & 15) == 0 ? (64ull << 20) + (rnd() % (256ull << 20))
                          : (4ull << 10) + (rnd() % (4ull << 20));
        auto h = alloc.allocate(bytes);
        if (h)
            live.push_back(*h);
        else if (!live.empty()) {
            alloc.deallocate(live.back());
            live.pop_back();
        }
        ++ops;
    }
    double wall = nowMs() - t0;
    alloc.checkInvariants();
    res.ops = ops;
    res.nsPerOp = ops > 0 ? wall * 1e6 / static_cast<double>(ops) : 0;
    return res;
}

std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** Scan `text` for `"key": <number>`; returns false when absent. */
bool
findJsonNumber(const std::string &text, const std::string &key, double &out)
{
    std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() && text[pos] == ' ')
        ++pos;
    try {
        out = std::stod(text.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

void
usage()
{
    std::cout <<
        "usage: perf_harness [options]\n"
        "  --quick           small model subset, short loops (CI smoke)\n"
        "  --repeat N        median-of-N timing samples (default 3)\n"
        "  --threads N       worker count for the sweep measurement\n"
        "  --out FILE        write BENCH_perf.json here (default ./)\n"
        "  --baseline FILE   compare against a previous BENCH_perf.json;\n"
        "                    exit 1 when a calibration-normalized metric\n"
        "                    regresses by more than 2x\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--repeat")
            opt.repeat = std::max(1, std::atoi(next()));
        else if (arg == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--out")
            opt.out = next();
        else if (arg == "--baseline")
            opt.baseline = next();
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }
    if (opt.threads == 0)
        opt.threads = benchThreads();

    banner("Hot-path perf harness (plan / sim / allocator / sweep)",
           "capuspeed regression gate");

    double calib_ms = calibrationSpinMs();
    std::cout << "calibration spin: " << cellDouble(calib_ms, 1)
              << " ms  (threads=" << opt.threads
              << ", repeat=" << opt.repeat
              << (opt.quick ? ", quick" : "") << ")\n\n";

    const ModelCase *cases = opt.quick ? kQuickCases : kCases;
    std::size_t n_cases =
        opt.quick ? std::size(kQuickCases) : std::size(kCases);

    bool ok = true;
    std::vector<ModelResult> models;
    Table t({"model", "batch", "plan ref (ms)", "plan incr (ms)",
             "speedup", "items", "equal", "sim steps/s"});
    for (std::size_t i = 0; i < n_cases; ++i) {
        ModelResult res = runModel(cases[i], opt);
        ok = ok && res.plansEqual;
        t.addRow({res.name, cellInt(res.batch),
                  cellDouble(res.planRefMs, 2),
                  cellDouble(res.planIncMs, 2),
                  ratioCell(res.planRefMs, res.planIncMs),
                  cellInt(static_cast<std::int64_t>(res.planItems)),
                  res.plansEqual ? "yes" : "NO",
                  cellDouble(res.simStepsPerSec, 0)});
        models.push_back(std::move(res));
    }
    t.print(std::cout);

    AllocResult alloc = runAllocator(opt.quick);
    std::cout << "\nallocator: " << cellDouble(alloc.nsPerOp, 1)
              << " ns/op over " << alloc.ops << " alloc/free ops\n";

    SweepResult sweep = runSweep(opt.threads, opt.quick);
    std::cout << "sweep: serial " << cellDouble(sweep.serialMs, 0)
              << " ms, parallel " << cellDouble(sweep.parallelMs, 0)
              << " ms on " << sweep.threads << " threads -> "
              << cellDouble(sweep.speedup, 2) << "x\n";
    if (sweep.threads >= 4 && sweep.speedup < 2.0) {
        std::cerr << "PARALLEL SWEEP SPEEDUP BELOW 2x with "
                  << sweep.threads << " workers\n";
        ok = false;
    }

    // ---- BENCH_perf.json -------------------------------------------------
    std::ostringstream js;
    js << "{\n"
       << "  \"schema\": \"capu-perf-v1\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"repeat\": " << opt.repeat << ",\n"
       << "  \"threads\": " << opt.threads << ",\n"
       << "  \"calib_ms\": " << jsonNum(calib_ms) << ",\n"
       << "  \"models\": [\n";
    for (std::size_t i = 0; i < models.size(); ++i) {
        const ModelResult &m = models[i];
        js << "    {\"model\": \"" << m.name << "\", \"batch\": "
           << m.batch << ", \"plan_ref_ms\": " << jsonNum(m.planRefMs)
           << ", \"plan_inc_ms\": " << jsonNum(m.planIncMs)
           << ", \"plan_speedup\": "
           << jsonNum(m.planIncMs > 0 ? m.planRefMs / m.planIncMs : 0)
           << ", \"plan_items\": " << m.planItems
           << ", \"plans_equal\": " << (m.plansEqual ? "true" : "false")
           << ", \"sim_wall_ms\": " << jsonNum(m.simWallMs)
           << ", \"sim_steps_per_sec\": " << jsonNum(m.simStepsPerSec)
           << "}" << (i + 1 < models.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"allocator\": {\"ns_per_op\": " << jsonNum(alloc.nsPerOp)
       << ", \"ops\": " << alloc.ops << "},\n"
       << "  \"sweep\": {\"threads\": " << sweep.threads
       << ", \"serial_ms\": " << jsonNum(sweep.serialMs)
       << ", \"parallel_ms\": " << jsonNum(sweep.parallelMs)
       << ", \"speedup\": " << jsonNum(sweep.speedup) << "},\n";
    // Flat gate metrics: "time-like, lower is better" keys the baseline
    // comparison scans for by name.
    js << "  \"gate\": {";
    bool first = true;
    auto gate = [&](const std::string &key, double v) {
        js << (first ? "" : ", ") << "\"" << key << "\": " << jsonNum(v);
        first = false;
    };
    for (const ModelResult &m : models) {
        gate("plan_inc_ms_" + m.name, m.planIncMs);
        gate("sim_wall_ms_" + m.name, m.simWallMs);
    }
    gate("alloc_ns_per_op", alloc.nsPerOp);
    js << "}\n}\n";

    std::ofstream out(opt.out);
    out << js.str();
    out.close();
    std::cout << "\nwrote " << opt.out << "\n";

    // ---- regression gate -------------------------------------------------
    if (!opt.baseline.empty()) {
        std::ifstream in(opt.baseline);
        if (!in) {
            std::cerr << "cannot read baseline " << opt.baseline << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        std::string base = buf.str();

        double base_calib = 0;
        if (!findJsonNumber(base, "calib_ms", base_calib) ||
            base_calib <= 0) {
            std::cerr << "baseline has no calibration spin; cannot "
                         "normalize\n";
            return 1;
        }
        // Re-scan the freshly written gate keys against the baseline.
        std::string cur = js.str();
        auto gate_start = cur.find("\"gate\"");
        std::string gate_blob = cur.substr(gate_start);
        std::size_t checked = 0;
        std::size_t scan = 0;
        for (;;) {
            auto open = gate_blob.find('"', scan);
            if (open == std::string::npos)
                break;
            auto close = gate_blob.find('"', open + 1);
            if (close == std::string::npos)
                break;
            std::string key = gate_blob.substr(open + 1, close - open - 1);
            scan = close + 1;
            if (key == "gate")
                continue;
            double cur_v = 0, base_v = 0;
            if (!findJsonNumber(cur, key, cur_v))
                continue;
            if (!findJsonNumber(base, key, base_v))
                continue; // metric new in this run: no baseline to gate on
            ++checked;
            // Normalize by each run's calibration spin; sub-millisecond
            // metrics are all noise, skip them.
            if (cur_v < 1.0 || base_v < 1.0)
                continue;
            double cur_norm = cur_v / calib_ms;
            double base_norm = base_v / base_calib;
            if (cur_norm > 2.0 * base_norm) {
                std::cerr << "PERF REGRESSION: " << key << " = "
                          << cellDouble(cur_v, 2) << " ms (normalized "
                          << cellDouble(cur_norm, 3) << ") vs baseline "
                          << cellDouble(base_v, 2) << " (normalized "
                          << cellDouble(base_norm, 3) << "), > 2x\n";
                ok = false;
            }
        }
        std::cout << "baseline gate: checked " << checked
                  << " metrics against " << opt.baseline
                  << (ok ? " -- ok\n" : " -- FAILED\n");
    }

    if (!ok) {
        std::cout << "\nPERF HARNESS FAILED (see messages above)\n";
        return 1;
    }
    return 0;
}
