/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation (§6) and prints paper-reported values next to the measured
 * ones where the paper gives numbers. Absolute throughputs come from a
 * simulator, so the *shape* — orderings, ratios, crossovers — is the
 * reproduction target (see EXPERIMENTS.md).
 */

#ifndef CAPU_BENCH_COMMON_HH
#define CAPU_BENCH_COMMON_HH

#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"
#include "stats/table.hh"
#include "stats/timeline.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace capu::bench
{

/** The comparison systems of §6.1. */
enum class System
{
    TfOri,
    Vdnn,
    OpenAiM,
    OpenAiS,
    Capuchin,
};

inline const char *
systemName(System s)
{
    switch (s) {
      case System::TfOri: return "TF-ori";
      case System::Vdnn: return "vDNN";
      case System::OpenAiM: return "OpenAI-M";
      case System::OpenAiS: return "OpenAI-S";
      case System::Capuchin: return "Capuchin";
    }
    return "?";
}

inline std::unique_ptr<MemoryPolicy>
makePolicy(System s, CapuchinOptions capu_opts = {})
{
    switch (s) {
      case System::TfOri: return makeNoOpPolicy();
      case System::Vdnn: return makeVdnnPolicy();
      case System::OpenAiM:
        return makeCheckpointingPolicy(CheckpointingPolicy::Mode::Memory);
      case System::OpenAiS:
        return makeCheckpointingPolicy(CheckpointingPolicy::Mode::Speed);
      case System::Capuchin: return makeCapuchinPolicy(capu_opts);
    }
    return nullptr;
}

/** Throughput (samples/s) at steady state; 0 when the run OOMs. */
inline double
steadySpeed(ModelKind kind, std::int64_t batch, System sys,
            const ExecConfig &cfg = {}, int iterations = 12, int skip = 6,
            CapuchinOptions capu_opts = {})
{
    Session session(buildModel(kind, batch), cfg,
                    makePolicy(sys, capu_opts));
    auto r = session.run(iterations);
    if (r.oom)
        return 0.0;
    return r.steadyThroughput(batch, skip);
}

/** findMaxBatch over the zoo with the standard P100 config. */
inline std::int64_t
maxBatch(ModelKind kind, System sys, const ExecConfig &cfg = {})
{
    return findMaxBatch(
        [kind](std::int64_t b) { return buildModel(kind, b); },
        [sys] { return makePolicy(sys); }, cfg, 3, 1, 4096);
}

/** Host wall clock in milliseconds, for reporting sweep durations. */
inline double
wallMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Worker count for bench sweeps: the CAPU_BENCH_THREADS environment
 * variable overrides the hardware default (set it to 1 to force a
 * serial sweep, e.g. when bisecting a single cell).
 */
inline unsigned
benchThreads()
{
    if (const char *env = std::getenv("CAPU_BENCH_THREADS")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return ThreadPool::defaultThreads();
}

/**
 * Evaluate job(0) .. job(n-1) across a worker pool and return the
 * results in index order. Each job owns its Session and Graph — cells
 * share no mutable state — so parallelism reorders only wall-clock
 * completion, never a result: the printed tables are identical at any
 * thread count, including CAPU_BENCH_THREADS=1 (fully serial).
 */
template <typename Job>
auto
sweepParallel(std::size_t n, Job job, unsigned threads)
    -> std::vector<decltype(job(std::size_t{}))>
{
    using R = decltype(job(std::size_t{}));
    std::vector<R> out(n);
    ThreadPool pool(threads);
    pool.forEachIndex(n, [&](std::size_t i) { out[i] = job(i); });
    return out;
}

/** As above with the default worker count (CAPU_BENCH_THREADS / hw). */
template <typename Job>
auto
sweepParallel(std::size_t n, Job job)
    -> std::vector<decltype(job(std::size_t{}))>
{
    return sweepParallel(n, std::move(job), benchThreads());
}

/** "x.xx" ratio cell, guarding division by zero. */
inline std::string
ratioCell(double num, double den)
{
    if (den <= 0)
        return "-";
    return cellDouble(num / den, 2) + "x";
}

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    // Policy-internal inform()/warn() chatter would drown the tables.
    setLogEnabled(false);
    std::cout << "==========================================================="
                 "=====================\n"
              << title << "\n"
              << "(reproduces " << paper_ref
              << " of Peng et al., \"Capuchin\", ASPLOS 2020; simulated "
                 "P100)\n"
              << "==========================================================="
                 "=====================\n\n";
}

} // namespace capu::bench

#endif // CAPU_BENCH_COMMON_HH
