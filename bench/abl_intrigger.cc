/**
 * @file
 * Ablation: in-trigger prefetching vs purely on-demand swap-in.
 *
 * Not a paper figure — this isolates the value of §4.4's in-trigger
 * placement (the design choice DESIGN.md calls out): with prefetching
 * disabled, every planned swap pays its full fetch latency at the
 * back-access, like a passive-mode system (GeePS-style virtualization,
 * the paper's §7 "computation graph agnostic techniques" strawman).
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Ablation: in-trigger prefetch vs on-demand swap-in",
           "design study (section 4.4 mechanism)");

    Table t({"model", "batch", "on-demand img/s", "prefetch img/s",
             "gain"});
    struct Point
    {
        ModelKind kind;
        std::int64_t batch;
    };
    for (Point p : {Point{ModelKind::ResNet50, 300},
                    Point{ModelKind::InceptionV3, 250},
                    Point{ModelKind::Vgg16, 260}}) {
        CapuchinOptions on_demand;
        on_demand.enablePrefetch = false;
        on_demand.enableRecompute = false; // isolate the swap path
        CapuchinOptions prefetch;
        prefetch.enableRecompute = false;

        double v_od = steadySpeed(p.kind, p.batch, System::Capuchin, {},
                                  16, 10, on_demand);
        double v_pf = steadySpeed(p.kind, p.batch, System::Capuchin, {},
                                  16, 10, prefetch);
        t.addRow({modelName(p.kind), cellInt(p.batch), cellDouble(v_od, 1),
                  cellDouble(v_pf, 1), ratioCell(v_pf, v_od)});
    }
    t.print(std::cout);
    std::cout << "\nTakeaway: hiding the swap-in behind earlier accesses "
                 "is where most of swapping's value lives; on-demand "
                 "fetching serializes the PCIe latency into the critical "
                 "path.\n";
    return 0;
}
