/**
 * @file
 * Section 6.3.2 "Runtime overhead": cost of Capuchin's tensor-access
 * tracking when no memory optimization is needed.
 *
 * Paper findings: at each model's TF-ori maximum batch the overhead is
 * <1% (average 0.36%); at a smaller batch at most 1.6% (average 0.9%).
 * In eager mode: 1.5% (ResNet-50) and 2.5% (DenseNet).
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Runtime overhead of access tracking (no oversubscription)",
           "section 6.3.2 (Figure 9's first points)");

    Table t({"model", "batch", "TF-ori img/s", "Capuchin img/s",
             "overhead", "paper"});

    double sum = 0;
    int n = 0;
    for (ModelKind kind : graphModeModels()) {
        // ~80% of the TF-ori maximum: safely inside memory.
        std::int64_t batch = maxBatch(kind, System::TfOri) * 4 / 5;
        double tf = steadySpeed(kind, batch, System::TfOri, {}, 6, 2);
        double capu = steadySpeed(kind, batch, System::Capuchin, {}, 6, 2);
        double overhead = tf > 0 ? 1.0 - capu / tf : 0.0;
        sum += overhead;
        ++n;
        t.addRow({modelName(kind), cellInt(batch), cellDouble(tf, 1),
                  cellDouble(capu, 1), cellPercent(overhead, 2), "< 1%"});
    }
    t.print(std::cout);
    std::cout << "\naverage overhead: " << cellPercent(sum / n, 2)
              << " (paper: 0.36% at max batch, 0.9% at small batch)\n";

    std::cout << "\nEager mode:\n";
    ExecConfig eager;
    eager.eagerMode = true;
    Table e({"model", "batch", "TF-ori img/s", "Capuchin img/s", "overhead",
             "paper"});
    for (ModelKind kind : eagerModeModels()) {
        std::int64_t batch = maxBatch(kind, System::TfOri, eager) * 4 / 5;
        double tf = steadySpeed(kind, batch, System::TfOri, eager, 6, 2);
        double capu = steadySpeed(kind, batch, System::Capuchin, eager, 6,
                                  2);
        e.addRow({modelName(kind), cellInt(batch), cellDouble(tf, 1),
                  cellDouble(capu, 1), cellPercent(1.0 - capu / tf, 2),
                  kind == ModelKind::ResNet50 ? "1.5%" : "2.5%"});
    }
    e.print(std::cout);

    std::cout << "\nNote: our tracker hangs off the executor's existing "
                 "access hooks, so the simulated overhead is ~0; the "
                 "paper's small overhead comes from host-side "
                 "lock/bookkeeping our timing model folds into kernel "
                 "launch cost.\n";
    return 0;
}
