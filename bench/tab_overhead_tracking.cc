/**
 * @file
 * Section 6.3.2 "Runtime overhead": cost of Capuchin's tensor-access
 * tracking when no memory optimization is needed.
 *
 * Paper findings: at each model's TF-ori maximum batch the overhead is
 * <1% (average 0.36%); at a smaller batch at most 1.6% (average 0.9%).
 * In eager mode: 1.5% (ResNet-50) and 2.5% (DenseNet).
 *
 * Also measures our own observability overhead (capuscope): the same
 * workload at --obs-level off/metrics/full, host wall-clock compared.
 * Machine-readable results land in BENCH_overhead.json.
 */

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/common.hh"
#include "obs/obs.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct ObsRun
{
    obs::ObsLevel level;
    double wallMs = 0;
    Tick simTicks = 0;
    std::uint64_t events = 0;
};

/** Run ResNet-50 under Capuchin at one obs level, wall-clock timed. */
ObsRun
timedRun(obs::ObsLevel level, std::int64_t batch, int iterations)
{
    ExecConfig cfg;
    cfg.obsLevel = level;
    Session s(buildModel(ModelKind::ResNet50, batch), cfg,
              makePolicy(System::Capuchin));
    auto t0 = std::chrono::steady_clock::now();
    auto r = s.run(iterations);
    auto t1 = std::chrono::steady_clock::now();
    ObsRun run;
    run.level = level;
    run.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (!r.oom)
        for (const auto &it : r.iterations)
            run.simTicks += it.duration();
    run.events = s.executor().obs().tracer.recorded();
    return run;
}

} // namespace

int
main()
{
    banner("Runtime overhead of access tracking (no oversubscription)",
           "section 6.3.2 (Figure 9's first points)");

    Table t({"model", "batch", "TF-ori img/s", "Capuchin img/s",
             "overhead", "paper"});

    struct TrackerRow
    {
        std::string model;
        std::int64_t batch;
        double tf;
        double capu;
        double overhead;
    };
    std::vector<TrackerRow> tracker_rows;

    double sum = 0;
    int n = 0;
    for (ModelKind kind : graphModeModels()) {
        // ~80% of the TF-ori maximum: safely inside memory.
        std::int64_t batch = maxBatch(kind, System::TfOri) * 4 / 5;
        double tf = steadySpeed(kind, batch, System::TfOri, {}, 6, 2);
        double capu = steadySpeed(kind, batch, System::Capuchin, {}, 6, 2);
        double overhead = tf > 0 ? 1.0 - capu / tf : 0.0;
        sum += overhead;
        ++n;
        tracker_rows.push_back({modelName(kind), batch, tf, capu, overhead});
        t.addRow({modelName(kind), cellInt(batch), cellDouble(tf, 1),
                  cellDouble(capu, 1), cellPercent(overhead, 2), "< 1%"});
    }
    t.print(std::cout);
    std::cout << "\naverage overhead: " << cellPercent(sum / n, 2)
              << " (paper: 0.36% at max batch, 0.9% at small batch)\n";

    std::cout << "\nEager mode:\n";
    ExecConfig eager;
    eager.eagerMode = true;
    Table e({"model", "batch", "TF-ori img/s", "Capuchin img/s", "overhead",
             "paper"});
    for (ModelKind kind : eagerModeModels()) {
        std::int64_t batch = maxBatch(kind, System::TfOri, eager) * 4 / 5;
        double tf = steadySpeed(kind, batch, System::TfOri, eager, 6, 2);
        double capu = steadySpeed(kind, batch, System::Capuchin, eager, 6,
                                  2);
        e.addRow({modelName(kind), cellInt(batch), cellDouble(tf, 1),
                  cellDouble(capu, 1), cellPercent(1.0 - capu / tf, 2),
                  kind == ModelKind::ResNet50 ? "1.5%" : "2.5%"});
    }
    e.print(std::cout);

    std::cout << "\nNote: our tracker hangs off the executor's existing "
                 "access hooks, so the simulated overhead is ~0; the "
                 "paper's small overhead comes from host-side "
                 "lock/bookkeeping our timing model folds into kernel "
                 "launch cost.\n";

    // Observability (capuscope) overhead: the same ResNet-50 workload at
    // every obs level. Host wall-clock is what tracing costs us; the
    // simulated time must not move at all (observer effect = 0).
    std::cout << "\nObservability overhead (ResNet-50, Capuchin policy):\n";
    const std::int64_t obs_batch =
        maxBatch(ModelKind::ResNet50, System::TfOri) * 4 / 5;
    const int obs_iters = 6;
    std::vector<ObsRun> obs_runs;
    for (auto level : {obs::ObsLevel::Off, obs::ObsLevel::Metrics,
                       obs::ObsLevel::Full})
        obs_runs.push_back(timedRun(level, obs_batch, obs_iters));

    Table ot({"obs level", "wall ms", "overhead", "events", "sim time"});
    for (const auto &run : obs_runs) {
        double over = obs_runs[0].wallMs > 0
                          ? run.wallMs / obs_runs[0].wallMs - 1.0
                          : 0.0;
        ot.addRow({obs::obsLevelName(run.level), cellDouble(run.wallMs, 2),
                   cellPercent(over, 2),
                   cellInt(static_cast<std::int64_t>(run.events)),
                   formatTicks(run.simTicks)});
    }
    ot.print(std::cout);
    bool observer_effect = false;
    for (const auto &run : obs_runs)
        if (run.simTicks != obs_runs[0].simTicks)
            observer_effect = true;
    std::cout << (observer_effect
                      ? "OBSERVER EFFECT: simulated time moved!\n"
                      : "observer effect: none (simulated time identical "
                        "at every obs level)\n");

    // Machine-readable dump for CI trend tracking.
    std::ofstream js("BENCH_overhead.json");
    if (js) {
        js << "{\n  \"bench\": \"tab_overhead_tracking\",\n"
           << "  \"tracker\": {\n    \"average_overhead\": " << (sum / n)
           << ",\n    \"models\": [\n";
        for (std::size_t i = 0; i < tracker_rows.size(); ++i) {
            const auto &row = tracker_rows[i];
            js << "      {\"model\": \"" << row.model
               << "\", \"batch\": " << row.batch
               << ", \"tf_img_s\": " << row.tf
               << ", \"capuchin_img_s\": " << row.capu
               << ", \"overhead\": " << row.overhead << "}"
               << (i + 1 < tracker_rows.size() ? "," : "") << "\n";
        }
        js << "    ]\n  },\n  \"observability\": {\n"
           << "    \"model\": \"resnet50\", \"batch\": " << obs_batch
           << ", \"iterations\": " << obs_iters << ",\n    \"levels\": [\n";
        for (std::size_t i = 0; i < obs_runs.size(); ++i) {
            const auto &run = obs_runs[i];
            double over = obs_runs[0].wallMs > 0
                              ? run.wallMs / obs_runs[0].wallMs - 1.0
                              : 0.0;
            js << "      {\"level\": \"" << obs::obsLevelName(run.level)
               << "\", \"wall_ms\": " << run.wallMs
               << ", \"overhead\": " << over
               << ", \"events\": " << run.events
               << ", \"sim_ns\": " << run.simTicks << "}"
               << (i + 1 < obs_runs.size() ? "," : "") << "\n";
        }
        js << "    ],\n    \"observer_effect\": "
           << (observer_effect ? "true" : "false") << "\n  }\n}\n";
        std::cout << "\nwrote BENCH_overhead.json\n";
    }
    return observer_effect ? 1 : 0;
}
