/**
 * @file
 * Figure 9 (a-f): training speed vs batch size, graph mode, all systems.
 *
 * Paper shape to reproduce per model:
 *  - TF-ori is fastest but dies at its memory wall;
 *  - vDNN is slow and flat (static layer-wise swapping);
 *  - OpenAI is flat at a moderate level (static recomputation);
 *  - Capuchin tracks TF-ori (<3% loss at +20% batch), degrades slowly
 *    (~26% at 75% of its own max), and is the fastest managed system at
 *    every batch; on Vgg16/BERT it can even *gain* speed from freed
 *    memory / better GPU utilization.
 */

#include <iostream>
#include <vector>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct Sweep
{
    ModelKind kind;
    std::vector<std::int64_t> batches; ///< roughly the paper's x-axis
};

const Sweep kSweeps[] = {
    {ModelKind::Vgg16, {200, 220, 240, 260, 280, 300, 320}},
    {ModelKind::ResNet50, {140, 210, 280, 350, 420, 560, 700, 900, 1000}},
    {ModelKind::InceptionV3, {110, 170, 230, 290, 350, 470, 590, 700}},
    {ModelKind::ResNet152, {50, 115, 180, 245, 310, 440, 570, 700}},
    {ModelKind::InceptionV4, {60, 100, 140, 180, 220, 300, 380, 460}},
    {ModelKind::BertBase, {40, 80, 120, 160, 200, 280, 360, 440}},
};

} // namespace

int
main()
{
    banner("Training speed vs batch size, graph mode (six models)",
           "Figure 9 (a-f)");

    // Flatten the (model, batch, system) cube into independent cells and
    // fan them out across the worker pool; each cell runs its own Session
    // so results are identical at any thread count. The serial loop below
    // only formats.
    const System kSystems[] = {System::TfOri, System::Vdnn,
                               System::OpenAiM, System::OpenAiS,
                               System::Capuchin};
    struct CellJob
    {
        const Sweep *sweep;
        std::int64_t batch;
        System sys;
    };
    std::vector<CellJob> jobs;
    for (const Sweep &sweep : kSweeps) {
        for (std::int64_t batch : sweep.batches) {
            for (System sys : kSystems)
                jobs.push_back(CellJob{&sweep, batch, sys});
        }
    }
    auto cells = sweepParallel(jobs.size(), [&](std::size_t i) {
        const CellJob &job = jobs[i];
        if (job.sweep->kind == ModelKind::BertBase &&
            job.sys == System::Vdnn)
            return std::string("-");
        int iters = job.sys == System::Capuchin ? 16 : 6;
        int skip = job.sys == System::Capuchin ? 10 : 3;
        double v = steadySpeed(job.sweep->kind, job.batch, job.sys, {},
                               iters, skip);
        return v > 0 ? cellDouble(v, 1) : std::string("OOM");
    });

    std::size_t next = 0;
    for (const Sweep &sweep : kSweeps) {
        std::cout << "--- " << modelName(sweep.kind) << " ---\n";
        Table t({"batch", "TF-ori", "vDNN", "OpenAI-M", "OpenAI-S",
                 "Capuchin"});
        for (std::int64_t batch : sweep.batches) {
            t.addRow({cellInt(batch), cells[next], cells[next + 1],
                      cells[next + 2], cells[next + 3], cells[next + 4]});
            next += 5;
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Shape checks vs the paper: TF-ori fastest until its "
                 "wall; Capuchin degrades gracefully and leads every "
                 "managed system; vDNN flat-slow; OpenAI flat-moderate.\n";
    return 0;
}
