/**
 * @file
 * Figure 9 (a-f): training speed vs batch size, graph mode, all systems.
 *
 * Paper shape to reproduce per model:
 *  - TF-ori is fastest but dies at its memory wall;
 *  - vDNN is slow and flat (static layer-wise swapping);
 *  - OpenAI is flat at a moderate level (static recomputation);
 *  - Capuchin tracks TF-ori (<3% loss at +20% batch), degrades slowly
 *    (~26% at 75% of its own max), and is the fastest managed system at
 *    every batch; on Vgg16/BERT it can even *gain* speed from freed
 *    memory / better GPU utilization.
 */

#include <iostream>
#include <vector>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct Sweep
{
    ModelKind kind;
    std::vector<std::int64_t> batches; ///< roughly the paper's x-axis
};

const Sweep kSweeps[] = {
    {ModelKind::Vgg16, {200, 220, 240, 260, 280, 300, 320}},
    {ModelKind::ResNet50, {140, 210, 280, 350, 420, 560, 700, 900, 1000}},
    {ModelKind::InceptionV3, {110, 170, 230, 290, 350, 470, 590, 700}},
    {ModelKind::ResNet152, {50, 115, 180, 245, 310, 440, 570, 700}},
    {ModelKind::InceptionV4, {60, 100, 140, 180, 220, 300, 380, 460}},
    {ModelKind::BertBase, {40, 80, 120, 160, 200, 280, 360, 440}},
};

} // namespace

int
main()
{
    banner("Training speed vs batch size, graph mode (six models)",
           "Figure 9 (a-f)");

    for (const Sweep &sweep : kSweeps) {
        std::cout << "--- " << modelName(sweep.kind) << " ---\n";
        Table t({"batch", "TF-ori", "vDNN", "OpenAI-M", "OpenAI-S",
                 "Capuchin"});
        for (std::int64_t batch : sweep.batches) {
            auto cell = [&](System sys) {
                if (sweep.kind == ModelKind::BertBase &&
                    sys == System::Vdnn)
                    return std::string("-");
                int iters = sys == System::Capuchin ? 16 : 6;
                int skip = sys == System::Capuchin ? 10 : 3;
                double v = steadySpeed(sweep.kind, batch, sys, {}, iters,
                                       skip);
                return v > 0 ? cellDouble(v, 1) : std::string("OOM");
            };
            t.addRow({cellInt(batch), cell(System::TfOri),
                      cell(System::Vdnn), cell(System::OpenAiM),
                      cell(System::OpenAiS), cell(System::Capuchin)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Shape checks vs the paper: TF-ori fastest until its "
                 "wall; Capuchin degrades gracefully and leads every "
                 "managed system; vDNN flat-slow; OpenAI flat-moderate.\n";
    return 0;
}
