/**
 * @file
 * Figure 2: execution-time spread of InceptionV3's convolution layers.
 *
 * Paper findings on a real P100: 94 convolutions, min 474 us, max
 * 17,727 us (a 37x spread), 95.7% under 3 ms. The spread is the paper's
 * argument against layer-type heuristics ("convolutions are expensive")
 * used by vDNN and gradient-checkpointing's speed mode.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "exec/cost_model.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("InceptionV3 convolution layer execution times", "Figure 2");

    // The paper profiles at its InceptionV3 working batch; batch 32 is a
    // typical production setting and matches the reported magnitudes.
    const std::int64_t batch = 32;
    Graph g = buildInceptionV3(batch);
    CostModel cm(GpuDeviceSpec::p100());

    std::vector<double> times_us;
    for (const auto &op : g.ops()) {
        if (op.category == OpCategory::Conv && op.phase == Phase::Forward)
            times_us.push_back(ticksToUs(cm.opDuration(op)));
    }
    std::sort(times_us.begin(), times_us.end());

    std::size_t n = times_us.size();
    double min = times_us.front();
    double max = times_us.back();
    std::size_t under3ms = 0;
    for (double t : times_us)
        under3ms += t < 3000 ? 1 : 0;

    Table t({"metric", "paper", "measured"});
    t.addRow({"conv layers", "94", cellInt(static_cast<std::int64_t>(n))});
    t.addRow({"min (us)", "474", cellDouble(min, 0)});
    t.addRow({"max (us)", "17727", cellDouble(max, 0)});
    t.addRow({"max/min ratio", "37x", cellDouble(max / min, 1) + "x"});
    t.addRow({"share under 3 ms", "95.7%",
              cellPercent(static_cast<double>(under3ms) /
                          static_cast<double>(n))});
    t.print(std::cout);

    std::cout << "\nDuration histogram (forward convolutions):\n";
    const double buckets[] = {500, 1000, 2000, 3000, 5000, 10000, 1e18};
    const char *labels[] = {"< 0.5 ms", "0.5-1 ms", "1-2 ms",   "2-3 ms",
                            "3-5 ms",   "5-10 ms",  "> 10 ms"};
    std::size_t lo = 0;
    for (int b = 0; b < 7; ++b) {
        std::size_t hi = lo;
        while (hi < n && times_us[hi] < buckets[b])
            ++hi;
        std::cout << "  " << labels[b] << ": " << std::string(hi - lo, '#')
                  << " (" << hi - lo << ")\n";
        lo = hi;
    }
    std::cout << "\nTakeaway: same layer type, ~" << cellDouble(max / min, 0)
              << "x duration spread -> static layer-type policies "
                 "misjudge both swap overlap and recompute cost.\n";
    return 0;
}
