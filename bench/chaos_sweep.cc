/**
 * @file
 * Chaos sweep: the capuchaos robustness matrix (DESIGN.md §9).
 *
 * Runs a model-zoo subset under every documented fault plan and checks
 * the two properties the degradation design promises: every run
 * *completes* (faults degrade service, they never abort training), and
 * the slowdown stays bounded (recovery paths cost transfers and replays,
 * not livelock). The recovery counters printed per cell are the same
 * ones capusim reports and the fault-annotated traces carry.
 *
 * Exit code is non-zero if any run dies with an unhandled OOM or
 * exceeds the slowdown bound — this bench doubles as the CI chaos gate.
 */

#include <iostream>
#include <iterator>

#include "analysis/lint_hooks.hh"
#include "bench/common.hh"
#include "faults/fault_engine.hh"
#include "faults/fault_spec.hh"

using namespace capu;
using namespace capu::bench;

namespace
{

struct FaultPlanRow
{
    const char *label;
    const char *spec;
};

/** One fault plan per documented clause, plus everything at once. */
const FaultPlanRow kPlans[] = {
    {"none", ""},
    {"pcie-window", "pcie:0.5@500-2500"},
    {"jitter", "jitter:0.15"},
    {"hostcap", "hostcap:4GiB"},
    {"swapfail", "swapfail:p=0.05,retries=3"},
    {"storm", "pcie:0.6@500-2500;jitter:0.1;hostcap:6GiB;"
              "hostfail:p=0.02;swapfail:p=0.02,retries=3"},
};

struct Workload
{
    ModelKind kind;
    std::int64_t batch;
};

const Workload kZoo[] = {
    {ModelKind::Vgg16, 230},
    {ModelKind::ResNet50, 320},
    {ModelKind::BertBase, 64},
};

/** Recovery paths cost transfers and replays, never livelock. */
constexpr double kSlowdownBound = 6.0;
constexpr int kIterations = 6;

std::string
recoverySummary(const faults::FaultStats &fs)
{
    std::string out;
    auto add = [&](const char *k, std::uint64_t v) {
        if (v == 0)
            return;
        if (!out.empty())
            out += " ";
        out += k;
        out += "=";
        out += std::to_string(v);
    };
    add("retry", fs.swapRetries);
    add("forced", fs.swapForced);
    add("drop", fs.dropFallbacks);
    add("skip", fs.swapSkips);
    add("miss", fs.prefetchMisses);
    add("remeasure", fs.remeasures);
    add("shift", fs.feedbackShifts);
    return out.empty() ? "-" : out;
}

} // namespace

/** One (workload, fault plan) cell, computed independently of the rest. */
struct CellResult
{
    bool oom = false;
    bool faulted = false;
    double wall = 0.0; ///< simulated seconds — host scheduling can't move it
    std::string recovery;
    std::string postMortem;
};

CellResult
runCell(const Workload &w, const FaultPlanRow &p)
{
    ExecConfig cfg;
    cfg.faults = faults::parseFaultSpec(p.spec);
    cfg.seed = 42;
    CapuchinOptions opts;
    // Lint stays fatal on the clean baseline; under injected
    // faults plan-level findings (e.g. host staging overcommit
    // against a capped pool) are the expected inputs to the
    // degradation paths, so the hook only observes.
    LintHookOptions hook;
    hook.panicOnError = !cfg.faults.enabled();
    hook.printFindings = false;
    enablePlanLint(opts, hook);
    if (cfg.faults.enabled())
        opts.driftThreshold = 0.35; // arm the drift watchdog
    Session session(buildModel(w.kind, w.batch), cfg,
                    makeCapuchinPolicy(opts));
    auto r = session.run(kIterations);

    CellResult cell;
    cell.faulted = cfg.faults.enabled();
    if (r.oom) {
        cell.oom = true;
        cell.postMortem = r.postMortem();
        return cell;
    }
    cell.wall = ticksToSec(r.iterations.back().end -
                           r.iterations.front().begin);
    cell.recovery =
        recoverySummary(session.executor().faultEngine().stats());
    return cell;
}

int
main()
{
    banner("Chaos sweep: model zoo x fault plans (Capuchin, plan lint on)",
           "robustness matrix, DESIGN.md §9");

    // Every cell is an independent (model, fault plan) simulation whose
    // "wall" time is *simulated* ticks, so the matrix fans out across the
    // worker pool and the serial pass below only formats. Results land in
    // index-addressed slots; the printed table is identical at any thread
    // count.
    constexpr std::size_t kNumPlans = std::size(kPlans);
    constexpr std::size_t kNumZoo = std::size(kZoo);
    auto cells = sweepParallel(kNumZoo * kNumPlans, [&](std::size_t i) {
        return runCell(kZoo[i / kNumPlans], kPlans[i % kNumPlans]);
    });

    Table t({"model", "plan", "completed", "slowdown", "recovery"});
    bool ok = true;

    for (std::size_t zi = 0; zi < kNumZoo; ++zi) {
        const Workload &w = kZoo[zi];
        double base_wall = 0.0;
        for (std::size_t pi = 0; pi < kNumPlans; ++pi) {
            const FaultPlanRow &p = kPlans[pi];
            const CellResult &cell = cells[zi * kNumPlans + pi];

            std::string name = std::string(modelName(w.kind)) + "@" +
                               std::to_string(w.batch);
            if (cell.oom) {
                ok = false;
                t.addRow({name, p.label, "OOM", "-", "-"});
                std::cerr << "\nunhandled OOM under plan '" << p.label
                          << "':\n"
                          << cell.postMortem << "\n";
                continue;
            }

            std::string slowdown = "1.00x";
            if (!cell.faulted) {
                base_wall = cell.wall;
            } else if (base_wall > 0.0) {
                double ratio = cell.wall / base_wall;
                slowdown = cellDouble(ratio, 2) + "x";
                if (ratio > kSlowdownBound) {
                    ok = false;
                    slowdown += " (UNBOUNDED)";
                }
            }
            t.addRow({name, p.label, "yes", slowdown, cell.recovery});
        }
    }

    t.print(std::cout);
    std::cout << "\nTakeaway: every fault class degrades to a slower but "
                 "complete run — swap failures retry with backoff, host-"
                 "pool exhaustion falls back to recompute-eviction, plan "
                 "drift re-enters measured execution — and the combined "
                 "storm stays within " << kSlowdownBound
              << "x of the fault-free run.\n";
    if (!ok) {
        std::cout << "\nCHAOS SWEEP FAILED (see rows above)\n";
        return 1;
    }
    return 0;
}
