/**
 * @file
 * Table 2: maximum batch size in graph mode, all systems x six models.
 *
 * Paper values (P100 16 GB):
 *   model        TF-ori  vDNN  OpenAI  Capuchin
 *   Vgg16           228   272     260       350
 *   ResNet-50       190   520     540      1014
 *   ResNet-152       86   330     440       798
 *   InceptionV3     160   400     400       716
 *   InceptionV4      88   220     220       468
 *   BERT             64     -     210       450
 *
 * OpenAI's column is the better of its memory/speed modes (§6.3.1).
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Maximum batch size, graph mode", "Table 2");

    const std::map<ModelKind, std::array<int, 4>> paper = {
        {ModelKind::Vgg16, {228, 272, 260, 350}},
        {ModelKind::ResNet50, {190, 520, 540, 1014}},
        {ModelKind::ResNet152, {86, 330, 440, 798}},
        {ModelKind::InceptionV3, {160, 400, 400, 716}},
        {ModelKind::InceptionV4, {88, 220, 220, 468}},
        {ModelKind::BertBase, {64, 0, 210, 450}},
    };

    Table t({"model", "TF-ori", "vDNN", "OpenAI", "Capuchin",
             "Capuchin/TF", "paper (TF/vDNN/OpenAI/Capu)"});

    // Each (model, system) max-batch search is independent; fan the 5
    // searches per model out across the worker pool and assemble rows
    // from the index-ordered results below.
    auto models = graphModeModels();
    struct SearchJob
    {
        ModelKind kind;
        System sys;
        bool skip;
    };
    std::vector<SearchJob> jobs;
    for (ModelKind kind : models) {
        for (System sys : {System::TfOri, System::Vdnn, System::OpenAiM,
                           System::OpenAiS, System::Capuchin}) {
            bool skip = kind == ModelKind::BertBase && sys == System::Vdnn;
            jobs.push_back(SearchJob{kind, sys, skip});
        }
    }
    double t0 = wallMs();
    auto found = sweepParallel(jobs.size(), [&](std::size_t i) {
        return jobs[i].skip
                   ? std::int64_t(0)
                   : maxBatch(jobs[i].kind, jobs[i].sys);
    });
    double search_ms = wallMs() - t0;

    double ratio_sum = 0;
    double ratio_max = 0;
    int n = 0;
    std::size_t row = 0;
    for (ModelKind kind : models) {
        std::int64_t tf = found[row];
        std::int64_t vdnn = found[row + 1];
        std::int64_t oai = std::max(found[row + 2], found[row + 3]);
        std::int64_t capu = found[row + 4];
        row += 5;

        double ratio = tf > 0 ? static_cast<double>(capu) / tf : 0;
        ratio_sum += ratio;
        ratio_max = std::max(ratio_max, ratio);
        ++n;

        const auto &p = paper.at(kind);
        t.addRow({modelName(kind), cellInt(tf),
                  vdnn ? cellInt(vdnn) : "-", cellInt(oai), cellInt(capu),
                  cellDouble(ratio, 2) + "x",
                  fmt("{}/{}/{}/{}", p[0], p[1] ? std::to_string(p[1]) : "-",
                      p[2], p[3])});
    }
    t.print(std::cout);

    std::cout << "\nCapuchin/TF-ori batch gain: average "
              << cellDouble(ratio_sum / n, 2) << "x (paper: 5.49x avg), max "
              << cellDouble(ratio_max, 2) << "x.\n"
              << "Shape check: Capuchin holds the largest batch on every "
                 "model, as in the paper.\n"
              << "Search wall: " << cellDouble(search_ms / 1000.0, 2)
              << " s for " << jobs.size()
              << " memoized max-batch searches (replay-armed probes) on "
              << benchThreads() << " threads.\n";
    return 0;
}
