/**
 * @file
 * Ablation: feedback step size for in-trigger adjustment.
 *
 * The paper fixes the adjustment at 5% of SwapTime per observed stall
 * (§4.4). This sweep shows the trade-off: small steps converge slowly,
 * huge steps over-shift triggers into the memory-pressure window.
 */

#include <iostream>

#include "bench/common.hh"

using namespace capu;
using namespace capu::bench;

int
main()
{
    banner("Ablation: feedback-driven in-trigger adjustment step",
           "design study (section 4.4's 5% constant)");

    const ModelKind kind = ModelKind::InceptionV3;
    const std::int64_t batch = 300;

    Table t({"feedback step", "img/s @ iter 5", "img/s @ iter 30",
             "stall @ iter 30"});
    for (double step : {0.0, 0.01, 0.05, 0.2, 0.5}) {
        CapuchinOptions opts;
        opts.enableFeedback = step > 0;
        opts.feedbackStep = step;
        Session s(buildModel(kind, batch), ExecConfig{},
                  makeCapuchinPolicy(opts));
        auto r = s.run(31);
        if (r.oom) {
            t.addRow({cellPercent(step, 0), "OOM", "OOM", "-"});
            continue;
        }
        t.addRow({step == 0 ? "off" : cellPercent(step, 0),
                  cellDouble(r.iterations[5].throughput(batch), 1),
                  cellDouble(r.iterations[30].throughput(batch), 1),
                  formatTicks(r.iterations[30].inputStall)});
    }
    t.print(std::cout);
    std::cout << "\nTakeaway: feedback trims the residual prefetch "
                 "stalls by a few percent at this operating point; larger "
                 "steps converge in fewer iterations, but at 50% the "
                 "triggers overshoot into the peak-memory window and "
                 "performance regresses — the paper's small-step choice "
                 "trades convergence speed for stability.\n";
    return 0;
}
