/**
 * @file
 * Tests for capuverify: the happens-before engine (ordering-edge
 * enumeration, vector clocks, race scan, directional obligations), the
 * tensor-lifetime dataflow analysis, and the zoo-wide guarantee that
 * every clean plan the policies produce verifies race-free — statically
 * from the plan and dynamically from a capuscope trace.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/happens_before.hh"
#include "analysis/lifetime_analysis.hh"
#include "analysis/lint_hooks.hh"
#include "core/capuchin_policy.hh"
#include "exec/ordering.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "obs/event_adapter.hh"
#include "obs/obs.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"
#include "support/units.hh"

using namespace capu;

namespace
{

hb::HbEvent
ev(std::uint32_t id, hb::HbStream stream, hb::HbOp op, TensorId tensor,
   int buffer, bool write, std::int32_t cause = -1, int accessIndex = 0)
{
    hb::HbEvent e;
    e.id = id;
    e.stream = stream;
    e.op = op;
    e.tensor = tensor;
    e.buffer = buffer;
    e.write = write;
    e.cause = cause;
    e.accessIndex = accessIndex;
    return e;
}

bool
hasEdge(const std::vector<hb::HbEdge> &edges, std::uint32_t from,
        std::uint32_t to, const std::string &rule)
{
    for (const auto &e : edges) {
        if (e.from == from && e.to == to && rule == e.rule)
            return true;
    }
    return false;
}

bool
hasRule(const LintReport &report, const std::string &rule)
{
    for (const auto &d : report.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/**
 * The canonical swap round trip in issue order: evict access, D2H copy,
 * deferred free, the trigger access, then the prefetch triple and the
 * back access. This is exactly what buildPlanEventGraph emits for one
 * swap item — clean under the full rule set by construction.
 */
std::vector<hb::HbEvent>
roundTrip()
{
    using hb::HbOp;
    using hb::HbStream;
    std::vector<hb::HbEvent> evs;
    evs.push_back(ev(0, HbStream::Compute, HbOp::KernelAccess, 7, 1, false,
                     -1, 3));                                     // evict
    evs.push_back(ev(1, HbStream::D2H, HbOp::SwapOutStart, 7, 1, false, -1,
                     1));
    evs.push_back(ev(2, HbStream::D2H, HbOp::SwapOutEnd, 7, 1, false, -1,
                     1));
    evs.push_back(ev(3, HbStream::Deferred, HbOp::BufferFree, 7, 1, false,
                     -1, 1));
    evs.push_back(ev(4, HbStream::Compute, HbOp::KernelAccess, 9, 1, false,
                     -1, 5));                                     // trigger
    evs.push_back(ev(5, HbStream::Deferred, HbOp::BufferAlloc, 7, 2, false,
                     4, 1));
    evs.push_back(ev(6, HbStream::H2D, HbOp::SwapInStart, 7, 2, true, 4, 1));
    evs.push_back(ev(7, HbStream::H2D, HbOp::SwapInEnd, 7, 2, true, -1, 1));
    evs.push_back(ev(8, HbStream::Compute, HbOp::KernelAccess, 7, 2, false,
                     -1, 4));                                     // back
    return evs;
}

LintReport
scan(std::vector<hb::HbEvent> events, const hb::OrderingRules &rules = {})
{
    HbAnalysis a;
    a.events = std::move(events);
    a.edges = hb::enumerateOrderingEdges(a.events, rules);
    return checkHappensBefore(a);
}

} // namespace

// --- ordering-edge enumeration ---

TEST(OrderingEdges, StreamFifoChainsSkipDeferred)
{
    using hb::HbOp;
    using hb::HbStream;
    std::vector<hb::HbEvent> evs;
    evs.push_back(ev(0, HbStream::Compute, HbOp::KernelAccess, 1, 1, true));
    evs.push_back(
        ev(1, HbStream::Deferred, HbOp::BufferFree, 2, 1, false, 0));
    evs.push_back(ev(2, HbStream::Compute, HbOp::KernelAccess, 1, 1, false));
    auto edges = hb::enumerateOrderingEdges(evs);
    // Compute FIFO links 0 -> 2 directly; the deferred free is ordered by
    // its cause only, never by a stream chain.
    EXPECT_TRUE(hasEdge(edges, 0, 2, "stream-fifo"));
    EXPECT_TRUE(hasEdge(edges, 0, 1, "issue-after-cause"));
    for (const auto &e : edges)
        EXPECT_FALSE(e.to == 1 && std::string(e.rule) == "stream-fifo");
}

TEST(OrderingEdges, SwapRoundTripEmitsEveryGuarantee)
{
    auto edges = hb::enumerateOrderingEdges(roundTrip());
    EXPECT_TRUE(hasEdge(edges, 0, 1, "retire-before-copy"));
    EXPECT_TRUE(hasEdge(edges, 2, 3, "complete-before-free"));
    EXPECT_TRUE(hasEdge(edges, 2, 6, "out-before-in"));
    EXPECT_TRUE(hasEdge(edges, 5, 6, "alloc-before-copy-in"));
    EXPECT_TRUE(hasEdge(edges, 4, 6, "issue-after-cause"));
    EXPECT_TRUE(hasEdge(edges, 7, 8, "complete-before-use"));
}

TEST(OrderingEdges, KnockedOutRuleEmitsNoEdge)
{
    hb::OrderingRules rules;
    rules.outBeforeIn = false;
    auto edges = hb::enumerateOrderingEdges(roundTrip(), rules);
    EXPECT_FALSE(hasEdge(edges, 2, 6, "out-before-in"));
    EXPECT_TRUE(hasEdge(edges, 2, 3, "complete-before-free"));
}

// --- vector clocks ---

TEST(VectorClocks, TransitiveCrossStreamOrder)
{
    HbAnalysis a;
    a.events = roundTrip();
    a.edges = hb::enumerateOrderingEdges(a.events);
    HbClocks clocks = assignVectorClocks(a);
    ASSERT_TRUE(clocks.acyclic);
    // Evict access -> D2H copy -> prefetch -> back access, across three
    // streams and two matching edges.
    EXPECT_TRUE(clocks.ordered(0, 8));
    EXPECT_FALSE(clocks.ordered(8, 0));
    // The deferred free is ordered after the copy but concurrent with the
    // back access: nothing sequences host frees against later kernels.
    EXPECT_TRUE(clocks.ordered(2, 3));
    EXPECT_FALSE(clocks.ordered(3, 8));
    EXPECT_FALSE(clocks.ordered(8, 3));
    // An event never happens-before itself (irreflexive).
    EXPECT_FALSE(clocks.ordered(4, 4));
}

TEST(VectorClocks, CycleDetectedAndReported)
{
    using hb::HbOp;
    using hb::HbStream;
    std::vector<hb::HbEvent> evs;
    evs.push_back(
        ev(0, HbStream::Deferred, HbOp::BufferFree, 1, 1, false, 1));
    evs.push_back(
        ev(1, HbStream::Deferred, HbOp::BufferAlloc, 1, 1, false, 0));
    HbAnalysis a;
    a.events = evs;
    a.edges = hb::enumerateOrderingEdges(a.events);
    EXPECT_FALSE(assignVectorClocks(a).acyclic);
    EXPECT_TRUE(hasRule(checkHappensBefore(a), "hb-cycle"));
}

// --- race scan + obligations ---

TEST(RaceScan, CleanRoundTripIsRaceFree)
{
    LintReport report = scan(roundTrip());
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

TEST(RaceScan, PrefetchSequencedAfterBackAccess)
{
    // The executor bug trigger-after-back: same events, but the prefetch
    // triple is issued after the access it should precede. Every pair is
    // FIFO-"ordered" somewhere, yet the fill direction is wrong.
    using hb::HbOp;
    using hb::HbStream;
    std::vector<hb::HbEvent> evs;
    evs.push_back(ev(0, HbStream::Compute, HbOp::KernelAccess, 7, 1, false,
                     -1, 3));
    evs.push_back(ev(1, HbStream::D2H, HbOp::SwapOutStart, 7, 1, false, -1,
                     1));
    evs.push_back(ev(2, HbStream::D2H, HbOp::SwapOutEnd, 7, 1, false, -1,
                     1));
    evs.push_back(ev(3, HbStream::Compute, HbOp::KernelAccess, 7, 2, false,
                     -1, 4)); // back access, nothing filled buffer 2 yet
    evs.push_back(ev(4, HbStream::Deferred, HbOp::BufferAlloc, 7, 2, false,
                     -1, 1));
    evs.push_back(ev(5, HbStream::H2D, HbOp::SwapInStart, 7, 2, true, -1,
                     1));
    evs.push_back(ev(6, HbStream::H2D, HbOp::SwapInEnd, 7, 2, true, -1, 1));
    LintReport report = scan(std::move(evs));
    EXPECT_TRUE(hasRule(report, "hb-unsequenced-prefetch"))
        << report.summary();
}

TEST(RaceScan, EarlyFreeRacesSwapOut)
{
    hb::OrderingRules rules;
    rules.completeBeforeFree = false;
    LintReport report = scan(roundTrip(), rules);
    EXPECT_TRUE(hasRule(report, "hb-free-racing-swapout"))
        << report.summary();
}

TEST(Obligations, CopyBeforeRetire)
{
    hb::OrderingRules rules;
    rules.retireBeforeCopy = false;
    LintReport report = scan(roundTrip(), rules);
    EXPECT_TRUE(hasRule(report, "hb-copy-before-retire")) << report.summary();
}

TEST(Obligations, SwapInBeforeSwapOut)
{
    hb::OrderingRules rules;
    rules.outBeforeIn = false;
    LintReport report = scan(roundTrip(), rules);
    EXPECT_TRUE(hasRule(report, "hb-swapin-before-swapout"))
        << report.summary();
}

TEST(Obligations, DroppedSyncEdgeUnsequencesPrefetch)
{
    hb::OrderingRules rules;
    rules.completeBeforeUse = false;
    LintReport report = scan(roundTrip(), rules);
    EXPECT_TRUE(hasRule(report, "hb-unsequenced-prefetch"))
        << report.summary();
}

TEST(Obligations, FreeOrderedBeforeUseIsUseAfterFree)
{
    using hb::HbOp;
    using hb::HbStream;
    std::vector<hb::HbEvent> evs;
    evs.push_back(ev(0, HbStream::Compute, HbOp::KernelAccess, 3, 1, true,
                     -1, 1));
    evs.push_back(
        ev(1, HbStream::Deferred, HbOp::BufferFree, 3, 1, false, 0));
    // A kernel access issued *after* the free of the buffer it reads.
    evs.push_back(ev(2, HbStream::Compute, HbOp::KernelAccess, 3, 1, false,
                     1, 2));
    LintReport report = scan(std::move(evs));
    EXPECT_TRUE(hasRule(report, "hb-use-after-free")) << report.summary();
}

// --- timestamp cross-check (dynamic mode) ---

namespace
{

obs::TimelineRecord
rec(obs::TimelineKind kind, std::int64_t tensor, Tick start, Tick end,
    int accessIndex = 0, bool write = false)
{
    obs::TimelineRecord r;
    r.kind = kind;
    r.tensor = tensor;
    r.start = start;
    r.end = end;
    r.accessIndex = accessIndex;
    r.write = write;
    return r;
}

} // namespace

TEST(Timestamps, RecomputeOverlappingPredecessorIsFlagged)
{
    using K = obs::TimelineKind;
    std::vector<obs::TimelineRecord> recs;
    recs.push_back(rec(K::Access, 5, 100, 100, 1, true));
    recs.push_back(rec(K::Access, 5, 200, 200, 2));
    // The replay interval starts before its compute-stream predecessor's
    // tick — the measured serialization contradicts stream FIFO.
    recs.push_back(rec(K::Recompute, 5, 150, 400));
    recs.push_back(rec(K::Access, 5, 500, 500, 3));
    HbAnalysis a = buildTraceEventGraph(recs);
    EXPECT_TRUE(hasRule(checkTimestamps(a), "hb-timestamp-violation"));

    // Consistent times: the same timeline with the replay after the read.
    recs[2].start = 300;
    HbAnalysis clean = buildTraceEventGraph(recs);
    EXPECT_EQ(checkTimestamps(clean).errorCount(), 0u);
    EXPECT_EQ(checkHappensBefore(clean).errorCount(), 0u);
}

// --- lifetime dataflow analysis ---

namespace
{

struct LifetimeFixture
{
    Graph graph{"lifetime-test"};
    AccessTracker tracker;
    TensorId a = kInvalidTensor;
    TensorId b = kInvalidTensor;

    LifetimeFixture()
    {
        a = graph.addTensor("a", 1_MiB, TensorKind::FeatureMap);
        b = graph.addTensor("b", 1_MiB, TensorKind::FeatureMap);
        record(a, 1, 10, true);
        record(a, 2, 20, false);
        record(a, 3, 30, false);
        record(a, 4, 40, false);
        record(b, 1, 15, true);
        record(b, 2, 30, false);
    }

    void record(TensorId t, int idx, Tick time, bool out)
    {
        AccessRecord r;
        r.tensor = t;
        r.accessIndex = idx;
        r.time = time;
        r.isOutput = out;
        tracker.record(r);
    }

    LifetimeResult analyze(const Plan &plan)
    {
        return analyzeLifetimes(
            plan, graph, tracker,
            [this](TensorId id) { return graph.tensor(id).bytes; },
            [](std::uint64_t) { return Tick(2); }, LifetimeOptions{});
    }
};

PlannedEviction
swapItem(TensorId t, int evictAfter, int back)
{
    PlannedEviction item;
    item.tensor = t;
    item.mode = RegenChoice::Swap;
    item.evictAfterAccess = evictAfter;
    item.backAccess = back;
    return item;
}

} // namespace

TEST(Lifetime, AccessInsideEvictedIntervalIsUseAfterFree)
{
    LifetimeFixture f;
    Plan plan;
    plan.items.push_back(swapItem(f.a, 1, 4)); // accesses 2 and 3 fall in
    LifetimeResult r = f.analyze(plan);
    EXPECT_TRUE(hasRule(r.report, "lifetime-use-after-free"))
        << r.report.summary();
    EXPECT_EQ(r.report.errorCount(), 2u);
}

TEST(Lifetime, EmptyOrInvertedIntervalFlagged)
{
    LifetimeFixture f;
    Plan plan;
    plan.items.push_back(swapItem(f.a, 3, 3));
    EXPECT_TRUE(hasRule(f.analyze(plan).report, "lifetime-empty-interval"));
}

TEST(Lifetime, MissingAccessFlagged)
{
    LifetimeFixture f;
    Plan plan;
    plan.items.push_back(swapItem(f.a, 3, 9));
    EXPECT_TRUE(hasRule(f.analyze(plan).report, "lifetime-missing-access"));
}

TEST(Lifetime, IntervalSetsAndPeakBound)
{
    LifetimeFixture f;
    // No plan: both tensors fully resident; the static bound is the
    // overlap of a (10..40) and b (15..30).
    EXPECT_EQ(f.analyze(Plan{}).peakBound, 2_MiB);

    // Evicting a across (1, 4) removes the overlap: a is out between
    // freedAt (10+2) and backAllocAt (40-2), covering b entirely.
    Plan plan;
    plan.items.push_back(swapItem(f.a, 1, 4));
    LifetimeResult r = f.analyze(plan);
    // a's hole accesses make the plan invalid, but the interval math is
    // unaffected; ignore the diagnostics here.
    EXPECT_EQ(r.peakBound, 1_MiB);
    ASSERT_EQ(r.lifetimes.size(), 1u);
    const TensorLifetime &lt = r.lifetimes[0];
    ASSERT_EQ(lt.device.size(), 2u);
    ASSERT_EQ(lt.evicted.size(), 1u);
    EXPECT_EQ(lt.evicted[0].lo, Tick(12));
    EXPECT_EQ(lt.evicted[0].hi, Tick(38));
    ASSERT_EQ(lt.host.size(), 1u);
    EXPECT_EQ(lt.host[0].lo, Tick(10));
}

TEST(Lifetime, LostRecomputeSourceFlagged)
{
    Graph g("lineage");
    TensorId s = g.addTensor("s", 1_MiB, TensorKind::FeatureMap);
    TensorId r = g.addTensor("r", 1_MiB, TensorKind::FeatureMap);
    Operation src;
    src.name = "source";
    src.category = OpCategory::Source;
    src.recomputable = false;
    src.outputs = {s};
    g.addOp(src);
    Operation op;
    op.name = "op";
    op.inputs = {s};
    op.outputs = {r};
    g.addOp(op);

    AccessTracker tracker;
    auto record = [&](TensorId t, int idx, Tick time, bool out) {
        AccessRecord a;
        a.tensor = t;
        a.accessIndex = idx;
        a.time = time;
        a.isOutput = out;
        tracker.record(a);
    };
    record(s, 1, 1, true);
    record(s, 2, 2, false);
    record(r, 1, 3, true);
    record(r, 2, 50, false);

    Plan plan;
    PlannedEviction item;
    item.tensor = r;
    item.mode = RegenChoice::Recompute;
    item.evictAfterAccess = 1;
    item.backAccess = 2;
    plan.items.push_back(item);

    LifetimeResult res = analyzeLifetimes(
        plan, g, tracker, [&](TensorId id) { return g.tensor(id).bytes; },
        [](std::uint64_t) { return Tick(2); }, LifetimeOptions{});
    // s is dead at replay time (last access 2 < 50), has no host copy,
    // and its producer cannot be replayed.
    EXPECT_TRUE(hasRule(res.report, "lifetime-source-window"))
        << res.report.summary();
}

// --- zoo sweep: clean plans verify race-free ---

namespace
{

enum class Pol
{
    Capuchin,
    Vdnn,
    Checkpointing,
};

const char *
polName(Pol p)
{
    switch (p) {
      case Pol::Capuchin:
        return "capuchin";
      case Pol::Vdnn:
        return "vdnn";
      case Pol::Checkpointing:
        return "checkpointing";
    }
    return "?";
}

std::int64_t
sweepBatch(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Vgg16: return 260;
      case ModelKind::ResNet50: return 240;
      case ModelKind::ResNet152: return 110;
      case ModelKind::InceptionV3: return 210;
      case ModelKind::InceptionV4: return 120;
      case ModelKind::DenseNet121: return 200;
      case ModelKind::BertBase: return 110;
    }
    return 0;
}

std::unique_ptr<MemoryPolicy>
makeLintedPolicy(Pol p)
{
    // panicOnError stays at its default (true): an hb-* or lifetime-*
    // error on any zoo plan fails the sweep by throwing out of run().
    switch (p) {
      case Pol::Capuchin: {
        CapuchinOptions o;
        enablePlanLint(o);
        return makeCapuchinPolicy(o);
      }
      case Pol::Vdnn: {
        auto v = std::make_unique<VdnnPolicy>(VdnnPolicy::Mode::All);
        enablePlanLint(*v);
        return v;
      }
      case Pol::Checkpointing: {
        auto c = std::make_unique<CheckpointingPolicy>(
            CheckpointingPolicy::Mode::Memory);
        enablePlanLint(*c);
        return c;
      }
    }
    return nullptr;
}

} // namespace

class CapuverifyZooTest
    : public ::testing::TestWithParam<std::tuple<ModelKind, Pol>>
{
};

TEST_P(CapuverifyZooTest, CleanPlansVerifyRaceFree)
{
    auto [kind, pol] = GetParam();
    if (kind == ModelKind::BertBase && pol == Pol::Vdnn)
        GTEST_SKIP() << "vDNN is CNN-only";
    Session s(buildModel(kind, sweepBatch(kind)), ExecConfig{},
              makeLintedPolicy(pol));
    auto r = s.run(2); // plan lint (checker + hb + lifetime) runs inside
    EXPECT_FALSE(r.oom) << r.oomMessage;
}

INSTANTIATE_TEST_SUITE_P(
    ZooPlans, CapuverifyZooTest,
    ::testing::Combine(::testing::ValuesIn(graphModeModels()),
                       ::testing::Values(Pol::Capuchin, Pol::Vdnn,
                                         Pol::Checkpointing)),
    [](const auto &info) {
        std::string n = std::string(modelName(std::get<0>(info.param))) +
                        "_" + polName(std::get<1>(info.param));
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// --- dynamic cross-check on a real capuscope trace ---

TEST(DynamicCrossCheck, TracedRunIsConsistent)
{
    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Full;
    Session s(buildVgg16(230), cfg, makeCapuchinPolicy());
    auto r = s.run(2);
    ASSERT_FALSE(r.oom) << r.oomMessage;

    auto timeline = obs::extractTimeline(s.executor().obs().tracer);
    ASSERT_FALSE(timeline.empty());
    HbAnalysis a = buildTraceEventGraph(timeline);
    ASSERT_FALSE(a.events.empty());
    LintReport races = checkHappensBefore(a, &s.graph());
    EXPECT_EQ(races.errorCount(), 0u) << races.summary();
    LintReport stamps = checkTimestamps(a, &s.graph());
    EXPECT_EQ(stamps.errorCount(), 0u) << stamps.summary();
}
