/** @file Unit tests for the analytic kernel cost model. */

#include <gtest/gtest.h>

#include "exec/cost_model.hh"
#include "sim/gpu_device.hh"

using namespace capu;

namespace
{

Operation
makeOp(double flops, double mem_bytes)
{
    Operation op;
    op.name = "k";
    op.flops = flops;
    op.memBytes = mem_bytes;
    return op;
}

GpuDeviceSpec
simpleDevice()
{
    // 1 TFLOP/s, 100 GB/s, full efficiency, 1 us launch.
    return GpuDeviceSpec::testDevice(1ull << 30);
}

} // namespace

TEST(CostModel, ComputeBoundKernel)
{
    CostModel cm(simpleDevice());
    // 1e9 FLOP at ~1 TFLOP/s ~ 1 ms; memory side 1e6 B at 100 GB/s = 10 us.
    auto op = makeOp(1e9, 1e6);
    Tick d = cm.opDuration(op);
    EXPECT_GT(d, ticksFromUs(900));
    EXPECT_LT(d, ticksFromMs(3));
}

TEST(CostModel, MemoryBoundKernel)
{
    CostModel cm(simpleDevice());
    // 1e3 FLOP but 1e9 bytes: 10 ms of memory traffic dominates.
    auto op = makeOp(1e3, 1e9);
    Tick d = cm.opDuration(op);
    EXPECT_NEAR(ticksToMs(d), 10.0, 0.5);
}

TEST(CostModel, LaunchOverheadFloor)
{
    CostModel cm(simpleDevice());
    auto op = makeOp(1, 1);
    EXPECT_GE(cm.opDuration(op), simpleDevice().launchOverhead);
}

TEST(CostModel, SourceOpsCostOnlyLaunch)
{
    CostModel cm(simpleDevice());
    Operation op = makeOp(1e12, 1e12);
    op.category = OpCategory::Source;
    EXPECT_EQ(cm.opDuration(op), simpleDevice().launchOverhead);
}

TEST(CostModel, EfficiencyGrowsWithSize)
{
    CostModel cm(GpuDeviceSpec::p100());
    auto small = makeOp(1e6, 0);
    auto large = makeOp(1e11, 0);
    EXPECT_LT(cm.effectiveFlopsFraction(small),
              cm.effectiveFlopsFraction(large));
    // Large kernels approach the device's plateau efficiency.
    EXPECT_NEAR(cm.effectiveFlopsFraction(large),
                GpuDeviceSpec::p100().computeEfficiency, 0.05);
}

TEST(CostModel, SmallKernelsSpreadDurations)
{
    // The Figure-2 motivation: same op category, widely varying durations.
    CostModel cm(GpuDeviceSpec::p100());
    auto tiny = makeOp(5e7, 1e6);
    auto big = makeOp(5e11, 1e8);
    tiny.category = big.category = OpCategory::Conv;
    double ratio = static_cast<double>(cm.opDuration(big)) /
                   static_cast<double>(cm.opDuration(tiny));
    EXPECT_GT(ratio, 20.0);
}

TEST(CostModel, WinogradSpeedsUpFastAlgo)
{
    CostModel cm(simpleDevice());
    auto op = makeOp(1e10, 1e6);
    op.fastAlgoSpeedup = 2.25;
    op.fastWorkspaceBytes = 1_MiB;
    Tick fast = cm.opDuration(op, true);
    Tick slow = cm.opDuration(op, false);
    EXPECT_LT(fast, slow);
    EXPECT_NEAR(static_cast<double>(slow) / fast, 2.25, 0.1);
}

TEST(CostModel, FallbackSlowdownApplies)
{
    CostModel cm(simpleDevice());
    auto op = makeOp(1e10, 1e6);
    op.fastWorkspaceBytes = 1_MiB;
    op.fallbackSlowdown = 2.0;
    EXPECT_NEAR(static_cast<double>(cm.opDuration(op, false)) /
                    cm.opDuration(op, true),
                2.0, 0.1);
}

TEST(CostModel, FallbackIrrelevantWithoutWorkspace)
{
    CostModel cm(simpleDevice());
    auto op = makeOp(1e10, 1e6);
    op.fallbackSlowdown = 5.0; // no workspace -> no alternative algorithm
    EXPECT_EQ(cm.opDuration(op, false), cm.opDuration(op, true));
}
