/** @file Unit tests for the graph substrate: Graph, topo order, autograd. */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/autograd.hh"
#include "graph/graph.hh"
#include "support/logging.hh"
#include "support/units.hh"

using namespace capu;

namespace
{

/** images -> op1 -> t1 -> op2 -> t2 chain with weights on both ops. */
struct ChainFixture
{
    Graph g{"chain"};
    TensorId images, w1, t1, w2, t2;
    OpId op1, op2;

    ChainFixture()
    {
        images = g.addTensor("images", 1_MiB, TensorKind::FeatureMap);
        Operation src;
        src.name = "source";
        src.category = OpCategory::Source;
        src.outputs = {images};
        src.recomputable = false;
        g.addOp(src);

        w1 = g.addTensor("w1", 4_KiB, TensorKind::Weight);
        t1 = g.addTensor("t1", 1_MiB, TensorKind::FeatureMap);
        Operation o1;
        o1.name = "op1";
        o1.category = OpCategory::Conv;
        o1.inputs = {images, w1};
        o1.outputs = {t1};
        o1.flops = 1e6;
        o1.memBytes = 2e6;
        o1.gradInputs = {images};
        o1.gradParams = {w1};
        o1.savedForBackward = {images, w1};
        op1 = g.addOp(o1);

        w2 = g.addTensor("w2", 4_KiB, TensorKind::Weight);
        t2 = g.addTensor("t2", 1_MiB, TensorKind::FeatureMap);
        Operation o2;
        o2.name = "op2";
        o2.category = OpCategory::Loss;
        o2.inputs = {t1, w2};
        o2.outputs = {t2};
        o2.flops = 1e6;
        o2.memBytes = 2e6;
        o2.gradInputs = {t1};
        o2.gradParams = {w2};
        o2.savedForBackward = {t1, w2};
        op2 = g.addOp(o2);
    }
};

} // namespace

TEST(Graph, ProducerLinks)
{
    ChainFixture f;
    EXPECT_EQ(f.g.tensor(f.t1).producer, f.op1);
    EXPECT_EQ(f.g.tensor(f.w1).producer, kInvalidOp);
}

TEST(Graph, ConsumersTracked)
{
    ChainFixture f;
    ASSERT_EQ(f.g.consumers(f.t1).size(), 1u);
    EXPECT_EQ(f.g.consumers(f.t1)[0], f.op2);
    EXPECT_TRUE(f.g.consumers(f.t2).empty());
}

TEST(Graph, DoubleProducerPanics)
{
    ChainFixture f;
    Operation bad;
    bad.name = "bad";
    bad.outputs = {f.t1};
    EXPECT_THROW(f.g.addOp(bad), PanicError);
}

TEST(Graph, UnknownInputPanics)
{
    Graph g("x");
    Operation bad;
    bad.name = "bad";
    bad.inputs = {42};
    EXPECT_THROW(g.addOp(bad), PanicError);
}

TEST(Graph, TopoOrderRespectsDeps)
{
    ChainFixture f;
    auto order = f.g.topoOrder();
    auto pos = [&](OpId id) {
        return std::find(order.begin(), order.end(), id) - order.begin();
    };
    EXPECT_LT(pos(f.op1), pos(f.op2));
    EXPECT_EQ(order.size(), f.g.numOps());
}

TEST(Graph, ValidatePassesOnChain)
{
    ChainFixture f;
    EXPECT_NO_THROW(f.g.validate());
}

TEST(Graph, ValidateRejectsBadSavedTensor)
{
    ChainFixture f;
    f.g.mutableOp(f.op2).savedForBackward.push_back(f.images);
    EXPECT_THROW(f.g.validate(), PanicError);
}

TEST(Graph, StatsCountKinds)
{
    ChainFixture f;
    auto s = f.g.stats();
    EXPECT_EQ(s.weightBytes, 8_KiB);
    EXPECT_EQ(s.featureMapBytes, 3_MiB);
    EXPECT_EQ(s.opCount, 3u);
    EXPECT_EQ(s.forwardOps, 3u);
}

TEST(Graph, BytesOfKind)
{
    ChainFixture f;
    EXPECT_EQ(f.g.bytesOfKind(TensorKind::Weight), 8_KiB);
    EXPECT_EQ(f.g.bytesOfKind(TensorKind::Gradient), 0u);
}

// --- Autograd ---

TEST(Autograd, ChainProducesBackwardAndUpdates)
{
    ChainFixture f;
    auto result = buildBackward(f.g, f.t2);
    EXPECT_EQ(result.updateOps, 2u); // w1 and w2
    EXPECT_GT(result.backwardOps, 2u);
    EXPECT_NO_THROW(f.g.validate());
}

TEST(Autograd, GradTensorsMatchSizes)
{
    ChainFixture f;
    buildBackward(f.g, f.t2);
    for (const auto &t : f.g.tensors()) {
        if (t.kind != TensorKind::Gradient)
            continue;
        EXPECT_GT(t.bytes, 0u);
        EXPECT_EQ(t.name.rfind("d_", 0), 0u) << t.name;
    }
}

TEST(Autograd, BackwardConsumesSavedTensors)
{
    ChainFixture f;
    buildBackward(f.g, f.t2);
    // t1 (saved by op2) must be read by at least one backward op —
    // the forward-to-backward reuse that creates the paper's problem.
    bool backward_use = false;
    for (OpId c : f.g.consumers(f.t1)) {
        if (f.g.op(c).phase == Phase::Backward)
            backward_use = true;
    }
    EXPECT_TRUE(backward_use);
}

TEST(Autograd, NoGradForSourceData)
{
    ChainFixture f;
    buildBackward(f.g, f.t2);
    // d_images must not exist: frameworks don't differentiate w.r.t. data.
    for (const auto &t : f.g.tensors())
        EXPECT_NE(t.name, "d_images");
}

TEST(Autograd, BranchInsertsGradAccumulation)
{
    // images -> opA -> t; t feeds opB and opC whose outputs are summed:
    // d_t has two contributions, requiring an add_grad op.
    Graph g("branch");
    TensorId images = g.addTensor("images", 1_MiB, TensorKind::FeatureMap);
    Operation src;
    src.name = "source";
    src.category = OpCategory::Source;
    src.outputs = {images};
    src.recomputable = false;
    g.addOp(src);

    auto mk = [&](const std::string &name, TensorId in, OpCategory cat) {
        TensorId out = g.addTensor(name + ":out", 1_MiB,
                                   TensorKind::FeatureMap);
        Operation op;
        op.name = name;
        op.category = cat;
        op.inputs = {in};
        op.outputs = {out};
        op.flops = 1e6;
        op.memBytes = 2e6;
        op.gradInputs = {in};
        op.savedForBackward = {in};
        g.addOp(op);
        return out;
    };
    TensorId t = mk("opA", images, OpCategory::Elementwise);
    TensorId b1 = mk("opB", t, OpCategory::Elementwise);
    TensorId b2 = mk("opC", t, OpCategory::Elementwise);

    TensorId sum = g.addTensor("sum", 1_MiB, TensorKind::FeatureMap);
    Operation add;
    add.name = "add";
    add.category = OpCategory::Loss;
    add.inputs = {b1, b2};
    add.outputs = {sum};
    add.flops = 1;
    add.memBytes = 1;
    add.gradInputs = {b1, b2};
    g.addOp(add);

    buildBackward(g, sum);
    g.validate();

    bool has_accumulation = false;
    for (const auto &op : g.ops()) {
        if (op.name.rfind("add_grad:", 0) == 0)
            has_accumulation = true;
    }
    EXPECT_TRUE(has_accumulation);
}

TEST(Autograd, UnreachedBranchGetsNoBackward)
{
    // A forward op whose output never reaches the loss must not produce
    // backward work (pruning matches real frameworks).
    ChainFixture f;
    TensorId dead = f.g.addTensor("dead", 1_MiB, TensorKind::FeatureMap);
    Operation side;
    side.name = "side";
    side.category = OpCategory::Elementwise;
    side.inputs = {f.t1};
    side.outputs = {dead};
    side.flops = 1;
    side.memBytes = 1;
    side.gradInputs = {f.t1};
    f.g.addOp(side);

    buildBackward(f.g, f.t2);
    for (const auto &op : f.g.ops())
        EXPECT_EQ(op.name.find("side:bwd"), std::string::npos) << op.name;
}

TEST(Autograd, LossWithoutProducerIsFatal)
{
    Graph g("x");
    TensorId orphan = g.addTensor("orphan", 1_KiB, TensorKind::FeatureMap);
    EXPECT_THROW(buildBackward(g, orphan), FatalError);
}

TEST(Autograd, UpdateOpsTouchWeightsLast)
{
    ChainFixture f;
    buildBackward(f.g, f.t2);
    auto order = f.g.topoOrder();
    std::size_t first_update = order.size(), last_nonupdate = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (f.g.op(order[i]).phase == Phase::Update)
            first_update = std::min(first_update, i);
        else
            last_nonupdate = i;
    }
    EXPECT_GT(first_update, 0u);
    EXPECT_LT(last_nonupdate, order.size());
}

TEST(Autograd, OptimizerBytesScaleAffectsUpdateTraffic)
{
    ChainFixture sgd_f, adam_f;
    AutogradOptions sgd, adam;
    sgd.optimizerBytesScale = 3.0;
    adam.optimizerBytesScale = 5.0;
    buildBackward(sgd_f.g, sgd_f.t2, sgd);
    buildBackward(adam_f.g, adam_f.t2, adam);

    auto update_bytes = [](const Graph &g) {
        double total = 0;
        for (const auto &op : g.ops()) {
            if (op.category == OpCategory::Update)
                total += op.memBytes;
        }
        return total;
    };
    EXPECT_GT(update_bytes(adam_f.g), update_bytes(sgd_f.g));
}
