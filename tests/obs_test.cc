/**
 * @file
 * Tests for the capuscope observability layer: tracer ring semantics,
 * metrics snapshots, the Chrome-trace exporter's schema (validated with a
 * minimal in-test JSON parser), cross-layer metric invariants, and the
 * zero-observer-effect guarantee across the model zoo.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "obs/chrome_trace.hh"
#include "obs/obs.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"

using namespace capu;

// --- minimal JSON parser (test-only; enough for our exporters) ---

namespace
{

struct Json
{
    enum Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    } kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string &k) const { return obj.count(k) != 0; }
    const Json &operator[](const std::string &k) const
    {
        static const Json null;
        auto it = obj.find(k);
        return it == obj.end() ? null : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(Json &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos_ == s_.size(); // no trailing garbage
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u':
                    if (pos_ + 4 > s_.size())
                        return false;
                    pos_ += 4; // we only need to skip it
                    out += '?';
                    break;
                  default: out += e;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    value(Json &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{') {
            out.kind = Json::Obj;
            ++pos_;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return false;
                Json v;
                if (!value(v))
                    return false;
                out.obj.emplace(std::move(key), std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            out.kind = Json::Arr;
            ++pos_;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Json v;
                if (!value(v))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out.kind = Json::Str;
            return string(out.str);
        }
        if (c == 't') {
            out.kind = Json::Bool;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Json::Bool;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Json::Null;
            return literal("null");
        }
        // number
        std::size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        out.kind = Json::Num;
        out.num = std::stod(s_.substr(start, pos_ - start));
        return true;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** VGG16 under Capuchin at a batch that forces swapping, fully traced. */
Session &
tracedVgg16()
{
    static std::unique_ptr<Session> session;
    if (!session) {
        ExecConfig cfg;
        cfg.obsLevel = obs::ObsLevel::Full;
        session = std::make_unique<Session>(buildVgg16(230), cfg,
                                            makeCapuchinPolicy());
        auto r = session->run(3);
        EXPECT_FALSE(r.oom) << r.oomMessage;
    }
    return *session;
}

} // namespace

// --- Tracer ring semantics ---

TEST(Tracer, RingDropsOldest)
{
    obs::Tracer tracer(4);
    tracer.setEnabled(true);
    for (Tick t = 0; t < 10; ++t)
        tracer.instant(obs::kTrackHost, obs::EventKind::Marker, t, "m");
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // The survivors are the *newest* four, oldest-first.
    std::vector<Tick> ts;
    tracer.forEach([&](const obs::TraceEvent &ev) { ts.push_back(ev.ts); });
    EXPECT_EQ(ts, (std::vector<Tick>{6, 7, 8, 9}));
}

TEST(Tracer, ChronologicalSortsByTimestamp)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 30, "c");
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 10, "a");
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 20, "b");
    auto evs = tracer.chronological();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].name, "a");
    EXPECT_EQ(evs[1].name, "b");
    EXPECT_EQ(evs[2].name, "c");
}

TEST(Tracer, DisabledDropsEverything)
{
    obs::Tracer tracer;
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 1, "m");
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
}

// --- Metrics registry ---

TEST(Metrics, SnapshotRecordsCounterDeltas)
{
    obs::MetricsRegistry m;
    m.setEnabled(true);
    m.add("x", 5);
    m.snapshotIteration(0);
    m.add("x", 3);
    m.set("g", 0.5);
    m.snapshotIteration(1);
    ASSERT_EQ(m.iterations().size(), 2u);
    EXPECT_DOUBLE_EQ(m.iterations()[0].values.at("x"), 5.0);
    EXPECT_DOUBLE_EQ(m.iterations()[1].values.at("x"), 3.0);
    EXPECT_DOUBLE_EQ(m.iterations()[1].values.at("g"), 0.5);
    EXPECT_EQ(m.counter("x"), 8u);
}

TEST(Metrics, HistogramBuckets)
{
    obs::MetricsRegistry m;
    m.setEnabled(true);
    m.observe("h", 0);
    m.observe("h", 1);
    m.observe("h", 100);
    const obs::Histogram *h = m.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 3u);
    EXPECT_EQ(h->sum(), 101u);
    EXPECT_EQ(h->min(), 0u);
    EXPECT_EQ(h->max(), 100u);
    EXPECT_EQ(h->bucket(0), 1u); // the zero observation
}

TEST(Metrics, DisabledIgnoresMutations)
{
    obs::MetricsRegistry m;
    m.add("x", 5);
    m.snapshotIteration(0);
    EXPECT_EQ(m.counter("x"), 0u);
    EXPECT_TRUE(m.iterations().empty());
}

// --- Chrome-trace golden schema (VGG16 under Capuchin) ---

TEST(ChromeTrace, Vgg16TraceIsValidJson)
{
    Session &s = tracedVgg16();
    std::ostringstream os;
    obs::writeChromeTrace(os, s.executor().obs().tracer);
    std::string text = os.str();

    Json root;
    ASSERT_TRUE(JsonParser(text).parse(root)) << "trace is not valid JSON";
    ASSERT_EQ(root.kind, Json::Obj);
    ASSERT_TRUE(root.has("traceEvents"));
    const Json &evs = root["traceEvents"];
    ASSERT_EQ(evs.kind, Json::Arr);
    ASSERT_FALSE(evs.arr.empty());

    std::size_t metadata = 0, complete = 0, spans = 0;
    for (const Json &ev : evs.arr) {
        ASSERT_EQ(ev.kind, Json::Obj);
        ASSERT_TRUE(ev.has("ph"));
        const std::string &ph = ev["ph"].str;
        ASSERT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "b" ||
                    ph == "e" || ph == "M")
            << "unexpected phase " << ph;
        ASSERT_TRUE(ev.has("name"));
        ASSERT_TRUE(ev.has("pid"));
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_TRUE(ev.has("ts"));
        ASSERT_GE(ev["ts"].num, 0.0);
        if (ph == "X") {
            ++complete;
            ASSERT_TRUE(ev.has("dur"));
            ASSERT_GE(ev["dur"].num, 0.0);
        }
        if (ph == "b" || ph == "e") {
            ++spans;
            ASSERT_TRUE(ev.has("id"));
            ASSERT_TRUE(ev.has("cat"));
        }
    }
    EXPECT_GT(metadata, 0u) << "no process/thread metadata";
    EXPECT_GT(complete, 0u) << "no duration events (kernels/transfers)";
    EXPECT_GT(spans, 0u) << "no tensor-lifetime spans";
}

TEST(ChromeTrace, LifetimeSpansNestCorrectly)
{
    Session &s = tracedVgg16();
    std::ostringstream os;
    obs::writeChromeTrace(os, s.executor().obs().tracer);
    Json root;
    ASSERT_TRUE(JsonParser(os.str()).parse(root));

    // Async spans pair by (cat, id): depth never goes negative and every
    // span opened is eventually closed (the executor closes residency
    // phases at iteration end).
    std::map<std::string, int> depth;
    for (const Json &ev : root["traceEvents"].arr) {
        const std::string &ph = ev["ph"].str;
        if (ph != "b" && ph != "e")
            continue;
        std::string key =
            ev["cat"].str + "/" +
            std::to_string(static_cast<long long>(ev["id"].num));
        if (ph == "b") {
            ASSERT_EQ(depth[key], 0)
                << "span " << key << " reopened while open";
            ++depth[key];
        } else {
            ASSERT_EQ(depth[key], 1) << "span " << key << " closed twice";
            --depth[key];
        }
    }
    for (const auto &[key, d] : depth)
        EXPECT_EQ(d, 0) << "span " << key << " left open";
}

TEST(ChromeTrace, MetricsExportsParse)
{
    Session &s = tracedVgg16();
    const obs::MetricsRegistry &m = s.executor().obs().metrics;

    std::ostringstream js;
    obs::writeMetricsJson(js, m);
    Json root;
    ASSERT_TRUE(JsonParser(js.str()).parse(root))
        << "metrics JSON is not valid JSON";
    ASSERT_TRUE(root.has("counters"));
    ASSERT_TRUE(root.has("gauges"));
    ASSERT_TRUE(root.has("iterations"));
    EXPECT_EQ(root["iterations"].arr.size(), 3u);

    std::ostringstream cs;
    obs::writeMetricsCsv(cs, m);
    std::string csv = cs.str();
    // Header + one row per iteration.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
    EXPECT_EQ(csv.rfind("iteration", 0), 0u);
}

// --- Cross-layer metric invariants ---

TEST(ObsInvariants, SwapByteConservation)
{
    Session &s = tracedVgg16();
    const obs::MetricsRegistry &m = s.executor().obs().metrics;
    // Every byte swapped out either came back in or retired with its host
    // copy — transition-level conservation across the whole run.
    EXPECT_GT(m.counter("tensor.out_bytes"), 0u) << "run never swapped";
    EXPECT_EQ(m.counter("tensor.out_bytes"),
              m.counter("tensor.in_bytes") +
                  m.counter("tensor.retired_host_bytes"));
}

TEST(ObsInvariants, PrefetchHiddenRatioInRange)
{
    Session &s = tracedVgg16();
    const obs::MetricsRegistry &m = s.executor().obs().metrics;
    double ratio = m.gauge("prefetch.hidden_ratio");
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
}

TEST(ObsInvariants, KernelEventsMatchKernelBusy)
{
    // The compute track's Complete events must sum to the iteration stats'
    // kernel + recompute busy time: the trace and the stats are two views
    // of the same simulation.
    Session &s = tracedVgg16();
    Tick traced = 0;
    s.executor().obs().tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.track == obs::kTrackCompute &&
            ev.phase == obs::EventPhase::Complete)
            traced += ev.dur;
    });
    Tick stats = 0;
    // Session keeps only aggregate results; re-derive from the metrics.
    const obs::MetricsRegistry &m = s.executor().obs().metrics;
    stats = m.counter("compute.kernel_ns") + m.counter("compute.recompute_ns");
    EXPECT_EQ(traced, stats);
}

// --- Zero observer effect across the zoo ---

TEST(ObserverEffect, ObsLevelChangesNoTimestamps)
{
    // --obs-level=full must not move a single simulated timestamp relative
    // to --obs-level=off, for every graph-mode model in the zoo.
    for (ModelKind kind : graphModeModels()) {
        std::vector<std::pair<Tick, Tick>> base;
        for (auto level : {obs::ObsLevel::Off, obs::ObsLevel::Full}) {
            ExecConfig cfg;
            cfg.obsLevel = level;
            Session s(buildModel(kind, 32), cfg, makeCapuchinPolicy());
            auto r = s.run(2);
            ASSERT_FALSE(r.oom) << modelName(kind);
            std::vector<std::pair<Tick, Tick>> stamps;
            for (const auto &it : r.iterations)
                stamps.emplace_back(it.begin, it.end);
            if (level == obs::ObsLevel::Off)
                base = stamps;
            else
                EXPECT_EQ(stamps, base)
                    << modelName(kind) << ": tracing moved timestamps";
        }
    }
}

TEST(ObserverEffect, SwappingWorkloadIdenticalUnderTracing)
{
    // Same check on a workload that actually swaps (vDNN on Vgg16@230
    // exercises evict/prefetch/stall paths, not just kernels).
    std::vector<std::pair<Tick, Tick>> base;
    for (auto level : {obs::ObsLevel::Off, obs::ObsLevel::Full}) {
        ExecConfig cfg;
        cfg.obsLevel = level;
        Session s(buildVgg16(230), cfg, makeVdnnPolicy());
        auto r = s.run(2);
        ASSERT_FALSE(r.oom);
        std::vector<std::pair<Tick, Tick>> stamps;
        for (const auto &it : r.iterations)
            stamps.emplace_back(it.begin, it.end);
        if (level == obs::ObsLevel::Off)
            base = stamps;
        else
            EXPECT_EQ(stamps, base);
    }
}
