/**
 * @file
 * Tests for the capuscope observability layer: tracer ring semantics,
 * metrics snapshots and percentiles, the Chrome-trace exporter's schema
 * (validated with support/json, the parser this suite's in-test parser
 * was promoted into), cross-layer metric invariants, and the
 * zero-observer-effect guarantee across the model zoo.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "obs/chrome_trace.hh"
#include "obs/obs.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"
#include "support/json.hh"

using namespace capu;

namespace
{

using Json = json::Value;

/** VGG16 under Capuchin at a batch that forces swapping, fully traced. */
Session &
tracedVgg16()
{
    static std::unique_ptr<Session> session;
    if (!session) {
        ExecConfig cfg;
        cfg.obsLevel = obs::ObsLevel::Full;
        session = std::make_unique<Session>(buildVgg16(230), cfg,
                                            makeCapuchinPolicy());
        auto r = session->run(3);
        EXPECT_FALSE(r.oom) << r.oomMessage;
    }
    return *session;
}

} // namespace

// --- Tracer ring semantics ---

TEST(Tracer, RingDropsOldest)
{
    obs::Tracer tracer(4);
    tracer.setEnabled(true);
    for (Tick t = 0; t < 10; ++t)
        tracer.instant(obs::kTrackHost, obs::EventKind::Marker, t, "m");
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    // The survivors are the *newest* four, oldest-first.
    std::vector<Tick> ts;
    tracer.forEach([&](const obs::TraceEvent &ev) { ts.push_back(ev.ts); });
    EXPECT_EQ(ts, (std::vector<Tick>{6, 7, 8, 9}));
}

TEST(Tracer, ChronologicalSortsByTimestamp)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 30, "c");
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 10, "a");
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 20, "b");
    auto evs = tracer.chronological();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].name, "a");
    EXPECT_EQ(evs[1].name, "b");
    EXPECT_EQ(evs[2].name, "c");
}

TEST(Tracer, ChronologicalCacheInvalidatedByRecordAndClear)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 20, "b");
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 10, "a");
    const auto &first = tracer.chronological();
    ASSERT_EQ(first.size(), 2u);
    // Cached: repeated calls hand back the same vector, no re-sort.
    EXPECT_EQ(&tracer.chronological(), &first);
    // A new record invalidates the cache...
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 15, "c");
    const auto &second = tracer.chronological();
    ASSERT_EQ(second.size(), 3u);
    EXPECT_EQ(second[0].name, "a");
    EXPECT_EQ(second[1].name, "c");
    EXPECT_EQ(second[2].name, "b");
    // ...and so does clear().
    tracer.clear();
    EXPECT_TRUE(tracer.chronological().empty());
}

TEST(Tracer, DroppedSurfacesAsMetricCounter)
{
    // A deliberately tiny ring must overflow on a real workload and
    // surface the drop count as capu.obs.trace_dropped.
    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Full;
    cfg.obsRingCapacity = 512;
    Session s(buildVgg16(230), cfg, makeCapuchinPolicy());
    auto r = s.run(2);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const obs::Obs &o = s.executor().obs();
    EXPECT_GT(o.tracer.dropped(), 0u);
    EXPECT_EQ(o.metrics.counter("capu.obs.trace_dropped"),
              o.tracer.dropped());
}

TEST(Tracer, DisabledDropsEverything)
{
    obs::Tracer tracer;
    tracer.instant(obs::kTrackHost, obs::EventKind::Marker, 1, "m");
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
}

// --- Metrics registry ---

TEST(Metrics, SnapshotRecordsCounterDeltas)
{
    obs::MetricsRegistry m;
    m.setEnabled(true);
    m.add("x", 5);
    m.snapshotIteration(0);
    m.add("x", 3);
    m.set("g", 0.5);
    m.snapshotIteration(1);
    ASSERT_EQ(m.iterations().size(), 2u);
    EXPECT_DOUBLE_EQ(m.iterations()[0].values.at("x"), 5.0);
    EXPECT_DOUBLE_EQ(m.iterations()[1].values.at("x"), 3.0);
    EXPECT_DOUBLE_EQ(m.iterations()[1].values.at("g"), 0.5);
    EXPECT_EQ(m.counter("x"), 8u);
}

TEST(Metrics, HistogramBuckets)
{
    obs::MetricsRegistry m;
    m.setEnabled(true);
    m.observe("h", 0);
    m.observe("h", 1);
    m.observe("h", 100);
    const obs::Histogram *h = m.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 3u);
    EXPECT_EQ(h->sum(), 101u);
    EXPECT_EQ(h->min(), 0u);
    EXPECT_EQ(h->max(), 100u);
    EXPECT_EQ(h->bucket(0), 1u); // the zero observation
}

TEST(Metrics, DisabledIgnoresMutations)
{
    obs::MetricsRegistry m;
    m.add("x", 5);
    m.snapshotIteration(0);
    EXPECT_EQ(m.counter("x"), 0u);
    EXPECT_TRUE(m.iterations().empty());
}

// --- Chrome-trace golden schema (VGG16 under Capuchin) ---

TEST(ChromeTrace, Vgg16TraceIsValidJson)
{
    Session &s = tracedVgg16();
    std::ostringstream os;
    obs::writeChromeTrace(os, s.executor().obs().tracer);
    std::string text = os.str();

    Json root;
    ASSERT_TRUE(json::parse(text, root)) << "trace is not valid JSON";
    ASSERT_EQ(root.kind, Json::Obj);
    ASSERT_TRUE(root.has("traceEvents"));
    const Json &evs = root["traceEvents"];
    ASSERT_EQ(evs.kind, Json::Arr);
    ASSERT_FALSE(evs.arr.empty());

    std::size_t metadata = 0, complete = 0, spans = 0;
    for (const Json &ev : evs.arr) {
        ASSERT_EQ(ev.kind, Json::Obj);
        ASSERT_TRUE(ev.has("ph"));
        const std::string &ph = ev["ph"].str;
        ASSERT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "b" ||
                    ph == "e" || ph == "M")
            << "unexpected phase " << ph;
        ASSERT_TRUE(ev.has("name"));
        ASSERT_TRUE(ev.has("pid"));
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_TRUE(ev.has("ts"));
        ASSERT_GE(ev["ts"].num, 0.0);
        if (ph == "X") {
            ++complete;
            ASSERT_TRUE(ev.has("dur"));
            ASSERT_GE(ev["dur"].num, 0.0);
        }
        if (ph == "b" || ph == "e") {
            ++spans;
            ASSERT_TRUE(ev.has("id"));
            ASSERT_TRUE(ev.has("cat"));
        }
    }
    EXPECT_GT(metadata, 0u) << "no process/thread metadata";
    EXPECT_GT(complete, 0u) << "no duration events (kernels/transfers)";
    EXPECT_GT(spans, 0u) << "no tensor-lifetime spans";
}

TEST(ChromeTrace, LifetimeSpansNestCorrectly)
{
    Session &s = tracedVgg16();
    std::ostringstream os;
    obs::writeChromeTrace(os, s.executor().obs().tracer);
    Json root;
    ASSERT_TRUE(json::parse(os.str(), root));

    // Async spans pair by (cat, id): depth never goes negative and every
    // span opened is eventually closed (the executor closes residency
    // phases at iteration end).
    std::map<std::string, int> depth;
    for (const Json &ev : root["traceEvents"].arr) {
        const std::string &ph = ev["ph"].str;
        if (ph != "b" && ph != "e")
            continue;
        std::string key =
            ev["cat"].str + "/" +
            std::to_string(static_cast<long long>(ev["id"].num));
        if (ph == "b") {
            ASSERT_EQ(depth[key], 0)
                << "span " << key << " reopened while open";
            ++depth[key];
        } else {
            ASSERT_EQ(depth[key], 1) << "span " << key << " closed twice";
            --depth[key];
        }
    }
    for (const auto &[key, d] : depth)
        EXPECT_EQ(d, 0) << "span " << key << " left open";
}

TEST(ChromeTrace, MetricsExportsParse)
{
    Session &s = tracedVgg16();
    const obs::MetricsRegistry &m = s.executor().obs().metrics;

    std::ostringstream js;
    obs::writeMetricsJson(js, m);
    Json root;
    ASSERT_TRUE(json::parse(js.str(), root))
        << "metrics JSON is not valid JSON";
    ASSERT_TRUE(root.has("counters"));
    ASSERT_TRUE(root.has("gauges"));
    ASSERT_TRUE(root.has("iterations"));
    EXPECT_EQ(root["iterations"].arr.size(), 3u);

    std::ostringstream cs;
    obs::writeMetricsCsv(cs, m);
    std::string csv = cs.str();
    // Header + one row per iteration + one #histogram footer row each.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
              4 + static_cast<std::int64_t>(m.histograms().size()));
    EXPECT_EQ(csv.rfind("iteration", 0), 0u);
}

TEST(Metrics, HistogramPercentiles)
{
    // Known distribution: one observation each of 1..1000. Exact ranks are
    // 500/950/990; the log2-bucketed estimate must land inside the
    // surrounding power-of-two bucket.
    obs::MetricsRegistry m;
    m.setEnabled(true);
    for (std::uint64_t v = 1; v <= 1000; ++v)
        m.observe("h", v);
    const obs::Histogram *h = m.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->p50(), 256u);
    EXPECT_LE(h->p50(), 512u);
    EXPECT_GE(h->p95(), 512u);
    EXPECT_LE(h->p95(), 1000u);
    EXPECT_GE(h->p99(), h->p95());
    EXPECT_LE(h->p99(), 1000u);
    EXPECT_GE(h->p95(), h->p50());
    // Degenerate distributions pin every percentile to the single value.
    m.observe("one", 42);
    const obs::Histogram *one = m.histogram("one");
    EXPECT_EQ(one->p50(), 42u);
    EXPECT_EQ(one->p99(), 42u);
    // Percentiles ride along in the JSON export.
    std::ostringstream js;
    obs::writeMetricsJson(js, m);
    Json root;
    ASSERT_TRUE(json::parse(js.str(), root));
    const Json &hist = root["histograms"]["h"];
    ASSERT_FALSE(hist.isNull());
    EXPECT_DOUBLE_EQ(hist["p50"].num, static_cast<double>(h->p50()));
    EXPECT_DOUBLE_EQ(hist["p95"].num, static_cast<double>(h->p95()));
    EXPECT_DOUBLE_EQ(hist["p99"].num, static_cast<double>(h->p99()));
}

TEST(Metrics, EmptyHistogramPercentileIsZero)
{
    obs::Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

// --- Cross-layer metric invariants ---

TEST(ObsInvariants, SwapByteConservation)
{
    Session &s = tracedVgg16();
    const obs::MetricsRegistry &m = s.executor().obs().metrics;
    // Every byte swapped out either came back in or retired with its host
    // copy — transition-level conservation across the whole run.
    EXPECT_GT(m.counter("tensor.out_bytes"), 0u) << "run never swapped";
    EXPECT_EQ(m.counter("tensor.out_bytes"),
              m.counter("tensor.in_bytes") +
                  m.counter("tensor.retired_host_bytes"));
}

TEST(ObsInvariants, PrefetchHiddenRatioInRange)
{
    Session &s = tracedVgg16();
    const obs::MetricsRegistry &m = s.executor().obs().metrics;
    double ratio = m.gauge("prefetch.hidden_ratio");
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
}

TEST(ObsInvariants, KernelEventsMatchKernelBusy)
{
    // The compute track's Complete events must sum to the iteration stats'
    // kernel + recompute busy time: the trace and the stats are two views
    // of the same simulation.
    Session &s = tracedVgg16();
    Tick traced = 0;
    s.executor().obs().tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.track == obs::kTrackCompute &&
            ev.phase == obs::EventPhase::Complete)
            traced += ev.dur;
    });
    Tick stats = 0;
    // Session keeps only aggregate results; re-derive from the metrics.
    const obs::MetricsRegistry &m = s.executor().obs().metrics;
    stats = m.counter("compute.kernel_ns") + m.counter("compute.recompute_ns");
    EXPECT_EQ(traced, stats);
}

// --- Zero observer effect across the zoo ---

TEST(ObserverEffect, ObsLevelChangesNoTimestamps)
{
    // --obs-level=full must not move a single simulated timestamp relative
    // to --obs-level=off, for every graph-mode model in the zoo.
    for (ModelKind kind : graphModeModels()) {
        std::vector<std::pair<Tick, Tick>> base;
        for (auto level : {obs::ObsLevel::Off, obs::ObsLevel::Full}) {
            ExecConfig cfg;
            cfg.obsLevel = level;
            Session s(buildModel(kind, 32), cfg, makeCapuchinPolicy());
            auto r = s.run(2);
            ASSERT_FALSE(r.oom) << modelName(kind);
            std::vector<std::pair<Tick, Tick>> stamps;
            for (const auto &it : r.iterations)
                stamps.emplace_back(it.begin, it.end);
            if (level == obs::ObsLevel::Off)
                base = stamps;
            else
                EXPECT_EQ(stamps, base)
                    << modelName(kind) << ": tracing moved timestamps";
        }
    }
}

TEST(ObserverEffect, SwappingWorkloadIdenticalUnderTracing)
{
    // Same check on a workload that actually swaps (vDNN on Vgg16@230
    // exercises evict/prefetch/stall paths, not just kernels).
    std::vector<std::pair<Tick, Tick>> base;
    for (auto level : {obs::ObsLevel::Off, obs::ObsLevel::Full}) {
        ExecConfig cfg;
        cfg.obsLevel = level;
        Session s(buildVgg16(230), cfg, makeVdnnPolicy());
        auto r = s.run(2);
        ASSERT_FALSE(r.oom);
        std::vector<std::pair<Tick, Tick>> stamps;
        for (const auto &it : r.iterations)
            stamps.emplace_back(it.begin, it.end);
        if (level == obs::ObsLevel::Off)
            base = stamps;
        else
            EXPECT_EQ(stamps, base);
    }
}
