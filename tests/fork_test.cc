/**
 * @file
 * capufork tests: fork determinism (a session forked mid-run continues
 * bit-identically to the original — iteration stats, metrics, weight
 * fingerprints, capuscope traces), run() splitting, shared-graph /
 * no-re-measure structural guarantees, concurrent forking from one
 * SimState, speculate() determinism across thread counts, parallel
 * findMaxBatch equality with the serial search, and value-semantics
 * regression tests for EventQueue and BfcAllocator copies.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "memory/bfc_allocator.hh"
#include "models/workload.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"
#include "sim/event_queue.hh"
#include "support/thread_pool.hh"

using namespace capu;

namespace
{

struct ZooCase
{
    const char *name;
    ModelKind kind;
    std::int64_t batch;
};

const ZooCase kZoo[] = {
    {"vgg16", ModelKind::Vgg16, 230},
    {"resnet50", ModelKind::ResNet50, 200},
    {"bert", ModelKind::BertBase, 64},
};

struct PolicyCase
{
    const char *name;
    std::unique_ptr<MemoryPolicy> (*make)();
};

std::unique_ptr<MemoryPolicy>
makeCapuchin()
{
    return makeCapuchinPolicy();
}

std::unique_ptr<MemoryPolicy>
makeVdnn()
{
    return makeVdnnPolicy();
}

std::unique_ptr<MemoryPolicy>
makeCheckpointing()
{
    return makeCheckpointingPolicy(CheckpointingPolicy::Mode::Speed);
}

const PolicyCase kPolicies[] = {
    {"capuchin", makeCapuchin},
    {"vdnn", makeVdnn},
    {"checkpointing", makeCheckpointing},
};

ExecConfig
forkConfig(obs::ObsLevel level = obs::ObsLevel::Metrics,
           bool replay = true)
{
    ExecConfig cfg;
    cfg.obsLevel = level;
    cfg.replay.enabled = replay;
    return cfg;
}

void
expectIterationsEqual(const SessionResult &a, const SessionResult &b)
{
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        const IterationStats &x = a.iterations[i];
        const IterationStats &y = b.iterations[i];
        EXPECT_EQ(x.iteration, y.iteration) << "iteration " << i;
        EXPECT_EQ(x.begin, y.begin) << "iteration " << i;
        EXPECT_EQ(x.end, y.end) << "iteration " << i;
        EXPECT_EQ(x.kernelBusy, y.kernelBusy) << "iteration " << i;
        EXPECT_EQ(x.recomputeBusy, y.recomputeBusy) << "iteration " << i;
        EXPECT_EQ(x.inputStall, y.inputStall) << "iteration " << i;
        EXPECT_EQ(x.allocStall, y.allocStall) << "iteration " << i;
        EXPECT_EQ(x.swapOutBytes, y.swapOutBytes) << "iteration " << i;
        EXPECT_EQ(x.swapInBytes, y.swapInBytes) << "iteration " << i;
        EXPECT_EQ(x.swapOutCount, y.swapOutCount) << "iteration " << i;
        EXPECT_EQ(x.swapInCount, y.swapInCount) << "iteration " << i;
        EXPECT_EQ(x.recomputedTensors, y.recomputedTensors)
            << "iteration " << i;
        EXPECT_EQ(x.recomputeOps, y.recomputeOps) << "iteration " << i;
        EXPECT_EQ(x.droppedTensors, y.droppedTensors) << "iteration " << i;
        EXPECT_EQ(x.droppedBytes, y.droppedBytes) << "iteration " << i;
        EXPECT_EQ(x.inplaceForwards, y.inplaceForwards) << "iteration " << i;
        EXPECT_EQ(x.fallbackKernels, y.fallbackKernels) << "iteration " << i;
        EXPECT_EQ(x.oomEvictions, y.oomEvictions) << "iteration " << i;
        EXPECT_EQ(x.prefetchBusy, y.prefetchBusy) << "iteration " << i;
        EXPECT_EQ(x.prefetchStall, y.prefetchStall) << "iteration " << i;
        EXPECT_EQ(x.peakGpuBytes, y.peakGpuBytes) << "iteration " << i;
    }
}

void
expectMetricsEqual(const obs::MetricsRegistry &a,
                   const obs::MetricsRegistry &b)
{
    for (const auto &[name, value] : a.counters())
        EXPECT_EQ(value, b.counter(name)) << "counter " << name;
    EXPECT_EQ(a.counters().size(), b.counters().size());
    for (const auto &[name, value] : a.gauges())
        EXPECT_EQ(value, b.gauge(name)) << "gauge " << name;
    EXPECT_EQ(a.gauges().size(), b.gauges().size());
    for (const auto &[name, hist] : a.histograms()) {
        const obs::Histogram *other = b.histogram(name);
        ASSERT_NE(other, nullptr) << "histogram " << name;
        EXPECT_EQ(hist.count(), other->count()) << "histogram " << name;
        EXPECT_EQ(hist.sum(), other->sum()) << "histogram " << name;
        for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i)
            EXPECT_EQ(hist.bucket(i), other->bucket(i))
                << "histogram " << name << " bucket " << i;
    }
    EXPECT_EQ(a.histograms().size(), b.histograms().size());
}

void
expectWeightsEqual(Session &a, Session &b)
{
    const Graph &g = a.graph();
    for (std::size_t t = 0; t < g.numTensors(); ++t) {
        auto id = static_cast<TensorId>(t);
        if (g.tensor(id).kind != TensorKind::Weight)
            continue;
        const TensorState &x = a.executor().tensorState(id);
        const TensorState &y = b.executor().tensorState(id);
        EXPECT_EQ(x.weightVersion, y.weightVersion)
            << "weight " << g.tensor(id).name;
        EXPECT_EQ(x.fingerprint, y.fingerprint)
            << "weight " << g.tensor(id).name;
        EXPECT_EQ(x.expectedFp, y.expectedFp)
            << "weight " << g.tensor(id).name;
    }
}

/** Element-wise equality of the buffered capuscope trace rings. */
void
expectTracesEqual(const obs::Tracer &a, const obs::Tracer &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.recorded(), b.recorded());
    std::vector<const obs::TraceEvent *> ea, eb;
    ea.reserve(a.size());
    eb.reserve(b.size());
    a.forEach([&](const obs::TraceEvent &ev) { ea.push_back(&ev); });
    b.forEach([&](const obs::TraceEvent &ev) { eb.push_back(&ev); });
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        const obs::TraceEvent &x = *ea[i];
        const obs::TraceEvent &y = *eb[i];
        EXPECT_EQ(x.ts, y.ts) << "event " << i << " (" << x.name << ")";
        EXPECT_EQ(x.dur, y.dur) << "event " << i << " (" << x.name << ")";
        EXPECT_EQ(x.track, y.track) << "event " << i;
        EXPECT_EQ(static_cast<int>(x.phase), static_cast<int>(y.phase))
            << "event " << i;
        EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind))
            << "event " << i;
        EXPECT_EQ(x.tensor, y.tensor) << "event " << i;
        EXPECT_EQ(x.op, y.op) << "event " << i;
        EXPECT_EQ(x.bytes, y.bytes) << "event " << i;
        EXPECT_EQ(x.value, y.value) << "event " << i;
        EXPECT_EQ(x.name, y.name) << "event " << i;
    }
}

/** Run `prefix` iterations, fork, run both `tail` further; compare. */
void
checkForkDeterminism(ModelKind kind, std::int64_t batch,
                     const PolicyCase &pc, int prefix, int tail,
                     obs::ObsLevel level)
{
    Session base(buildModel(kind, batch), forkConfig(level), pc.make());
    SessionResult pre = base.run(prefix);
    ASSERT_FALSE(pre.oom) << pre.oomMessage;

    Session fork = base.fork();
    SessionResult ra = base.run(tail);
    SessionResult rb = fork.run(tail);
    ASSERT_FALSE(ra.oom) << ra.oomMessage;
    ASSERT_FALSE(rb.oom) << rb.oomMessage;

    expectIterationsEqual(ra, rb);
    EXPECT_EQ(ra.replay.executed, rb.replay.executed);
    EXPECT_EQ(ra.replay.replayed, rb.replay.replayed);
    EXPECT_EQ(ra.replay.audits, rb.replay.audits);
    expectWeightsEqual(base, fork);
    expectMetricsEqual(base.executor().obs().metrics,
                       fork.executor().obs().metrics);
    if (level == obs::ObsLevel::Full)
        expectTracesEqual(base.executor().obs().tracer,
                          fork.executor().obs().tracer);
}

} // namespace

// --- fork determinism across the zoo ----------------------------------

TEST(ForkDeterminism, ZooTimesPolicies)
{
    for (const auto &zc : kZoo) {
        for (const auto &pc : kPolicies) {
            SCOPED_TRACE(std::string(zc.name) + "/" + pc.name);
            checkForkDeterminism(zc.kind, zc.batch, pc, /*prefix=*/4,
                                 /*tail=*/6, obs::ObsLevel::Metrics);
        }
    }
}

/** Forking at several iteration boundaries, including before the plan
 *  stabilizes (k=1) and deep into steady-state replay (k=8). */
TEST(ForkDeterminism, SeveralForkPoints)
{
    for (int prefix : {1, 3, 8}) {
        SCOPED_TRACE("prefix=" + std::to_string(prefix));
        checkForkDeterminism(ModelKind::Vgg16, 230, kPolicies[0], prefix,
                             /*tail=*/12 - prefix, obs::ObsLevel::Metrics);
    }
}

/** Full tracing on: forked capuscope traces must be bit-identical too. */
TEST(ForkDeterminism, TraceIdentity)
{
    checkForkDeterminism(ModelKind::Vgg16, 230, kPolicies[0], /*prefix=*/3,
                         /*tail=*/5, obs::ObsLevel::Full);
}

/** A fork taken mid-run of a dynamic (capudrift) workload stays
 *  bit-identical: per-shape-class replay tracks are part of the copied
 *  state. */
TEST(ForkDeterminism, DynamicWorkload)
{
    DynamicWorkload wl =
        buildWorkload(WorkloadKind::Varlen, "bert", 64, /*seed=*/7);
    ExecConfig cfg = forkConfig();
    cfg.variantSchedule = wl.schedule;

    Session base(std::move(wl.graph), cfg, makeCapuchinPolicy());
    SessionResult pre = base.run(5);
    ASSERT_FALSE(pre.oom) << pre.oomMessage;

    Session fork = base.fork();
    SessionResult ra = base.run(7);
    SessionResult rb = fork.run(7);
    ASSERT_FALSE(ra.oom) << ra.oomMessage;
    ASSERT_FALSE(rb.oom) << rb.oomMessage;
    expectIterationsEqual(ra, rb);
    expectWeightsEqual(base, fork);
}

// --- run() splitting (the invariant fork determinism builds on) -------

TEST(ForkDeterminism, RunSplitEqualsStraight)
{
    constexpr int kTotal = 12;
    for (int split : {2, 5, 9}) {
        SCOPED_TRACE("split=" + std::to_string(split));
        Session whole(buildModel(ModelKind::ResNet50, 200), forkConfig(),
                      makeCapuchinPolicy());
        Session parts(buildModel(ModelKind::ResNet50, 200), forkConfig(),
                      makeCapuchinPolicy());
        SessionResult rw = whole.run(kTotal);
        SessionResult r1 = parts.run(split);
        SessionResult r2 = parts.run(kTotal - split);
        ASSERT_FALSE(rw.oom);
        ASSERT_FALSE(r1.oom);
        ASSERT_FALSE(r2.oom);
        // Stitch the two part-results and compare against one straight run.
        SessionResult stitched;
        stitched.iterations = r1.iterations;
        stitched.iterations.insert(stitched.iterations.end(),
                                   r2.iterations.begin(),
                                   r2.iterations.end());
        ASSERT_EQ(stitched.iterations.size(), rw.iterations.size());
        expectIterationsEqual(stitched, rw);
        // Replay accounting is cumulative: the second result covers all 12.
        EXPECT_EQ(r2.replay.executed + r2.replay.replayed, kTotal);
        expectWeightsEqual(whole, parts);
        expectMetricsEqual(whole.executor().obs().metrics,
                           parts.executor().obs().metrics);
    }
}

// --- structural guarantees: shared graph, no re-measure ----------------

TEST(ForkStructure, SharedGraphNoRemeasure)
{
    Session base(buildModel(ModelKind::Vgg16, 230), forkConfig(),
                 makeCapuchinPolicy());
    SessionResult pre = base.run(4);
    ASSERT_FALSE(pre.oom);

    auto *basePolicy = dynamic_cast<CapuchinPolicy *>(base.policy());
    ASSERT_NE(basePolicy, nullptr);
    ASSERT_TRUE(basePolicy->planBuilt());

    Session fork = base.fork();
    // The immutable graph is shared, not copied or re-measured.
    EXPECT_EQ(&fork.graph(), &base.graph());
    // The fork resumes at the same iteration with the plan already built:
    // no re-setup, no re-measurement pass.
    EXPECT_EQ(fork.executor().iteration(), base.executor().iteration());
    auto *forkPolicy = dynamic_cast<CapuchinPolicy *>(fork.policy());
    ASSERT_NE(forkPolicy, nullptr);
    EXPECT_TRUE(forkPolicy->planBuilt());
    EXPECT_NE(forkPolicy, basePolicy);
}

TEST(ForkStructure, SnapshotSharesGraphToo)
{
    Session base(buildModel(ModelKind::Vgg16, 230), forkConfig(),
                 makeCapuchinPolicy());
    ASSERT_FALSE(base.run(3).oom);
    SimState snap = base.snapshot();
    EXPECT_EQ(&snap.graph(), &base.graph());
    Session f1 = snap.fork();
    Session f2 = snap.fork();
    EXPECT_EQ(&f1.graph(), &base.graph());
    EXPECT_EQ(&f2.graph(), &base.graph());
}

/** Forking under a replacement policy: the new policy starts fresh on the
 *  snapshot's machine state and the run completes. */
TEST(ForkStructure, PolicySwapFork)
{
    Session base(buildModel(ModelKind::Vgg16, 230), forkConfig(),
                 makeCapuchinPolicy());
    ASSERT_FALSE(base.run(4).oom);

    Session swapped = base.fork(makeVdnnPolicy());
    ASSERT_NE(swapped.policy(), nullptr);
    EXPECT_NE(swapped.policy()->name(), base.policy()->name());
    SessionResult r = swapped.run(6);
    EXPECT_FALSE(r.oom) << r.oomMessage;
    // The original is untouched by the swap.
    SessionResult ro = base.run(6);
    EXPECT_FALSE(ro.oom) << ro.oomMessage;
}

// --- concurrent forking from one SimState ------------------------------

TEST(ForkConcurrency, SnapshotConcurrentForks)
{
    Session base(buildModel(ModelKind::Vgg16, 230), forkConfig(),
                 makeCapuchinPolicy());
    ASSERT_FALSE(base.run(3).oom);
    SimState snap = base.snapshot();

    // Reference: one serial fork continuation.
    Session ref = snap.fork();
    SessionResult want = ref.run(5);
    ASSERT_FALSE(want.oom);

    constexpr std::size_t kForks = 8;
    std::vector<SessionResult> got(kForks);
    {
        ThreadPool pool(4);
        pool.forEachIndex(kForks, [&](std::size_t i) {
            Session s = snap.fork();
            got[i] = s.run(5);
        });
    }
    for (std::size_t i = 0; i < kForks; ++i) {
        SCOPED_TRACE("fork " + std::to_string(i));
        ASSERT_FALSE(got[i].oom);
        expectIterationsEqual(want, got[i]);
    }
}

// --- speculate(): what-if policy race ----------------------------------

TEST(Speculate, DeterministicAcrossJobCounts)
{
    std::vector<PolicyFactoryFn> variants = {
        [] { return makeCapuchinPolicy(); },
        [] { return makeVdnnPolicy(); },
        [] {
            return makeCheckpointingPolicy(CheckpointingPolicy::Mode::Speed);
        },
    };

    Session base(buildModel(ModelKind::Vgg16, 230), forkConfig(),
                 makeCapuchinPolicy());
    ASSERT_FALSE(base.run(3).oom);

    SpeculateResult serial = base.speculate(variants, 5, /*jobs=*/1);
    SpeculateResult parallel = base.speculate(variants, 5, /*jobs=*/4);

    ASSERT_EQ(serial.candidates.size(), variants.size());
    ASSERT_EQ(parallel.candidates.size(), variants.size());
    EXPECT_EQ(serial.winner, parallel.winner);
    for (std::size_t i = 0; i < variants.size(); ++i) {
        SCOPED_TRACE("variant " + std::to_string(i));
        EXPECT_EQ(serial.candidates[i].policyName,
                  parallel.candidates[i].policyName);
        EXPECT_EQ(serial.candidates[i].steadyTicks,
                  parallel.candidates[i].steadyTicks);
        expectIterationsEqual(serial.candidates[i].result,
                              parallel.candidates[i].result);
    }
    // speculate() must not advance the session itself.
    SessionResult after = base.run(2);
    EXPECT_FALSE(after.oom);
    EXPECT_EQ(after.iterations.front().iteration, 3);
}

// --- parallel findMaxBatch ≡ serial findMaxBatch -----------------------

TEST(ParallelMaxBatch, EqualsSerial)
{
    auto builder = [](std::int64_t b) {
        return buildModel(ModelKind::Vgg16, b);
    };
    auto policy = [] { return makeCapuchinPolicy(); };
    ExecConfig cfg = forkConfig();

    MaxBatchStats serialStats;
    std::int64_t serial = findMaxBatch(builder, policy, cfg, 2, 16, 512,
                                       /*jobs=*/1, &serialStats);
    MaxBatchStats parStats;
    std::int64_t par = findMaxBatch(builder, policy, cfg, 2, 16, 512,
                                    /*jobs=*/4, &parStats);
    EXPECT_EQ(serial, par);
    EXPECT_GT(serial, 0);
    EXPECT_EQ(serialStats.speculated, 0);
    EXPECT_EQ(serialStats.jobs, 1u);
    EXPECT_EQ(parStats.jobs, 4u);
    // Parallel mode actually speculated, and the serial decision sequence
    // consumed at least some warmed probes.
    EXPECT_GT(parStats.speculated, 0);
    EXPECT_GT(parStats.servedFromWarm, 0);
    EXPECT_EQ(parStats.wasted,
              parStats.speculated - parStats.servedFromWarm);
}

TEST(ParallelMaxBatch, DynamicWorkloadEqualsSerial)
{
    const int seed = 11;
    DynamicWorkload ref =
        buildWorkload(WorkloadKind::Varlen, "bert", 32, seed);
    ExecConfig cfg = forkConfig();
    cfg.variantSchedule = ref.schedule;
    auto builder = [seed](std::int64_t b) {
        return buildWorkload(WorkloadKind::Varlen, "bert", b, seed).graph;
    };
    auto policy = [] { return makeCapuchinPolicy(); };

    std::int64_t serial =
        findMaxBatch(builder, policy, cfg, 2, 8, 256, /*jobs=*/1);
    std::int64_t par =
        findMaxBatch(builder, policy, cfg, 2, 8, 256, /*jobs=*/4);
    EXPECT_EQ(serial, par);
    EXPECT_GT(serial, 0);
}

// --- value-semantics regressions: EventQueue / BfcAllocator ------------

/** A copied EventQueue fires the same schedule independently — ids,
 *  lazy-cancellation bookkeeping and the heap are all value state, not
 *  process-global. */
TEST(ValueSemantics, EventQueueCopyIndependent)
{
    EventQueue q;
    std::vector<int> fired;
    std::uint64_t a = q.schedule(10, [&](Tick) { fired.push_back(1); });
    q.schedule(20, [&](Tick) { fired.push_back(2); });
    q.schedule(30, [&](Tick) { fired.push_back(3); });

    EventQueue copy = q;
    EXPECT_EQ(copy.pending(), q.pending());
    EXPECT_EQ(copy.now(), q.now());

    // Cancelling in the original must not affect the copy (ids are values
    // carried by the copy, not shared process state).
    EXPECT_TRUE(q.cancel(a));
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_EQ(copy.pending(), 3u);

    // The copy still knows the id and can cancel it itself.
    EXPECT_TRUE(copy.cancel(a));
    EXPECT_EQ(copy.pending(), 2u);

    fired.clear();
    q.runAll();
    EXPECT_EQ(fired, (std::vector<int>{2, 3}));
    fired.clear();
    copy.runAll();
    EXPECT_EQ(fired, (std::vector<int>{2, 3}));
    EXPECT_EQ(q.now(), copy.now());

    // New ids issued after the split stay disjoint per instance and do
    // not collide with each other's bookkeeping.
    std::uint64_t n1 = q.schedule(40, [](Tick) {});
    std::uint64_t n2 = copy.schedule(40, [](Tick) {});
    EXPECT_EQ(n1, n2) << "id sequences are per-instance, not global";
    EXPECT_TRUE(q.cancel(n1));
    EXPECT_TRUE(copy.cancel(n2));
}

/** A copied BfcAllocator carries the full arena layout by value: frees
 *  and allocations on one side never leak into the other. */
TEST(ValueSemantics, BfcAllocatorCopyIndependent)
{
    BfcAllocator alloc(1 << 20);
    auto h1 = alloc.allocate(4096, BfcAllocator::Placement::Auto);
    auto h2 = alloc.allocate(8192, BfcAllocator::Placement::Auto);
    auto h3 = alloc.allocate(2048, BfcAllocator::Placement::Auto);
    ASSERT_TRUE(h1 && h2 && h3);

    BfcAllocator copy = alloc;
    EXPECT_EQ(copy.bytesInUse(), alloc.bytesInUse());
    EXPECT_EQ(copy.fragmentation(), alloc.fragmentation());

    // Free in the original; the copy's arena must be untouched.
    alloc.deallocate(*h2);
    EXPECT_LT(alloc.bytesInUse(), copy.bytesInUse());

    // The copy can free the same (value) handle independently...
    copy.deallocate(*h2);
    EXPECT_EQ(copy.bytesInUse(), alloc.bytesInUse());

    // ...and both sides converge to identical layouts after mirrored ops.
    auto a4 = alloc.allocate(16384, BfcAllocator::Placement::Auto);
    auto c4 = copy.allocate(16384, BfcAllocator::Placement::Auto);
    ASSERT_TRUE(a4 && c4);
    EXPECT_EQ(*a4, *c4) << "best-fit must pick the same offset";
    EXPECT_EQ(alloc.bytesInUse(), copy.bytesInUse());
    EXPECT_EQ(alloc.stats().splitCount, copy.stats().splitCount);
    EXPECT_EQ(alloc.stats().mergeCount, copy.stats().mergeCount);

    alloc.deallocate(*h1);
    alloc.deallocate(*h3);
    alloc.deallocate(*a4);
    copy.deallocate(*h1);
    copy.deallocate(*h3);
    copy.deallocate(*c4);
    EXPECT_EQ(alloc.bytesInUse(), 0u);
    EXPECT_EQ(copy.bytesInUse(), 0u);
    EXPECT_EQ(alloc.fragmentation(), copy.fragmentation());
}
