/**
 * @file
 * End-to-end tests of the Capuchin policy: measured execution, guided
 * execution, feedback, iterative refinement, abort recovery, eager mode.
 */

#include <gtest/gtest.h>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "test_graphs.hh"

using namespace capu;

namespace
{

/** Session over ResNet-50 at `batch` with a Capuchin policy handle. */
struct CapuchinRun
{
    CapuchinPolicy *policy;
    Session session;

    explicit CapuchinRun(std::int64_t batch, CapuchinOptions opts = {},
                         ExecConfig cfg = {})
        : policy(nullptr),
          session(buildResNet(batch, 50), cfg,
                  [&] {
                      auto p = std::make_unique<CapuchinPolicy>(opts);
                      policy = p.get();
                      return p;
                  }())
    {
    }
};

} // namespace

TEST(Capuchin, NoOversubscriptionMeansNoPlan)
{
    CapuchinRun run(64);
    auto r = run.session.run(3);
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(run.policy->measuredEvictedBytes(), 0u);
    EXPECT_TRUE(run.policy->plan().items.empty());
    // ... and zero overhead: same speed as the unmanaged baseline.
    Session base(buildResNet(64, 50), ExecConfig{}, makeNoOpPolicy());
    auto rb = base.run(3);
    EXPECT_EQ(r.steadyIterationTicks(1), rb.steadyIterationTicks(1));
}

TEST(Capuchin, MeasuredExecutionSurvivesOversubscription)
{
    // Batch 400 needs ~2x the P100's memory; passive mode must carry the
    // measured iteration through.
    CapuchinRun run(400);
    auto r = run.session.run(1);
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.last().oomEvictions, 0);
    EXPECT_GT(run.policy->measuredEvictedBytes(), 1_GiB);
    EXPECT_GT(run.policy->tracker().size(), 1000u);
}

TEST(Capuchin, GuidedExecutionBeatsMeasured)
{
    CapuchinRun run(400);
    auto r = run.session.run(6);
    ASSERT_FALSE(r.oom);
    EXPECT_TRUE(run.policy->planBuilt());
    EXPECT_GT(run.policy->plan().items.size(), 0u);
    // Guided iterations are faster than the passive measured one.
    EXPECT_LT(r.iterations.back().duration(),
              r.iterations.front().duration());
}

TEST(Capuchin, GuidedUsesProactiveEviction)
{
    CapuchinRun run(400);
    auto r = run.session.run(6);
    ASSERT_FALSE(r.oom);
    // Passive (on-demand) evictions nearly vanish under the plan.
    EXPECT_LT(r.iterations.back().oomEvictions,
              r.iterations.front().oomEvictions / 2);
}

TEST(Capuchin, PlanTimestampsAreStallCorrected)
{
    // The measured iteration's access times include on-demand swap stalls;
    // the recorded trace must be on the corrected (infinite-memory)
    // timeline, i.e. strictly shorter than the raw iteration.
    CapuchinRun run(400);
    auto r = run.session.run(1);
    ASSERT_FALSE(r.oom);
    Tick trace_span = run.policy->tracker().sequence().back().time;
    EXPECT_LT(trace_span, r.last().duration());
}

TEST(Capuchin, FeedbackAdjustsInTriggers)
{
    CapuchinRun run(400);
    auto r = run.session.run(8);
    ASSERT_FALSE(r.oom);
    if (run.policy->plan().swapCount > 0) {
        EXPECT_GT(run.policy->feedbackAdjustments(), 0);
    }
}

TEST(Capuchin, FeedbackImprovesThroughputOverIterations)
{
    CapuchinRun run(400);
    auto r = run.session.run(25);
    ASSERT_FALSE(r.oom);
    // Stabilized performance beats the first guided iteration ("measure
    // once the policy is stable", §6.3.2).
    Tick early = r.iterations[1].duration();
    Tick late = r.iterations.back().duration();
    EXPECT_LE(late, early);
}

TEST(Capuchin, FeedbackCanBeDisabled)
{
    CapuchinOptions opts;
    opts.enableFeedback = false;
    CapuchinRun run(400, opts);
    auto r = run.session.run(8);
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(run.policy->feedbackAdjustments(), 0);
}

TEST(Capuchin, SwapOnlyModeNeverRecomputes)
{
    CapuchinOptions opts;
    opts.enableRecompute = false;
    CapuchinRun run(350, opts);
    auto r = run.session.run(5);
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.last().recomputeOps, 0);
    EXPECT_GT(r.last().swapOutBytes, 0u);
}

TEST(Capuchin, RecomputeOnlyModeNeverPlansSwaps)
{
    CapuchinOptions opts;
    opts.enableSwap = false;
    CapuchinRun run(350, opts);
    auto r = run.session.run(5);
    ASSERT_FALSE(r.oom);
    for (const auto &item : run.policy->plan().items)
        EXPECT_EQ(item.mode, RegenChoice::Recompute);
    EXPECT_GT(r.last().recomputeOps, 0);
}

TEST(Capuchin, HybridUsesBothMechanisms)
{
    CapuchinRun run(500);
    auto r = run.session.run(6);
    ASSERT_FALSE(r.oom);
    EXPECT_GT(run.policy->plan().swapCount, 0u);
    EXPECT_GT(run.policy->plan().recomputeCount, 0u);
}

TEST(Capuchin, ExtendsMaxBatchBeyondBaselines)
{
    ExecConfig cfg;
    auto builder = [](std::int64_t b) { return buildResNet(b, 50); };
    auto tf = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, cfg,
                           2, 1, 4096);
    auto capu = findMaxBatch(builder, [] { return makeCapuchinPolicy(); },
                             cfg, 2, 1, 4096);
    // Table 2's headline: ~5x the unmanaged framework on ResNet-50
    // (paper: 1014/190 = 5.3x; our robust max-batch search is
    // conservative, so accept >= 4.5x).
    EXPECT_GT(capu * 2, tf * 9);
}

TEST(Capuchin, AbortRecoveryRescuesMeasuredExecution)
{
    // At a batch past single-shot passive feasibility, measured execution
    // relies on abort-and-retry with partial plans.
    ExecConfig cfg;
    CapuchinRun run(1000, CapuchinOptions{}, cfg);
    auto r = run.session.run(3);
    EXPECT_FALSE(r.oom);
}

TEST(Capuchin, WorksInEagerMode)
{
    ExecConfig cfg;
    cfg.eagerMode = true;
    CapuchinRun run(300, CapuchinOptions{}, cfg);
    auto r = run.session.run(4);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_GT(r.last().swapOutBytes + r.last().droppedBytes, 0u);
}

TEST(Capuchin, EagerMaxBatchGainMatchesPaperShape)
{
    // Table 3: ResNet-50 eager 122 -> 300 under Capuchin (>= 2x).
    ExecConfig cfg;
    cfg.eagerMode = true;
    auto builder = [](std::int64_t b) { return buildResNet(b, 50); };
    auto tf = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, cfg,
                           2, 1, 2048);
    auto capu = findMaxBatch(builder, [] { return makeCapuchinPolicy(); },
                             cfg, 2, 1, 2048);
    EXPECT_GT(capu, tf * 2);
}

TEST(Capuchin, TrackingOverheadIsNegligible)
{
    // §6.3.2: at batches the baseline can run, Capuchin's instrumentation
    // costs <1%. Our tracker is event-driven off the same hooks, so guided
    // iterations at a fitting batch must match the baseline exactly.
    Session base(buildResNet(128, 50), ExecConfig{}, makeNoOpPolicy());
    CapuchinRun run(128);
    auto rb = base.run(4);
    auto rc = run.session.run(4);
    ASSERT_FALSE(rb.oom);
    ASSERT_FALSE(rc.oom);
    double ratio = static_cast<double>(rc.steadyIterationTicks(1)) /
                   static_cast<double>(rb.steadyIterationTicks(1));
    EXPECT_LT(ratio, 1.01);
}
