/** @file Unit tests for the support library (strfmt, logging, rng, units). */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strfmt.hh"
#include "support/units.hh"

using namespace capu;

TEST(Strfmt, NoPlaceholders)
{
    EXPECT_EQ(fmt("hello"), "hello");
}

TEST(Strfmt, SingleSubstitution)
{
    EXPECT_EQ(fmt("x = {}", 42), "x = 42");
}

TEST(Strfmt, MultipleSubstitutions)
{
    EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Strfmt, StringArgs)
{
    EXPECT_EQ(fmt("{} {}", std::string("a"), "b"), "a b");
}

TEST(Strfmt, SurplusArgsAppended)
{
    // Mis-counted format strings must not drop information.
    EXPECT_EQ(fmt("x={}", 1, 2), "x=1 2");
}

TEST(Strfmt, SurplusPlaceholdersKept)
{
    EXPECT_EQ(fmt("{} {}", 7), "7 {}");
}

TEST(Strfmt, MixedTypes)
{
    EXPECT_EQ(fmt("{}/{}", 1.5, 'c'), "1.5/c");
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom {}", 1), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config {}", "x"), FatalError);
}

TEST(Logging, PanicMessageContainsArgs)
{
    try {
        panic("value was {}", 99);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("99"), std::string::npos);
    }
}

TEST(Logging, WarnRespectsEnableFlag)
{
    setLogEnabled(false);
    EXPECT_FALSE(logEnabled());
    warn("should not print");
    setLogEnabled(true);
    EXPECT_TRUE(logEnabled());
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformIntInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng r(7);
    EXPECT_EQ(r.uniformInt(5, 5), 5u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealCoversRange)
{
    Rng r(13);
    bool low = false, high = false;
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformReal(0, 100);
        low = low || v < 10;
        high = high || v > 90;
    }
    EXPECT_TRUE(low);
    EXPECT_TRUE(high);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Hash, CombineOrderMatters)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Hash, StringStable)
{
    EXPECT_EQ(hashString("conv1"), hashString("conv1"));
    EXPECT_NE(hashString("conv1"), hashString("conv2"));
}

TEST(Units, TickConversions)
{
    EXPECT_EQ(ticksFromUs(1), 1000u);
    EXPECT_EQ(ticksFromMs(1), 1000000u);
    EXPECT_EQ(ticksFromSec(1), 1000000000u);
    EXPECT_DOUBLE_EQ(ticksToUs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToSec(kTickPerSec), 1.0);
}

TEST(Units, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(17), "17 B");
    EXPECT_EQ(formatBytes(1536), "1.5 KiB");
    EXPECT_EQ(formatBytes(3ull << 20), "3.0 MiB");
    EXPECT_EQ(formatBytes(1536ull << 20), "1.50 GiB");
}

TEST(Units, FormatTicks)
{
    EXPECT_EQ(formatTicks(500), "500 ns");
    EXPECT_EQ(formatTicks(ticksFromUs(2)), "2.0 us");
    EXPECT_EQ(formatTicks(ticksFromMs(3)), "3.00 ms");
    EXPECT_EQ(formatTicks(ticksFromSec(2)), "2.00 s");
}
