/**
 * @file
 * Tests for the model zoo: parameter counts against the defining papers,
 * structural properties, and batch-size scaling.
 */

#include <gtest/gtest.h>

#include "models/builder.hh"
#include "models/zoo.hh"
#include "support/logging.hh"
#include "support/units.hh"

using namespace capu;

namespace
{

double
weightMillions(const Graph &g)
{
    return static_cast<double>(g.bytesOfKind(TensorKind::Weight)) / 4.0 /
           1e6;
}

int
forwardConvs(const Graph &g)
{
    int n = 0;
    for (const auto &op : g.ops()) {
        if (op.category == OpCategory::Conv && op.phase == Phase::Forward)
            ++n;
    }
    return n;
}

} // namespace

class ModelZooTest : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(ModelZooTest, BuildsAndValidates)
{
    Graph g = buildModel(GetParam(), 4);
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(g.numOps(), 10u);
}

TEST_P(ModelZooTest, HasForwardBackwardAndUpdates)
{
    Graph g = buildModel(GetParam(), 4);
    auto s = g.stats();
    EXPECT_GT(s.forwardOps, 0u);
    EXPECT_GT(s.backwardOps, 0u);
    EXPECT_GT(s.weightBytes, 0u);
    EXPECT_GT(s.gradientBytes, 0u);
}

TEST_P(ModelZooTest, FeatureMapsScaleWithBatch)
{
    Graph g2 = buildModel(GetParam(), 2);
    Graph g8 = buildModel(GetParam(), 8);
    // Weights are batch-independent; feature maps scale ~4x (the BN stats
    // and similar per-channel tensors keep it from being exact).
    EXPECT_EQ(g2.bytesOfKind(TensorKind::Weight),
              g8.bytesOfKind(TensorKind::Weight));
    double ratio =
        static_cast<double>(g8.bytesOfKind(TensorKind::FeatureMap)) /
        static_cast<double>(g2.bytesOfKind(TensorKind::FeatureMap));
    EXPECT_NEAR(ratio, 4.0, 0.15);
}

TEST_P(ModelZooTest, EveryForwardFeatureMapHasProducer)
{
    Graph g = buildModel(GetParam(), 2);
    for (const auto &t : g.tensors()) {
        if (t.kind == TensorKind::FeatureMap) {
            EXPECT_NE(t.producer, kInvalidOp) << t.name;
        }
    }
}

TEST_P(ModelZooTest, DeterministicConstruction)
{
    Graph a = buildModel(GetParam(), 4);
    Graph b = buildModel(GetParam(), 4);
    ASSERT_EQ(a.numOps(), b.numOps());
    ASSERT_EQ(a.numTensors(), b.numTensors());
    for (std::size_t i = 0; i < a.numOps(); ++i) {
        EXPECT_EQ(a.op(static_cast<OpId>(i)).name,
                  b.op(static_cast<OpId>(i)).name);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZooTest,
                         ::testing::ValuesIn(allModels()),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

// --- parameter counts vs the defining papers ---

TEST(ModelParams, Vgg16Has138M)
{
    // Simonyan & Zisserman report 138M parameters.
    EXPECT_NEAR(weightMillions(buildVgg16(1)), 138.0, 5.0);
}

TEST(ModelParams, ResNet50Has25M)
{
    EXPECT_NEAR(weightMillions(buildResNet(1, 50)), 25.5, 2.0);
}

TEST(ModelParams, ResNet152Has60M)
{
    EXPECT_NEAR(weightMillions(buildResNet(1, 152)), 60.2, 3.0);
}

TEST(ModelParams, InceptionV3Has24M)
{
    EXPECT_NEAR(weightMillions(buildInceptionV3(1)), 23.8, 2.5);
}

TEST(ModelParams, InceptionV4Has43M)
{
    EXPECT_NEAR(weightMillions(buildInceptionV4(1)), 42.7, 4.0);
}

TEST(ModelParams, DenseNet121Has8M)
{
    EXPECT_NEAR(weightMillions(buildDenseNet121(1)), 8.0, 1.5);
}

TEST(ModelParams, BertBaseHas110M)
{
    // Devlin et al.: BERT-base has ~110M parameters; the paper quotes the
    // same number. Ours adds the untied MLM output projection (+23M).
    EXPECT_NEAR(weightMillions(buildBert(1)), 110.0, 30.0);
}

// --- structural details the evaluation depends on ---

TEST(ModelStructure, InceptionV3HasAbout94Convs)
{
    // Figure 2 profiles "these 94 convolution layers".
    int convs = forwardConvs(buildInceptionV3(1));
    EXPECT_GE(convs, 90);
    EXPECT_LE(convs, 100);
}

TEST(ModelStructure, Vgg16Has13ConvsAnd3Fc)
{
    Graph g = buildVgg16(1);
    EXPECT_EQ(forwardConvs(g), 13);
    int fc = 0;
    for (const auto &op : g.ops()) {
        if (op.category == OpCategory::MatMul && op.phase == Phase::Forward)
            ++fc;
    }
    EXPECT_EQ(fc, 3);
}

TEST(ModelStructure, ResNet50Has53Convs)
{
    // 1 stem + 16 blocks x 3 + 4 projection shortcuts = 53.
    EXPECT_EQ(forwardConvs(buildResNet(1, 50)), 53);
}

TEST(ModelStructure, ResNetDepthsDiffer)
{
    EXPECT_GT(buildResNet(1, 152).numOps(), buildResNet(1, 50).numOps());
}

TEST(ModelStructure, UnsupportedResNetDepthIsFatal)
{
    EXPECT_THROW(buildResNet(1, 101), FatalError);
}

TEST(ModelStructure, BertHasTwelveLayers)
{
    Graph g = buildBert(1);
    int attn_softmax = 0;
    for (const auto &op : g.ops()) {
        if (op.phase == Phase::Forward &&
            op.name.find("attn_softmax") != std::string::npos)
            ++attn_softmax;
    }
    EXPECT_EQ(attn_softmax, 12);
}

TEST(ModelStructure, BertMlmHeadIsMaskedOnly)
{
    // The MLM logits tensor must cover only ~15% of positions — a
    // full {B,S,vocab} tensor would never fit training on a 16 GB card.
    BertConfig cfg;
    Graph g = buildBert(8, cfg);
    for (const auto &t : g.tensors()) {
        if (t.name == "mlm:logits:out") {
            auto full = static_cast<std::uint64_t>(8) * cfg.seqLen *
                        cfg.vocab * 4;
            EXPECT_LT(t.bytes, full / 4);
            return;
        }
    }
    FAIL() << "mlm:logits:out not found";
}

TEST(ModelStructure, ConvThreeByThreeUsesWinograd)
{
    Graph g = buildVgg16(2);
    for (const auto &op : g.ops()) {
        if (op.category == OpCategory::Conv && op.phase == Phase::Forward) {
            // All VGG convs are 3x3 stride 1 -> Winograd-eligible.
            EXPECT_GT(op.fastAlgoSpeedup, 1.0) << op.name;
            EXPECT_GT(op.fastWorkspaceBytes, 0u) << op.name;
        }
    }
}

TEST(ModelStructure, DropoutMasksSurviveToBackward)
{
    Graph g = buildVgg16(2);
    bool found = false;
    for (const auto &t : g.tensors()) {
        if (t.name.find(":mask") == std::string::npos)
            continue;
        found = true;
        bool backward_use = false;
        for (OpId c : g.consumers(t.id)) {
            if (g.op(c).phase == Phase::Backward)
                backward_use = true;
        }
        EXPECT_TRUE(backward_use) << t.name;
    }
    EXPECT_TRUE(found);
}

TEST(ModelBuilderApi, RejectsNonPositiveBatch)
{
    EXPECT_THROW(ModelBuilder("x", 0), FatalError);
    EXPECT_THROW(ModelBuilder("x", -3), FatalError);
}

TEST(ModelBuilderApi, ConvDimensionArithmetic)
{
    ModelBuilder b("x", 1);
    TensorId in = b.input(3, 224, 224);
    TensorId out = b.conv2d(in, 64, 7, 2, 3);
    EXPECT_EQ(b.dims(out).h, 112);
    EXPECT_EQ(b.dims(out).c, 64);
    TensorId p = b.maxpool(out, 3, 2, 1);
    EXPECT_EQ(b.dims(p).h, 56);
}

TEST(ModelBuilderApi, ConvBelowOnePixelIsFatal)
{
    ModelBuilder b("x", 1);
    TensorId in = b.input(3, 2, 2);
    EXPECT_THROW(b.conv2d(in, 8, 7, 1, 0), FatalError);
}

TEST(ModelBuilderApi, ConcatChecksSpatialDims)
{
    ModelBuilder b("x", 1);
    TensorId in = b.input(3, 32, 32);
    TensorId a = b.conv2d(in, 8, 3);
    TensorId c = b.conv2d(in, 8, 3, 2); // 16x16
    EXPECT_THROW(b.concat({a, c}), FatalError);
}

TEST(ModelBuilderApi, AddChecksSizes)
{
    ModelBuilder b("x", 1);
    TensorId in = b.input(3, 32, 32);
    TensorId a = b.conv2d(in, 8, 3);
    TensorId c = b.conv2d(in, 16, 3);
    EXPECT_THROW(b.add(a, c), FatalError);
}

TEST(ModelBuilderApi, UniqueNames)
{
    ModelBuilder b("x", 1);
    TensorId in = b.input(3, 32, 32);
    b.conv2d(in, 8, 3);
    b.conv2d(in, 8, 3);
    const Graph &g = b.graph();
    // Same base name, distinct instances.
    bool saw_conv = false, saw_conv1 = false;
    for (const auto &op : g.ops()) {
        saw_conv = saw_conv || op.name == "conv";
        saw_conv1 = saw_conv1 || op.name == "conv_1";
    }
    EXPECT_TRUE(saw_conv);
    EXPECT_TRUE(saw_conv1);
}
