/** @file Build smoke test: construct each model graph and validate it. */

#include <gtest/gtest.h>

#include "models/zoo.hh"

TEST(Smoke, BuildAllModels)
{
    for (auto kind : capu::allModels()) {
        auto g = capu::buildModel(kind, 2);
        EXPECT_GT(g.numOps(), 10u) << capu::modelName(kind);
    }
}
