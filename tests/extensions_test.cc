/**
 * @file
 * Tests for the extension features: the LSTM workload, trace
 * serialization, swap compression, and tracker-side iteration-boundary
 * detection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/capuchin_policy.hh"
#include "core/trace_io.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "support/logging.hh"

using namespace capu;

// --- LSTM workload ---

TEST(Lstm, BuildsAndValidates)
{
    Graph g = buildLstm(4);
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(g.numOps(), 500u);
}

TEST(Lstm, WeightsAreAccessedEveryTimestep)
{
    LstmConfig cfg;
    cfg.timesteps = 16;
    Graph g = buildLstm(4, cfg);
    // The layer-0 recurrent weight feeds one gemm per timestep plus its
    // backward ops: far more consumers than any CNN weight.
    for (const auto &t : g.tensors()) {
        if (t.name == "lstm0:w") {
            EXPECT_GE(g.consumers(t.id).size(),
                      static_cast<std::size_t>(cfg.timesteps));
            return;
        }
    }
    FAIL() << "lstm0:w not found";
}

TEST(Lstm, TrainsUnderCapuchinWhenOversubscribed)
{
    // Beyond the unmanaged maximum (~580 at the default config).
    ExecConfig cfg;
    Session base(buildLstm(800), cfg, makeNoOpPolicy());
    EXPECT_TRUE(base.run(1).oom);

    Session capu(buildLstm(800), cfg, makeCapuchinPolicy());
    auto r = capu.run(4);
    EXPECT_FALSE(r.oom) << r.oomMessage;
}

TEST(Lstm, ParamCountMatchesFormula)
{
    LstmConfig cfg;
    Graph g = buildLstm(1, cfg);
    // Per layer: (in + hidden) * 4 * hidden; plus vocab projection,
    // initial states, embeddings excluded (source op).
    std::uint64_t expect = 0;
    for (std::int64_t l = 0; l < cfg.layers; ++l) {
        std::int64_t in = l == 0 ? cfg.embedDim : cfg.hidden;
        expect += static_cast<std::uint64_t>(in + cfg.hidden) * 4 *
                  cfg.hidden * 4;
    }
    expect += static_cast<std::uint64_t>(cfg.hidden) * cfg.vocab * 4;
    std::uint64_t got = g.bytesOfKind(TensorKind::Weight);
    EXPECT_GE(got, expect);
    EXPECT_LE(got, expect + (4ull << 20)); // + initial states
}

// --- trace serialization ---

namespace
{

TensorTrace
capturedResNetTrace(std::int64_t batch)
{
    CapuchinPolicy *capu = nullptr;
    auto p = makeCapuchinPolicy();
    capu = static_cast<CapuchinPolicy *>(p.get());
    Session s(buildResNet(batch, 50), ExecConfig{}, std::move(p));
    auto r = s.run(1);
    EXPECT_FALSE(r.oom);
    return captureTrace(capu->tracker(), s.graph());
}

} // namespace

TEST(TraceIo, RoundTripPreservesEverything)
{
    TensorTrace trace = capturedResNetTrace(32);
    ASSERT_GT(trace.records.size(), 100u);

    std::stringstream ss;
    writeTrace(ss, trace);
    TensorTrace back = readTrace(ss);

    ASSERT_EQ(back.records.size(), trace.records.size());
    ASSERT_EQ(back.tensors.size(), trace.tensors.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        EXPECT_EQ(back.records[i].tensor, trace.records[i].tensor);
        EXPECT_EQ(back.records[i].accessIndex, trace.records[i].accessIndex);
        EXPECT_EQ(back.records[i].time, trace.records[i].time);
        EXPECT_EQ(back.records[i].isOutput, trace.records[i].isOutput);
        EXPECT_EQ(back.records[i].op, trace.records[i].op);
    }
    for (std::size_t i = 0; i < trace.tensors.size(); ++i) {
        EXPECT_EQ(back.tensors[i].id, trace.tensors[i].id);
        EXPECT_EQ(back.tensors[i].bytes, trace.tensors[i].bytes);
        EXPECT_EQ(back.tensors[i].kind, trace.tensors[i].kind);
    }
}

TEST(TraceIo, LoadedTrackerMatchesOriginal)
{
    TensorTrace trace = capturedResNetTrace(32);
    AccessTracker tracker = trace.toTracker();
    EXPECT_EQ(tracker.size(), trace.records.size());
    // Per-op durations derived identically.
    for (const auto &rec : trace.records) {
        if (rec.op != kInvalidOp) {
            EXPECT_TRUE(tracker.hasOpDuration(rec.op) ||
                        tracker.opDuration(rec.op) == 0);
        }
    }
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream ss("not a trace\n1,2,3\n");
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIo, RejectsTruncatedTable)
{
    std::stringstream ss("# capuchin-trace v1\ntensors 5\n1,a,10,feature\n");
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_THROW(loadTraceFile("/nonexistent/trace.csv"), FatalError);
}

// --- swap compression ---

TEST(SwapCompression, ReducesSwapStalls)
{
    auto run = [](double ratio) {
        ExecConfig cfg;
        cfg.swapCompressionRatio = ratio;
        CapuchinOptions opts;
        opts.enableRecompute = false; // force everything through PCIe
        Session s(buildResNet(350, 50), cfg, makeCapuchinPolicy(opts));
        auto r = s.run(10);
        EXPECT_FALSE(r.oom);
        return r.steadyIterationTicks(5);
    };
    Tick plain = run(1.0);
    Tick compressed = run(2.0);
    EXPECT_LT(compressed, plain);
}

TEST(SwapCompression, ReducesHostFootprint)
{
    // Swap-only plans so the eviction set is size-driven and stable
    // across ratios; the host staging copies then shrink by the ratio.
    auto host_peak = [](double ratio) {
        ExecConfig cfg;
        cfg.swapCompressionRatio = ratio;
        CapuchinOptions opts;
        opts.enableRecompute = false;
        Session s(buildResNet(300, 50), cfg, makeCapuchinPolicy(opts));
        auto r = s.run(2);
        EXPECT_FALSE(r.oom);
        return s.executor().memory().host().peakBytesInUse();
    };
    std::uint64_t plain = host_peak(1.0);
    std::uint64_t compressed = host_peak(4.0);
    EXPECT_LT(compressed, plain * 2 / 3);
}

TEST(SwapCompression, DisabledIsIdentity)
{
    ExecConfig a;
    ExecConfig b;
    b.swapCompressionRatio = 1.0;
    Session sa(buildResNet(300, 50), a, makeCapuchinPolicy());
    Session sb(buildResNet(300, 50), b, makeCapuchinPolicy());
    EXPECT_EQ(sa.run(3).steadyIterationTicks(1),
              sb.run(3).steadyIterationTicks(1));
}
