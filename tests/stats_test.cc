/** @file Tests for the stats/reporting substrate (tables, timelines). */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.hh"
#include "stats/timeline.hh"
#include "support/logging.hh"

using namespace capu;

namespace
{

/** Tracer preloaded with Complete events on one track. */
obs::Tracer
makeTracer(std::uint32_t track,
           const std::vector<std::pair<Tick, Tick>> &intervals)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    for (const auto &[start, end] : intervals)
        tracer.complete(track, obs::EventKind::Kernel, start, end - start,
                        "iv");
    return tracer;
}

} // namespace

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CellAccess)
{
    Table t({"a", "b"});
    t.addRow({"x", "y"});
    EXPECT_EQ(t.cell(0, 1), "y");
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_THROW(t.cell(1, 0), PanicError);
}

TEST(Table, RowArityChecked)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, EmptyHeaderIsFatal)
{
    EXPECT_THROW(Table t({}), FatalError);
}

TEST(Table, CsvEscapesCommas)
{
    Table t({"a"});
    t.addRow({"x,y"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, CellFormatters)
{
    EXPECT_EQ(cellInt(42), "42");
    EXPECT_EQ(cellDouble(1.23456, 2), "1.23");
    EXPECT_EQ(cellPercent(0.417, 1), "41.7%");
}

TEST(Timeline, RendersBusyCells)
{
    auto tracer = makeTracer(obs::kTrackCompute, {{0, 50}, {75, 100}});
    std::ostringstream os;
    renderTimeline(os, tracer, {{"comp", obs::kTrackCompute}}, 0, 100, 20);
    std::string out = os.str();
    // First half busy, gap, then busy tail.
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("."), std::string::npos);
}

TEST(Timeline, WindowClipping)
{
    auto tracer = makeTracer(obs::kTrackCompute, {{0, 1000}});
    std::ostringstream os;
    renderTimeline(os, tracer, {{"x", obs::kTrackCompute}}, 500, 600, 10);
    // Entirely busy within the window.
    EXPECT_NE(os.str().find("##########"), std::string::npos);
}

TEST(Timeline, IgnoresOtherTracks)
{
    auto tracer = makeTracer(obs::kTrackD2H, {{0, 100}});
    std::ostringstream os;
    renderTimeline(os, tracer, {{"comp", obs::kTrackCompute}}, 0, 100, 10);
    // No compute events: the row is entirely idle.
    EXPECT_EQ(os.str().find('#'), std::string::npos);
}

TEST(Timeline, UtilizationMath)
{
    auto tracer = makeTracer(obs::kTrackCompute, {{0, 25}, {50, 75}});
    EXPECT_DOUBLE_EQ(trackUtilization(tracer, obs::kTrackCompute, 0, 100),
                     0.5);
    EXPECT_DOUBLE_EQ(trackUtilization(tracer, obs::kTrackCompute, 0, 50),
                     0.5);
    EXPECT_DOUBLE_EQ(trackUtilization(tracer, obs::kTrackCompute, 80, 100),
                     0.0);
    EXPECT_DOUBLE_EQ(trackUtilization(tracer, obs::kTrackCompute, 100, 100),
                     0.0);
    EXPECT_DOUBLE_EQ(trackUtilization(tracer, obs::kTrackD2H, 0, 100), 0.0);
}
