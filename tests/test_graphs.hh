/**
 * @file
 * Shared synthetic-graph builders for executor/policy tests.
 *
 * All helpers produce small graphs with hand-computable sizes/costs so
 * tests can assert exact ticks and bytes on the test GPU device.
 */

#ifndef CAPU_TESTS_TEST_GRAPHS_HH
#define CAPU_TESTS_TEST_GRAPHS_HH

#include <string>
#include <vector>

#include "graph/autograd.hh"
#include "graph/graph.hh"
#include "support/units.hh"

namespace capu::test
{

/**
 * A linear "training-like" chain:
 *
 *   source -> images -> L1 -> L2 -> ... -> Ln(loss)
 *
 * each layer an elementwise op with a `tensor_bytes` feature map saved
 * for backward. After autograd, every feature map is produced forward and
 * re-read backward — the minimal workload with Capuchin-relevant reuse.
 */
struct ChainGraph
{
    Graph graph{"test-chain"};
    TensorId images = kInvalidTensor;
    std::vector<TensorId> features; ///< layer outputs, forward order
    TensorId loss = kInvalidTensor;

    ChainGraph(int layers, std::uint64_t tensor_bytes,
               double flops_per_op = 1e6, bool with_weights = false)
    {
        images = graph.addTensor("images", tensor_bytes,
                                 TensorKind::FeatureMap);
        Operation src;
        src.name = "source";
        src.category = OpCategory::Source;
        src.outputs = {images};
        src.recomputable = false;
        src.memBytes = static_cast<double>(tensor_bytes);
        graph.addOp(src);

        TensorId prev = images;
        for (int i = 0; i < layers; ++i) {
            std::string name = "L" + std::to_string(i + 1);
            TensorId out = graph.addTensor(name + ":out", tensor_bytes,
                                           TensorKind::FeatureMap);
            Operation op;
            op.name = name;
            op.category = i + 1 == layers ? OpCategory::Loss
                                          : OpCategory::Elementwise;
            op.inputs = {prev};
            if (with_weights) {
                TensorId w = graph.addTensor(name + ":w", 1_KiB,
                                             TensorKind::Weight);
                op.inputs.push_back(w);
                op.gradParams = {w};
            }
            op.outputs = {out};
            op.flops = flops_per_op;
            op.memBytes = 2.0 * static_cast<double>(tensor_bytes);
            op.gradInputs = {prev};
            op.savedForBackward = {prev};
            graph.addOp(op);
            features.push_back(out);
            prev = out;
        }
        loss = prev;
        buildBackward(graph, loss);
        graph.validate();
    }
};

} // namespace capu::test

#endif // CAPU_TESTS_TEST_GRAPHS_HH
