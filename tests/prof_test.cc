/**
 * @file
 * capuprof tests: bucket-attribution conservation across the zoo x policy
 * grid, diff-of-identical-runs emptiness, replayed-vs-executed profile
 * bit-identity, critical-path sanity, per-tensor accounting invariants,
 * profile JSON round-trip, and Chrome-trace import round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "obs/chrome_trace.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"
#include "prof/diff.hh"
#include "prof/profile.hh"
#include "prof/report.hh"
#include "prof/trace_io.hh"

using namespace capu;

namespace
{

struct ZooCase
{
    const char *name;
    ModelKind kind;
    std::int64_t batch;
};

const ZooCase kZoo[] = {
    {"vgg16", ModelKind::Vgg16, 230},
    {"resnet50", ModelKind::ResNet50, 200},
    {"bert", ModelKind::BertBase, 64},
};

std::unique_ptr<MemoryPolicy>
makePolicy(const std::string &name)
{
    if (name == "capuchin")
        return makeCapuchinPolicy();
    if (name == "vdnn")
        return std::make_unique<VdnnPolicy>();
    return std::make_unique<CheckpointingPolicy>(
        CheckpointingPolicy::Mode::Memory);
}

ExecConfig
tracedConfig()
{
    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Full;
    return cfg;
}

prof::Profile
runAndProfile(ModelKind kind, std::int64_t batch, const std::string &policy,
              int iters, ExecConfig cfg = tracedConfig())
{
    Session s(buildModel(kind, batch), cfg, makePolicy(policy));
    SessionResult r = s.run(iters);
    EXPECT_FALSE(r.oom) << r.oomMessage;
    return prof::buildProfile(s.executor().obs().tracer);
}

std::string
tempPath(const char *stem)
{
    return testing::TempDir() + stem;
}

} // namespace

// --- conservation: the acceptance gate ---------------------------------

TEST(ProfConservation, ZooPolicySweepBucketsSumToWall)
{
    for (const auto &zc : kZoo) {
        for (const char *policy : {"capuchin", "vdnn", "checkpointing"}) {
            SCOPED_TRACE(std::string(zc.name) + "/" + policy);
            prof::Profile p = runAndProfile(zc.kind, zc.batch, policy, 4);
            ASSERT_GT(p.events, 0u);
            ASSERT_GT(p.wallTicks, 0u);
            // Exact by construction; the CI gate's "within 1%" is slack.
            EXPECT_EQ(p.conservationError(), 0u)
                << "buckets " << p.buckets.total() << " wall " << p.wallTicks;
            EXPECT_EQ(p.iterations.size(), 4u);
            for (const auto &it : p.iterations) {
                EXPECT_EQ(it.buckets.total(), it.end - it.begin)
                    << "iteration " << it.iteration;
                EXPECT_NE(it.digest, 0u);
            }
            EXPECT_GT(p.buckets.compute, 0u);
            EXPECT_GT(p.peakBytes, 0u);
        }
    }
}

// --- per-tensor accounting ---------------------------------------------

TEST(ProfAccounting, CapuchinChargesOverheadToMovedTensors)
{
    prof::Profile p =
        runAndProfile(ModelKind::Vgg16, 230, "capuchin", 4);
    ASSERT_FALSE(p.tensors.empty());

    std::uint64_t out_bytes = 0, in_bytes = 0;
    Tick stall = 0, recompute = 0;
    bool relief = false;
    for (const auto &t : p.tensors) {
        EXPECT_GE(t.tensor, 0);
        EXPECT_FALSE(t.name.empty());
        EXPECT_EQ(t.overheadTicks, t.stallTicks + t.recomputeTicks);
        out_bytes += t.swapOutBytes;
        in_bytes += t.swapInBytes;
        stall += t.stallTicks;
        recompute += t.recomputeTicks;
        relief = relief || t.reliefByteTicks > 0;
    }
    // vgg16@230 under capuchin must actually move memory.
    EXPECT_GT(out_bytes, 0u);
    EXPECT_GT(in_bytes, 0u);
    EXPECT_TRUE(relief);
    // Tensor-charged time is bounded by the bucketed totals.
    EXPECT_LE(recompute, p.buckets.recompute);
    (void)stall;

    // Ranking is by overhead, heaviest first.
    auto ranked = prof::rankTensors(p);
    ASSERT_EQ(ranked.size(), p.tensors.size());
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1]->overheadTicks, ranked[i]->overheadTicks);
}

TEST(ProfAccounting, PrefetchTimelinessCountsTransfers)
{
    prof::Profile p =
        runAndProfile(ModelKind::Vgg16, 230, "capuchin", 4);
    int swap_ins = 0, timeliness = 0;
    for (const auto &t : p.tensors) {
        swap_ins += t.swapInCount;
        timeliness += t.prefetch.total();
    }
    // Every H2D transfer lands in exactly one timeliness class.
    EXPECT_EQ(timeliness, swap_ins);
    EXPECT_GT(swap_ins, 0);
}

// --- critical path ------------------------------------------------------

TEST(ProfCriticalPath, SaneOnCapuchinRun)
{
    prof::Profile p =
        runAndProfile(ModelKind::Vgg16, 230, "capuchin", 3);
    ASSERT_TRUE(p.critical.valid);
    EXPECT_GT(p.critical.makespan, 0u);
    EXPECT_GT(p.critical.events, 0u);
    EXPECT_GT(p.critical.edges, 0u);
    EXPECT_GE(p.critical.zeroSlack, 1u);
    ASSERT_FALSE(p.critical.steps.empty());
    EXPECT_GE(p.critical.pathLength, p.critical.steps.size());
    // Steps are chronological and inside the session window.
    for (std::size_t i = 1; i < p.critical.steps.size(); ++i)
        EXPECT_GE(p.critical.steps[i].start,
                  p.critical.steps[i - 1].start);
    // The observed critical path can never exceed the traced makespan.
    EXPECT_LE(p.critical.onPathTransfer + p.critical.onPathRecompute,
              p.critical.makespan);
}

// --- differential profiling ---------------------------------------------

TEST(ProfDiff, IdenticalRunsDiffEmpty)
{
    for (const char *policy : {"capuchin", "vdnn", "checkpointing"}) {
        SCOPED_TRACE(policy);
        prof::Profile a =
            runAndProfile(ModelKind::ResNet50, 200, policy, 4);
        prof::Profile b =
            runAndProfile(ModelKind::ResNet50, 200, policy, 4);
        prof::ProfileDiff d = prof::diffProfiles(a, b);
        EXPECT_TRUE(d.identical);
        EXPECT_EQ(d.wallDelta, 0);
        EXPECT_TRUE(d.buckets.zero());
        EXPECT_EQ(d.firstDivergingIteration, -1);
        EXPECT_EQ(d.firstDivergingOp, -1);
        EXPECT_EQ(d.firstDivergingTensor, -1);
        EXPECT_TRUE(d.tensors.empty());
        EXPECT_TRUE(d.ops.empty());
    }
}

TEST(ProfDiff, DifferentPoliciesLocalize)
{
    prof::Profile a =
        runAndProfile(ModelKind::Vgg16, 230, "capuchin", 3);
    prof::Profile b = runAndProfile(ModelKind::Vgg16, 230, "vdnn", 3);
    prof::ProfileDiff d = prof::diffProfiles(a, b);
    EXPECT_FALSE(d.identical);
    // Digest alignment must localize the divergence to the very first
    // iteration: the policies schedule different transfers from the start.
    EXPECT_EQ(d.firstDivergingIteration, 0);
    EXPECT_GE(d.firstDivergingTensor, 0);

    // Rendering must not crash in any format.
    for (auto fmt : {prof::ReportFormat::Text, prof::ReportFormat::Markdown,
                     prof::ReportFormat::Json}) {
        std::ostringstream os;
        prof::renderDiff(os, a, b, d, fmt);
        EXPECT_FALSE(os.str().empty());
    }
}

TEST(ProfDiff, ExtraIterationsDivergeAtCommonLength)
{
    prof::Profile a =
        runAndProfile(ModelKind::ResNet50, 200, "capuchin", 3);
    prof::Profile b =
        runAndProfile(ModelKind::ResNet50, 200, "capuchin", 5);
    prof::ProfileDiff d = prof::diffProfiles(a, b);
    EXPECT_FALSE(d.identical);
    EXPECT_EQ(d.firstDivergingIteration, 3);
}

// --- replayed vs executed (satellite: event_adapter on synthesized
// timelines) ------------------------------------------------------------

TEST(ProfReplay, Replayed100IterProfileBitIdenticalToExecuted)
{
    constexpr int kIters = 100;
    ExecConfig on = tracedConfig();
    on.replay.enabled = true;
    ExecConfig off = tracedConfig();
    off.replay.enabled = false;

    Session son(buildModel(ModelKind::Vgg16, 230), on,
                makeCapuchinPolicy());
    Session soff(buildModel(ModelKind::Vgg16, 230), off,
                 makeCapuchinPolicy());
    SessionResult ron = son.run(kIters);
    SessionResult roff = soff.run(kIters);
    ASSERT_FALSE(ron.oom) << ron.oomMessage;
    ASSERT_FALSE(roff.oom) << roff.oomMessage;
    ASSERT_GT(ron.replay.replayed, 0);

    prof::Profile pon = prof::buildProfile(son.executor().obs().tracer);
    prof::Profile poff = prof::buildProfile(soff.executor().obs().tracer);
    ASSERT_EQ(pon.iterations.size(), static_cast<std::size_t>(kIters));

    // The replay track is excluded from attribution, so a mostly
    // synthesized session must profile bit-identically to the fully
    // executed one: same digests, buckets, tensor accounts, everything.
    prof::ProfileDiff d = prof::diffProfiles(pon, poff);
    EXPECT_TRUE(d.identical)
        << "first diverging iteration " << d.firstDivergingIteration
        << ", op " << d.firstDivergingOpName << ", tensor "
        << d.firstDivergingTensorName;
    EXPECT_EQ(pon.buckets.compute, poff.buckets.compute);
    EXPECT_EQ(pon.buckets.swapStall, poff.buckets.swapStall);
    for (std::size_t i = 0; i < pon.iterations.size(); ++i)
        EXPECT_EQ(pon.iterations[i].digest, poff.iterations[i].digest)
            << "iteration " << i;
}

// --- persistence round-trips --------------------------------------------

TEST(ProfRoundTrip, ProfileJson)
{
    prof::Profile p =
        runAndProfile(ModelKind::Vgg16, 230, "capuchin", 3);
    std::string path = tempPath("prof_roundtrip.json");
    ASSERT_TRUE(prof::writeProfileJsonFile(path, p));

    prof::Profile loaded;
    std::string err;
    ASSERT_TRUE(prof::loadProfileJson(path, loaded, &err)) << err;
    std::remove(path.c_str());

    prof::ProfileDiff d = prof::diffProfiles(p, loaded);
    EXPECT_TRUE(d.identical);
    EXPECT_EQ(loaded.wallTicks, p.wallTicks);
    EXPECT_EQ(loaded.peakBytes, p.peakBytes);
    EXPECT_EQ(loaded.critical.makespan, p.critical.makespan);
    EXPECT_EQ(loaded.tensors.size(), p.tensors.size());
    EXPECT_EQ(loaded.meta, p.meta);
}

TEST(ProfRoundTrip, ChromeTraceImportMatchesLiveRing)
{
    Session s(buildModel(ModelKind::Vgg16, 230), tracedConfig(),
              makeCapuchinPolicy());
    SessionResult r = s.run(3);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const obs::Tracer &tracer = s.executor().obs().tracer;

    std::string path = tempPath("prof_trace.json");
    ASSERT_TRUE(obs::writeChromeTraceFile(path, tracer));

    prof::TraceBundle bundle;
    std::string err;
    ASSERT_TRUE(prof::importChromeTrace(path, bundle, &err)) << err;
    std::remove(path.c_str());
    EXPECT_EQ(bundle.events.size(), tracer.chronological().size());
    EXPECT_EQ(bundle.meta, tracer.meta());

    // The export is lossless, so the profile built from the file must be
    // bit-identical to the one built from the live ring.
    prof::ProfileOptions popts;
    popts.droppedEvents = bundle.dropped;
    popts.meta = bundle.meta;
    prof::Profile from_file = prof::buildProfile(bundle.events, popts);
    prof::Profile live = prof::buildProfile(tracer);
    prof::ProfileDiff d = prof::diffProfiles(live, from_file);
    EXPECT_TRUE(d.identical)
        << "first diverging iteration " << d.firstDivergingIteration;
    EXPECT_EQ(from_file.peakBytes, live.peakBytes);
    EXPECT_EQ(from_file.critical.makespan, live.critical.makespan);
}

// --- rendering ----------------------------------------------------------

TEST(ProfReport, AllFormatsRenderNonEmpty)
{
    prof::Profile p =
        runAndProfile(ModelKind::Vgg16, 230, "capuchin", 3);
    for (auto fmt : {prof::ReportFormat::Text, prof::ReportFormat::Markdown,
                     prof::ReportFormat::Json}) {
        std::ostringstream os;
        prof::renderProfile(os, p, fmt);
        EXPECT_FALSE(os.str().empty());
    }
    std::ostringstream os;
    prof::renderProfile(os, p, prof::ReportFormat::Text);
    EXPECT_NE(os.str().find("compute"), std::string::npos);
    EXPECT_NE(os.str().find("critical path"), std::string::npos);
}
