/**
 * @file
 * Property tests with a randomized memory policy.
 *
 * A fuzzing MemoryPolicy issues random (but legal) evictions, drops and
 * prefetches at random access points. Whatever it does, the executor must
 * uphold the system invariants:
 *
 *   - every consumed tensor carries the right lineage fingerprint
 *     (checkFingerprints panics otherwise);
 *   - iteration results are identical for identical seeds;
 *   - the memory pool returns to exactly the persistent set afterwards;
 *   - the allocator's structural invariants survive the churn.
 *
 * This is the closest thing to adversarial testing the mechanics get —
 * the real policies are far better behaved than this one.
 */

#include <gtest/gtest.h>

#include "exec/executor.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "support/rng.hh"
#include "test_graphs.hh"

using namespace capu;
using capu::test::ChainGraph;

namespace
{

class FuzzPolicy : public MemoryPolicy
{
  public:
    explicit FuzzPolicy(std::uint64_t seed, double action_rate = 0.08)
        : rng_(seed), rate_(action_rate)
    {
    }

    std::string name() const override { return "fuzz"; }
    bool graphAgnostic() const override { return true; }

    void
    onAccess(ExecContext &ctx, const AccessEvent &ev) override
    {
        (void)ev;
        if (!rng_.chance(rate_))
            return;
        // Pick a random tensor and try a random action on it; all the
        // safety conditions live in the executor/actions themselves.
        auto id = static_cast<TensorId>(
            rng_.uniformInt(0, ctx.graph().numTensors() - 1));
        const TensorDesc &t = ctx.graph().tensor(id);
        if (t.kind == TensorKind::Weight)
            return;
        switch (rng_.uniformInt(0, 3)) {
          case 0:
            if (ctx.status(id) == TensorStatus::In)
                ctx.evictSwapAsync(id);
            break;
          case 1:
            // The fuzzer has no trace foresight, so it may only drop
            // tensors that stay regenerable no matter what is freed next.
            if (ctx.status(id) == TensorStatus::In &&
                ctx.canRegenerateStably(id))
                ctx.evictDrop(id);
            break;
          case 2:
            ctx.prefetchAsync(id); // no-op unless swapped out
            break;
          case 3:
            if (!ctx.isPinned(id))
                ctx.evictSwapSync(id);
            break;
        }
    }

    bool
    onAllocFailure(ExecContext &ctx, std::uint64_t bytes) override
    {
        // Minimal survival instinct so fuzz runs can finish on the small
        // test device: evict whatever helps.
        for (TensorId id : ctx.victimsForContiguous(bytes)) {
            if (ctx.evictSwapSync(id))
                return true;
        }
        for (TensorId id = 0; id < ctx.graph().numTensors(); ++id) {
            if (ctx.graph().tensor(id).kind == TensorKind::Weight)
                continue;
            if (!ctx.isPinned(id) && ctx.status(id) == TensorStatus::In &&
                ctx.evictSwapSync(id))
                return true;
        }
        return false;
    }

  private:
    Rng rng_;
    double rate_;
};

} // namespace

class FuzzPolicyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzPolicyTest, ChainSurvivesRandomActions)
{
    ChainGraph cg(24, 512_KiB, 2e7, true);
    ExecConfig cfg;
    cfg.device = GpuDeviceSpec::testDevice(24_MiB);
    cfg.checkFingerprints = true;

    FuzzPolicy policy(GetParam());
    Executor ex(cg.graph, cfg, &policy);
    ex.setup();
    for (int i = 0; i < 4; ++i)
        EXPECT_NO_THROW(ex.runIteration()) << "iteration " << i;

    ex.memory().drainAll();
    EXPECT_EQ(ex.memory().gpu().bytesInUse(),
              cg.graph.bytesOfKind(TensorKind::Weight));
    EXPECT_EQ(ex.memory().host().bytesInUse(), 0u);
    ex.memory().gpu().checkInvariants();
}

TEST_P(FuzzPolicyTest, ResNetSurvivesRandomActions)
{
    ExecConfig cfg;
    cfg.checkFingerprints = true;
    FuzzPolicy policy(GetParam(), 0.02);
    Graph g = buildResNet(64, 50);
    Executor ex(g, cfg, &policy);
    ex.setup();
    for (int i = 0; i < 2; ++i)
        EXPECT_NO_THROW(ex.runIteration());
    ex.memory().drainAll();
    ex.memory().gpu().checkInvariants();
    EXPECT_EQ(ex.memory().host().bytesInUse(), 0u);
}

TEST_P(FuzzPolicyTest, SameSeedSameTimeline)
{
    auto run = [&](std::uint64_t seed) {
        ChainGraph cg(16, 512_KiB, 2e7, true);
        ExecConfig cfg;
        cfg.device = GpuDeviceSpec::testDevice(16_MiB);
        FuzzPolicy policy(seed);
        Executor ex(cg.graph, cfg, &policy);
        ex.setup();
        Tick total = 0;
        for (int i = 0; i < 3; ++i)
            total += ex.runIteration().duration();
        return total;
    };
    EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPolicyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));
