/**
 * @file
 * Tests for the Tensor Access Tracker and Policy Maker: FT ranking, the
 * MSPS/Algorithm-2 recompute machinery, in-trigger placement, and the
 * swap/recompute crossover.
 */

#include <gtest/gtest.h>

#include "core/access_tracker.hh"
#include "core/policy_maker.hh"
#include "graph/graph.hh"
#include "support/units.hh"

using namespace capu;

namespace
{

/**
 * Builds a 4-tensor lineage images -> T1 -> T2 -> T3 and a synthetic
 * access trace with controllable gaps, then lets tests run the planner.
 */
struct PlannerFixture
{
    Graph g{"planner"};
    TensorId images, t1, t2, t3;
    AccessTracker tracker;
    std::uint64_t bytes = 64_MiB;

    PlannerFixture()
    {
        images = g.addTensor("images", bytes, TensorKind::FeatureMap);
        Operation src;
        src.name = "source";
        src.category = OpCategory::Source;
        src.outputs = {images};
        src.recomputable = false;
        g.addOp(src);
        t1 = addLayer("op1", images);
        t2 = addLayer("op2", t1);
        t3 = addLayer("op3", t2);
    }

    TensorId
    addLayer(const std::string &name, TensorId in)
    {
        TensorId out = g.addTensor(name + ":out", bytes,
                                   TensorKind::FeatureMap);
        Operation op;
        op.name = name;
        op.category = OpCategory::Elementwise;
        op.inputs = {in};
        op.outputs = {out};
        op.flops = 1e6;
        op.memBytes = 1e6;
        op.gradInputs = {in};
        op.savedForBackward = {in};
        g.addOp(op);
        return out;
    }

    /** Record {tensor, accessIndex} at `time`; output iff index == 1. */
    void
    access(TensorId tensor, int index, Tick time)
    {
        AccessRecord r;
        r.tensor = tensor;
        r.accessIndex = index;
        r.time = time;
        r.isOutput = index == 1;
        r.op = g.tensor(tensor).producer;
        tracker.record(r);
    }

    Plan
    plan(std::uint64_t target, Tick swap_time_per_tensor,
         std::uint64_t capacity = 1, PolicyMakerOptions opts = {})
    {
        PolicyMaker maker(g, tracker, opts);
        return maker.build(
            target, [&](TensorId) { return bytes; },
            [&](std::uint64_t) { return swap_time_per_tensor; }, capacity);
    }
};

} // namespace

// --- AccessTracker ---

TEST(AccessTracker, RecordsSequencesAndPerTensorLists)
{
    PlannerFixture f;
    f.access(f.t1, 1, 100);
    f.access(f.t1, 2, 500);
    f.access(f.t2, 1, 200);
    EXPECT_EQ(f.tracker.size(), 3u);
    EXPECT_EQ(f.tracker.accessesOf(f.t1).size(), 2u);
    EXPECT_EQ(f.tracker.accessesOf(f.t2).size(), 1u);
    EXPECT_TRUE(f.tracker.accessesOf(f.t3).empty());
}

TEST(AccessTracker, OpDurationFromAccessTimes)
{
    PlannerFixture f;
    // op2 reads t1 at 100 (input) and writes t2 at 400 (output).
    AccessRecord in;
    in.tensor = f.t1;
    in.accessIndex = 2;
    in.time = 100;
    in.isOutput = false;
    in.op = f.g.tensor(f.t2).producer;
    f.tracker.record(in);
    f.access(f.t2, 1, 400);
    EXPECT_EQ(f.tracker.opDuration(f.g.tensor(f.t2).producer), 300u);
    EXPECT_TRUE(f.tracker.hasOpDuration(f.g.tensor(f.t2).producer));
    EXPECT_FALSE(f.tracker.hasOpDuration(f.g.tensor(f.t1).producer));
}

TEST(AccessTracker, PeakWindowDetection)
{
    PlannerFixture f;
    // t1 alive [100, 900], t2 alive [200, 800], t3 alive [300, 400]:
    // usage crosses 2 x 64 MiB during [200, 800].
    f.access(f.t1, 1, 100);
    f.access(f.t2, 1, 200);
    f.access(f.t3, 1, 300);
    f.access(f.t3, 2, 400);
    f.access(f.t2, 2, 800);
    f.access(f.t1, 2, 900);
    auto win = f.tracker.peakWindow([&](TensorId) { return f.bytes; },
                                    f.bytes * 2);
    ASSERT_TRUE(win.valid);
    EXPECT_EQ(win.lo, 300u);
    EXPECT_GE(win.peakBytes, 3 * f.bytes);
}

TEST(AccessTracker, PeakWindowInvalidWhenUnderThreshold)
{
    PlannerFixture f;
    f.access(f.t1, 1, 100);
    f.access(f.t1, 2, 200);
    auto win = f.tracker.peakWindow([&](TensorId) { return f.bytes; },
                                    f.bytes * 10);
    EXPECT_FALSE(win.valid);
}

TEST(AccessTracker, ResetClearsEverything)
{
    PlannerFixture f;
    f.access(f.t1, 1, 100);
    f.tracker.reset();
    EXPECT_TRUE(f.tracker.empty());
    EXPECT_TRUE(f.tracker.accessesOf(f.t1).empty());
}

// --- PolicyMaker: swap path ---

TEST(PolicyMaker, EmptyPlanWithZeroTarget)
{
    PlannerFixture f;
    f.access(f.t1, 1, 0);
    f.access(f.t1, 2, 1000);
    auto plan = f.plan(0, 10);
    EXPECT_TRUE(plan.items.empty());
}

TEST(PolicyMaker, PicksLargestGapTensorForSwap)
{
    PlannerFixture f;
    Tick ms = kTickPerMs;
    // t1: gap 100 ms; t2: gap 10 ms; t3: gap 2 ms. Swap time 1 ms.
    f.access(f.t1, 1, 0);
    f.access(f.t2, 1, 1 * ms);
    f.access(f.t3, 1, 2 * ms);
    f.access(f.t3, 2, 4 * ms);
    f.access(f.t2, 2, 11 * ms);
    f.access(f.t1, 2, 100 * ms);
    auto plan = f.plan(f.bytes, 1 * ms); // one tensor suffices
    ASSERT_EQ(plan.items.size(), 1u);
    EXPECT_EQ(plan.items[0].tensor, f.t1);
    EXPECT_EQ(plan.items[0].mode, RegenChoice::Swap);
    EXPECT_EQ(plan.items[0].evictAfterAccess, 1);
    EXPECT_EQ(plan.items[0].backAccess, 2);
    // FT = gap - 2 x SwapTime = 98 ms (Eq. 1).
    EXPECT_EQ(plan.items[0].freeTime, 98 * ms);
    EXPECT_EQ(plan.items[0].estimatedOverhead, 0u);
}

TEST(PolicyMaker, InTriggerBeforeBackAccessBySwapTime)
{
    PlannerFixture f;
    Tick ms = kTickPerMs;
    f.access(f.t1, 1, 0);
    f.access(f.t2, 1, 10 * ms);
    f.access(f.t3, 1, 80 * ms);
    f.access(f.t3, 2, 85 * ms);
    f.access(f.t2, 2, 90 * ms);
    f.access(f.t1, 2, 100 * ms);
    auto plan = f.plan(f.bytes, 10 * ms);
    ASSERT_EQ(plan.items.size(), 1u);
    const auto &item = plan.items[0];
    // Desired fetch start: 100 - 10 = 90 ms; the latest access at or
    // before that is t2's back-access at 90 ms.
    EXPECT_EQ(item.desiredSwapInStart, 90 * ms);
    EXPECT_EQ(item.triggerTensor, f.t2);
    EXPECT_EQ(item.triggerAccess, 2);
}

TEST(PolicyMaker, RepickTriggerAfterFeedbackShift)
{
    PlannerFixture f;
    Tick ms = kTickPerMs;
    f.access(f.t1, 1, 0);
    f.access(f.t2, 1, 10 * ms);
    f.access(f.t3, 1, 80 * ms);
    f.access(f.t3, 2, 85 * ms);
    f.access(f.t2, 2, 90 * ms);
    f.access(f.t1, 2, 100 * ms);
    auto plan = f.plan(f.bytes, 10 * ms);
    ASSERT_EQ(plan.items.size(), 1u);
    PlannedEviction item = plan.items[0];
    // Feedback shifts the desired start before t2's back-access; the
    // trigger must fall back to an earlier access (t3's at 85 ms).
    item.desiredSwapInStart = 87 * ms;
    PolicyMaker maker(f.g, f.tracker, {});
    ASSERT_TRUE(maker.repickTrigger(item));
    EXPECT_EQ(item.triggerTensor, f.t3);
}

TEST(PolicyMaker, SingleAccessTensorsAreNotCandidates)
{
    PlannerFixture f;
    f.access(f.t1, 1, 0); // never re-accessed
    f.access(f.t2, 1, 100);
    f.access(f.t2, 2, ticksFromMs(50));
    auto plan = f.plan(4 * f.bytes, 10);
    for (const auto &item : plan.items)
        EXPECT_NE(item.tensor, f.t1);
}

// --- PolicyMaker: recompute path ---

TEST(PolicyMaker, ShortGapsFlipToRecompute)
{
    PlannerFixture f;
    Tick ms = kTickPerMs;
    // Gaps of ~4 ms against a 10 ms swap time: swapping cannot be hidden;
    // recomputing (measured op time ~1 ms) is cheaper.
    f.access(f.images, 1, 0);
    f.access(f.images, 2, 1 * ms); // read by op1 at kernel start
    f.access(f.t1, 1, 2 * ms);     // op1 output (duration 2-1 = 1 ms)
    f.access(f.t1, 2, 3 * ms);
    f.access(f.t2, 1, 4 * ms);
    f.access(f.t2, 2, 5 * ms);
    f.access(f.t3, 1, 6 * ms);
    f.access(f.t1, 3, 9 * ms);
    f.access(f.t2, 3, 10 * ms);
    f.access(f.t3, 2, 11 * ms);
    auto plan = f.plan(2 * f.bytes, 10 * ms);
    ASSERT_GE(plan.items.size(), 1u);
    EXPECT_GT(plan.recomputeCount, 0u);
}

TEST(PolicyMaker, SwapOnlyOptionHonored)
{
    PlannerFixture f;
    Tick ms = kTickPerMs;
    f.access(f.images, 1, 0);
    f.access(f.images, 2, 1 * ms);
    f.access(f.t1, 1, 2 * ms);
    f.access(f.t1, 2, 3 * ms);
    f.access(f.t1, 3, 9 * ms);
    PolicyMakerOptions opts;
    opts.enableRecompute = false;
    auto plan = f.plan(f.bytes, 10 * ms, 1, opts);
    for (const auto &item : plan.items)
        EXPECT_EQ(item.mode, RegenChoice::Swap);
}

TEST(PolicyMaker, RecomputeOnlyOptionHonored)
{
    PlannerFixture f;
    Tick ms = kTickPerMs;
    f.access(f.images, 1, 0);
    f.access(f.images, 2, 1 * ms);
    f.access(f.t1, 1, 2 * ms);
    f.access(f.t1, 2, 3 * ms);
    f.access(f.t1, 3, 200 * ms); // giant gap: swap would be free
    PolicyMakerOptions opts;
    opts.enableSwap = false;
    auto plan = f.plan(f.bytes, 1 * ms, 1, opts);
    ASSERT_GE(plan.items.size(), 1u);
    for (const auto &item : plan.items)
        EXPECT_EQ(item.mode, RegenChoice::Recompute);
}

TEST(PolicyMaker, SourceOutputsAreNotRecomputable)
{
    // `images` comes from a Source op: with swap disabled the planner
    // must not emit a recompute item for it.
    PlannerFixture f;
    Tick ms = kTickPerMs;
    f.access(f.images, 1, 0);
    f.access(f.images, 2, 1 * ms);
    f.access(f.images, 3, 50 * ms);
    PolicyMakerOptions opts;
    opts.enableSwap = false;
    auto plan = f.plan(f.bytes, 1 * ms, 1, opts);
    for (const auto &item : plan.items)
        EXPECT_NE(item.tensor, f.images);
}

TEST(PolicyMaker, LaneSaturationShiftsLaterTensorsToRecompute)
{
    // Many same-window swap candidates: per-tensor FT is positive, but the
    // lane FIFO fills; the planner must charge queueing delay and start
    // choosing recomputation for the overflow.
    PlannerFixture f;
    Tick ms = kTickPerMs;
    std::vector<TensorId> extra;
    TensorId prev = f.t3;
    for (int i = 0; i < 12; ++i)
        extra.push_back(prev = f.addLayer("x" + std::to_string(i), prev));

    // All evicted-accesses cluster at ~1 ms; back-accesses at ~100 ms.
    Tick t = 0;
    f.access(f.images, 1, t);
    f.access(f.images, 2, t += 100000);
    f.access(f.t1, 1, t += 100000);
    f.access(f.t1, 2, t += 100000);
    f.access(f.t2, 1, t += 100000);
    f.access(f.t2, 2, t += 100000);
    f.access(f.t3, 1, t += 100000);
    f.access(f.t3, 2, t += 100000);
    for (std::size_t i = 0; i < extra.size(); ++i) {
        f.access(extra[i], 1, t += 100000);
        f.access(extra[i], 2, t += 100000);
    }
    Tick back = 100 * ms;
    f.access(f.t1, 3, back += ms);
    f.access(f.t2, 3, back += ms);
    f.access(f.t3, 3, back += ms);
    for (std::size_t i = 0; i < extra.size(); ++i)
        f.access(extra[i], 3, back += ms);

    // Swap time 8 ms per tensor: 15 swaps = 120 ms per lane against a
    // ~115 ms iteration: saturated.
    auto plan = f.plan(15 * f.bytes, 8 * ms);
    EXPECT_GT(plan.recomputeCount, 0u)
        << "queueing delay failed to flip any candidate to recompute";
}

TEST(PolicyMaker, PlanSummariesAreInformative)
{
    PlannerFixture f;
    f.access(f.t1, 1, 0);
    f.access(f.t1, 2, ticksFromMs(100));
    auto plan = f.plan(f.bytes, ticksFromMs(1));
    EXPECT_NE(plan.summary().find("swap"), std::string::npos);
    EXPECT_NE(plan.find(f.t1), nullptr);
    EXPECT_EQ(plan.find(f.t3), nullptr);
}
