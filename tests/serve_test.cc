/**
 * @file
 * capuserve tests: plan serialization round-trips bit-identically across a
 * simulated process boundary (serialize -> reload -> compare field by
 * field and by digest) for the zoo under all three plan-producing policies
 * (Capuchin measured plans, vDNN offload plans, checkpointing drop-set
 * plans), rejection of bad-magic / version-mismatch / fingerprint-mismatch
 * / truncated / corrupted files, seeded sessions (loadPlan + seedPlan)
 * running deterministically without mutating the loaded plan, PlanCache
 * LRU / byte-capacity / versioning semantics with the eviction hook, and
 * PlanService cold/warm digest identity, template-session lifetime, and
 * the on-disk warm-start path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/baseline_plans.hh"
#include "core/access_tracker.hh"
#include "core/capuchin_policy.hh"
#include "core/plan_io.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"
#include "serve/plan_cache.hh"
#include "serve/request_queue.hh"
#include "serve/service.hh"

using namespace capu;
using namespace capu::serve;

namespace
{

/** Oversubscribed batches (the perf-harness cases): passive mode must
 *  evict, so every policy's plan is non-trivial. */
struct ZooCase
{
    const char *name;
    ModelKind kind;
    std::int64_t batch;
};

const ZooCase kZoo[] = {
    {"vgg16", ModelKind::Vgg16, 260},
    {"resnet50", ModelKind::ResNet50, 240},
    {"bert", ModelKind::BertBase, 110},
};

void
expectPlansEqual(const Plan &a, const Plan &b)
{
    EXPECT_EQ(a.targetBytes, b.targetBytes);
    EXPECT_EQ(a.plannedBytes, b.plannedBytes);
    EXPECT_EQ(a.swapCount, b.swapCount);
    EXPECT_EQ(a.recomputeCount, b.recomputeCount);
    EXPECT_EQ(a.peak.valid, b.peak.valid);
    EXPECT_EQ(a.peak.lo, b.peak.lo);
    EXPECT_EQ(a.peak.hi, b.peak.hi);
    EXPECT_EQ(a.peak.peakBytes, b.peak.peakBytes);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
        const PlannedEviction &x = a.items[i];
        const PlannedEviction &y = b.items[i];
        EXPECT_EQ(x.tensor, y.tensor) << "item " << i;
        EXPECT_EQ(x.mode, y.mode) << "item " << i;
        EXPECT_EQ(x.bytes, y.bytes) << "item " << i;
        EXPECT_EQ(x.evictAfterAccess, y.evictAfterAccess) << "item " << i;
        EXPECT_EQ(x.backAccess, y.backAccess) << "item " << i;
        EXPECT_EQ(x.evictTime, y.evictTime) << "item " << i;
        EXPECT_EQ(x.backTime, y.backTime) << "item " << i;
        EXPECT_EQ(x.swapTime, y.swapTime) << "item " << i;
        EXPECT_EQ(x.freeTime, y.freeTime) << "item " << i;
        EXPECT_EQ(x.desiredSwapInStart, y.desiredSwapInStart)
            << "item " << i;
        EXPECT_EQ(x.triggerTensor, y.triggerTensor) << "item " << i;
        EXPECT_EQ(x.triggerAccess, y.triggerAccess) << "item " << i;
        EXPECT_EQ(x.recomputeTime, y.recomputeTime) << "item " << i;
        EXPECT_EQ(x.estimatedOverhead, y.estimatedOverhead) << "item " << i;
    }
    EXPECT_EQ(planDigest(a), planDigest(b));
}

/** Serialize to a string and load back — the process boundary in vitro. */
void
expectRoundTrip(const Plan &plan, std::uint64_t fingerprint)
{
    std::ostringstream os;
    serializePlan(os, plan, fingerprint);
    std::istringstream is(os.str());
    Plan loaded;
    PlanFileInfo info;
    ASSERT_EQ(loadPlan(is, loaded, fingerprint, &info), PlanLoadStatus::Ok);
    EXPECT_EQ(info.version, kPlanFormatVersion);
    EXPECT_EQ(info.fingerprint, fingerprint);
    EXPECT_EQ(info.digest, planDigest(plan));
    expectPlansEqual(plan, loaded);
}

/** Record one access on the corrected (infinite-memory) timeline — the
 *  lint-hook observer, replicated for the baseline-plan adapters. */
void
recordCorrected(AccessTracker &tracker, ExecContext &ctx,
                const AccessEvent &event)
{
    AccessRecord rec;
    rec.tensor = event.tensor;
    rec.accessIndex = event.accessIndex;
    Tick stall = ctx.memStallSoFar();
    rec.time = event.when > stall ? event.when - stall : 0;
    rec.isOutput = event.isOutput;
    rec.op = event.op;
    tracker.record(rec);
}

/** Measured Capuchin plan for one zoo case. The plan is built from the
 *  measured trace at the start of iteration 1, so two iterations run. */
Plan
capuchinPlan(const ZooCase &zc, std::uint64_t *fingerprint)
{
    Graph graph = buildModel(zc.kind, zc.batch);
    *fingerprint = graphFingerprint(graph);
    ExecConfig cfg;
    Session session(std::move(graph), cfg, makeCapuchinPolicy());
    auto r = session.run(2);
    EXPECT_FALSE(r.oom) << zc.name << ": " << r.oomMessage;
    auto *capu = dynamic_cast<CapuchinPolicy *>(session.policy());
    EXPECT_NE(capu, nullptr);
    return capu->plan();
}

Plan
vdnnPlan(const ZooCase &zc, std::uint64_t *fingerprint)
{
    Graph graph = buildModel(zc.kind, zc.batch);
    *fingerprint = graphFingerprint(graph);
    auto policy = std::make_unique<VdnnPolicy>();
    auto tracker = std::make_shared<AccessTracker>();
    Plan plan;
    bool audited = false;
    policy->setAudit(
        [tracker](ExecContext &ctx, const AccessEvent &event) {
            recordCorrected(*tracker, ctx, event);
        },
        [tracker, &plan, &audited](const VdnnPolicy &p, ExecContext &ctx) {
            plan = planFromOffloadTargets(
                ctx.graph(), *tracker, p.targets(),
                [&](TensorId id) { return ctx.tensorBytes(id); },
                [&](std::uint64_t bytes) { return ctx.swapTime(bytes); });
            audited = true;
        });
    ExecConfig cfg;
    Session session(std::move(graph), cfg, std::move(policy));
    auto r = session.run(1);
    EXPECT_FALSE(r.oom) << zc.name << ": " << r.oomMessage;
    EXPECT_TRUE(audited);
    return plan;
}

Plan
checkpointingPlan(const ZooCase &zc, std::uint64_t *fingerprint)
{
    Graph graph = buildModel(zc.kind, zc.batch);
    *fingerprint = graphFingerprint(graph);
    auto policy = std::make_unique<CheckpointingPolicy>(
        CheckpointingPolicy::Mode::Speed);
    auto tracker = std::make_shared<AccessTracker>();
    Plan plan;
    bool audited = false;
    policy->setAudit(
        [tracker](ExecContext &ctx, const AccessEvent &event) {
            recordCorrected(*tracker, ctx, event);
        },
        [tracker, &plan, &audited](const CheckpointingPolicy &p,
                                   ExecContext &ctx) {
            plan = planFromDropSet(
                ctx.graph(), *tracker, p.dropSet(),
                [&](TensorId id) { return ctx.tensorBytes(id); });
            audited = true;
        });
    ExecConfig cfg;
    Session session(std::move(graph), cfg, std::move(policy));
    auto r = session.run(1);
    EXPECT_FALSE(r.oom) << zc.name << ": " << r.oomMessage;
    EXPECT_TRUE(audited);
    return plan;
}

// ---- serialization round-trip: zoo x {capuchin, vdnn, checkpointing} ----

TEST(PlanIo, RoundTripCapuchinZoo)
{
    for (const ZooCase &zc : kZoo) {
        SCOPED_TRACE(zc.name);
        std::uint64_t fp = 0;
        Plan plan = capuchinPlan(zc, &fp);
        EXPECT_FALSE(plan.items.empty());
        expectRoundTrip(plan, fp);
    }
}

TEST(PlanIo, RoundTripVdnnZoo)
{
    for (const ZooCase &zc : kZoo) {
        SCOPED_TRACE(zc.name);
        std::uint64_t fp = 0;
        Plan plan = vdnnPlan(zc, &fp);
        EXPECT_FALSE(plan.items.empty());
        expectRoundTrip(plan, fp);
    }
}

TEST(PlanIo, RoundTripCheckpointingZoo)
{
    for (const ZooCase &zc : kZoo) {
        SCOPED_TRACE(zc.name);
        std::uint64_t fp = 0;
        Plan plan = checkpointingPlan(zc, &fp);
        EXPECT_FALSE(plan.items.empty());
        expectRoundTrip(plan, fp);
    }
}

TEST(PlanIo, RoundTripEmptyPlan)
{
    expectRoundTrip(Plan{}, 0x1234u);
}

TEST(PlanIo, FileRoundTrip)
{
    std::uint64_t fp = 0;
    Plan plan = capuchinPlan(kZoo[0], &fp);
    const std::string path = "serve_test_plan.capuplan";
    ASSERT_TRUE(savePlanFile(path, plan, fp));
    Plan loaded;
    EXPECT_EQ(loadPlanFile(path, loaded, fp), PlanLoadStatus::Ok);
    expectPlansEqual(plan, loaded);
    std::remove(path.c_str());
}

// ---- rejection paths -----------------------------------------------------

TEST(PlanIo, RejectsBadMagic)
{
    std::istringstream is("this is not a serialized plan at all");
    Plan out;
    EXPECT_EQ(loadPlan(is, out, 0), PlanLoadStatus::BadMagic);
    EXPECT_TRUE(out.items.empty());
}

TEST(PlanIo, RejectsVersionMismatch)
{
    std::ostringstream os;
    serializePlan(os, Plan{}, 7);
    std::string bytes = os.str();
    bytes[8] = static_cast<char>(bytes[8] + 1); // version field, LE byte 0
    std::istringstream is(bytes);
    Plan out;
    PlanFileInfo info;
    EXPECT_EQ(loadPlan(is, out, 7, &info),
              PlanLoadStatus::VersionMismatch);
    EXPECT_EQ(info.version, kPlanFormatVersion + 1);
}

TEST(PlanIo, RejectsFingerprintMismatch)
{
    std::ostringstream os;
    serializePlan(os, Plan{}, /*graph_fingerprint=*/7);
    std::istringstream is(os.str());
    Plan out;
    EXPECT_EQ(loadPlan(is, out, /*expect_fingerprint=*/8),
              PlanLoadStatus::FingerprintMismatch);
}

TEST(PlanIo, RejectsTruncatedPayload)
{
    std::uint64_t fp = 0;
    Plan plan = capuchinPlan(kZoo[0], &fp);
    std::ostringstream os;
    serializePlan(os, plan, fp);
    std::string bytes = os.str();
    std::istringstream is(bytes.substr(0, bytes.size() - 5));
    Plan out;
    EXPECT_EQ(loadPlan(is, out, fp), PlanLoadStatus::Truncated);
    EXPECT_TRUE(out.items.empty());
}

TEST(PlanIo, RejectsCorruptedPayload)
{
    std::uint64_t fp = 0;
    Plan plan = capuchinPlan(kZoo[0], &fp);
    ASSERT_FALSE(plan.items.empty());
    std::ostringstream os;
    serializePlan(os, plan, fp);
    std::string bytes = os.str();
    // Header is 28 bytes (magic, version, fingerprint, digest); flip a
    // payload byte so the recomputed digest disagrees with the stored one.
    bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
    std::istringstream is(bytes);
    Plan out;
    EXPECT_EQ(loadPlan(is, out, fp), PlanLoadStatus::DigestMismatch);
    EXPECT_TRUE(out.items.empty());
}

// ---- seeded sessions (reload -> run vs straight-line run) ---------------

TEST(SeededSession, RunsLoadedPlanWithoutMutatingIt)
{
    const ZooCase &zc = kZoo[0];
    std::uint64_t fp = 0;
    Plan plan = capuchinPlan(zc, &fp);
    std::uint64_t digest = planDigest(plan);

    // Simulated process boundary: the seeded session only ever sees the
    // deserialized bytes, never the in-memory plan of the cold run.
    std::ostringstream os;
    serializePlan(os, plan, fp);
    std::istringstream is(os.str());
    Plan loaded;
    ASSERT_EQ(loadPlan(is, loaded, fp), PlanLoadStatus::Ok);

    // Feedback (§4.4) legitimately tunes desiredSwapInStart at runtime;
    // disable it so "the plan never changes" is exact. Replanning proper
    // is frozen by seedPlan either way.
    CapuchinOptions opts;
    opts.enableFeedback = false;
    auto policy = makeCapuchinPolicy(opts);
    static_cast<CapuchinPolicy *>(policy.get())->seedPlan(loaded);
    ExecConfig cfg;
    Session session(buildModel(zc.kind, zc.batch), cfg, std::move(policy));
    auto r = session.run(2);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    ASSERT_EQ(r.iterations.size(), 2u);
    // A seeded session skips measured execution: iteration 0 is already
    // guided, so the plan's swaps/recomputes are live from the start.
    EXPECT_GT(r.iterations.front().swapOutCount +
                  r.iterations.front().recomputedTensors,
              0);
    auto *capu = dynamic_cast<CapuchinPolicy *>(session.policy());
    ASSERT_NE(capu, nullptr);
    EXPECT_EQ(planDigest(capu->plan()), digest);
}

TEST(SeededSession, DeterministicAcrossSeedings)
{
    const ZooCase &zc = kZoo[1];
    std::uint64_t fp = 0;
    Plan plan = capuchinPlan(zc, &fp);

    auto seeded_run = [&](int iters) {
        auto policy = makeCapuchinPolicy();
        static_cast<CapuchinPolicy *>(policy.get())->seedPlan(plan);
        ExecConfig cfg;
        Session session(buildModel(zc.kind, zc.batch), cfg,
                        std::move(policy));
        return session.run(iters);
    };
    auto a = seeded_run(2);
    auto b = seeded_run(2);
    ASSERT_FALSE(a.oom);
    ASSERT_FALSE(b.oom);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].begin, b.iterations[i].begin);
        EXPECT_EQ(a.iterations[i].end, b.iterations[i].end);
        EXPECT_EQ(a.iterations[i].swapOutBytes, b.iterations[i].swapOutBytes);
        EXPECT_EQ(a.iterations[i].peakGpuBytes, b.iterations[i].peakGpuBytes);
    }
}

// ---- PlanCache -----------------------------------------------------------

ServeKey
key(std::uint64_t n)
{
    ServeKey k;
    k.model = n;
    k.batch = static_cast<std::int64_t>(n);
    k.memLimit = 1;
    k.policyCfg = 1;
    return k;
}

Plan
planOfBytes(std::uint64_t bytes)
{
    Plan p;
    PlannedEviction item;
    item.tensor = 1;
    item.bytes = bytes;
    p.items.push_back(item);
    p.plannedBytes = bytes;
    return p;
}

TEST(PlanCacheTest, LruEvictionOrderAndHook)
{
    PlanCache cache(/*max_entries=*/2, /*max_bytes=*/0);
    std::vector<ServeKey> evicted;
    cache.setEvictionHook(
        [&](const PlanCache::Entry &e) { evicted.push_back(e.key); });

    cache.insert(key(1), planOfBytes(10), 0);
    cache.insert(key(2), planOfBytes(10), 0);
    ASSERT_NE(cache.find(key(1)), nullptr); // 1 now most recently used
    cache.insert(key(3), planOfBytes(10), 0);

    EXPECT_EQ(cache.entries(), 2u);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_TRUE(evicted[0] == key(2)); // LRU victim, not key 1
    EXPECT_EQ(cache.find(key(2)), nullptr);
    EXPECT_NE(cache.find(key(1)), nullptr);
    EXPECT_NE(cache.find(key(3)), nullptr);

    const PlanCacheStats &s = cache.stats();
    EXPECT_EQ(s.insertions, 3u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(PlanCacheTest, ByteCapacityEviction)
{
    // Measure one entry's approximate footprint, then bound a second
    // cache so exactly two such entries fit.
    PlanCache probe(0, 0);
    probe.insert(key(1), planOfBytes(400), 0);
    std::uint64_t one_entry = probe.bytes();
    ASSERT_GT(one_entry, 0u);

    PlanCache cache(/*max_entries=*/0, /*max_bytes=*/one_entry * 2);
    cache.insert(key(1), planOfBytes(400), 0);
    cache.insert(key(2), planOfBytes(400), 0);
    EXPECT_EQ(cache.entries(), 2u);
    cache.insert(key(3), planOfBytes(400), 0);
    EXPECT_LE(cache.bytes(), one_entry * 2);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(PlanCacheTest, VersionBumpsOnReinsert)
{
    PlanCache cache(4, 0);
    const PlanCache::Entry *a = cache.insert(key(1), planOfBytes(10), 7);
    ASSERT_NE(a, nullptr);
    std::uint64_t v1 = a->version;
    EXPECT_EQ(a->graphFingerprint, 7u);
    const PlanCache::Entry *b = cache.insert(key(1), planOfBytes(20), 7);
    ASSERT_NE(b, nullptr);
    EXPECT_GT(b->version, v1);
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(PlanCacheTest, EntryTooBigForByteCapacity)
{
    PlanCache cache(/*max_entries=*/4, /*max_bytes=*/1);
    EXPECT_EQ(cache.insert(key(1), planOfBytes(100), 0), nullptr);
    EXPECT_EQ(cache.entries(), 0u);
}

// ---- PlanService ---------------------------------------------------------

PlanServiceConfig
serviceConfig()
{
    PlanServiceConfig cfg;
    cfg.coldIterations = 2;
    return cfg;
}

TEST(PlanServiceTest, ColdThenWarmDigestIdentity)
{
    PlanService service(serviceConfig(), nullptr);
    PlanRequest req;
    req.model = "resnet50";
    req.batch = 192;
    req.warmIterations = 0;

    PlanResponse cold = service.handle(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.hit);
    EXPECT_GT(cold.planItems, 0u);
    EXPECT_EQ(service.templateSessions(), 1u);

    PlanResponse warm = service.handle(req);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.hit);
    EXPECT_EQ(warm.digest, cold.digest);
    EXPECT_EQ(warm.version, cold.version);
    EXPECT_EQ(warm.graphFingerprint, cold.graphFingerprint);
    EXPECT_EQ(service.cacheStats().hits, 1u);
    EXPECT_EQ(service.cacheStats().misses, 1u);
}

TEST(PlanServiceTest, WarmForkRunsGuidedIterations)
{
    PlanService service(serviceConfig(), nullptr);
    PlanRequest req;
    req.model = "vgg16";
    req.batch = 96;
    req.warmIterations = 1;
    PlanResponse cold = service.handle(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    PlanResponse warm = service.handle(req);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.hit);
    EXPECT_GT(warm.imagesPerSec, 0.0);
    EXPECT_EQ(warm.digest, cold.digest);
}

TEST(PlanServiceTest, EvictionDropsTemplateSession)
{
    PlanServiceConfig cfg = serviceConfig();
    cfg.cacheEntries = 1;
    PlanService service(cfg, nullptr);
    PlanRequest a;
    a.model = "resnet50";
    a.batch = 192;
    a.warmIterations = 0;
    PlanRequest b = a;
    b.batch = 200;

    ASSERT_TRUE(service.handle(a).ok);
    EXPECT_EQ(service.templateSessions(), 1u);
    ASSERT_TRUE(service.handle(b).ok);
    EXPECT_EQ(service.cacheEntries(), 1u);
    EXPECT_EQ(service.templateSessions(), 1u); // a's template dropped

    PlanResponse again = service.handle(a); // re-measures: a was evicted
    ASSERT_TRUE(again.ok);
    EXPECT_FALSE(again.hit);
}

TEST(PlanServiceTest, DiskWarmStartAcrossServices)
{
    PlanServiceConfig cfg = serviceConfig();
    cfg.planDir = "."; // build tree cwd; files removed below
    PlanRequest req;
    req.model = "vgg16";
    req.batch = 96;
    req.warmIterations = 0;

    std::uint64_t cold_digest = 0;
    std::string plan_file;
    {
        PlanService first(cfg, nullptr);
        PlanResponse cold = first.handle(req);
        ASSERT_TRUE(cold.ok) << cold.error;
        EXPECT_FALSE(cold.fromDisk);
        cold_digest = cold.digest;
    }
    {
        // A fresh service (empty cache) must answer from the plan file:
        // a miss, but served by loadPlan + seedPlan, not re-measured.
        PlanService second(cfg, nullptr);
        PlanResponse resp = second.handle(req);
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_FALSE(resp.hit);
        EXPECT_TRUE(resp.fromDisk);
        EXPECT_EQ(resp.digest, cold_digest);
        EXPECT_EQ(second.templateSessions(), 1u);
        // And the next request is a plain warm hit.
        PlanResponse warm = second.handle(req);
        ASSERT_TRUE(warm.ok);
        EXPECT_TRUE(warm.hit);
        EXPECT_EQ(warm.digest, cold_digest);
    }
    // Clean the plan file out of the build tree.
    ServeKey k = PlanService(cfg, nullptr).keyFor(req);
    std::ostringstream path;
    path << "./plan-" << std::hex << k.model << '-' << std::dec << k.batch
         << '-' << std::hex << k.memLimit << '-' << k.policyCfg
         << ".capuplan";
    std::remove(path.str().c_str());
}

TEST(PlanServiceTest, UnknownModelIsAnErrorResponse)
{
    PlanService service(serviceConfig(), nullptr);
    PlanRequest req;
    req.model = "alexnet";
    req.batch = 32;
    PlanResponse resp = service.handle(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_FALSE(resp.error.empty());
}

// ---- RequestQueue --------------------------------------------------------

TEST(RequestQueueTest, DrainPreservesOrderAndCountsAdmission)
{
    PlanService service(serviceConfig(), nullptr);
    RequestQueueConfig qcfg;
    qcfg.gpus = 2;
    qcfg.batchSize = 2;
    RequestQueue queue(service, qcfg);

    PlanRequest a;
    a.model = "resnet50";
    a.batch = 192;
    a.warmIterations = 0;
    PlanRequest b;
    b.model = "vgg16";
    b.batch = 96;
    b.warmIterations = 0;
    queue.enqueue(a);
    queue.enqueue(b);
    queue.enqueue(a); // repeat: must be a hit by drain time or a miss —
                      // either way the response slot must match request 2

    std::vector<PlanResponse> resps = queue.drain();
    ASSERT_EQ(resps.size(), 3u);
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.stats().enqueued, 3u);
    EXPECT_EQ(queue.stats().drained, 3u);
    EXPECT_GE(queue.stats().peakAdmitted, 1u);
    EXPECT_LE(queue.stats().peakAdmitted, 2u);
    for (const PlanResponse &r : resps)
        EXPECT_TRUE(r.ok) << r.error;
    // Responses 0 and 2 answer the same key: identical plans.
    EXPECT_EQ(resps[0].digest, resps[2].digest);
    EXPECT_NE(resps[0].digest, resps[1].digest);
}

} // namespace
