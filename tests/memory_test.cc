/**
 * @file
 * Unit + property tests for the memory substrate: BFC allocator, deferred
 * frees, host pool, and the time-aware MemoryManager.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "exec/memory_manager.hh"
#include "memory/bfc_allocator.hh"
#include "memory/deferred_free.hh"
#include "memory/host_pool.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/units.hh"

using namespace capu;

// --- BfcAllocator basics ---

TEST(Bfc, AllocateAndFree)
{
    BfcAllocator a(1_MiB);
    auto h = a.allocate(1000);
    ASSERT_TRUE(h.has_value());
    EXPECT_GT(a.bytesInUse(), 0u);
    a.deallocate(*h);
    EXPECT_EQ(a.bytesInUse(), 0u);
    a.checkInvariants();
}

TEST(Bfc, RoundsToAlignment)
{
    BfcAllocator a(1_MiB);
    auto h = a.allocate(1);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(a.bytesInUse(), BfcAllocator::kAlignment);
    a.deallocate(*h);
}

TEST(Bfc, LargeRequestsRoundToSizeClass)
{
    BfcAllocator a(4_GiB);
    std::uint64_t req = 100_MiB;
    auto h = a.allocate(req);
    ASSERT_TRUE(h.has_value());
    // Rounded up, but by no more than the 12.5% geometric class overhead.
    EXPECT_GE(a.bytesInUse(), req);
    EXPECT_LE(a.bytesInUse(),
              req + req / 8 + BfcAllocator::kAlignment);
    // Two requests in the same class produce identical chunk sizes.
    auto h2 = a.allocate(req - 100);
    ASSERT_TRUE(h2.has_value());
    EXPECT_EQ(a.allocationSize(*h), a.allocationSize(*h2));
    a.deallocate(*h);
    a.deallocate(*h2);
}

TEST(Bfc, FailsWhenFull)
{
    BfcAllocator a(1_MiB);
    auto h = a.allocate(1_MiB);
    ASSERT_TRUE(h.has_value());
    EXPECT_FALSE(a.allocate(256).has_value());
    EXPECT_EQ(a.stats().failedAllocs, 1u);
    a.deallocate(*h);
}

TEST(Bfc, OversizeRequestFails)
{
    BfcAllocator a(1_MiB);
    EXPECT_FALSE(a.allocate(2_MiB).has_value());
}

TEST(Bfc, CoalescesNeighbours)
{
    BfcAllocator a(1_MiB);
    auto h1 = a.allocate(256_KiB);
    auto h2 = a.allocate(256_KiB);
    auto h3 = a.allocate(256_KiB);
    ASSERT_TRUE(h1 && h2 && h3);
    a.deallocate(*h1);
    a.deallocate(*h3);
    a.deallocate(*h2); // merges all three plus the tail into one chunk
    EXPECT_EQ(a.stats().freeChunkCount, 1u);
    EXPECT_EQ(a.stats().largestFreeChunk, a.capacity());
    a.checkInvariants();
}

TEST(Bfc, BestFitPrefersSmallestChunk)
{
    BfcAllocator a(1_MiB);
    auto h1 = a.allocate(100_KiB);
    auto h2 = a.allocate(10_KiB);
    auto h3 = a.allocate(500_KiB);
    ASSERT_TRUE(h1 && h2 && h3);
    a.deallocate(*h1); // 100 KiB hole at offset of h1
    // A 50 KiB request must come from the 100 KiB hole, not the tail.
    auto h4 = a.allocate(50_KiB);
    ASSERT_TRUE(h4.has_value());
    EXPECT_EQ(*h4, *h1);
    a.checkInvariants();
}

TEST(Bfc, LargeAllocationsPlaceHigh)
{
    BfcAllocator a(4_GiB);
    auto small = a.allocate(1_KiB);
    auto large = a.allocate(512_MiB);
    ASSERT_TRUE(small && large);
    EXPECT_LT(*small, *large);
    // The large chunk is carved from the arena top.
    EXPECT_EQ(*large + a.allocationSize(*large), a.capacity());
}

TEST(Bfc, LowPlacementOverridesForLarge)
{
    BfcAllocator a(4_GiB);
    auto w = a.allocate(512_MiB, BfcAllocator::Placement::Low);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w, 0u); // packed at the bottom (weights at setup)
}

TEST(Bfc, CanAllocateChecksContiguity)
{
    BfcAllocator a(1_MiB);
    auto h1 = a.allocate(400_KiB);
    auto h2 = a.allocate(200_KiB);
    auto h3 = a.allocate(400_KiB);
    ASSERT_TRUE(h1 && h2 && h3);
    a.deallocate(*h1);
    a.deallocate(*h3);
    // ~800 KiB free in two pieces; 600 KiB contiguous is impossible.
    EXPECT_GE(a.bytesFree(), 600_KiB);
    EXPECT_FALSE(a.canAllocate(600_KiB));
    EXPECT_TRUE(a.canAllocate(300_KiB));
}

TEST(Bfc, DoubleFreePanics)
{
    BfcAllocator a(1_MiB);
    auto h = a.allocate(1_KiB);
    a.deallocate(*h);
    EXPECT_THROW(a.deallocate(*h), PanicError);
}

TEST(Bfc, UnknownFreePanics)
{
    BfcAllocator a(1_MiB);
    EXPECT_THROW(a.deallocate(12345), PanicError);
}

TEST(Bfc, PeakTracking)
{
    BfcAllocator a(1_MiB);
    auto h1 = a.allocate(100_KiB);
    auto h2 = a.allocate(100_KiB);
    a.deallocate(*h1);
    a.deallocate(*h2);
    EXPECT_GE(a.stats().peakBytesInUse, 200_KiB);
    a.resetPeak();
    EXPECT_EQ(a.stats().peakBytesInUse, 0u);
}

TEST(Bfc, SnapshotTilesArena)
{
    BfcAllocator a(1_MiB);
    auto h = a.allocate(128_KiB);
    (void)h;
    auto snap = a.snapshot();
    std::uint64_t covered = 0;
    for (const auto &c : snap) {
        EXPECT_EQ(c.offset, covered);
        covered += c.size;
    }
    EXPECT_EQ(covered, a.capacity());
}

TEST(Bfc, ZeroCapacityIsFatal)
{
    EXPECT_THROW(BfcAllocator a(0), FatalError);
}

/** Property test: random alloc/free sequences preserve all invariants. */
class BfcPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BfcPropertyTest, RandomChurnKeepsInvariants)
{
    Rng rng(GetParam());
    BfcAllocator a(64_MiB);
    std::vector<MemHandle> live;
    std::uint64_t expect_free_count = 0;

    for (int step = 0; step < 2000; ++step) {
        bool do_alloc = live.empty() || rng.chance(0.55);
        if (do_alloc) {
            std::uint64_t bytes = rng.chance(0.2)
                                      ? rng.uniformInt(1, 8_MiB)
                                      : rng.uniformInt(1, 64_KiB);
            auto h = a.allocate(bytes);
            if (h)
                live.push_back(*h);
        } else {
            std::size_t idx = rng.uniformInt(0, live.size() - 1);
            a.deallocate(live[idx]);
            ++expect_free_count;
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 100 == 0)
            a.checkInvariants();
    }
    a.checkInvariants();
    EXPECT_EQ(a.stats().totalFrees, expect_free_count);

    for (MemHandle h : live)
        a.deallocate(h);
    a.checkInvariants();
    EXPECT_EQ(a.bytesInUse(), 0u);
    EXPECT_EQ(a.stats().freeChunkCount, 1u); // fully coalesced
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfcPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- DeferredFreeQueue ---

TEST(DeferredFree, AppliesMaturedOnly)
{
    BfcAllocator a(1_MiB);
    DeferredFreeQueue q;
    auto h1 = a.allocate(100_KiB);
    auto h2 = a.allocate(100_KiB);
    q.post(100, *h1);
    q.post(200, *h2);
    q.applyUpTo(150, a);
    EXPECT_EQ(a.stats().totalFrees, 1u);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.nextMaturity(), std::optional<Tick>(200));
    q.applyUpTo(200, a);
    EXPECT_TRUE(q.empty());
}

TEST(DeferredFree, IsPendingTracksLifecycle)
{
    BfcAllocator a(1_MiB);
    DeferredFreeQueue q;
    auto h = a.allocate(1_KiB);
    EXPECT_FALSE(q.isPending(*h));
    q.post(50, *h);
    EXPECT_TRUE(q.isPending(*h));
    q.applyUpTo(50, a);
    EXPECT_FALSE(q.isPending(*h));
}

TEST(DeferredFree, NextMaturityEmpty)
{
    DeferredFreeQueue q;
    EXPECT_FALSE(q.nextMaturity().has_value());
}

// --- HostPinnedPool ---

TEST(HostPool, AllocatesAndTracks)
{
    HostPinnedPool p(1_MiB);
    auto h = p.allocate(600_KiB);
    EXPECT_NE(h, 0u);
    EXPECT_EQ(p.bytesInUse(), 600_KiB);
    p.deallocate(h);
    EXPECT_EQ(p.bytesInUse(), 0u);
    EXPECT_EQ(p.peakBytesInUse(), 600_KiB);
}

TEST(HostPool, ExhaustionReturnsZero)
{
    HostPinnedPool p(1_MiB);
    auto h = p.allocate(900_KiB);
    EXPECT_NE(h, 0u);
    EXPECT_EQ(p.allocate(200_KiB), 0u);
    p.deallocate(h);
    EXPECT_NE(p.allocate(200_KiB), 0u);
}

TEST(HostPool, UnknownFreePanics)
{
    HostPinnedPool p(1_MiB);
    EXPECT_THROW(p.deallocate(42), PanicError);
}

// --- MemoryManager ---

TEST(MemoryManager, AllocateAppliesMaturedFrees)
{
    MemoryManager mm(1_MiB, 1_GiB);
    auto h1 = mm.allocate(0, 900_KiB);
    ASSERT_TRUE(h1);
    mm.freeAt(100, *h1);
    // At t=50 the free has not matured.
    EXPECT_FALSE(mm.allocate(50, 900_KiB).has_value());
    // At t=100 it has.
    EXPECT_TRUE(mm.allocate(100, 900_KiB).has_value());
}

TEST(MemoryManager, AllocateWaitingAdvancesClock)
{
    MemoryManager mm(1_MiB, 1_GiB);
    auto h1 = mm.allocate(0, 900_KiB);
    ASSERT_TRUE(h1);
    mm.freeAt(500, *h1);
    Tick now = 10;
    auto h2 = mm.allocateWaiting(now, 900_KiB);
    ASSERT_TRUE(h2.has_value());
    EXPECT_EQ(now, 500u); // waited for the earliest pending free
}

TEST(MemoryManager, AllocateWaitingFailsWithNoPending)
{
    MemoryManager mm(1_MiB, 1_GiB);
    auto h1 = mm.allocate(0, 900_KiB);
    ASSERT_TRUE(h1);
    Tick now = 10;
    EXPECT_FALSE(mm.allocateWaiting(now, 900_KiB).has_value());
    EXPECT_EQ(now, 10u); // clock untouched on failure
    mm.freeNow(20, *h1);
}

TEST(MemoryManager, DrainAll)
{
    MemoryManager mm(1_MiB, 1_GiB);
    auto h = mm.allocate(0, 100_KiB);
    mm.freeAt(1000000, *h);
    mm.drainAll();
    EXPECT_EQ(mm.gpu().bytesInUse(), 0u);
}
