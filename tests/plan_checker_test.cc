/**
 * @file
 * Plan verifier (capulint) tests: every rule must reject its seeded-bad
 * plan, a well-formed plan must pass, and — the cross-cutting guarantee —
 * every model in the zoo must produce a lint-clean plan under Capuchin
 * and the baselines at an oversubscribed batch.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "analysis/lint_hooks.hh"
#include "analysis/plan_checker.hh"
#include "core/capuchin_policy.hh"
#include "core/policy_maker.hh"
#include "core/trace_io.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"
#include "support/logging.hh"
#include "support/units.hh"

using namespace capu;

namespace
{

/**
 * Lineage images -> t1 -> t2 -> t3 plus a synthetic trace; tests seed
 * plans by hand and run the checker against it.
 */
struct CheckerFixture
{
    Graph g{"checker"};
    TensorId images, t1, t2, t3;
    AccessTracker tracker;
    std::uint64_t bytes = 64_MiB;

    CheckerFixture()
    {
        images = g.addTensor("images", bytes, TensorKind::FeatureMap);
        Operation src;
        src.name = "source";
        src.category = OpCategory::Source;
        src.outputs = {images};
        src.recomputable = false;
        g.addOp(src);
        t1 = addLayer("op1", {images});
        t2 = addLayer("op2", {t1});
        t3 = addLayer("op3", {t2});
    }

    TensorId
    addLayer(const std::string &name, std::vector<TensorId> ins)
    {
        TensorId out =
            g.addTensor(name + ":out", bytes, TensorKind::FeatureMap);
        Operation op;
        op.name = name;
        op.category = OpCategory::Elementwise;
        op.inputs = std::move(ins);
        op.outputs = {out};
        op.recomputable = true;
        g.addOp(op);
        return out;
    }

    void
    access(TensorId tensor, int index, Tick time)
    {
        AccessRecord r;
        r.tensor = tensor;
        r.accessIndex = index;
        r.time = time;
        r.isOutput = index == 1;
        r.op = g.tensor(tensor).producer;
        tracker.record(r);
    }

    /** Produce + forward read + one backward read each, reverse order. */
    void
    standardTrace()
    {
        access(images, 1, 0);
        access(images, 2, 50);
        access(t1, 1, 100);
        access(t1, 2, 200);
        access(t2, 1, 300);
        access(t2, 2, 400);
        access(t3, 1, 500);
        access(t3, 2, 600);
        access(t3, 3, 10000);
        access(t2, 3, 11000);
        access(t1, 3, 12000);
    }

    PlannedEviction
    swapItem(TensorId t, int evict_idx, int back_idx, Tick evict_time,
             Tick back_time, Tick swap_time)
    {
        PlannedEviction item;
        item.tensor = t;
        item.mode = RegenChoice::Swap;
        item.bytes = bytes;
        item.evictAfterAccess = evict_idx;
        item.backAccess = back_idx;
        item.evictTime = evict_time;
        item.backTime = back_time;
        item.swapTime = swap_time;
        return item;
    }

    PlannedEviction
    recomputeItem(TensorId t, int evict_idx, int back_idx, Tick evict_time,
                  Tick back_time)
    {
        PlannedEviction item;
        item.tensor = t;
        item.mode = RegenChoice::Recompute;
        item.bytes = bytes;
        item.evictAfterAccess = evict_idx;
        item.backAccess = back_idx;
        item.evictTime = evict_time;
        item.backTime = back_time;
        item.recomputeTime = 10;
        return item;
    }

    LintReport
    check(const Plan &plan, Tick swap_time = 100,
          PlanCheckerOptions opts = {})
    {
        PlanChecker checker(g, tracker, opts);
        return checker.check(
            plan, [&](TensorId) { return bytes; },
            [=](std::uint64_t) { return swap_time; });
    }
};

bool
hasRule(const LintReport &report, const std::string &rule,
        LintSeverity sev)
{
    for (const auto &d : report.diags) {
        if (d.rule == rule && d.severity == sev)
            return true;
    }
    return false;
}

} // namespace

// --- structural rules ---

TEST(PlanChecker, CleanSwapPlanPasses)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    // Evict t1 after its forward read, back at the backward read; the
    // 11800-tick interval hides a 100-tick swap; in-trigger at t3's
    // backward read (10000), between eviction and back-access.
    auto item = f.swapItem(f.t1, 2, 3, 200, 12000, 100);
    item.triggerTensor = f.t3;
    item.triggerAccess = 3;
    plan.items.push_back(item);
    plan.plannedBytes = plan.targetBytes = f.bytes;

    LintReport report = f.check(plan);
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(report.diags.size(), 0u);
}

TEST(PlanChecker, UseAfterEvictRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    // Evict t2 after production (#1) but regenerate only at the backward
    // read (#3): the forward read #2 falls inside the hole.
    plan.items.push_back(f.swapItem(f.t2, 1, 3, 300, 11000, 100));

    LintReport report = f.check(plan);
    EXPECT_TRUE(hasRule(report, "use-after-evict", LintSeverity::Error));
    EXPECT_FALSE(report.clean());
}

TEST(PlanChecker, DuplicateItemRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    plan.items.push_back(f.swapItem(f.t1, 2, 3, 200, 12000, 100));
    plan.items.push_back(f.swapItem(f.t1, 2, 3, 200, 12000, 100));

    LintReport report = f.check(plan);
    EXPECT_TRUE(hasRule(report, "duplicate-item", LintSeverity::Error));
}

TEST(PlanChecker, MissingAccessRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    plan.items.push_back(f.swapItem(f.t1, 2, 9, 200, 12000, 100));

    LintReport report = f.check(plan);
    EXPECT_TRUE(hasRule(report, "missing-access", LintSeverity::Error));
}

TEST(PlanChecker, BadIntervalRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    plan.items.push_back(f.swapItem(f.t1, 3, 2, 12000, 200, 100));

    LintReport report = f.check(plan);
    EXPECT_TRUE(hasRule(report, "bad-interval", LintSeverity::Error));
}

TEST(PlanChecker, TimeInversionIsAdvisory)
{
    CheckerFixture f;
    f.standardTrace();
    // Seed an extra access whose corrected timestamp runs backwards:
    // index #4 follows #3 but is stamped 1000 ticks earlier.
    f.access(f.t3, 4, 9000);
    Plan plan;
    auto item = f.swapItem(f.t3, 3, 4, 10000, 9000, 100);
    // The inverted pair makes FT meaningless (and negative); budget the
    // exposure so only the inversion itself is under test.
    item.estimatedOverhead = 5000;
    plan.items.push_back(item);

    LintReport report = f.check(plan);
    EXPECT_TRUE(hasRule(report, "time-inversion", LintSeverity::Warning));
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

// --- prefetch rules ---

TEST(PlanChecker, NegativeFtClaimedHiddenRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    // Interval t2 #2 -> #3 is 10600 ticks; a 6000-tick swap cannot fit
    // the 12000-tick round trip. estimatedOverhead = 0 claims the swap is
    // hidden: the feedback loop can never make that true.
    auto item = f.swapItem(f.t2, 2, 3, 400, 11000, 6000);
    item.estimatedOverhead = 0;
    item.triggerTensor = f.t3;
    item.triggerAccess = 3;
    plan.items.push_back(item);

    LintReport report = f.check(plan, 6000);
    EXPECT_TRUE(
        hasRule(report, "negative-ft-prefetch", LintSeverity::Error));
}

TEST(PlanChecker, BudgetedExposureIsAdvisory)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    // Same exposed swap, but the plan honestly budgets the exposure
    // (2 * 6000 - 10600 = 1400 ticks).
    auto item = f.swapItem(f.t2, 2, 3, 400, 11000, 6000);
    item.estimatedOverhead = 1400;
    item.triggerTensor = f.t3;
    item.triggerAccess = 3;
    plan.items.push_back(item);

    LintReport report = f.check(plan, 6000);
    EXPECT_TRUE(hasRule(report, "exposed-swap", LintSeverity::Warning));
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

TEST(PlanChecker, DanglingTriggerRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    auto item = f.swapItem(f.t1, 2, 3, 200, 12000, 100);
    item.triggerTensor = f.t3;
    item.triggerAccess = 9; // no such access in the trace
    plan.items.push_back(item);

    LintReport report = f.check(plan);
    EXPECT_TRUE(
        hasRule(report, "prefetch-missing-trigger", LintSeverity::Error));
}

TEST(PlanChecker, LateAndDeadTriggersAreAdvisory)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    // images#2 at t=50 fires before t1's eviction at 200: a no-op.
    auto dead = f.swapItem(f.t1, 2, 3, 200, 12000, 100);
    dead.triggerTensor = f.images;
    dead.triggerAccess = 2;
    plan.items.push_back(dead);
    // t1#3 at 12000 fires after t2's back-access at 11000: too late.
    auto late = f.swapItem(f.t2, 2, 3, 400, 11000, 100);
    late.triggerTensor = f.t1;
    late.triggerAccess = 3;
    plan.items.push_back(late);

    LintReport report = f.check(plan);
    EXPECT_TRUE(
        hasRule(report, "prefetch-dead-trigger", LintSeverity::Warning));
    EXPECT_TRUE(
        hasRule(report, "prefetch-late-trigger", LintSeverity::Warning));
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

// --- recompute rules ---

TEST(PlanChecker, EvictedRecomputeSourceRejected)
{
    CheckerFixture f;
    // t1 and images die before t2's backward read: replaying t2 chains to
    // op1(images), and images' producer is a non-recomputable source.
    f.access(f.images, 1, 0);
    f.access(f.images, 2, 50);
    f.access(f.t1, 1, 100);
    f.access(f.t1, 2, 200);
    f.access(f.t2, 1, 300);
    f.access(f.t2, 2, 400);
    f.access(f.t2, 3, 10000);

    Plan plan;
    plan.items.push_back(f.recomputeItem(f.t2, 2, 3, 400, 10000));

    LintReport report = f.check(plan);
    EXPECT_TRUE(
        hasRule(report, "recompute-source-lost", LintSeverity::Error));
}

TEST(PlanChecker, ResidentSourceAccepted)
{
    CheckerFixture f;
    f.standardTrace(); // t1 alive until 12000 > replay at 11000
    Plan plan;
    plan.items.push_back(f.recomputeItem(f.t2, 2, 3, 400, 11000));

    LintReport report = f.check(plan);
    EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(PlanChecker, SwapBackedSourceAccepted)
{
    CheckerFixture f;
    // t1's last live stretch ends at 500, before t2's replay at 11000 —
    // but a swap item covers t1 across that time, so the host copy
    // satisfies the replay via an on-demand swap-in.
    f.access(f.images, 1, 0);
    f.access(f.t1, 1, 100);
    f.access(f.t1, 2, 500);
    f.access(f.t1, 3, 12000);
    f.access(f.t2, 1, 300);
    f.access(f.t2, 2, 400);
    f.access(f.t2, 3, 11000);

    Plan plan;
    plan.items.push_back(f.swapItem(f.t1, 2, 3, 500, 12000, 100));
    plan.items.push_back(f.recomputeItem(f.t2, 2, 3, 400, 11000));

    LintReport report = f.check(plan);
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

TEST(PlanChecker, RecomputeCycleRejected)
{
    CheckerFixture f;
    // Malformed lineage: a <-> b producer cycle feeding c; both dead at
    // replay time, so the lineage walk must chain through the loop.
    TensorId a = f.g.addTensor("a", f.bytes, TensorKind::FeatureMap);
    TensorId b = f.g.addTensor("b", f.bytes, TensorKind::FeatureMap);
    Operation opa;
    opa.name = "opa";
    opa.category = OpCategory::Elementwise;
    opa.inputs = {b};
    opa.outputs = {a};
    opa.recomputable = true;
    f.g.addOp(opa);
    Operation opb;
    opb.name = "opb";
    opb.category = OpCategory::Elementwise;
    opb.inputs = {a};
    opb.outputs = {b};
    opb.recomputable = true;
    f.g.addOp(opb);
    TensorId c = f.addLayer("opc", {a});

    f.access(a, 1, 0);
    f.access(a, 2, 10);
    f.access(b, 1, 20);
    f.access(b, 2, 30);
    f.access(c, 1, 100);
    f.access(c, 2, 200);
    f.access(c, 3, 10000);

    Plan plan;
    plan.items.push_back(f.recomputeItem(c, 2, 3, 200, 10000));

    LintReport report = f.check(plan);
    EXPECT_TRUE(hasRule(report, "recompute-cycle", LintSeverity::Error));
}

TEST(PlanChecker, DeepChainIsAdvisory)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    plan.items.push_back(f.recomputeItem(f.t3, 2, 3, 600, 10000));

    PlanCheckerOptions opts;
    opts.maxRecomputeChain = 0; // any replay blows the budget
    LintReport report = f.check(plan, 100, opts);
    EXPECT_TRUE(hasRule(report, "recompute-chain-too-long",
                        LintSeverity::Warning));
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

// --- memory window rules ---

TEST(PlanChecker, UndeliveredOvercommitRejected)
{
    CheckerFixture f;
    f.standardTrace();
    // t1, t2, t3 overlap over [500, 10000] for a 3-tensor peak; capacity
    // fits two. Evicting t3 over (600, 10000) frees nothing at the
    // residual peak [500, 700) — the claimed savings are never delivered,
    // and no amount of re-planning around this plan's numbers fixes that.
    Plan plan;
    plan.items.push_back(f.swapItem(f.t3, 2, 3, 600, 10000, 100));
    plan.plannedBytes = plan.targetBytes = f.bytes;

    PlanCheckerOptions opts;
    opts.gpuCapacity = 2 * f.bytes;
    LintReport report = f.check(plan, 100, opts);
    EXPECT_TRUE(
        hasRule(report, "memory-overcommit", LintSeverity::Error));
}

TEST(PlanChecker, DeliveredOvercommitIsAdvisory)
{
    CheckerFixture f;
    f.standardTrace();
    // Squeeze capacity to one tensor: the replayed curve still overshoots,
    // but the eviction window spans the peak and delivers the full claimed
    // savings — the residual overshoot is passive mode's (and the
    // refinement loop's) problem, not a plan lie.
    Plan plan;
    plan.items.push_back(f.swapItem(f.t1, 2, 3, 200, 12000, 100));
    plan.plannedBytes = plan.targetBytes = f.bytes;

    PlanCheckerOptions opts;
    opts.gpuCapacity = f.bytes;
    LintReport report = f.check(plan, 100, opts);
    EXPECT_TRUE(
        hasRule(report, "memory-overcommit", LintSeverity::Warning));
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

TEST(PlanChecker, HostOvercommitRejected)
{
    CheckerFixture f;
    f.standardTrace();
    Plan plan;
    auto item = f.swapItem(f.t1, 2, 3, 200, 12000, 100);
    item.triggerTensor = f.t3;
    item.triggerAccess = 3;
    plan.items.push_back(item);
    plan.plannedBytes = plan.targetBytes = f.bytes;

    PlanCheckerOptions opts;
    opts.hostCapacity = f.bytes / 2; // staging cannot hold the swap
    LintReport report = f.check(plan, 100, opts);
    EXPECT_TRUE(hasRule(report, "host-overcommit", LintSeverity::Error));
}

// --- offline reconstruction ---

TEST(PlanChecker, ReconstructedGraphPlansAndLintsClean)
{
    // The capulint tool replans from a serialized trace with a graph
    // rebuilt from lineage records alone; the result must survive the
    // same rules as the live pipeline.
    ExecConfig cfg;
    auto policy = makeCapuchinPolicy();
    auto *capu = static_cast<CapuchinPolicy *>(policy.get());
    Session session(buildModel(ModelKind::Vgg16, 64), cfg,
                    std::move(policy));
    auto r = session.run(1);
    ASSERT_FALSE(r.oom) << r.oomMessage;

    TensorTrace trace = captureTrace(capu->tracker(), session.graph());
    Graph rebuilt = reconstructGraph(trace);
    ASSERT_GT(rebuilt.numTensors(), 0u);

    AccessTracker tracker = trace.toTracker();
    auto bytes_of = [&](TensorId id) { return rebuilt.tensor(id).bytes; };
    auto swap_of = [](std::uint64_t b) { return static_cast<Tick>(b / 12); };
    PolicyMaker maker(rebuilt, tracker, PolicyMakerOptions{});
    Plan plan = maker.build(512_MiB, bytes_of, swap_of, 8_GiB);
    EXPECT_FALSE(plan.items.empty());

    PlanCheckerOptions opts;
    opts.gpuCapacity = 8_GiB;
    opts.capacitySlack = 8_GiB / 20;
    PlanChecker checker(rebuilt, tracker, opts);
    LintReport report = checker.check(plan, bytes_of, swap_of);
    EXPECT_EQ(report.errorCount(), 0u) << report.summary();
}

// --- the zoo sweep: every policy's plan is lint-clean end to end ---

namespace
{

std::int64_t
oversubscribedBatch(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Vgg16: return 260;
      case ModelKind::ResNet50: return 240;
      case ModelKind::ResNet152: return 110;
      case ModelKind::InceptionV3: return 210;
      case ModelKind::InceptionV4: return 120;
      case ModelKind::DenseNet121: return 200;
      case ModelKind::BertBase: return 110;
    }
    return 0;
}

/** Panic on errors, keep warnings quiet: the sweep asserts soundness. */
LintHookOptions
strictHook()
{
    LintHookOptions hook;
    hook.panicOnError = true;
    hook.printFindings = false;
    return hook;
}

} // namespace

class LintSweepTest : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(LintSweepTest, CapuchinPlanIsLintClean)
{
    ModelKind kind = GetParam();
    CapuchinOptions opts;
    enablePlanLint(opts, strictHook());
    Session session(buildModel(kind, oversubscribedBatch(kind)),
                    ExecConfig{}, makeCapuchinPolicy(opts));
    // An error-level finding panics out of run(); OOM is reported in r.
    SessionResult r = session.run(4);
    EXPECT_FALSE(r.oom) << r.oomMessage;
}

INSTANTIATE_TEST_SUITE_P(AllModels, LintSweepTest,
                         ::testing::Values(ModelKind::Vgg16,
                                           ModelKind::ResNet50,
                                           ModelKind::ResNet152,
                                           ModelKind::InceptionV3,
                                           ModelKind::InceptionV4,
                                           ModelKind::DenseNet121,
                                           ModelKind::BertBase),
                         [](const auto &info) {
                             std::string name = modelName(info.param);
                             std::erase_if(name, [](unsigned char c) {
                                 return std::isalnum(c) == 0;
                             });
                             return name;
                         });

TEST(LintSweepBaselines, VdnnPlanIsLintClean)
{
    for (ModelKind kind : {ModelKind::Vgg16, ModelKind::ResNet50,
                           ModelKind::DenseNet121}) {
        auto policy = std::make_unique<VdnnPolicy>();
        enablePlanLint(*policy, strictHook());
        Session session(buildModel(kind, oversubscribedBatch(kind)),
                        ExecConfig{}, std::move(policy));
        SessionResult r = session.run(2);
        EXPECT_FALSE(r.oom) << modelName(kind) << ": " << r.oomMessage;
    }
}

TEST(LintSweepBaselines, CheckpointingPlanIsLintClean)
{
    for (ModelKind kind : {ModelKind::Vgg16, ModelKind::ResNet50,
                           ModelKind::DenseNet121}) {
        auto policy = std::make_unique<CheckpointingPolicy>(
            CheckpointingPolicy::Mode::Memory);
        enablePlanLint(*policy, strictHook());
        Session session(buildModel(kind, oversubscribedBatch(kind)),
                        ExecConfig{}, std::move(policy));
        SessionResult r = session.run(2);
        EXPECT_FALSE(r.oom) << modelName(kind) << ": " << r.oomMessage;
    }
}
