/**
 * @file
 * capureplay tests: zoo-wide bit-identity between replayed and fully
 * executed sessions (iteration stats, steady throughput, weight versions
 * and fingerprints, metrics), replay engagement/coverage accounting,
 * default-off behaviour, audit-driven divergence fallback, trace
 * re-emission on the replay track, and forced-off under every chaos plan.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/capuchin_policy.hh"
#include "exec/replay.hh"
#include "exec/session.hh"
#include "faults/fault_spec.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"

using namespace capu;

namespace
{

struct ZooCase
{
    const char *name;
    ModelKind kind;
    std::int64_t batch;
};

/** Workloads whose Capuchin plan stabilizes within a few iterations. */
const ZooCase kZoo[] = {
    {"vgg16", ModelKind::Vgg16, 230},
    {"resnet50", ModelKind::ResNet50, 200},
    {"bert", ModelKind::BertBase, 64},
};

ExecConfig
replayConfig(bool enabled, obs::ObsLevel level = obs::ObsLevel::Metrics)
{
    ExecConfig cfg;
    cfg.obsLevel = level;
    cfg.replay.enabled = enabled;
    return cfg;
}

void
expectIterationsEqual(const SessionResult &a, const SessionResult &b)
{
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        const IterationStats &x = a.iterations[i];
        const IterationStats &y = b.iterations[i];
        EXPECT_EQ(x.iteration, y.iteration) << "iteration " << i;
        EXPECT_EQ(x.begin, y.begin) << "iteration " << i;
        EXPECT_EQ(x.end, y.end) << "iteration " << i;
        EXPECT_EQ(x.kernelBusy, y.kernelBusy) << "iteration " << i;
        EXPECT_EQ(x.recomputeBusy, y.recomputeBusy) << "iteration " << i;
        EXPECT_EQ(x.inputStall, y.inputStall) << "iteration " << i;
        EXPECT_EQ(x.allocStall, y.allocStall) << "iteration " << i;
        EXPECT_EQ(x.swapOutBytes, y.swapOutBytes) << "iteration " << i;
        EXPECT_EQ(x.swapInBytes, y.swapInBytes) << "iteration " << i;
        EXPECT_EQ(x.swapOutCount, y.swapOutCount) << "iteration " << i;
        EXPECT_EQ(x.swapInCount, y.swapInCount) << "iteration " << i;
        EXPECT_EQ(x.recomputedTensors, y.recomputedTensors)
            << "iteration " << i;
        EXPECT_EQ(x.recomputeOps, y.recomputeOps) << "iteration " << i;
        EXPECT_EQ(x.droppedTensors, y.droppedTensors) << "iteration " << i;
        EXPECT_EQ(x.droppedBytes, y.droppedBytes) << "iteration " << i;
        EXPECT_EQ(x.inplaceForwards, y.inplaceForwards) << "iteration " << i;
        EXPECT_EQ(x.fallbackKernels, y.fallbackKernels) << "iteration " << i;
        EXPECT_EQ(x.oomEvictions, y.oomEvictions) << "iteration " << i;
        EXPECT_EQ(x.prefetchBusy, y.prefetchBusy) << "iteration " << i;
        EXPECT_EQ(x.prefetchStall, y.prefetchStall) << "iteration " << i;
        EXPECT_EQ(x.peakGpuBytes, y.peakGpuBytes) << "iteration " << i;
    }
}

/** Registry equality, ignoring the replay.* bookkeeping counters. */
void
expectMetricsEqual(const obs::MetricsRegistry &a,
                   const obs::MetricsRegistry &b)
{
    auto synthetic = [](const std::string &name) {
        return name.rfind("replay.", 0) == 0;
    };
    for (const auto &[name, value] : a.counters()) {
        if (synthetic(name))
            continue;
        EXPECT_EQ(value, b.counter(name)) << "counter " << name;
    }
    for (const auto &[name, value] : b.counters()) {
        if (!synthetic(name))
            EXPECT_EQ(a.counter(name), value) << "counter " << name;
    }
    for (const auto &[name, value] : a.gauges())
        EXPECT_EQ(value, b.gauge(name)) << "gauge " << name;
    EXPECT_EQ(a.gauges().size(), b.gauges().size());
    for (const auto &[name, hist] : a.histograms()) {
        const obs::Histogram *other = b.histogram(name);
        ASSERT_NE(other, nullptr) << "histogram " << name;
        EXPECT_EQ(hist.count(), other->count()) << "histogram " << name;
        EXPECT_EQ(hist.sum(), other->sum()) << "histogram " << name;
        EXPECT_EQ(hist.min(), other->min()) << "histogram " << name;
        EXPECT_EQ(hist.max(), other->max()) << "histogram " << name;
        for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i)
            EXPECT_EQ(hist.bucket(i), other->bucket(i))
                << "histogram " << name << " bucket " << i;
    }
    EXPECT_EQ(a.histograms().size(), b.histograms().size());
}

void
expectWeightsEqual(Session &a, Session &b)
{
    const Graph &g = a.graph();
    for (std::size_t t = 0; t < g.numTensors(); ++t) {
        auto id = static_cast<TensorId>(t);
        if (g.tensor(id).kind != TensorKind::Weight)
            continue;
        const TensorState &x = a.executor().tensorState(id);
        const TensorState &y = b.executor().tensorState(id);
        EXPECT_EQ(x.weightVersion, y.weightVersion)
            << "weight " << g.tensor(id).name;
        EXPECT_EQ(x.fingerprint, y.fingerprint)
            << "weight " << g.tensor(id).name;
        EXPECT_EQ(x.expectedFp, y.expectedFp)
            << "weight " << g.tensor(id).name;
    }
}

} // namespace

// --- bit-identity across the zoo --------------------------------------

TEST(ReplayIdentity, CapuchinZooSweep)
{
    constexpr int kIters = 20;
    for (const auto &zc : kZoo) {
        SCOPED_TRACE(zc.name);
        Session on(buildModel(zc.kind, zc.batch), replayConfig(true),
                   makeCapuchinPolicy());
        Session off(buildModel(zc.kind, zc.batch), replayConfig(false),
                    makeCapuchinPolicy());
        SessionResult ron = on.run(kIters);
        SessionResult roff = off.run(kIters);
        ASSERT_FALSE(ron.oom) << ron.oomMessage;
        ASSERT_FALSE(roff.oom) << roff.oomMessage;
        // Replay must actually engage for the sweep to mean anything.
        EXPECT_GT(ron.replay.replayed, 0);
        EXPECT_EQ(ron.replay.executed + ron.replay.replayed, kIters);
        EXPECT_EQ(roff.replay.replayed, 0);
        expectIterationsEqual(ron, roff);
        EXPECT_EQ(ron.steadyIterationTicks(), roff.steadyIterationTicks());
        EXPECT_DOUBLE_EQ(ron.steadyThroughput(zc.batch),
                         roff.steadyThroughput(zc.batch));
        expectWeightsEqual(on, off);
        expectMetricsEqual(on.executor().obs().metrics,
                           off.executor().obs().metrics);
    }
}

TEST(ReplayIdentity, BaselinePoliciesBitIdentical)
{
    constexpr int kIters = 16;
    auto run_pair = [&](auto make_policy) {
        Session on(buildModel(ModelKind::ResNet50, 160), replayConfig(true),
                   make_policy());
        Session off(buildModel(ModelKind::ResNet50, 160),
                    replayConfig(false), make_policy());
        SessionResult ron = on.run(kIters);
        SessionResult roff = off.run(kIters);
        ASSERT_FALSE(ron.oom) << ron.oomMessage;
        EXPECT_GT(ron.replay.replayed, 0);
        expectIterationsEqual(ron, roff);
        expectWeightsEqual(on, off);
        expectMetricsEqual(on.executor().obs().metrics,
                           off.executor().obs().metrics);
    };
    run_pair([] { return std::make_unique<VdnnPolicy>(); });
    run_pair([] {
        return std::make_unique<CheckpointingPolicy>(
            CheckpointingPolicy::Mode::Memory);
    });
}

// --- engagement, coverage and accounting ------------------------------

TEST(ReplayCoverage, SteadyStateMostlySynthesized)
{
    constexpr int kIters = 30;
    ExecConfig cfg = replayConfig(true);
    cfg.replay.auditInterval = 8;
    Session s(buildModel(ModelKind::Vgg16, 230), cfg, makeCapuchinPolicy());
    SessionResult r = s.run(kIters);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_EQ(r.replay.executed + r.replay.replayed, kIters);
    EXPECT_GE(r.replay.replayed, 15);
    EXPECT_GE(r.replay.audits, 1);
    EXPECT_EQ(r.replay.auditMismatches, 0);
}

TEST(ReplayCoverage, DisabledByDefault)
{
    Session s(buildModel(ModelKind::Vgg16, 230), ExecConfig{},
              makeCapuchinPolicy());
    SessionResult r = s.run(8);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_FALSE(s.executor().replayArmed());
    EXPECT_EQ(r.replay.replayed, 0);
    EXPECT_EQ(r.replay.audits, 0);
    EXPECT_EQ(r.replay.executed, 8);
}

// --- audit protocol ----------------------------------------------------

namespace
{

/**
 * A policy that claims replay stability but silently changes behaviour
 * from iteration `flipAt` on: it starts async-evicting the first sizable
 * unpinned feature map after each op. Replay synthesizes through the flip
 * without consulting the policy, so only an audit iteration can expose
 * the divergence.
 */
class FlippingPolicy : public MemoryPolicy
{
  public:
    explicit FlippingPolicy(int flip_at) : flipAt_(flip_at) {}

    std::string name() const override { return "Flipping"; }
    bool graphAgnostic() const override { return true; }

    void
    afterOp(ExecContext &ctx, OpId op, Tick op_end) override
    {
        (void)op;
        (void)op_end;
        if (ctx.iteration() < flipAt_ || evictedThisIter_)
            return;
        const Graph &g = ctx.graph();
        for (std::size_t t = 0; t < g.numTensors(); ++t) {
            auto id = static_cast<TensorId>(t);
            if (g.tensor(id).kind != TensorKind::FeatureMap)
                continue;
            if (ctx.status(id) != TensorStatus::In || ctx.isPinned(id))
                continue;
            if (ctx.tensorBytes(id) < (8ull << 20))
                continue;
            ctx.evictSwapAsync(id);
            evictedThisIter_ = true;
            return;
        }
    }

    void
    beginIteration(ExecContext &ctx) override
    {
        (void)ctx;
        evictedThisIter_ = false;
    }

  private:
    int flipAt_;
    bool evictedThisIter_ = false;
};

} // namespace

TEST(ReplayAudit, MismatchFallsBackToExecution)
{
    constexpr int kIters = 24;
    constexpr int kFlip = 7;
    ExecConfig cfg = replayConfig(true);
    cfg.replay.auditInterval = 2;
    cfg.replay.maxAuditMismatches = 1;
    Session s(buildModel(ModelKind::ResNet50, 160), cfg,
              std::make_unique<FlippingPolicy>(kFlip));
    SessionResult r = s.run(kIters);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    // Replay engaged before the flip, an audit caught the divergence, and
    // with a budget of one mismatch replay stayed off afterwards.
    EXPECT_GT(r.replay.replayed, 0);
    EXPECT_GE(r.replay.audits, 1);
    EXPECT_EQ(r.replay.auditMismatches, 1);

    // After the fallback both worlds execute the flipped behaviour; late
    // iterations must agree with a never-replayed run up to a time shift.
    Session off(buildModel(ModelKind::ResNet50, 160), replayConfig(false),
                std::make_unique<FlippingPolicy>(kFlip));
    SessionResult roff = off.run(kIters);
    ASSERT_FALSE(roff.oom) << roff.oomMessage;
    const IterationStats &x = r.iterations.back();
    const IterationStats &y = roff.iterations.back();
    EXPECT_EQ(x.duration(), y.duration());
    EXPECT_EQ(x.swapOutBytes, y.swapOutBytes);
    EXPECT_EQ(x.swapInBytes, y.swapInBytes);
    EXPECT_EQ(x.kernelBusy, y.kernelBusy);
}

// --- trace re-emission -------------------------------------------------

TEST(ReplayTrace, SynthesizedIterationsReEmitEvents)
{
    constexpr int kIters = 20;
    Session s(buildModel(ModelKind::Vgg16, 230),
              replayConfig(true, obs::ObsLevel::Full), makeCapuchinPolicy());
    SessionResult r = s.run(kIters);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    ASSERT_GT(r.replay.replayed, 0);

    bool saw_replay_mark = false;
    bool saw_last_iteration_marker = false;
    std::string last = "iteration:" + std::to_string(kIters - 1);
    const obs::Tracer &tracer = s.executor().obs().tracer;
    tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.track == obs::kTrackReplay &&
            ev.name.rfind("replay.iter:", 0) == 0)
            saw_replay_mark = true;
        if (ev.name == last) {
            saw_last_iteration_marker = true;
            // Re-emitted with shifted ticks: the marker must sit at the
            // synthesized iteration's true begin.
            EXPECT_EQ(ev.ts, r.iterations.back().begin);
            EXPECT_EQ(ev.dur, r.iterations.back().duration());
        }
    });
    EXPECT_TRUE(saw_replay_mark);
    EXPECT_TRUE(saw_last_iteration_marker);
}

// --- fault plans force replay off --------------------------------------

TEST(ReplayFaults, EveryChaosPlanDisarmsReplay)
{
    const char *kPlans[] = {
        "pcie:0.5@500-2500",
        "jitter:0.15",
        "hostcap:4GiB",
        "swapfail:p=0.05,retries=3",
        "pcie:0.6@1000-3000;jitter:0.1;swapfail:p=0.02,retries=2",
    };
    for (const char *plan : kPlans) {
        SCOPED_TRACE(plan);
        ExecConfig cfg = replayConfig(true);
        cfg.faults = faults::parseFaultSpec(plan);
        cfg.seed = 42;
        Session s(buildModel(ModelKind::Vgg16, 230), cfg,
                  makeCapuchinPolicy());
        SessionResult r = s.run(8);
        EXPECT_FALSE(s.executor().replayArmed());
        EXPECT_EQ(r.replay.replayed, 0);
        EXPECT_EQ(r.replay.audits, 0);
    }
}
