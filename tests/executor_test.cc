/**
 * @file
 * Executor tests on synthetic graphs: refcount lifetimes, fingerprint
 * integrity, swap/recompute mechanics, eager mode, OOM behaviour.
 */

#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.hh"
#include "exec/session.hh"
#include "policy/noop_policy.hh"
#include "support/logging.hh"
#include "test_graphs.hh"

using namespace capu;
using capu::test::ChainGraph;

namespace
{

ExecConfig
testConfig(std::uint64_t capacity)
{
    ExecConfig cfg;
    cfg.device = GpuDeviceSpec::testDevice(capacity);
    return cfg;
}

/** Scripted policy: evicts/prefetches at fixed access points. */
class ScriptedPolicy : public MemoryPolicy
{
  public:
    std::string name() const override { return "scripted"; }
    bool graphAgnostic() const override { return true; }

    struct Action
    {
        TensorId tensor;
        int accessIndex;
        enum Kind { SwapOut, Drop, Prefetch } kind;
        TensorId target = kInvalidTensor; // for Prefetch
    };
    std::vector<Action> actions;

    void
    onAccess(ExecContext &ctx, const AccessEvent &ev) override
    {
        for (const auto &a : actions) {
            if (a.tensor != ev.tensor || a.accessIndex != ev.accessIndex)
                continue;
            switch (a.kind) {
              case Action::SwapOut: ctx.evictSwapAsync(ev.tensor); break;
              case Action::Drop: ctx.evictDrop(ev.tensor); break;
              case Action::Prefetch: ctx.prefetchAsync(a.target); break;
            }
        }
    }
};

} // namespace

TEST(Executor, RunsChainToCompletion)
{
    ChainGraph cg(4, 1_MiB);
    Executor ex(cg.graph, testConfig(64_MiB), nullptr);
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_GT(stats.kernelBusy, 0u);
    EXPECT_EQ(stats.swapOutCount, 0);
    EXPECT_EQ(stats.inputStall, 0u);
}

TEST(Executor, MemoryReturnsToWeightsAfterIteration)
{
    ChainGraph cg(6, 1_MiB, 1e6, true);
    Executor ex(cg.graph, testConfig(64_MiB), nullptr);
    ex.setup();
    ex.runIteration();
    ex.memory().drainAll();
    EXPECT_EQ(ex.memory().gpu().bytesInUse(),
              cg.graph.bytesOfKind(TensorKind::Weight));
    ex.memory().gpu().checkInvariants();
}

TEST(Executor, PeakReflectsSavedActivations)
{
    // All 8 activations (1 MiB each) are saved to backward: the peak must
    // hold roughly all of them at the fwd/bwd boundary.
    ChainGraph cg(8, 1_MiB);
    Executor ex(cg.graph, testConfig(256_MiB), nullptr);
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_GE(stats.peakGpuBytes, 8_MiB);
    EXPECT_LE(stats.peakGpuBytes, 14_MiB);
}

TEST(Executor, IterationsAreDeterministic)
{
    ChainGraph cg(5, 1_MiB);
    Executor ex(cg.graph, testConfig(64_MiB), nullptr);
    ex.setup();
    auto s1 = ex.runIteration();
    auto s2 = ex.runIteration();
    EXPECT_EQ(s1.duration(), s2.duration());
    EXPECT_EQ(s1.peakGpuBytes, s2.peakGpuBytes);
}

TEST(Executor, ThrowsOomWithoutPolicy)
{
    ChainGraph cg(32, 1_MiB);
    Executor ex(cg.graph, testConfig(8_MiB), nullptr);
    ex.setup();
    EXPECT_THROW(ex.runIteration(), OomError);
}

TEST(Executor, WeightsAloneOverCapacityThrowAtSetup)
{
    ChainGraph cg(2, 4_MiB, 1e6, true);
    Executor ex(cg.graph, testConfig(1_KiB), nullptr);
    EXPECT_THROW(ex.setup(), OomError);
}

TEST(Executor, SwapOutAndBackPreservesFingerprint)
{
    ChainGraph cg(6, 1_MiB);
    auto policy = std::make_unique<ScriptedPolicy>();
    // Evict L1:out right after its forward consumption (access 2: produce
    // is 1, L2's read is 2); its backward read swaps it back in.
    policy->actions.push_back({cg.features[0], 2,
                               ScriptedPolicy::Action::SwapOut,
                               kInvalidTensor});
    ExecConfig cfg = testConfig(64_MiB);
    cfg.checkFingerprints = true; // panics on stale data
    Executor ex(cg.graph, cfg, policy.get());
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_EQ(stats.swapOutCount, 1);
    EXPECT_EQ(stats.swapInCount, 1);
    EXPECT_GT(stats.swapOutBytes, 0u);
}

TEST(Executor, DropAndRecomputeRegeneratesData)
{
    ChainGraph cg(6, 1_MiB);
    auto policy = std::make_unique<ScriptedPolicy>();
    policy->actions.push_back({cg.features[2], 2,
                               ScriptedPolicy::Action::Drop,
                               kInvalidTensor});
    ExecConfig cfg = testConfig(64_MiB);
    Executor ex(cg.graph, cfg, policy.get());
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_GE(stats.recomputedTensors, 1);
    EXPECT_GT(stats.recomputeBusy, 0u);
    // The fingerprint check inside the executor validated regeneration.
}

TEST(Executor, RecomputeChainsToNearestResident)
{
    // Drop L2, L3 and L4; L4's back-access must replay from L1.
    ChainGraph cg(6, 1_MiB);
    auto policy = std::make_unique<ScriptedPolicy>();
    for (int i : {1, 2, 3}) {
        policy->actions.push_back({cg.features[i], 2,
                                   ScriptedPolicy::Action::Drop,
                                   kInvalidTensor});
    }
    Executor ex(cg.graph, testConfig(64_MiB), policy.get());
    ex.setup();
    auto stats = ex.runIteration();
    // Collective recomputation: one replay of 3 ops regenerates them all.
    EXPECT_EQ(stats.recomputeOps, 3);
    EXPECT_EQ(stats.recomputedTensors, 1);
}

TEST(Executor, NonCollectiveRecomputeRepeatsWork)
{
    ChainGraph cg1(6, 1_MiB);
    ChainGraph cg2(6, 1_MiB);
    auto mk_policy = [&](ChainGraph &cg) {
        auto p = std::make_unique<ScriptedPolicy>();
        for (int i : {1, 2, 3}) {
            p->actions.push_back({cg.features[i], 2,
                                  ScriptedPolicy::Action::Drop,
                                  kInvalidTensor});
        }
        return p;
    };
    auto p1 = mk_policy(cg1);
    auto p2 = mk_policy(cg2);

    ExecConfig with = testConfig(64_MiB);
    with.collectiveRecompute = true;
    ExecConfig without = testConfig(64_MiB);
    without.collectiveRecompute = false;

    Executor e1(cg1.graph, with, p1.get());
    e1.setup();
    auto s_with = e1.runIteration();
    Executor e2(cg2.graph, without, p2.get());
    e2.setup();
    auto s_without = e2.runIteration();

    // O(n) vs O(n^2): without CR the chain is replayed repeatedly (§5.3).
    EXPECT_GT(s_without.recomputeOps, s_with.recomputeOps);
}

TEST(Executor, PrefetchHidesSwapInLatency)
{
    ChainGraph cg(12, 1_MiB, 5e7); // slow ops: room to hide the transfer
    auto policy = std::make_unique<ScriptedPolicy>();
    policy->actions.push_back({cg.features[0], 2,
                               ScriptedPolicy::Action::SwapOut,
                               kInvalidTensor});
    // In-trigger: when L8:out is produced (access 1), prefetch L1:out.
    policy->actions.push_back({cg.features[7], 1,
                               ScriptedPolicy::Action::Prefetch,
                               cg.features[0]});
    Executor ex(cg.graph, testConfig(256_MiB), policy.get());
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_EQ(stats.swapInCount, 1);
    EXPECT_EQ(stats.inputStall, 0u); // fully hidden
}

TEST(Executor, OnDemandSwapInStalls)
{
    ChainGraph cg(12, 1_MiB, 5e7);
    auto policy = std::make_unique<ScriptedPolicy>();
    policy->actions.push_back({cg.features[0], 2,
                               ScriptedPolicy::Action::SwapOut,
                               kInvalidTensor});
    // No prefetch: the back-access fetches on demand.
    Executor ex(cg.graph, testConfig(256_MiB), policy.get());
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_GT(stats.inputStall, 0u);
}

TEST(Executor, EagerModeIsSlower)
{
    ChainGraph cg1(10, 1_MiB);
    ChainGraph cg2(10, 1_MiB);
    ExecConfig graph_cfg = testConfig(256_MiB);
    ExecConfig eager_cfg = testConfig(256_MiB);
    eager_cfg.eagerMode = true;
    eager_cfg.eagerHostOverhead = ticksFromUs(50);

    Executor g(cg1.graph, graph_cfg, nullptr);
    g.setup();
    Executor e(cg2.graph, eager_cfg, nullptr);
    e.setup();
    EXPECT_LT(g.runIteration().duration(), e.runIteration().duration());
}

TEST(Executor, EagerModeUsesMoreMemory)
{
    ChainGraph cg1(10, 1_MiB);
    ChainGraph cg2(10, 1_MiB);
    ExecConfig graph_cfg = testConfig(256_MiB);
    ExecConfig eager_cfg = testConfig(256_MiB);
    eager_cfg.eagerMode = true;

    Executor g(cg1.graph, graph_cfg, nullptr);
    g.setup();
    Executor e(cg2.graph, eager_cfg, nullptr);
    e.setup();
    EXPECT_LT(g.runIteration().peakGpuBytes,
              e.runIteration().peakGpuBytes);
}

TEST(Executor, EagerRejectsGraphBoundPolicies)
{
    class GraphPolicy : public MemoryPolicy
    {
        std::string name() const override { return "graph-bound"; }
    };
    ChainGraph cg(3, 1_MiB);
    ExecConfig cfg = testConfig(64_MiB);
    cfg.eagerMode = true;
    GraphPolicy p;
    EXPECT_THROW(Executor(cg.graph, cfg, &p), FatalError);
}

TEST(Executor, AbortIterationResetsState)
{
    ChainGraph cg(32, 1_MiB);
    Executor ex(cg.graph, testConfig(8_MiB), nullptr);
    ex.setup();
    EXPECT_THROW(ex.runIteration(), OomError);
    ex.abortIteration();
    EXPECT_EQ(ex.memory().gpu().bytesInUse(),
              cg.graph.bytesOfKind(TensorKind::Weight));
    // A feasible re-run would now proceed (capacity is still too small,
    // but the state machine is clean — rerun throws the same way rather
    // than corrupting).
    EXPECT_THROW(ex.runIteration(), OomError);
}

TEST(Executor, TraceRecordsKernels)
{
    ChainGraph cg(4, 1_MiB);
    ExecConfig cfg = testConfig(64_MiB);
    cfg.obsLevel = obs::ObsLevel::Full;
    Executor ex(cg.graph, cfg, nullptr);
    ex.setup();
    ex.runIteration();
    std::size_t kernels = 0;
    ex.obs().tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.track == obs::kTrackCompute &&
            ev.kind == obs::EventKind::Kernel)
            ++kernels;
    });
    EXPECT_EQ(kernels, cg.graph.numOps());
}

TEST(Executor, TracingOffByDefault)
{
    ChainGraph cg(4, 1_MiB);
    Executor ex(cg.graph, testConfig(64_MiB), nullptr);
    ex.setup();
    ex.runIteration();
    EXPECT_EQ(ex.obs().tracer.size(), 0u);
    EXPECT_FALSE(ex.obs().metricsOn());
}

TEST(Executor, InplaceForwardingFiresInGraphMode)
{
    // Mark the chain's middle op in-place eligible; its input has exactly
    // one consumer in the forward direction... the chain ops save their
    // input for backward (2 consumers), so eligibility fails — verifying
    // the safety check. Then relax savedForBackward to allow it.
    ChainGraph cg(4, 1_MiB);
    cg.graph.mutableOp(2).inplaceEligible = true; // L2 (op 0 is source)
    Executor ex(cg.graph, testConfig(64_MiB), nullptr);
    ex.setup();
    auto stats = ex.runIteration();
    EXPECT_EQ(stats.inplaceForwards, 0); // input also read by backward
}

TEST(Executor, VictimsForContiguousFindsWindow)
{
    ChainGraph cg(8, 1_MiB);
    Executor ex(cg.graph, testConfig(64_MiB), nullptr);
    ex.setup();
    ex.runIteration();
    // Mid-iteration analysis is exercised by policy tests; after an
    // iteration all activations are dead, so a window needs no victims.
    auto victims = ex.victimsForContiguous(1_MiB);
    EXPECT_TRUE(victims.empty());
    EXPECT_TRUE(ex.canAllocateNow(1_MiB));
}

TEST(Session, RunsAndReportsThroughput)
{
    ChainGraph cg(4, 1_MiB);
    Session s(std::move(cg.graph), testConfig(64_MiB), makeNoOpPolicy());
    auto r = s.run(5);
    EXPECT_FALSE(r.oom);
    EXPECT_EQ(r.iterations.size(), 5u);
    EXPECT_GT(r.steadyThroughput(8), 0.0);
    EXPECT_GT(r.steadyIterationTicks(), 0u);
}

TEST(Session, ReportsOomGracefully)
{
    ChainGraph cg(32, 1_MiB);
    Session s(std::move(cg.graph), testConfig(8_MiB), makeNoOpPolicy());
    auto r = s.run(3);
    EXPECT_TRUE(r.oom);
    EXPECT_FALSE(r.oomMessage.empty());
}

TEST(Session, FindMaxBatchMonotone)
{
    // Batch scales the chain's tensor size; max batch must land just
    // below the capacity knee.
    auto builder = [](std::int64_t batch) {
        test::ChainGraph cg(4, static_cast<std::uint64_t>(batch) * 64_KiB);
        return std::move(cg.graph);
    };
    ExecConfig cfg = testConfig(32_MiB);
    auto mb = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, cfg,
                           2, 1, 1024);
    EXPECT_GT(mb, 8);
    EXPECT_LT(mb, 1024);
    // One more than max must fail.
    Session over(builder(mb + 1), cfg, makeNoOpPolicy());
    EXPECT_TRUE(over.run(2).oom);
}
