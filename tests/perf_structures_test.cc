/**
 * @file
 * Tests for the capuspeed hot-path structures: the work-stealing
 * ThreadPool, the 4-ary EventQueue against a reference model, the
 * incremental PolicyMaker engine against the full-rescan reference on
 * every zoo model, CostModel memoization transparency, and the indexed
 * AccessTracker queries against brute-force scans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/capuchin_policy.hh"
#include "core/policy_maker.hh"
#include "exec/cost_model.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "sim/event_queue.hh"
#include "sim/gpu_device.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

using namespace capu;

namespace
{

/** Deterministic xorshift64 for test workloads. */
struct XorShift
{
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    std::uint64_t
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    }
};

} // namespace

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SubmitPropagatesResults)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount)
{
    // The determinism contract: tasks write index-addressed slots, so
    // any worker count produces the same output vector.
    auto run = [](unsigned threads) {
        std::vector<std::uint64_t> out(200);
        ThreadPool pool(threads);
        pool.forEachIndex(out.size(), [&](std::size_t i) {
            XorShift r;
            r.x += i;
            out[i] = r.next() ^ (i << 32);
        });
        return out;
    };
    auto serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(500);
    ThreadPool pool(4);
    pool.forEachIndex(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ExceptionPropagatesFromForEachIndex)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    EXPECT_THROW(pool.forEachIndex(32,
                                   [&](std::size_t i) {
                                       if (i == 7)
                                           throw std::runtime_error("boom");
                                       done.fetch_add(1);
                                   }),
                 std::runtime_error);
    // The non-throwing indices all still ran (the pool drains before
    // rethrowing).
    EXPECT_EQ(done.load(), 31);
}

TEST(ThreadPool, ExceptionPropagatesThroughSubmitFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::logic_error("task failed"); });
    EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // Destructor must complete all 300, not drop the queued tail.
    }
    EXPECT_EQ(ran.load(), 300);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool; // default-constructed pool must come up and go down
    EXPECT_GE(pool.threadCount(), 1u);
}

// ---------------------------------------------------------------- EventQueue

namespace
{

/** Reference model: fire order is ascending (when, id). */
std::vector<std::uint64_t>
referenceFireOrder(const std::vector<std::pair<Tick, std::uint64_t>> &evts,
                   const std::vector<std::uint64_t> &cancelled)
{
    auto sorted = evts;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::uint64_t> order;
    for (const auto &[when, id] : sorted) {
        if (std::find(cancelled.begin(), cancelled.end(), id) ==
            cancelled.end())
            order.push_back(id);
    }
    return order;
}

} // namespace

TEST(EventQueue, MatchesReferenceModelOnRandomSchedule)
{
    XorShift rng;
    EventQueue q;
    std::vector<std::pair<Tick, std::uint64_t>> evts;
    std::vector<std::uint64_t> fired;
    for (int i = 0; i < 2000; ++i) {
        Tick when = rng.next() % 1000; // dense: many equal ticks
        auto id = q.schedule(
            when, [&fired, i](Tick) { fired.push_back(i); });
        EXPECT_EQ(id, static_cast<std::uint64_t>(i));
        evts.push_back({when, id});
    }
    // Cancel a deterministic subset before anything fires.
    std::vector<std::uint64_t> cancelled;
    for (std::uint64_t id = 3; id < 2000; id += 7) {
        EXPECT_TRUE(q.cancel(id));
        cancelled.push_back(id);
    }
    q.runAll();
    EXPECT_EQ(fired, referenceFireOrder(evts, cancelled));
}

TEST(EventQueue, RunUntilHonorsBoundAndInsertDuringRun)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&](Tick) {
        fired.push_back(1);
        // Scheduling from inside a callback must keep the order.
        q.schedule(15, [&](Tick) { fired.push_back(2); });
    });
    q.schedule(30, [&](Tick) { fired.push_back(3); });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 20u); // runUntil advances now() to the bound
    EXPECT_EQ(q.pending(), 1u);
    q.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelSemantics)
{
    EventQueue q;
    int hits = 0;
    auto id = q.schedule(5, [&](Tick) { ++hits; });
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.cancel(id + 100)); // never-issued id
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double-cancel
    EXPECT_TRUE(q.empty());
    q.runAll();
    EXPECT_EQ(hits, 0);
}

TEST(EventQueue, EqualTicksFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i)
        q.schedule(42, [&order, i](Tick) { order.push_back(i); });
    q.runAll();
    std::vector<int> want(50);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want);
}

// ----------------------------------------------------- PolicyMaker engines

namespace
{

void
expectPlansIdentical(const Plan &ref, const Plan &inc, const char *model)
{
    ASSERT_EQ(ref.items.size(), inc.items.size()) << model;
    EXPECT_EQ(ref.targetBytes, inc.targetBytes) << model;
    EXPECT_EQ(ref.plannedBytes, inc.plannedBytes) << model;
    EXPECT_EQ(ref.swapCount, inc.swapCount) << model;
    EXPECT_EQ(ref.recomputeCount, inc.recomputeCount) << model;
    for (std::size_t i = 0; i < ref.items.size(); ++i) {
        const PlannedEviction &a = ref.items[i];
        const PlannedEviction &b = inc.items[i];
        EXPECT_EQ(a.tensor, b.tensor) << model << " item " << i;
        EXPECT_EQ(a.mode, b.mode) << model << " item " << i;
        EXPECT_EQ(a.bytes, b.bytes) << model << " item " << i;
        EXPECT_EQ(a.evictAfterAccess, b.evictAfterAccess)
            << model << " item " << i;
        EXPECT_EQ(a.backAccess, b.backAccess) << model << " item " << i;
        EXPECT_EQ(a.evictTime, b.evictTime) << model << " item " << i;
        EXPECT_EQ(a.backTime, b.backTime) << model << " item " << i;
        EXPECT_EQ(a.swapTime, b.swapTime) << model << " item " << i;
        EXPECT_EQ(a.freeTime, b.freeTime) << model << " item " << i;
        EXPECT_EQ(a.desiredSwapInStart, b.desiredSwapInStart)
            << model << " item " << i;
        EXPECT_EQ(a.triggerTensor, b.triggerTensor)
            << model << " item " << i;
        EXPECT_EQ(a.triggerAccess, b.triggerAccess)
            << model << " item " << i;
        EXPECT_EQ(a.recomputeTime, b.recomputeTime)
            << model << " item " << i;
        EXPECT_EQ(a.estimatedOverhead, b.estimatedOverhead)
            << model << " item " << i;
    }
}

/**
 * Run one measured-then-guided session at an oversubscribed batch, then
 * rebuild the plan standalone with both engines and demand byte-for-byte
 * identical output (the acceptance bar for the incremental engine).
 */
void
checkIncrementalMatchesReference(ModelKind kind, std::int64_t batch)
{
    setLogEnabled(false);
    CapuchinOptions copts;
    Session session(buildModel(kind, batch), ExecConfig{},
                    makeCapuchinPolicy(copts));
    auto r = session.run(2);
    ASSERT_FALSE(r.oom) << modelName(kind) << "@" << batch;
    auto *capu = dynamic_cast<CapuchinPolicy *>(session.policy());
    ASSERT_NE(capu, nullptr);
    ASSERT_TRUE(capu->planBuilt())
        << modelName(kind) << "@" << batch
        << ": batch not oversubscribed, test is vacuous";

    Executor &ex = session.executor();
    auto target = static_cast<std::uint64_t>(
        static_cast<double>(capu->measuredEvictedBytes()) *
        copts.savingMargin);
    auto bytes_fn = [&](TensorId id) { return ex.tensorBytes(id); };
    auto swap_fn = [&](std::uint64_t b) { return ex.swapTime(b); };

    PolicyMakerOptions pmo;
    pmo.incremental = false;
    Plan ref = PolicyMaker(session.graph(), capu->tracker(), pmo)
                   .build(target, bytes_fn, swap_fn, ex.gpuCapacity());
    pmo.incremental = true;
    Plan inc = PolicyMaker(session.graph(), capu->tracker(), pmo)
                   .build(target, bytes_fn, swap_fn, ex.gpuCapacity());

    EXPECT_GT(inc.items.size(), 0u)
        << modelName(kind) << ": empty plan makes this test vacuous";
    expectPlansIdentical(ref, inc, modelName(kind));
    // (The *live* policy's plan is deliberately not compared: iterative
    // refinement grows its saving target beyond measuredEvicted ×
    // savingMargin, and runtime feedback shifts trigger timing.)
}

} // namespace

TEST(IncrementalPlan, Vgg16) { checkIncrementalMatchesReference(ModelKind::Vgg16, 260); }
TEST(IncrementalPlan, ResNet50) { checkIncrementalMatchesReference(ModelKind::ResNet50, 240); }
TEST(IncrementalPlan, ResNet152) { checkIncrementalMatchesReference(ModelKind::ResNet152, 110); }
TEST(IncrementalPlan, InceptionV3) { checkIncrementalMatchesReference(ModelKind::InceptionV3, 210); }
TEST(IncrementalPlan, InceptionV4) { checkIncrementalMatchesReference(ModelKind::InceptionV4, 120); }
TEST(IncrementalPlan, DenseNet121) { checkIncrementalMatchesReference(ModelKind::DenseNet121, 200); }
TEST(IncrementalPlan, BertBase) { checkIncrementalMatchesReference(ModelKind::BertBase, 110); }

// ------------------------------------------------------- CostModel memoizing

TEST(CostModelMemo, MemoizedEqualsUnmemoizedOverZooOps)
{
    CostModel memo(GpuDeviceSpec::p100());
    CostModel plain(GpuDeviceSpec::p100());
    plain.setMemoize(false);
    for (ModelKind kind : {ModelKind::Vgg16, ModelKind::ResNet50,
                           ModelKind::BertBase}) {
        Graph g = buildModel(kind, 32);
        for (const Operation &op : g.ops()) {
            EXPECT_EQ(memo.opDuration(op, true), plain.opDuration(op, true))
                << modelName(kind) << " op " << op.name;
            EXPECT_EQ(memo.opDuration(op, false),
                      plain.opDuration(op, false))
                << modelName(kind) << " op " << op.name;
        }
    }
}

TEST(CostModelMemo, RepeatedCallsAreStable)
{
    CostModel cm(GpuDeviceSpec::p100());
    Graph g = buildModel(ModelKind::ResNet50, 64);
    for (const Operation &op : g.ops()) {
        Tick first = cm.opDuration(op);
        EXPECT_EQ(cm.opDuration(op), first); // cache hit, same answer
    }
}

// -------------------------------------------------- indexed tracker queries

namespace
{

/** Brute-force oracle for AccessTracker::latestAtOrBefore. */
const AccessRecord *
bruteLatest(const std::vector<AccessRecord> &seq, Tick after, Tick before,
            Tick at_or_before, TensorId exclude)
{
    const AccessRecord *best = nullptr;
    for (const auto &rec : seq) {
        if (rec.tensor == exclude)
            continue;
        if (rec.time <= after || rec.time >= before ||
            rec.time > at_or_before)
            continue;
        if (best == nullptr || rec.time > best->time)
            best = &rec;
    }
    return best;
}

/** Brute-force oracle for AccessTracker::earliestWithin. */
const AccessRecord *
bruteEarliest(const std::vector<AccessRecord> &seq, Tick after, Tick before,
              TensorId exclude)
{
    const AccessRecord *best = nullptr;
    for (const auto &rec : seq) {
        if (rec.tensor == exclude)
            continue;
        if (rec.time <= after || rec.time >= before)
            continue;
        if (best == nullptr || rec.time < best->time)
            best = &rec;
    }
    return best;
}

AccessTracker
syntheticTracker(std::vector<AccessRecord> &seq_out)
{
    // Corrected timestamps can run locally backwards and repeat; build a
    // sequence that exercises both plus interleaved tensors.
    AccessTracker t;
    XorShift rng;
    Tick now = 100;
    for (int i = 0; i < 400; ++i) {
        AccessRecord rec;
        rec.tensor = static_cast<TensorId>(rng.next() % 12);
        rec.accessIndex = i;
        // Mostly forward, sometimes backward, frequent exact repeats.
        std::uint64_t step = rng.next() % 8;
        if (step == 0 && now > 20)
            now -= rng.next() % 15;
        else if (step > 2)
            now += rng.next() % 10;
        rec.time = now;
        t.record(rec);
        seq_out.push_back(rec);
    }
    return t;
}

} // namespace

TEST(TrackerIndex, LatestAtOrBeforeMatchesBruteForce)
{
    std::vector<AccessRecord> seq;
    AccessTracker t = syntheticTracker(seq);
    XorShift rng;
    for (int trial = 0; trial < 500; ++trial) {
        Tick after = rng.next() % 300;
        Tick before = after + rng.next() % 300;
        Tick cap = after + rng.next() % 320;
        TensorId exclude = static_cast<TensorId>(rng.next() % 14);
        const AccessRecord *want =
            bruteLatest(seq, after, before, cap, exclude);
        const AccessRecord *got =
            t.latestAtOrBefore(after, before, cap, exclude);
        if (want == nullptr) {
            EXPECT_EQ(got, nullptr) << "trial " << trial;
            continue;
        }
        ASSERT_NE(got, nullptr) << "trial " << trial;
        // Same time is required; among equal times the indexed query must
        // return the earliest sequence entry, as the old scan did.
        EXPECT_EQ(got->time, want->time) << "trial " << trial;
        EXPECT_EQ(got->accessIndex, want->accessIndex) << "trial " << trial;
        EXPECT_EQ(got->tensor, want->tensor) << "trial " << trial;
    }
}

TEST(TrackerIndex, EarliestWithinMatchesBruteForce)
{
    std::vector<AccessRecord> seq;
    AccessTracker t = syntheticTracker(seq);
    XorShift rng;
    for (int trial = 0; trial < 500; ++trial) {
        Tick after = rng.next() % 300;
        Tick before = after + rng.next() % 300;
        TensorId exclude = static_cast<TensorId>(rng.next() % 14);
        const AccessRecord *want =
            bruteEarliest(seq, after, before, exclude);
        const AccessRecord *got = t.earliestWithin(after, before, exclude);
        if (want == nullptr) {
            EXPECT_EQ(got, nullptr) << "trial " << trial;
            continue;
        }
        ASSERT_NE(got, nullptr) << "trial " << trial;
        EXPECT_EQ(got->time, want->time) << "trial " << trial;
        EXPECT_EQ(got->accessIndex, want->accessIndex) << "trial " << trial;
        EXPECT_EQ(got->tensor, want->tensor) << "trial " << trial;
    }
}

TEST(TrackerIndex, IndexInvalidatedByNewRecords)
{
    AccessTracker t;
    AccessRecord rec;
    rec.tensor = 1;
    rec.time = 50;
    t.record(rec);
    EXPECT_NE(t.earliestWithin(0, 100, kInvalidTensor), nullptr);
    rec.tensor = 2;
    rec.time = 10; // earlier than everything indexed so far
    t.record(rec);
    const AccessRecord *got = t.earliestWithin(0, 100, kInvalidTensor);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->tensor, 2u);
    t.reset();
    EXPECT_EQ(t.earliestWithin(0, 100, kInvalidTensor), nullptr);
}

// ----------------------------------------------- sim determinism under pool

TEST(PoolDeterminism, FaultFreeTimelinesBitIdenticalAcrossThreads)
{
    // The tentpole's contract: fanning identical sims across the pool
    // changes nothing about any sim's timeline.
    setLogEnabled(false);
    auto run_one = [] {
        Session session(buildModel(ModelKind::ResNet50, 48), ExecConfig{},
                        makeCapuchinPolicy());
        auto r = session.run(2);
        std::vector<Tick> timeline;
        for (const auto &it : r.iterations) {
            timeline.push_back(it.begin);
            timeline.push_back(it.end);
        }
        return timeline;
    };
    auto serial = run_one();
    std::vector<std::vector<Tick>> pooled(4);
    ThreadPool pool(4);
    pool.forEachIndex(pooled.size(),
                      [&](std::size_t i) { pooled[i] = run_one(); });
    for (const auto &tl : pooled)
        EXPECT_EQ(tl, serial);
}
