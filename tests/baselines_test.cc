/**
 * @file
 * Tests for the baseline policies: vDNN (layer-wise offload) and OpenAI
 * gradient-checkpointing (memory and speed modes).
 */

#include <gtest/gtest.h>

#include "exec/executor.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"
#include "test_graphs.hh"

using namespace capu;

namespace
{

ExecConfig
p100Config()
{
    return ExecConfig{};
}

} // namespace

// --- vDNN ---

TEST(Vdnn, SelectsConvInputsInConvMode)
{
    Graph g = buildResNet(8, 50);
    VdnnPolicy policy(VdnnPolicy::Mode::ConvOnly);
    ExecConfig cfg = p100Config();
    policy.attach(g, g.topoOrder(), cfg);
    EXPECT_GT(policy.targets().size(), 10u);
    for (TensorId t : policy.targets()) {
        EXPECT_EQ(g.tensor(t).kind, TensorKind::FeatureMap);
        bool feeds_conv = false;
        for (OpId c : g.consumers(t)) {
            if (g.op(c).category == OpCategory::Conv &&
                g.op(c).phase == Phase::Forward)
                feeds_conv = true;
        }
        EXPECT_TRUE(feeds_conv) << g.tensor(t).name;
    }
}

TEST(Vdnn, AllModeSelectsMoreThanConvMode)
{
    Graph g = buildInceptionV3(8);
    VdnnPolicy conv_only(VdnnPolicy::Mode::ConvOnly);
    VdnnPolicy all(VdnnPolicy::Mode::All);
    ExecConfig cfg = p100Config();
    conv_only.attach(g, g.topoOrder(), cfg);
    all.attach(g, g.topoOrder(), cfg);
    EXPECT_GT(all.targets().size(), conv_only.targets().size());
}

TEST(Vdnn, TargetsNeedBackwardUse)
{
    Graph g = buildResNet(8, 50);
    VdnnPolicy policy(VdnnPolicy::Mode::All);
    ExecConfig cfg = p100Config();
    policy.attach(g, g.topoOrder(), cfg);
    for (TensorId t : policy.targets()) {
        bool backward_use = false;
        for (OpId c : g.consumers(t)) {
            if (g.op(c).phase != Phase::Forward)
                backward_use = true;
        }
        EXPECT_TRUE(backward_use) << g.tensor(t).name;
    }
}

TEST(Vdnn, OffloadsEvenWithoutPressure)
{
    // Static design: offloading happens regardless of memory headroom.
    ExecConfig cfg = p100Config();
    Session s(buildResNet(16, 50), cfg, makeVdnnPolicy());
    auto r = s.run(2);
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.last().swapOutCount, 10);
    EXPECT_GT(r.last().swapInCount, 10);
}

TEST(Vdnn, CoupledSyncSlowsTraining)
{
    // The Figure-1 pathology: swap-out synchronization inflates iteration
    // time relative to the no-policy baseline at the same (fitting) batch.
    ExecConfig cfg = p100Config();
    Session base(buildResNet(32, 50), cfg, makeNoOpPolicy());
    Session vdnn(buildResNet(32, 50), cfg, makeVdnnPolicy());
    auto rb = base.run(3);
    auto rv = vdnn.run(3);
    ASSERT_FALSE(rb.oom);
    ASSERT_FALSE(rv.oom);
    EXPECT_GT(rv.steadyIterationTicks(1),
              static_cast<Tick>(rb.steadyIterationTicks(1) * 1.3));
}

TEST(Vdnn, ReducesPeakMemory)
{
    ExecConfig cfg = p100Config();
    Session base(buildResNet(32, 50), cfg, makeNoOpPolicy());
    Session vdnn(buildResNet(32, 50), cfg, makeVdnnPolicy());
    auto rb = base.run(2);
    auto rv = vdnn.run(2);
    EXPECT_LT(rv.last().peakGpuBytes, rb.last().peakGpuBytes / 2);
}

// --- Checkpointing ---

TEST(Checkpointing, MemoryModeDropsMostActivations)
{
    Graph g = buildResNet(32, 50);
    CheckpointingPolicy policy(CheckpointingPolicy::Mode::Memory);
    ExecConfig cfg = p100Config();
    policy.attach(g, g.topoOrder(), cfg);
    std::uint64_t drop_bytes = 0;
    for (TensorId t : policy.dropSet())
        drop_bytes += g.tensor(t).bytes;
    // Most of the feature-map volume that actually persists to the
    // backward pass is dropped. (Tensors without backward consumers die
    // by refcount in the forward pass and are not drop targets.)
    std::uint64_t persistent = 0;
    for (const auto &t : g.tensors()) {
        if (t.kind != TensorKind::FeatureMap)
            continue;
        for (OpId c : g.consumers(t.id)) {
            if (g.op(c).phase != Phase::Forward) {
                persistent += t.bytes;
                break;
            }
        }
    }
    EXPECT_GT(drop_bytes, persistent * 2 / 3);
}

TEST(Checkpointing, SpeedModeKeepsConvOutputs)
{
    Graph g = buildResNet(8, 50);
    CheckpointingPolicy policy(CheckpointingPolicy::Mode::Speed);
    ExecConfig cfg = p100Config();
    policy.attach(g, g.topoOrder(), cfg);
    for (TensorId t : policy.dropSet()) {
        OpCategory c = g.op(g.tensor(t).producer).category;
        EXPECT_NE(c, OpCategory::Conv) << g.tensor(t).name;
        EXPECT_NE(c, OpCategory::MatMul) << g.tensor(t).name;
    }
}

TEST(Checkpointing, NeverDropsDropoutMasks)
{
    Graph g = buildVgg16(8);
    CheckpointingPolicy policy(CheckpointingPolicy::Mode::Memory);
    ExecConfig cfg = p100Config();
    policy.attach(g, g.topoOrder(), cfg);
    for (TensorId t : policy.dropSet())
        EXPECT_EQ(g.tensor(t).name.find(":mask"), std::string::npos);
}

TEST(Checkpointing, MemoryModeReducesPeakMemory)
{
    ExecConfig cfg = p100Config();
    Session base(buildResNet(32, 50), cfg, makeNoOpPolicy());
    Session ckpt(buildResNet(32, 50), cfg,
                 makeCheckpointingPolicy(CheckpointingPolicy::Mode::Memory));
    auto rb = base.run(2);
    auto rc = ckpt.run(2);
    ASSERT_FALSE(rc.oom);
    EXPECT_LT(rc.last().peakGpuBytes, rb.last().peakGpuBytes);
    EXPECT_GT(rc.last().recomputeOps, 0);
}

TEST(Checkpointing, MemoryModeDropsMoreThanSpeedMode)
{
    // Under light pressure collective recomputation legitimately retains
    // replayed tensors, so end-to-end peaks converge; the policy property
    // is the drop-set coverage (and the max-batch test below shows the
    // end-to-end consequence).
    Graph g = buildResNet(32, 50);
    CheckpointingPolicy mem(CheckpointingPolicy::Mode::Memory);
    CheckpointingPolicy spd(CheckpointingPolicy::Mode::Speed);
    ExecConfig cfg = p100Config();
    mem.attach(g, g.topoOrder(), cfg);
    spd.attach(g, g.topoOrder(), cfg);
    auto bytes_of = [&](const CheckpointingPolicy &p) {
        std::uint64_t total = 0;
        for (TensorId t : p.dropSet())
            total += g.tensor(t).bytes;
        return total;
    };
    EXPECT_GT(bytes_of(mem), bytes_of(spd));
}

TEST(Checkpointing, RecomputationCostsTime)
{
    ExecConfig cfg = p100Config();
    Session base(buildResNet(32, 50), cfg, makeNoOpPolicy());
    Session ckpt(buildResNet(32, 50), cfg,
                 makeCheckpointingPolicy(CheckpointingPolicy::Mode::Memory));
    auto rb = base.run(3);
    auto rc = ckpt.run(3);
    EXPECT_GT(rc.steadyIterationTicks(1), rb.steadyIterationTicks(1));
    // ... but the overhead is bounded (the sqrt(n) strategy's promise).
    EXPECT_LT(rc.steadyIterationTicks(1),
              static_cast<Tick>(rb.steadyIterationTicks(1) * 1.6));
}

TEST(Checkpointing, ExtendsMaxBatchOverBaseline)
{
    ExecConfig cfg = p100Config();
    auto builder = [](std::int64_t b) { return buildResNet(b, 50); };
    auto base = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, cfg,
                             2, 1, 2048);
    auto ckpt = findMaxBatch(
        builder,
        [] {
            return makeCheckpointingPolicy(
                CheckpointingPolicy::Mode::Memory);
        },
        cfg, 2, 1, 2048);
    EXPECT_GT(ckpt, base * 2);
}

TEST(Policies, NoOpHasNoEffect)
{
    ExecConfig cfg = p100Config();
    Session none(buildResNet(16, 50), cfg, nullptr);
    Session noop(buildResNet(16, 50), cfg, makeNoOpPolicy());
    auto rn = none.run(2);
    auto ro = noop.run(2);
    EXPECT_EQ(rn.last().duration(), ro.last().duration());
    EXPECT_EQ(rn.last().peakGpuBytes, ro.last().peakGpuBytes);
}
