/**
 * @file
 * Integration tests: every model x every policy at an oversubscribed batch
 * on the simulated P100, with fingerprint verification active. These are
 * the end-to-end guarantees the benchmark results rest on.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/zoo.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/noop_policy.hh"
#include "policy/vdnn_policy.hh"

using namespace capu;

namespace
{

enum class Pol
{
    NoOp,
    Vdnn,
    OpenAiM,
    OpenAiS,
    Capuchin,
};

const char *
polName(Pol p)
{
    switch (p) {
      case Pol::NoOp: return "TFori";
      case Pol::Vdnn: return "vDNN";
      case Pol::OpenAiM: return "OpenAIM";
      case Pol::OpenAiS: return "OpenAIS";
      case Pol::Capuchin: return "Capuchin";
    }
    return "?";
}

std::unique_ptr<MemoryPolicy>
makePolicy(Pol p)
{
    switch (p) {
      case Pol::NoOp: return makeNoOpPolicy();
      case Pol::Vdnn: return makeVdnnPolicy();
      case Pol::OpenAiM:
        return makeCheckpointingPolicy(CheckpointingPolicy::Mode::Memory);
      case Pol::OpenAiS:
        return makeCheckpointingPolicy(CheckpointingPolicy::Mode::Speed);
      case Pol::Capuchin: return makeCapuchinPolicy();
    }
    return nullptr;
}

/** A batch ~25% above each model's unmanaged maximum (must OOM on TF-ori,
 *  must train under every memory-managing policy). */
std::int64_t
oversubscribedBatch(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Vgg16: return 260;
      case ModelKind::ResNet50: return 240;
      case ModelKind::ResNet152: return 110;
      case ModelKind::InceptionV3: return 210;
      case ModelKind::InceptionV4: return 120;
      case ModelKind::DenseNet121: return 200;
      case ModelKind::BertBase: return 110;
    }
    return 0;
}

using Combo = std::tuple<ModelKind, Pol>;

} // namespace

class PolicyModelTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(PolicyModelTest, TrainsOversubscribedWithIntegrity)
{
    auto [kind, pol] = GetParam();
    std::int64_t batch = oversubscribedBatch(kind);
    ExecConfig cfg;
    cfg.checkFingerprints = true; // panic on any stale/corrupt tensor

    Graph g = buildModel(kind, batch);
    Session s(std::move(g), cfg, makePolicy(pol));
    auto r = s.run(4);

    if (pol == Pol::NoOp) {
        EXPECT_TRUE(r.oom) << "batch should exceed the unmanaged maximum";
        return;
    }
    ASSERT_FALSE(r.oom) << r.oomMessage;
    ASSERT_EQ(r.iterations.size(), 4u);

    const auto &it = r.iterations.back();
    // Some memory mechanism was exercised.
    EXPECT_GT(it.swapOutBytes + it.droppedBytes + it.recomputeBusy, 0u);
    // Peak stayed within the card.
    EXPECT_LE(it.peakGpuBytes, cfg.device.memCapacity);
    // Training made progress at a sane rate.
    EXPECT_GT(it.throughput(batch), 1.0);

    // The pool must be clean after training: only the weights remain
    // (bytesInUse includes the allocator's size-class rounding, so bound
    // it rather than demanding equality).
    s.executor().memory().drainAll();
    std::uint64_t weights = s.graph().bytesOfKind(TensorKind::Weight);
    EXPECT_GE(s.executor().memory().gpu().bytesInUse(), weights);
    EXPECT_LE(s.executor().memory().gpu().bytesInUse(),
              weights + weights / 8 + 1_MiB);
    for (TensorId t = 0; t < s.graph().numTensors(); ++t) {
        if (s.graph().tensor(t).kind == TensorKind::Weight)
            continue;
        EXPECT_FALSE(s.executor().tensorState(t).gpuHandle.has_value())
            << s.graph().tensor(t).name;
    }
    EXPECT_EQ(s.executor().memory().host().bytesInUse(), 0u);
    s.executor().memory().gpu().checkInvariants();
}

namespace
{

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (ModelKind kind : graphModeModels()) {
        for (Pol pol : {Pol::NoOp, Pol::Vdnn, Pol::OpenAiM, Pol::OpenAiS,
                        Pol::Capuchin}) {
            if (kind == ModelKind::BertBase && pol == Pol::Vdnn)
                continue; // vDNN is CNN-only (paper: "not available")
            combos.emplace_back(kind, pol);
        }
    }
    // Eager-mode models run under the graph-agnostic policies only.
    combos.emplace_back(ModelKind::DenseNet121, Pol::NoOp);
    combos.emplace_back(ModelKind::DenseNet121, Pol::Capuchin);
    return combos;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllPolicies, PolicyModelTest, ::testing::ValuesIn(allCombos()),
    [](const auto &info) {
        std::string n = std::string(modelName(std::get<0>(info.param))) +
                        "_" + polName(std::get<1>(info.param));
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// --- eager-mode integration ---

class EagerIntegrationTest : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(EagerIntegrationTest, CapuchinTrainsOversubscribedEagerly)
{
    ModelKind kind = GetParam();
    std::int64_t batch = oversubscribedBatch(kind);
    ExecConfig cfg;
    cfg.eagerMode = true;

    // TF-ori must fail at this batch eagerly (eager needs more memory).
    {
        Session s(buildModel(kind, batch), cfg, makeNoOpPolicy());
        EXPECT_TRUE(s.run(2).oom);
    }
    // Capuchin must train it.
    {
        Session s(buildModel(kind, batch), cfg, makeCapuchinPolicy());
        auto r = s.run(4);
        EXPECT_FALSE(r.oom) << r.oomMessage;
    }
}

INSTANTIATE_TEST_SUITE_P(EagerModels, EagerIntegrationTest,
                         ::testing::ValuesIn(eagerModeModels()),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

// --- cross-iteration stability ---

TEST(Integration, CapuchinStableOverManyIterations)
{
    ExecConfig cfg;
    Session s(buildResNet(400, 50), cfg, makeCapuchinPolicy());
    auto r = s.run(30);
    ASSERT_FALSE(r.oom);
    // After convergence, iteration times are flat (within 2%).
    Tick a = r.iterations[27].duration();
    Tick b = r.iterations[29].duration();
    double drift =
        std::abs(static_cast<double>(a) - static_cast<double>(b)) /
        static_cast<double>(a);
    EXPECT_LT(drift, 0.02);
}

TEST(Integration, V100FitsMoreThanP100)
{
    auto builder = [](std::int64_t b) { return buildResNet(b, 50); };
    ExecConfig p100;
    ExecConfig v100;
    v100.device = GpuDeviceSpec::v100();
    auto mp = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, p100,
                           2, 1, 2048);
    auto mv = findMaxBatch(builder, [] { return makeNoOpPolicy(); }, v100,
                           2, 1, 2048);
    EXPECT_GT(mv, static_cast<std::int64_t>(mp * 1.8));
}
