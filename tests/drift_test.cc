/**
 * @file
 * capudrift tests: dynamic-workload generators (determinism, validation,
 * schedule coverage), per-shape-class plan caching (one measured iteration
 * per class, recurring classes reuse their plan), per-class steady-state
 * replay bit-identity under class interleaving, audit-mismatch fallback on
 * a behaviour flip, zero-OOM runs of the dynamic zoo under Capuchin,
 * capulint/capuverify cleanliness on dynamic traces, and max-batch search
 * over a dynamic workload.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/happens_before.hh"
#include "analysis/lint_hooks.hh"
#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "models/workload.hh"
#include "models/zoo.hh"
#include "obs/obs.hh"
#include "policy/checkpointing_policy.hh"
#include "policy/vdnn_policy.hh"
#include "support/logging.hh"

using namespace capu;

namespace
{

ExecConfig
driftConfig(const DynamicWorkload &dw, bool replay = true,
            obs::ObsLevel level = obs::ObsLevel::Metrics)
{
    ExecConfig cfg;
    cfg.obsLevel = level;
    cfg.replay.enabled = replay;
    cfg.variantSchedule = dw.schedule;
    return cfg;
}

std::uint64_t
counterValue(Session &s, const std::string &name)
{
    const auto &counters = s.executor().obs().metrics.counters();
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
expectIterationsEqual(const SessionResult &a, const SessionResult &b)
{
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        const IterationStats &x = a.iterations[i];
        const IterationStats &y = b.iterations[i];
        EXPECT_EQ(x.begin, y.begin) << "iteration " << i;
        EXPECT_EQ(x.end, y.end) << "iteration " << i;
        EXPECT_EQ(x.kernelBusy, y.kernelBusy) << "iteration " << i;
        EXPECT_EQ(x.recomputeBusy, y.recomputeBusy) << "iteration " << i;
        EXPECT_EQ(x.inputStall, y.inputStall) << "iteration " << i;
        EXPECT_EQ(x.allocStall, y.allocStall) << "iteration " << i;
        EXPECT_EQ(x.swapOutBytes, y.swapOutBytes) << "iteration " << i;
        EXPECT_EQ(x.swapInBytes, y.swapInBytes) << "iteration " << i;
        EXPECT_EQ(x.peakGpuBytes, y.peakGpuBytes) << "iteration " << i;
        EXPECT_EQ(x.oomEvictions, y.oomEvictions) << "iteration " << i;
    }
}

} // namespace

// --- workload generators ----------------------------------------------

TEST(DriftWorkload, ParseNamesRoundTrip)
{
    WorkloadKind kind;
    for (const char *name : {"static", "varlen", "batch-ramp", "branchy"}) {
        ASSERT_TRUE(workloadFromString(name, kind)) << name;
        EXPECT_STREQ(workloadName(kind), name);
    }
    EXPECT_FALSE(workloadFromString("nope", kind));
    EXPECT_EQ(dynamicWorkloads().size(), 3u);
}

TEST(DriftWorkload, StaticKindIsPlainGraph)
{
    DynamicWorkload dw = buildWorkload(WorkloadKind::Static, "resnet50",
                                       32, 7);
    EXPECT_FALSE(dw.graph.dynamic());
    EXPECT_TRUE(dw.schedule.empty());
}

TEST(DriftWorkload, DynamicKindsBuildValidateAndCover)
{
    struct Case
    {
        WorkloadKind kind;
        const char *model;
    };
    const Case cases[] = {
        {WorkloadKind::Varlen, "bert"},
        {WorkloadKind::Varlen, "lstm"},
        {WorkloadKind::BatchRamp, "resnet50"},
        {WorkloadKind::Branchy, "resnet50"},
    };
    for (const Case &c : cases) {
        DynamicWorkload dw = buildWorkload(c.kind, c.model, 16, 1);
        SCOPED_TRACE(std::string(workloadName(c.kind)) + "/" + c.model);
        ASSERT_TRUE(dw.graph.dynamic());
        ASSERT_GE(dw.graph.variants().size(), 3u);
        ASSERT_FALSE(dw.schedule.empty());
        // Every schedule slot addresses a real variant and every variant
        // recurs (so per-class plan caching and replay have work to do).
        std::vector<int> hits(dw.graph.variants().size(), 0);
        for (std::size_t slot : dw.schedule) {
            ASSERT_LT(slot, dw.graph.variants().size());
            ++hits[slot];
        }
        for (std::size_t v = 0; v < hits.size(); ++v)
            EXPECT_GE(hits[v], 2) << "variant " << v << " barely recurs";
    }
}

TEST(DriftWorkload, SchedulesDeterministicPerSeed)
{
    for (WorkloadKind kind : dynamicWorkloads()) {
        DynamicWorkload a = buildWorkload(kind, "lstm", 16, 3);
        DynamicWorkload b = buildWorkload(kind, "lstm", 16, 3);
        EXPECT_EQ(a.schedule, b.schedule) << workloadName(kind);
    }
    // Shuffled kinds respond to the seed (the ramp only jitters its
    // boundaries, so it may coincide across nearby seeds).
    DynamicWorkload s0 = buildWorkload(WorkloadKind::Branchy, "", 16, 0);
    DynamicWorkload s1 = buildWorkload(WorkloadKind::Branchy, "", 16, 99);
    EXPECT_NE(s0.schedule, s1.schedule);
}

// --- executor shape-class plumbing ------------------------------------

TEST(DriftExecutor, StaticGraphRejectsNonzeroVariant)
{
    Session s(buildModel(ModelKind::ResNet50, 16), ExecConfig{},
              makeCapuchinPolicy());
    ASSERT_FALSE(s.run(1).oom);
    s.executor().setActiveVariant(0); // no-op on static graphs
    EXPECT_THROW(s.executor().setActiveVariant(1), PanicError);
}

TEST(DriftExecutor, VariantScheduleDrivesShapeClass)
{
    DynamicWorkload dw = buildVarlenLstm(8, 5);
    ExecConfig cfg = driftConfig(dw, /*replay=*/false);
    Session s(std::move(dw.graph), cfg, makeCapuchinPolicy());
    SessionResult r = s.run(4);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_EQ(s.executor().activeVariant(),
              cfg.variantSchedule[3 % cfg.variantSchedule.size()]);
}

// --- per-shape-class plan cache ---------------------------------------

TEST(DriftPlanCache, OneMeasuredIterationPerClass)
{
    DynamicWorkload dw = buildVarlenLstm(8, 2);
    auto policy = makeCapuchinPolicy();
    auto *capu = static_cast<CapuchinPolicy *>(policy.get());
    Session s(std::move(dw.graph), driftConfig(dw, /*replay=*/false),
              std::move(policy));
    SessionResult r = s.run(16);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    // Three shape classes: each measures exactly once and then reuses its
    // cached plan; a recurring class never re-enters measured execution.
    EXPECT_EQ(capu->shapeClassCount(), 3u);
    EXPECT_EQ(capu->remeasures(), 0);
    EXPECT_EQ(counterValue(s, "capu.drift.novel_class"), 3u);
    EXPECT_EQ(counterValue(s, "capu.drift.measured_iters"), 3u);
}

TEST(DriftPlanCache, StaticRunEmitsNoDriftMetrics)
{
    ExecConfig cfg;
    cfg.obsLevel = obs::ObsLevel::Metrics;
    Session s(buildModel(ModelKind::ResNet50, 64), cfg,
              makeCapuchinPolicy());
    ASSERT_FALSE(s.run(4).oom);
    EXPECT_EQ(counterValue(s, "capu.drift.novel_class"), 0u);
    EXPECT_EQ(counterValue(s, "capu.drift.measured_iters"), 0u);
}

// --- per-class steady-state replay ------------------------------------

TEST(DriftReplay, PerClassBitIdentityUnderInterleaving)
{
    constexpr int kIters = 18;
    for (WorkloadKind kind : dynamicWorkloads()) {
        SCOPED_TRACE(workloadName(kind));
        DynamicWorkload dw = buildWorkload(kind, "lstm", 8, 4);
        Graph g2 = dw.graph; // copy before the move below
        Session on(std::move(dw.graph), driftConfig(dw, true),
                   makeCapuchinPolicy());
        SessionResult ron = on.run(kIters);
        ASSERT_FALSE(ron.oom) << ron.oomMessage;
        Session off(std::move(g2), driftConfig(dw, false),
                    makeCapuchinPolicy());
        SessionResult roff = off.run(kIters);
        ASSERT_FALSE(roff.oom) << roff.oomMessage;
        // Each recurring class converges to its own fixed point, so the
        // alternating stream still synthesizes — bit-identically.
        EXPECT_GT(ron.replay.replayed, 0);
        EXPECT_EQ(ron.replay.auditMismatches, 0);
        EXPECT_EQ(roff.replay.replayed, 0);
        expectIterationsEqual(ron, roff);
    }
}

namespace
{

/**
 * Claims replay stability but changes behaviour from iteration `flipAt`
 * on (async-evicts the first sizable feature map): synthesized
 * iterations sail past the flip, so only an audit can expose it.
 */
class FlippingPolicy : public MemoryPolicy
{
  public:
    explicit FlippingPolicy(int flip_at) : flipAt_(flip_at) {}

    std::string name() const override { return "DriftFlipping"; }
    bool graphAgnostic() const override { return true; }

    void
    afterOp(ExecContext &ctx, OpId op, Tick op_end) override
    {
        (void)op;
        (void)op_end;
        if (ctx.iteration() < flipAt_ || evictedThisIter_)
            return;
        const Graph &g = ctx.graph();
        for (std::size_t t = 0; t < g.numTensors(); ++t) {
            auto id = static_cast<TensorId>(t);
            if (g.tensor(id).kind != TensorKind::FeatureMap)
                continue;
            if (ctx.status(id) != TensorStatus::In || ctx.isPinned(id))
                continue;
            if (ctx.tensorBytes(id) < (1ull << 20))
                continue;
            ctx.evictSwapAsync(id);
            evictedThisIter_ = true;
            return;
        }
    }

    void
    beginIteration(ExecContext &ctx) override
    {
        (void)ctx;
        evictedThisIter_ = false;
    }

  private:
    int flipAt_;
    bool evictedThisIter_ = false;
};

} // namespace

TEST(DriftReplay, AuditMismatchOnMutatedClassFallsBack)
{
    constexpr int kIters = 30;
    constexpr int kFlip = 13;
    DynamicWorkload dw = buildBranchy(64, 1);
    Graph g2 = dw.graph;
    ExecConfig cfg = driftConfig(dw, true);
    cfg.replay.auditInterval = 2;
    cfg.replay.maxAuditMismatches = 1;
    Session s(std::move(dw.graph), cfg,
              std::make_unique<FlippingPolicy>(kFlip));
    SessionResult r = s.run(kIters);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_GT(r.replay.replayed, 0);
    EXPECT_GE(r.replay.audits, 1);
    EXPECT_EQ(r.replay.auditMismatches, 1);

    // With a budget of one mismatch the engine disarmed for every class;
    // late iterations must agree with a never-replayed run.
    Session off(std::move(g2), driftConfig(dw, false),
                std::make_unique<FlippingPolicy>(kFlip));
    SessionResult roff = off.run(kIters);
    ASSERT_FALSE(roff.oom) << roff.oomMessage;
    const IterationStats &x = r.iterations.back();
    const IterationStats &y = roff.iterations.back();
    EXPECT_EQ(x.duration(), y.duration());
    EXPECT_EQ(x.swapOutBytes, y.swapOutBytes);
    EXPECT_EQ(x.kernelBusy, y.kernelBusy);
}

// --- dynamic zoo under memory pressure --------------------------------

TEST(DriftZoo, NoOomUnderCapuchin)
{
    struct Case
    {
        WorkloadKind kind;
        const char *model;
        std::int64_t batch;
    };
    const Case cases[] = {
        {WorkloadKind::Varlen, "bert", 48},
        {WorkloadKind::BatchRamp, "resnet50", 256},
        {WorkloadKind::Branchy, "", 256},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(std::string(workloadName(c.kind)) + "/" + c.model);
        DynamicWorkload dw = buildWorkload(c.kind, c.model, c.batch, 0);
        Session s(std::move(dw.graph), driftConfig(dw),
                  makeCapuchinPolicy());
        SessionResult r = s.run(12);
        EXPECT_FALSE(r.oom) << r.oomMessage;
    }
}

TEST(DriftZoo, BaselinePoliciesRunDynamicGraphs)
{
    DynamicWorkload dw = buildVarlenLstm(8, 0);
    {
        Session s(Graph(dw.graph), driftConfig(dw),
                  std::make_unique<VdnnPolicy>(VdnnPolicy::Mode::All));
        EXPECT_FALSE(s.run(8).oom);
    }
    {
        Session s(Graph(dw.graph), driftConfig(dw),
                  std::make_unique<CheckpointingPolicy>(
                      CheckpointingPolicy::Mode::Memory));
        EXPECT_FALSE(s.run(8).oom);
    }
}

// --- capulint / capuverify on dynamic runs ----------------------------

TEST(DriftLint, PlanLintCleanOnEveryClass)
{
    // enablePlanLint panics on error-level findings (plan rules +
    // happens-before + lifetime analysis) every time a class's plan is
    // built from its measured trace — a run to completion is a clean bill
    // for every shape class.
    DynamicWorkload dw = buildWorkload(WorkloadKind::Varlen, "bert", 48, 0);
    CapuchinOptions o;
    enablePlanLint(o);
    Session s(std::move(dw.graph), driftConfig(dw), makeCapuchinPolicy(o));
    SessionResult r = s.run(8);
    EXPECT_FALSE(r.oom) << r.oomMessage;
}

TEST(DriftVerify, DynamicTracesRaceFreeAndTimestampConsistent)
{
    for (WorkloadKind kind : dynamicWorkloads()) {
        SCOPED_TRACE(workloadName(kind));
        DynamicWorkload dw = buildWorkload(kind, "lstm", 8, 0);
        Session s(std::move(dw.graph),
                  driftConfig(dw, true, obs::ObsLevel::Full),
                  makeCapuchinPolicy());
        SessionResult r = s.run(8);
        ASSERT_FALSE(r.oom) << r.oomMessage;
        auto timeline = obs::extractTimeline(s.executor().obs().tracer);
        ASSERT_FALSE(timeline.empty());
        HbAnalysis a = buildTraceEventGraph(timeline);
        LintReport races = checkHappensBefore(a, &s.graph());
        EXPECT_EQ(races.errorCount(), 0u) << races.summary();
        LintReport stamps = checkTimestamps(a, &s.graph());
        EXPECT_EQ(stamps.errorCount(), 0u) << stamps.summary();
    }
}

// --- max-batch search over a dynamic workload -------------------------

TEST(DriftMaxBatch, WitnessHoldsUnderTrueSchedule)
{
    DynamicWorkload probe = buildVarlenLstm(1, 0);
    ExecConfig cfg;
    cfg.variantSchedule = probe.schedule;
    auto builder = [](std::int64_t b) {
        return buildVarlenLstm(b, 0).graph;
    };
    std::int64_t mb = findMaxBatch(
        builder, [] { return makeCapuchinPolicy(); }, cfg,
        /*iterations=*/4, /*lo=*/1, /*hi=*/512);
    ASSERT_GT(mb, 0);
    // The reported batch must actually survive the interleaved schedule
    // (one full cycle), not just its worst-case class.
    Session s(builder(mb), cfg, makeCapuchinPolicy());
    int horizon = static_cast<int>(probe.schedule.size()) + 2;
    EXPECT_FALSE(s.run(horizon).oom);
}
