/**
 * @file
 * capuchaos tests: fault-spec grammar, zero-perturbation bit-identity,
 * degradation/recovery behaviour under each documented fault class, the
 * capped-host-pool regression (swap-out falls back to recompute-eviction
 * instead of aborting), feedback-shift arithmetic and convergence, OOM
 * post-mortem enrichment, drift-triggered re-measurement, and (spec, seed)
 * reproducibility.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lint_hooks.hh"
#include "core/capuchin_policy.hh"
#include "exec/session.hh"
#include "faults/fault_engine.hh"
#include "faults/fault_spec.hh"
#include "models/workload.hh"
#include "models/zoo.hh"
#include "policy/noop_policy.hh"
#include "support/logging.hh"

using namespace capu;

namespace
{

/** Session over a zoo model with a Capuchin policy handle. */
struct ChaosRun
{
    CapuchinPolicy *policy;
    Session session;

    ChaosRun(Graph graph, ExecConfig cfg, CapuchinOptions opts = {})
        : policy(nullptr),
          session(std::move(graph), cfg,
                  [&] {
                      auto p = std::make_unique<CapuchinPolicy>(opts);
                      policy = p.get();
                      return p;
                  }())
    {
    }
};

ExecConfig
chaosConfig(const std::string &spec, std::uint64_t seed = 42)
{
    ExecConfig cfg;
    cfg.faults = faults::parseFaultSpec(spec);
    cfg.seed = seed;
    return cfg;
}

std::vector<Tick>
iterationStamps(const SessionResult &r)
{
    std::vector<Tick> out;
    for (const auto &it : r.iterations) {
        out.push_back(it.begin);
        out.push_back(it.end);
    }
    return out;
}

} // namespace

// --- fault-spec grammar -----------------------------------------------

TEST(FaultSpec, EmptyStringIsDisabled)
{
    auto spec = faults::parseFaultSpec("");
    EXPECT_FALSE(spec.enabled());
    EXPECT_EQ(spec.summary(), "none");
    EXPECT_EQ(spec.clampHostBytes(1ull << 40), 1ull << 40);
}

TEST(FaultSpec, ParsesEveryClause)
{
    auto spec = faults::parseFaultSpec(
        "pcie:0.5@2000-4000;jitter:0.1;hostcap:8GiB;hostfail:p=0.02;"
        "swapfail:p=0.01,retries=5,backoff=100us");
    EXPECT_TRUE(spec.enabled());
    ASSERT_EQ(spec.pcie.size(), 1u);
    EXPECT_DOUBLE_EQ(spec.pcie[0].factor, 0.5);
    EXPECT_EQ(spec.pcie[0].begin, ticksFromMs(2000));
    EXPECT_EQ(spec.pcie[0].end, ticksFromMs(4000));
    EXPECT_DOUBLE_EQ(spec.kernelJitter, 0.1);
    EXPECT_EQ(spec.hostCapBytes, 8ull << 30);
    EXPECT_DOUBLE_EQ(spec.hostFailProb, 0.02);
    EXPECT_DOUBLE_EQ(spec.swapFailProb, 0.01);
    EXPECT_EQ(spec.swapRetries, 5);
    EXPECT_EQ(spec.swapBackoffBase, ticksFromUs(100));
    EXPECT_EQ(spec.clampHostBytes(256ull << 30), 8ull << 30);
}

TEST(FaultSpec, SummaryRoundTrips)
{
    const std::string text =
        "pcie:0.5@2000-4000;jitter:0.1;hostcap:8GiB;swapfail:p=0.01,"
        "retries=3";
    auto spec = faults::parseFaultSpec(text);
    auto reparsed = faults::parseFaultSpec(spec.summary());
    EXPECT_EQ(spec.summary(), reparsed.summary());
}

TEST(FaultSpec, ByteSizesAndDurations)
{
    EXPECT_EQ(faults::parseByteSize("8GiB"), 8ull << 30);
    EXPECT_EQ(faults::parseByteSize("512MiB"), 512ull << 20);
    EXPECT_EQ(faults::parseByteSize("64K"), 64ull << 10);
    EXPECT_EQ(faults::parseByteSize("1024"), 1024u);
    EXPECT_EQ(faults::parseTickSpan("100us"), ticksFromUs(100));
    EXPECT_EQ(faults::parseTickSpan("2ms"), ticksFromMs(2));
    EXPECT_EQ(faults::parseTickSpan("1s"), ticksFromSec(1));
}

TEST(FaultSpec, RejectsMalformedInput)
{
    EXPECT_THROW(faults::parseFaultSpec("pcie:1.5"), FatalError);
    EXPECT_THROW(faults::parseFaultSpec("pcie:0"), FatalError);
    EXPECT_THROW(faults::parseFaultSpec("pcie:0.5@4000-2000"), FatalError);
    EXPECT_THROW(faults::parseFaultSpec("jitter:-0.1"), FatalError);
    EXPECT_THROW(faults::parseFaultSpec("swapfail:retries=3"), FatalError);
    EXPECT_THROW(faults::parseFaultSpec("hostcap:12XB"), FatalError);
    EXPECT_THROW(faults::parseFaultSpec("bogus:1"), FatalError);
}

TEST(FaultSpec, OverlappingPcieWindowsTakeMinimum)
{
    auto spec = faults::parseFaultSpec("pcie:0.5@0-10000;pcie:0.25@5000-8000");
    faults::FaultEngine eng(spec, 1);
    EXPECT_DOUBLE_EQ(eng.pcieFactor(ticksFromMs(1000)), 0.5);
    EXPECT_DOUBLE_EQ(eng.pcieFactor(ticksFromMs(6000)), 0.25);
    EXPECT_DOUBLE_EQ(eng.pcieFactor(ticksFromMs(20000)), 1.0);
}

// --- zero-perturbation self-check -------------------------------------

TEST(Chaos, FaultsOffIsBitIdentical)
{
    // A seed-only config (no fault clauses) must take the exact legacy
    // code paths: every simulated timestamp identical to the default.
    auto run_with = [](ExecConfig cfg) {
        ChaosRun run(buildResNet(400, 50), cfg);
        auto r = run.session.run(4);
        EXPECT_FALSE(r.oom);
        return iterationStamps(r);
    };
    auto baseline = run_with(ExecConfig{});
    auto seeded = run_with(chaosConfig("", /*seed=*/1234567));
    EXPECT_EQ(baseline, seeded);
}

TEST(Chaos, DisabledEngineMakesNoDraws)
{
    faults::FaultEngine eng(faults::FaultSpec{}, 99);
    EXPECT_FALSE(eng.enabled());
    EXPECT_EQ(eng.jitterKernel(1000), 1000u);
    EXPECT_FALSE(eng.hostTransientFail());
    EXPECT_FALSE(eng.swapAttemptFails());
    EXPECT_DOUBLE_EQ(eng.pcieFactor(0), 1.0);
}

// --- per-fault degradation + recovery ---------------------------------

TEST(Chaos, PcieDegradationCompletesAndCounts)
{
    ExecConfig cfg = chaosConfig("pcie:0.5");
    CapuchinOptions opts;
    enablePlanLint(opts);
    ChaosRun run(buildModel(ModelKind::Vgg16, 230), cfg, opts);
    auto r = run.session.run(5);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.degradedTransfers, 0u);
}

TEST(Chaos, KernelJitterCompletesAndCounts)
{
    ExecConfig cfg = chaosConfig("jitter:0.1");
    CapuchinOptions opts;
    enablePlanLint(opts);
    ChaosRun run(buildModel(ModelKind::Vgg16, 230), cfg, opts);
    auto r = run.session.run(5);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.jitteredKernels, 0u);
}

TEST(Chaos, SwapFailuresRetryAndComplete)
{
    ExecConfig cfg = chaosConfig("swapfail:p=0.2,retries=3");
    CapuchinOptions opts;
    enablePlanLint(opts);
    ChaosRun run(buildModel(ModelKind::Vgg16, 230), cfg, opts);
    auto r = run.session.run(5);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.swapAttemptFailures, 0u);
    EXPECT_GT(fs.swapRetries, 0u);
}

TEST(Chaos, HostTransientFailuresDegradeToDrop)
{
    ExecConfig cfg = chaosConfig("hostfail:p=0.3");
    ChaosRun run(buildResNet(400, 50), cfg);
    auto r = run.session.run(5);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.hostRejects, 0u);
    // Each rejected staging must resolve safely: either degrade to a
    // recompute-eviction (drop) or refuse the swap and keep the tensor
    // resident for passive mode to pick another victim.
    EXPECT_GT(fs.dropFallbacks + fs.swapSkips, 0u);
}

// --- capped-host-pool regression (satellite: exhaustion end-to-end) ---

TEST(Chaos, HostcapClauseClampsThePool)
{
    ExecConfig cfg = chaosConfig("hostcap:1GiB");
    ChaosRun run(buildResNet(256, 50), cfg);
    EXPECT_EQ(run.session.executor().memory().host().capacity(), 1ull << 30);
}

TEST(Chaos, ExhaustedHostPoolFallsBackToRecompute)
{
    // A pool far too small for the passive swap traffic. The first few
    // GiB of swap-outs seed host copies (stable recompute roots); every
    // swap-out beyond the cap must then degrade to drop-for-recompute,
    // not abort. (A cap so small that *no* host copies exist would leave
    // early activations with no stable replay root — their lineage ends
    // at the non-recomputable input batch — which is unrecoverable by
    // design, not a robustness bug.)
    ExecConfig cfg = chaosConfig("hostcap:4GiB");
    ChaosRun run(buildResNet(400, 50), cfg);
    auto r = run.session.run(4);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.hostRejects, 0u);
    EXPECT_GT(fs.dropFallbacks, 0u);
    EXPECT_GT(run.session.executor().memory().host().failedAllocs(), 0u);
    bool any_drops = false;
    for (const auto &it : r.iterations)
        any_drops = any_drops || it.droppedTensors > 0;
    EXPECT_TRUE(any_drops);
}

TEST(Chaos, UncappedRunNeverTouchesTheFallback)
{
    ChaosRun run(buildResNet(400, 50), ExecConfig{});
    auto r = run.session.run(4);
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(run.session.executor().memory().host().failedAllocs(), 0u);
}

// --- feedback (satellite: onBackAccessStall convergence) --------------

TEST(Feedback, StallShiftsInTriggerByStepTimesSwapTime)
{
    ChaosRun run(buildResNet(400, 50), ExecConfig{});
    auto r = run.session.run(3);
    ASSERT_FALSE(r.oom);
    // Pick any planned swap; a direct stall report must advance its
    // desired swap-in start by exactly max(1, feedbackStep x SwapTime).
    const Plan &plan = run.policy->plan();
    const PlannedEviction *item = nullptr;
    for (const auto &it : plan.items) {
        if (it.mode == RegenChoice::Swap && it.desiredSwapInStart > 0) {
            item = &it;
            break;
        }
    }
    ASSERT_NE(item, nullptr) << "plan has no swap items";
    TensorId id = item->tensor;
    Tick before = item->desiredSwapInStart;
    Tick expected_shift = std::max<Tick>(
        static_cast<Tick>(static_cast<double>(item->swapTime) * 0.05), 1);
    int adj_before = run.policy->feedbackAdjustments();
    // A stall of a full SwapTime is far above the feedback deadband.
    run.policy->onBackAccessStall(run.session.executor(), id,
                                  item->swapTime);
    EXPECT_EQ(run.policy->feedbackAdjustments(), adj_before + 1);
    EXPECT_EQ(item->desiredSwapInStart,
              before > expected_shift ? before - expected_shift : 0);
}

TEST(Feedback, ConvergesUnderPermanentPcieDegradation)
{
    // A permanently slower link makes every planned swap-in late at
    // first; the feedback loop must keep shifting in-triggers earlier
    // until the stalls shrink. Refinement is frozen (maxReplans = 0) so
    // plan rebuilds don't reset the shifted in-triggers between
    // iterations, and the drift watchdog is off (default) so only the
    // feedback path reacts.
    ExecConfig cfg = chaosConfig("pcie:0.6");
    CapuchinOptions opts;
    opts.maxReplans = 0;
    opts.feedbackStep = 0.2;
    ChaosRun run(buildResNet(400, 50), cfg, opts);
    auto r = run.session.run(12);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_GT(run.policy->feedbackAdjustments(), 0);
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.feedbackShifts, 0u);
    // The loop must settle well below the first guided iteration's stall.
    // Individual late iterations can still spike: the passive safety net
    // occasionally re-evicts an already-prefetched tensor, whose
    // on-demand swap-in then costs one full degraded transfer. That is
    // scheduling noise, not feedback divergence, so assert on the best
    // of the last few iterations (the steady state the loop returns to).
    Tick first_guided = r.iterations[1].prefetchStall;
    Tick steady = r.iterations.back().prefetchStall;
    for (std::size_t i = r.iterations.size() - 4; i < r.iterations.size();
         ++i)
        steady = std::min(steady, r.iterations[i].prefetchStall);
    EXPECT_LT(steady, first_guided / 4);
}

// --- OOM post-mortem enrichment ---------------------------------------

TEST(Chaos, OomCarriesPostMortemContext)
{
    // No policy assistance: a heavily oversubscribed run must die with an
    // enriched OomError.
    Session session(buildResNet(400, 50), ExecConfig{}, makeNoOpPolicy());
    auto r = session.run(2);
    ASSERT_TRUE(r.oom);
    EXPECT_GT(r.oomRequestedBytes, 0u);
    EXPECT_GT(r.oomContext.gpuBytesInUse, 0u);
    EXPECT_GT(r.oomContext.hostCapacity, 0u);
    EXPECT_NE(r.oomContext.tensor, kInvalidTensor);
    EXPECT_FALSE(r.oomContext.tensorName.empty());
    std::string pm = r.postMortem();
    EXPECT_NE(pm.find("OOM post-mortem"), std::string::npos);
    EXPECT_NE(pm.find(r.oomContext.tensorName), std::string::npos);
}

TEST(Chaos, CompletedRunHasEmptyPostMortem)
{
    ChaosRun run(buildResNet(256, 50), ExecConfig{});
    auto r = run.session.run(2);
    ASSERT_FALSE(r.oom);
    EXPECT_TRUE(r.postMortem().empty());
}

// --- drift watchdog ----------------------------------------------------

TEST(Chaos, DriftTriggersRemeasurement)
{
    // The plan is measured on a healthy link; a severe permanent
    // degradation makes guided timestamps drift past the threshold, so
    // the policy must discard the plan and re-measure.
    ExecConfig cfg = chaosConfig("pcie:0.35");
    CapuchinOptions opts;
    opts.driftThreshold = 0.10;
    opts.enableFeedback = false; // isolate the watchdog
    ChaosRun run(buildResNet(400, 50), cfg, opts);
    auto r = run.session.run(8);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_GT(run.policy->remeasures(), 0);
    const auto &fs = run.session.executor().faultEngine().stats();
    EXPECT_GT(fs.remeasures, 0u);
}

TEST(Chaos, DriftWatchdogOffByDefault)
{
    ExecConfig cfg = chaosConfig("pcie:0.35");
    ChaosRun run(buildResNet(400, 50), cfg);
    auto r = run.session.run(8);
    ASSERT_FALSE(r.oom) << r.oomMessage;
    EXPECT_EQ(run.policy->remeasures(), 0);
}

// --- reproducibility ---------------------------------------------------

TEST(Chaos, SameSpecAndSeedReproduceExactly)
{
    auto stamps = [](std::uint64_t seed) {
        ExecConfig cfg = chaosConfig("jitter:0.1;swapfail:p=0.05", seed);
        ChaosRun run(buildModel(ModelKind::Vgg16, 230), cfg);
        auto r = run.session.run(4);
        EXPECT_FALSE(r.oom);
        return iterationStamps(r);
    };
    EXPECT_EQ(stamps(7), stamps(7));
}

TEST(Chaos, DifferentSeedsDiverge)
{
    auto stamps = [](std::uint64_t seed) {
        ExecConfig cfg = chaosConfig("jitter:0.1", seed);
        ChaosRun run(buildModel(ModelKind::Vgg16, 230), cfg);
        auto r = run.session.run(3);
        EXPECT_FALSE(r.oom);
        return iterationStamps(r);
    };
    EXPECT_NE(stamps(1), stamps(2));
}

// --- faults x dynamic workloads (capudrift) ---------------------------

TEST(ChaosDrift, EveryFaultClassComposesWithVarlen)
{
    // Chaos under a varlen stream: no OOM, every iteration completes, the
    // run costs at most a bounded factor over the fault-free stream, and
    // the per-class re-measure budget bounds any thrash between
    // fault-triggered and drift-triggered re-measurement.
    DynamicWorkload base = buildVarlenLstm(8, 3);
    ExecConfig clean_cfg = chaosConfig("");
    clean_cfg.variantSchedule = base.schedule;
    ChaosRun clean(Graph(base.graph), clean_cfg);
    SessionResult rclean = clean.session.run(16);
    ASSERT_FALSE(rclean.oom) << rclean.oomMessage;
    Tick clean_wall =
        rclean.iterations.back().end - rclean.iterations.front().begin;

    const char *specs[] = {"pcie:0.5", "jitter:0.1",
                           "swapfail:p=0.2,retries=3", "hostcap:4GiB",
                           "pcie:0.6;jitter:0.1"};
    for (const char *spec : specs) {
        SCOPED_TRACE(spec);
        ExecConfig cfg = chaosConfig(spec);
        cfg.variantSchedule = base.schedule;
        CapuchinOptions opts;
        opts.driftThreshold = 0.35; // what capusim arms under --faults
        ChaosRun run(Graph(base.graph), cfg, opts);
        SessionResult r = run.session.run(16);
        EXPECT_FALSE(r.oom) << r.oomMessage;
        ASSERT_EQ(r.iterations.size(), 16u);
        Tick wall = r.iterations.back().end - r.iterations.front().begin;
        EXPECT_LE(wall, 2 * clean_wall) << "unbounded chaos overhead";
        // Bounded escalation, not a remeasure loop: each shape class may
        // re-measure at most maxRemeasures times.
        EXPECT_LE(run.policy->remeasures(),
                  opts.maxRemeasures *
                      static_cast<int>(run.policy->shapeClassCount()));
    }
}

TEST(ChaosDrift, PressuredBatchRampSurvivesDegradedPcie)
{
    // Batch-ramp at a swapping batch size: the heavy class actually moves
    // tensors, so degraded PCIe exercises the fault path on a stream whose
    // shape also drifts. The run must complete every scheduled class.
    DynamicWorkload dw = buildBatchRamp("resnet50", 400, 1);
    ExecConfig cfg = chaosConfig("pcie:0.5");
    cfg.variantSchedule = dw.schedule;
    CapuchinOptions opts;
    opts.driftThreshold = 0.35;
    int iters = static_cast<int>(dw.schedule.size());
    ChaosRun run(std::move(dw.graph), cfg, opts);
    SessionResult r = run.session.run(iters);
    EXPECT_FALSE(r.oom) << r.oomMessage;
    EXPECT_EQ(r.iterations.size(), static_cast<std::size_t>(iters));
    EXPECT_EQ(run.policy->shapeClassCount(), 3u);
    EXPECT_LE(run.policy->remeasures(), 3 * opts.maxRemeasures);
}
