/** @file Unit tests for the DES substrate: event queue, streams, PCIe. */

#include <gtest/gtest.h>

#include <vector>

#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/gpu_device.hh"
#include "sim/pcie_link.hh"
#include "sim/stream.hh"
#include "support/logging.hh"

using namespace capu;

// --- EventQueue ---

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(10, [&](Tick) { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunUntilStopsAtBound)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&](Tick) { ++fired; });
    q.schedule(20, [&](Tick) { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CallbackReceivesFireTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(42, [&](Tick t) { seen = t; });
    q.runAll();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    auto id = q.schedule(10, [&](Tick) { ++fired; });
    EXPECT_TRUE(q.cancel(id));
    q.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelUnknownReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, DoubleCancelReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [](Tick) {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10, [](Tick) {});
    q.runAll();
    EXPECT_THROW(q.schedule(5, [](Tick) {}), PanicError);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> fires;
    q.schedule(10, [&](Tick t) {
        fires.push_back(t);
        q.schedule(t + 5, [&](Tick t2) { fires.push_back(t2); });
    });
    q.runAll();
    EXPECT_EQ(fires, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, PendingCount)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.schedule(1, [](Tick) {});
    q.schedule(2, [](Tick) {});
    EXPECT_EQ(q.pending(), 2u);
    q.runAll();
    EXPECT_TRUE(q.empty());
}

// --- Stream ---

TEST(Stream, SerializesWork)
{
    Stream s("test");
    EXPECT_EQ(s.enqueue(0, 100, "a"), 100u);
    // Ready at 50 but the stream is busy until 100.
    EXPECT_EQ(s.enqueue(50, 10, "b"), 110u);
}

TEST(Stream, RespectsReadyTime)
{
    Stream s("test");
    s.enqueue(0, 10, "a");
    // Ready long after the stream drains: idle gap.
    EXPECT_EQ(s.enqueue(100, 10, "b"), 110u);
    EXPECT_EQ(s.lastStart(), 100u);
}

TEST(Stream, EmitsTraceEvents)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    Stream s("test");
    s.attachTracer(&tracer, obs::kTrackCompute);
    s.enqueue(0, 10, "a");
    s.enqueue(20, 5, "b");
    std::vector<obs::TraceEvent> evs;
    tracer.forEach([&](const obs::TraceEvent &ev) { evs.push_back(ev); });
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].name, "a");
    EXPECT_EQ(evs[0].track, obs::kTrackCompute);
    EXPECT_EQ(evs[1].ts, 20u);
    EXPECT_EQ(evs[1].dur, 5u);
    EXPECT_EQ(s.busyTime(), 15u);
    // attachTracer registers the stream's name for its track.
    bool named = false;
    for (const auto &[track, name] : tracer.trackNames())
        if (track == obs::kTrackCompute && name == "test")
            named = true;
    EXPECT_TRUE(named);
}

TEST(Stream, NoTracerNoEvents)
{
    // Timing semantics identical whether or not a tracer is attached.
    Stream s("test");
    s.enqueue(0, 10, "a");
    EXPECT_EQ(s.busyUntil(), 10u);
    EXPECT_EQ(s.busyTime(), 10u);
}

TEST(Stream, DisabledTracerRecordsNothing)
{
    obs::Tracer tracer; // disabled by default
    Stream s("test");
    s.attachTracer(&tracer, obs::kTrackCompute);
    s.enqueue(0, 10, "a");
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(s.busyUntil(), 10u);
}

TEST(Stream, Reset)
{
    Stream s("test");
    s.enqueue(0, 10, "a");
    s.reset();
    EXPECT_EQ(s.busyUntil(), 0u);
    EXPECT_EQ(s.busyTime(), 0u);
}

// --- PcieLink ---

TEST(Pcie, TransferTimeIsLatencyPlusBandwidth)
{
    PcieLink link(1e9 /* 1 GB/s */, 100 /* ns */);
    // 1e9 bytes at 1 GB/s = 1 s = 1e9 ns, plus latency.
    EXPECT_EQ(link.transferTime(1000000000ull), 1000000100u);
    EXPECT_EQ(link.transferTime(0), 100u);
}

TEST(Pcie, SameDirectionSerializes)
{
    PcieLink link(1e9, 0);
    Tick t1 = link.transfer(CopyDir::DeviceToHost, 1000, 0, "a"); // 1000 ns
    Tick t2 = link.transfer(CopyDir::DeviceToHost, 1000, 0, "b");
    EXPECT_EQ(t1, 1000u);
    EXPECT_EQ(t2, 2000u); // waits for predecessor (paper section 4.4)
}

TEST(Pcie, OppositeDirectionsConcurrent)
{
    PcieLink link(1e9, 0);
    Tick out = link.transfer(CopyDir::DeviceToHost, 1000, 0, "out");
    Tick in = link.transfer(CopyDir::HostToDevice, 1000, 0, "in");
    EXPECT_EQ(out, 1000u);
    EXPECT_EQ(in, 1000u); // no interference
}

TEST(Pcie, ZeroBandwidthIsFatal)
{
    EXPECT_THROW(PcieLink(0, 0), FatalError);
}

TEST(Pcie, LaneBusyQuery)
{
    PcieLink link(1e9, 0);
    link.transfer(CopyDir::DeviceToHost, 5000, 0, "x");
    EXPECT_EQ(link.laneBusyUntil(CopyDir::DeviceToHost), 5000u);
    EXPECT_EQ(link.laneBusyUntil(CopyDir::HostToDevice), 0u);
}

// --- GpuDeviceSpec ---

TEST(GpuDevice, P100Preset)
{
    auto d = GpuDeviceSpec::p100();
    EXPECT_GT(d.memCapacity, 15ull << 30);
    EXPECT_LE(d.memCapacity, 16ull << 30);
    EXPECT_DOUBLE_EQ(d.pcieBandwidth, 12e9); // the paper's measured rate
}

TEST(GpuDevice, V100HasMoreOfEverything)
{
    auto p = GpuDeviceSpec::p100();
    auto v = GpuDeviceSpec::v100();
    EXPECT_GT(v.memCapacity, p.memCapacity);
    EXPECT_GT(v.peakFlops, p.peakFlops);
}

TEST(GpuDevice, TestDeviceCapacity)
{
    auto d = GpuDeviceSpec::testDevice(1_MiB);
    EXPECT_EQ(d.memCapacity, 1_MiB);
}
