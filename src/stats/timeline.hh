/**
 * @file
 * ASCII timeline rendering of stream interval logs.
 *
 * Renders Figure-1-style two-row (compute / memory) execution traces so a
 * bench can *show* the synchronization behaviour it measures, e.g.:
 *
 *   comp  |####----####.####|
 *   d2h   |..####........   |
 */

#ifndef CAPU_STATS_TIMELINE_HH
#define CAPU_STATS_TIMELINE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/stream.hh"

namespace capu
{

struct TimelineRow
{
    std::string label;
    const std::vector<StreamInterval> *intervals;
};

/**
 * Render rows over [begin, end) scaled to `width` character cells.
 * '#' marks busy cells, '.' idle cells inside the window.
 */
void renderTimeline(std::ostream &os, const std::vector<TimelineRow> &rows,
                    Tick begin, Tick end, std::size_t width = 100);

/** Fraction of [begin, end) the stream is busy. */
double streamUtilization(const std::vector<StreamInterval> &intervals,
                         Tick begin, Tick end);

} // namespace capu

#endif // CAPU_STATS_TIMELINE_HH
