/**
 * @file
 * ASCII timeline rendering over the capuscope event stream.
 *
 * Consumes Complete events from an obs::Tracer (the single interval source
 * since streams stopped keeping their own logs) and renders
 * Figure-1-style multi-row execution traces so a bench can *show* the
 * synchronization behaviour it measures, e.g.:
 *
 *   comp  |####----####.####|
 *   d2h   |..####........   |
 */

#ifndef CAPU_STATS_TIMELINE_HH
#define CAPU_STATS_TIMELINE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/tracer.hh"
#include "support/units.hh"

namespace capu
{

/** One rendered row: a display label + the trace track it draws. */
struct TimelineTrack
{
    std::string label;
    std::uint32_t track = obs::kTrackCompute;
};

/**
 * Render the tracks' Complete events over [begin, end) scaled to `width`
 * character cells. '#' marks busy cells, '.' idle cells in the window.
 */
void renderTimeline(std::ostream &os, const obs::Tracer &tracer,
                    const std::vector<TimelineTrack> &tracks, Tick begin,
                    Tick end, std::size_t width = 100);

/** Fraction of [begin, end) the track's Complete events cover. */
double trackUtilization(const obs::Tracer &tracer, std::uint32_t track,
                        Tick begin, Tick end);

} // namespace capu

#endif // CAPU_STATS_TIMELINE_HH
