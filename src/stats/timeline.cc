#include "stats/timeline.hh"

#include <algorithm>

namespace capu
{

void
renderTimeline(std::ostream &os, const obs::Tracer &tracer,
               const std::vector<TimelineTrack> &tracks, Tick begin,
               Tick end, std::size_t width)
{
    if (end <= begin || width == 0)
        return;
    const double span = static_cast<double>(end - begin);

    std::size_t label_w = 0;
    for (const auto &row : tracks)
        label_w = std::max(label_w, row.label.size());

    for (const auto &row : tracks) {
        std::string cells(width, '.');
        tracer.forEach([&](const obs::TraceEvent &ev) {
            if (ev.phase != obs::EventPhase::Complete ||
                ev.track != row.track)
                return;
            Tick iv_end = ev.ts + ev.dur;
            if (iv_end <= begin || ev.ts >= end)
                return;
            Tick s = std::max(ev.ts, begin);
            Tick e = std::min(iv_end, end);
            auto c0 = static_cast<std::size_t>((s - begin) / span * width);
            auto c1 = static_cast<std::size_t>((e - begin) / span * width);
            c1 = std::max(c1, c0 + 1);
            for (std::size_t c = c0; c < std::min(c1, width); ++c)
                cells[c] = '#';
        });
        os << row.label;
        for (std::size_t pad = row.label.size(); pad < label_w; ++pad)
            os << ' ';
        os << " |" << cells << "|\n";
    }
    os << std::string(label_w, ' ') << "  " << formatTicks(begin) << " .. "
       << formatTicks(end) << '\n';
}

double
trackUtilization(const obs::Tracer &tracer, std::uint32_t track, Tick begin,
                 Tick end)
{
    if (end <= begin)
        return 0;
    Tick busy = 0;
    tracer.forEach([&](const obs::TraceEvent &ev) {
        if (ev.phase != obs::EventPhase::Complete || ev.track != track)
            return;
        Tick iv_end = ev.ts + ev.dur;
        if (iv_end <= begin || ev.ts >= end)
            return;
        busy += std::min(iv_end, end) - std::max(ev.ts, begin);
    });
    return static_cast<double>(busy) / static_cast<double>(end - begin);
}

} // namespace capu
