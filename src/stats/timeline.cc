#include "stats/timeline.hh"

#include <algorithm>

#include "support/units.hh"

namespace capu
{

void
renderTimeline(std::ostream &os, const std::vector<TimelineRow> &rows,
               Tick begin, Tick end, std::size_t width)
{
    if (end <= begin || width == 0)
        return;
    const double span = static_cast<double>(end - begin);

    std::size_t label_w = 0;
    for (const auto &row : rows)
        label_w = std::max(label_w, row.label.size());

    for (const auto &row : rows) {
        std::string cells(width, '.');
        for (const auto &iv : *row.intervals) {
            if (iv.end <= begin || iv.start >= end)
                continue;
            Tick s = std::max(iv.start, begin);
            Tick e = std::min(iv.end, end);
            auto c0 = static_cast<std::size_t>((s - begin) / span * width);
            auto c1 = static_cast<std::size_t>((e - begin) / span * width);
            c1 = std::max(c1, c0 + 1);
            for (std::size_t c = c0; c < std::min(c1, width); ++c)
                cells[c] = '#';
        }
        os << row.label;
        for (std::size_t pad = row.label.size(); pad < label_w; ++pad)
            os << ' ';
        os << " |" << cells << "|\n";
    }
    os << std::string(label_w, ' ') << "  " << formatTicks(begin) << " .. "
       << formatTicks(end) << '\n';
}

double
streamUtilization(const std::vector<StreamInterval> &intervals, Tick begin,
                  Tick end)
{
    if (end <= begin)
        return 0;
    Tick busy = 0;
    for (const auto &iv : intervals) {
        if (iv.end <= begin || iv.start >= end)
            continue;
        busy += std::min(iv.end, end) - std::max(iv.start, begin);
    }
    return static_cast<double>(busy) / static_cast<double>(end - begin);
}

} // namespace capu
