#include "stats/report.hh"

#include <algorithm>

namespace capu
{

Table
diagnosticTable(const std::vector<DiagnosticRow> &rows)
{
    Table t({"severity", "rule", "subject", "where", "message"});
    for (const DiagnosticRow &row : rows)
        t.addRow({row.severity, row.rule, row.subject, row.location,
                  row.message});
    return t;
}

void
printDiagnostics(std::ostream &os, std::vector<DiagnosticRow> rows)
{
    if (rows.empty()) {
        os << "no findings\n";
        return;
    }
    // Errors above warnings, stable within each class so findings stay in
    // discovery order.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const DiagnosticRow &a, const DiagnosticRow &b) {
                         return (a.severity == "error") >
                                (b.severity == "error");
                     });
    diagnosticTable(rows).print(os);
}

} // namespace capu
