/**
 * @file
 * Aligned-column table rendering for benchmark output.
 *
 * Every bench binary reports through Table so that table/figure
 * reproductions print uniformly (and can additionally be dumped as CSV for
 * plotting).
 */

#ifndef CAPU_STATS_TABLE_HH
#define CAPU_STATS_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace capu
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma-escaped). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Cell accessor (row-major), for tests. */
    const std::string &cell(std::size_t row, std::size_t col) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers for common cell types. */
std::string cellInt(std::int64_t v);
std::string cellDouble(double v, int precision = 2);
std::string cellPercent(double fraction, int precision = 1);

} // namespace capu

#endif // CAPU_STATS_TABLE_HH
