#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace capu
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("row has {} cells, table has {} columns", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
                os << ' ';
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            bool quote = row[c].find(',') != std::string::npos;
            if (quote)
                os << '"';
            os << row[c];
            if (quote)
                os << '"';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    if (row >= rows_.size() || col >= headers_.size())
        panic("table cell ({}, {}) out of range", row, col);
    return rows_[row][col];
}

std::string
cellInt(std::int64_t v)
{
    return std::to_string(v);
}

std::string
cellDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
cellPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace capu
