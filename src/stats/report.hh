/**
 * @file
 * Generic diagnostic-table rendering.
 *
 * Static analyses (the plan verifier, future checkers) report findings as
 * rows of {severity, rule, subject, location, message}; this module turns
 * them into the same aligned tables the benches print, so diagnostics
 * read uniformly next to result tables. Kept free of analysis types on
 * purpose: stats is a leaf subsystem and must not depend upward.
 */

#ifndef CAPU_STATS_REPORT_HH
#define CAPU_STATS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "stats/table.hh"

namespace capu
{

/** One diagnostic rendered as a table row. */
struct DiagnosticRow
{
    std::string severity; ///< e.g. "error" / "warning"
    std::string rule;     ///< short machine-greppable rule name
    std::string subject;  ///< what the finding is about (tensor, file, ...)
    std::string location; ///< where (access index, line, ...); may be empty
    std::string message;  ///< human-readable explanation
};

/** Build the aligned diagnostics table (header: severity/rule/...). */
Table diagnosticTable(const std::vector<DiagnosticRow> &rows);

/**
 * Print the table, or a "no findings" line when `rows` is empty.
 * Severity-sorted: errors first, then warnings, original order within.
 */
void printDiagnostics(std::ostream &os, std::vector<DiagnosticRow> rows);

} // namespace capu

#endif // CAPU_STATS_REPORT_HH
