#include "obs/event_adapter.hh"

#include <algorithm>
#include <string>

namespace capu::obs
{

const char *
timelineKindName(TimelineKind kind)
{
    switch (kind) {
      case TimelineKind::Access:
        return "access";
      case TimelineKind::Recompute:
        return "recompute";
      case TimelineKind::SwapOut:
        return "swap-out";
      case TimelineKind::SwapIn:
        return "swap-in";
    }
    return "?";
}

namespace
{

bool
endsWith(const std::string &s, const char *suffix)
{
    std::string suf = suffix;
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

} // namespace

std::vector<TimelineRecord>
extractTimeline(const std::vector<TraceEvent> &events)
{
    std::vector<TimelineRecord> out;
    out.reserve(events.size() / 2);
    for (const TraceEvent &ev : events) {
        if (ev.tensor < 0)
            continue;
        TimelineRecord rec;
        rec.tensor = ev.tensor;
        rec.op = ev.op;
        rec.start = ev.ts;
        rec.end = ev.ts + ev.dur;
        rec.bytes = ev.bytes;
        switch (ev.kind) {
          case EventKind::Access:
            if (ev.track != kTrackHost || ev.phase != EventPhase::Instant)
                continue;
            rec.kind = TimelineKind::Access;
            rec.accessIndex = static_cast<int>(ev.value);
            rec.write = ev.name == "write";
            break;
          case EventKind::Recompute:
            if (ev.track != kTrackCompute || ev.phase != EventPhase::Complete)
                continue;
            rec.kind = TimelineKind::Recompute;
            break;
          case EventKind::Transfer:
            if (ev.phase != EventPhase::Complete)
                continue;
            if (ev.track == kTrackD2H)
                rec.kind = TimelineKind::SwapOut;
            else if (ev.track == kTrackH2D)
                rec.kind = TimelineKind::SwapIn;
            else
                continue;
            rec.failed = endsWith(ev.name, "!fail");
            break;
          default:
            continue;
        }
        out.push_back(rec);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TimelineRecord &a, const TimelineRecord &b) {
                         return a.start < b.start;
                     });
    return out;
}

std::vector<TimelineRecord>
extractTimeline(const Tracer &tracer)
{
    std::vector<TraceEvent> raw;
    raw.reserve(tracer.size());
    tracer.forEach([&](const TraceEvent &ev) { raw.push_back(ev); });
    return extractTimeline(raw);
}

} // namespace capu::obs
