/**
 * @file
 * Exporters: Chrome trace_event JSON + metrics CSV/JSON.
 *
 * writeChromeTrace() emits the tracer's buffered events in the Chrome
 * trace_event "JSON object" format, loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing. The mapping:
 *
 *   Complete  -> "X" with ts/dur          (stream occupancy, transfers)
 *   Instant   -> "i" thread-scoped        (decisions, OOM steps, markers)
 *   Counter   -> "C"                      (bytes-in-use samples)
 *   SpanBegin -> "b" async, id = tensor   (tensor residency phases)
 *   SpanEnd   -> "e"
 *
 * Tracks become tids under pid 0, labeled via thread_name metadata events.
 * Timestamps convert from simulation nanoseconds to the microseconds the
 * format requires (fractional µs keeps full ns precision).
 *
 * The metrics exporters emit per-iteration snapshot rows (CSV, one column
 * per metric) or the full registry (JSON: totals, gauges, histograms, and
 * the iteration table).
 */

#ifndef CAPU_OBS_CHROME_TRACE_HH
#define CAPU_OBS_CHROME_TRACE_HH

#include <iosfwd>
#include <string>

#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace capu::obs
{

void writeChromeTrace(std::ostream &os, const Tracer &tracer);
/** Returns false (and logs) if the file cannot be opened. */
bool writeChromeTraceFile(const std::string &path, const Tracer &tracer);

void writeMetricsCsv(std::ostream &os, const MetricsRegistry &metrics);
void writeMetricsJson(std::ostream &os, const MetricsRegistry &metrics);
/** Dispatches on extension: ".json" -> JSON, anything else -> CSV. */
bool writeMetricsFile(const std::string &path, const MetricsRegistry &metrics);

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

} // namespace capu::obs

#endif // CAPU_OBS_CHROME_TRACE_HH
