/**
 * @file
 * The event vocabulary of the observability layer (capuscope).
 *
 * A TraceEvent is one timestamped fact about the simulation: a stream
 * occupancy interval, a PCIe transfer, a policy decision, a tensor
 * residency-phase transition, or a counter sample. Events are deliberately
 * flat PODs (plus one label string) so the tracer's ring buffer stays cheap
 * and the exporters stay trivial; richer structure (per-track grouping,
 * async-span pairing) is reconstructed at export time.
 *
 * Timestamps are simulation Ticks (integer nanoseconds). Recording an event
 * never advances or perturbs simulated time: the tracer is a pure observer,
 * and tests assert that `--obs-level=full` leaves every simulated timestamp
 * bit-identical to `--obs-level=off`.
 */

#ifndef CAPU_OBS_EVENT_HH
#define CAPU_OBS_EVENT_HH

#include <cstdint>
#include <string>

#include "support/units.hh"

namespace capu::obs
{

/**
 * Trace tracks (Chrome `tid`s under one `pid`). Compute and the two PCIe
 * lanes mirror the simulator's execution resources; Host carries the host
 * loop's stalls and OOM-protocol steps; Policy carries decision instants;
 * Memory carries allocator counter samples; Fault carries injected
 * capuchaos episodes and Recovery the pipeline's degradation reactions,
 * so chaos traces show cause and reaction side by side. Replay marks
 * synthesized steady-state iterations (capureplay) so a trace always
 * distinguishes executed from replayed time. Drift carries shape-class
 * switches and re-measurement episodes on dynamic workloads (capudrift),
 * making the cost of adaptation attributable.
 */
enum Track : std::uint32_t
{
    kTrackHost = 0,
    kTrackCompute = 1,
    kTrackD2H = 2,
    kTrackH2D = 3,
    kTrackPolicy = 4,
    kTrackMemory = 5,
    kTrackFault = 6,
    kTrackRecovery = 7,
    kTrackReplay = 8,
    kTrackDrift = 9,
};

/** How the event maps onto the Chrome trace_event phase model. */
enum class EventPhase : std::uint8_t
{
    Complete,  ///< interval with known start + duration ("X")
    Instant,   ///< zero-duration mark ("i")
    Counter,   ///< sampled value ("C")
    SpanBegin, ///< async span open ("b"), paired by (kind, tensor id)
    SpanEnd,   ///< async span close ("e")
};

/** Semantic category; becomes the Chrome `cat` field. */
enum class EventKind : std::uint8_t
{
    Kernel,    ///< scheduled compute kernel
    Recompute, ///< lineage-replay kernel
    Transfer,  ///< PCIe copy (bytes = wire size)
    Sync,      ///< cross-stream synchronization (blocking swap barrier)
    Stall,     ///< host loop waiting (input residency, allocation)
    Access,    ///< tensor access event (value = access index)
    OomStep,   ///< step of the OOM protocol (wait-free / policy / raise)
    Decision,  ///< policy decision (evict, prefetch, feedback, passive)
    Plan,      ///< plan lifecycle (build, refine, in-trigger placement)
    Lifetime,  ///< tensor residency phase (async span, id = tensor)
    Sample,    ///< counter sample (value carries the measurement)
    Marker,    ///< structural marker (iteration boundaries, aborts)
    Fault,     ///< injected perturbation episode (capuchaos)
    Recovery,  ///< degradation/recovery reaction (retry, fallback, ...)
};

const char *eventKindName(EventKind kind);

struct TraceEvent
{
    Tick ts = 0;
    Tick dur = 0; ///< Complete events only
    std::uint32_t track = kTrackHost;
    EventPhase phase = EventPhase::Instant;
    EventKind kind = EventKind::Marker;
    std::int64_t tensor = -1; ///< tensor id; async-span id for Lifetime
    std::int64_t op = -1;     ///< op id when the event is op-related
    std::uint64_t bytes = 0;  ///< payload size where meaningful
    double value = 0.0;       ///< counter samples, access indices
    std::string name;
};

} // namespace capu::obs

#endif // CAPU_OBS_EVENT_HH
