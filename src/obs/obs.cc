#include "obs/obs.hh"

namespace capu::obs
{

const char *
obsLevelName(ObsLevel level)
{
    switch (level) {
      case ObsLevel::Off: return "off";
      case ObsLevel::Metrics: return "metrics";
      case ObsLevel::Full: return "full";
    }
    return "?";
}

std::optional<ObsLevel>
obsLevelFromString(std::string_view name)
{
    if (name == "off")
        return ObsLevel::Off;
    if (name == "metrics")
        return ObsLevel::Metrics;
    if (name == "full")
        return ObsLevel::Full;
    return std::nullopt;
}

void
Obs::configure(ObsLevel level, std::size_t ring_capacity)
{
    level_ = level;
    tracer.setCapacity(ring_capacity);
    tracer.setEnabled(level == ObsLevel::Full);
    metrics.clear();
    metrics.setEnabled(level != ObsLevel::Off);
}

Obs &
Obs::disabled()
{
    static Obs inert;
    return inert;
}

} // namespace capu::obs
