/**
 * @file
 * Metrics registry: named counters, gauges and log2-bucket histograms.
 *
 * Counters accumulate monotonically over a run (swap bytes, OOM syncs,
 * fingerprint checks); gauges hold the latest sampled value (fragmentation,
 * prefetch-hidden ratio, peak bytes); histograms record distributions
 * (recompute chain lengths, stall durations). snapshotIteration() closes an
 * iteration: it records every counter's *delta* since the previous snapshot
 * plus every gauge's current value, producing the per-iteration rows the
 * CSV/JSON exporters emit — the machine-readable trajectory BENCH files and
 * regression dashboards consume.
 *
 * Names are dotted paths ("swap.out.bytes", "bfc.fragmentation"). Maps are
 * ordered so exports are deterministic.
 */

#ifndef CAPU_OBS_METRICS_HH
#define CAPU_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace capu::obs
{

/** Power-of-two bucket histogram for nonnegative integer observations. */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void observe(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Value at quantile q in [0, 1], linearly interpolated inside the
     * log2 bucket that crosses the target rank and clamped to the
     * observed [min, max]. Exact only up to bucket resolution (a factor
     * of 2); good enough for p50/p95/p99 reporting. 0 when empty.
     */
    std::uint64_t percentile(double q) const;
    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    /** Count in bucket i (values in [2^(i-1)+1 .. 2^i]; bucket 0 holds 0). */
    std::uint64_t bucket(std::size_t i) const;
    std::size_t usedBuckets() const;

    /**
     * This histogram minus `prev` (an earlier copy of the same histogram):
     * bucket counts, count and sum subtract; min/max carry the current
     * absolutes so merge() can restore them. Used by capureplay to record
     * one steady iteration's worth of observations.
     */
    Histogram deltaSince(const Histogram &prev) const;

    /** Fold a deltaSince() result back in (replayed-iteration re-apply). */
    void merge(const Histogram &delta);

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

class MetricsRegistry
{
  public:
    /** Disabled registries ignore every mutation. */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    void clear();

    /** Increment counter `name` by `delta`. */
    void add(std::string_view name, std::uint64_t delta = 1);
    /** Set counter `name` to an externally-maintained absolute value. */
    void setCounter(std::string_view name, std::uint64_t value);
    /** Set gauge `name`. */
    void set(std::string_view name, double value);
    /** Record `value` into histogram `name`. */
    void observe(std::string_view name, std::uint64_t value);
    /** Fold a Histogram::deltaSince() result into `name` (capureplay). */
    void mergeHistogram(std::string_view name, const Histogram &delta);

    std::uint64_t counter(std::string_view name) const;
    double gauge(std::string_view name) const;
    const Histogram *histogram(std::string_view name) const;

    const std::map<std::string, std::uint64_t, std::less<>> &
    counters() const
    {
        return counters_;
    }
    const std::map<std::string, double, std::less<>> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Histogram, std::less<>> &histograms() const
    {
        return histograms_;
    }

    // --- per-iteration snapshots ---

    struct IterationSnapshot
    {
        int iteration = 0;
        /** Counter deltas since the previous snapshot + gauge values. */
        std::map<std::string, double> values;
    };

    void snapshotIteration(int iteration);
    const std::vector<IterationSnapshot> &iterations() const
    {
        return snapshots_;
    }

    /** Union of value names across all snapshots (CSV column set). */
    std::vector<std::string> snapshotColumns() const;

  private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    std::map<std::string, std::uint64_t, std::less<>> lastSnapshot_;
    std::vector<IterationSnapshot> snapshots_;
    bool enabled_ = false;
};

} // namespace capu::obs

#endif // CAPU_OBS_METRICS_HH
