/**
 * @file
 * capuscope — the observability facade.
 *
 * One Obs object bundles the event tracer and the metrics registry behind a
 * single level switch:
 *
 *   off     — everything disabled; instrumentation points cost one branch.
 *   metrics — registry on (counters/gauges/histograms, per-iteration
 *             snapshots); tracer off.
 *   full    — registry + ring-buffered event tracing (Chrome-trace export).
 *
 * The executor owns an Obs configured from ExecConfig::obsLevel and exposes
 * it through ExecContext, so policies instrument their decisions without
 * new plumbing. Code paths that run without an executor use
 * Obs::disabled(), a shared inert instance.
 *
 * Invariant (tested): no instrumentation point may read or advance
 * simulated time — observability must never change a simulated timestamp.
 */

#ifndef CAPU_OBS_OBS_HH
#define CAPU_OBS_OBS_HH

#include <optional>
#include <string_view>

#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace capu::obs
{

enum class ObsLevel
{
    Off,
    Metrics,
    Full,
};

const char *obsLevelName(ObsLevel level);
std::optional<ObsLevel> obsLevelFromString(std::string_view name);

class Obs
{
  public:
    Obs() = default;

    /** Set the level; reconfigures tracer/registry enablement. */
    void configure(ObsLevel level,
                   std::size_t ring_capacity = Tracer::kDefaultCapacity);

    ObsLevel level() const { return level_; }
    bool tracing() const { return level_ == ObsLevel::Full; }
    bool metricsOn() const { return level_ != ObsLevel::Off; }

    Tracer tracer;
    MetricsRegistry metrics;

    /** Shared inert instance for contexts with no observability attached. */
    static Obs &disabled();

  private:
    ObsLevel level_ = ObsLevel::Off;
};

} // namespace capu::obs

#endif // CAPU_OBS_OBS_HH
