/**
 * @file
 * Ring-buffered event tracer.
 *
 * Instrumentation points all over the pipeline (streams, PCIe lanes, the
 * executor's host loop, the allocator, the policies) record TraceEvents
 * here. The buffer is a fixed-capacity ring: recording is O(1), memory is
 * bounded, and when the ring wraps the *oldest* events are dropped — the
 * tail of a run is always intact, which is what post-mortem debugging
 * wants. Dropped events are counted and reported by the exporters.
 *
 * Events arrive in *emission* order, which is close to but not exactly
 * timestamp order (the host loop emits a kernel's interval at enqueue time,
 * which may predate an already-emitted transfer completion). Consumers that
 * need chronology use chronological(), a stable sort by tick.
 */

#ifndef CAPU_OBS_TRACER_HH
#define CAPU_OBS_TRACER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hh"

namespace capu::obs
{

class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    /** Disabled tracers drop every record() without touching the ring. */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Resize the ring; discards any buffered events. */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return capacity_; }

    /** Drop all buffered events and reset the drop counter. */
    void clear();

    /** Events currently buffered. */
    std::size_t size() const { return buf_.size(); }
    /** Events recorded since the last clear(), including dropped ones. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events evicted by ring wrap-around. */
    std::uint64_t dropped() const { return recorded_ - buf_.size(); }

    /** Human-readable name for a track (exported as thread_name). */
    void setTrackName(std::uint32_t track, std::string name);
    const std::vector<std::pair<std::uint32_t, std::string>> &
    trackNames() const
    {
        return trackNames_;
    }

    /**
     * Run-level metadata (seed, fault plan, ...) exported into the Chrome
     * trace's otherData so any artifact identifies the run that produced
     * it. Stored even while tracing is disabled. Re-setting a key
     * overwrites its value.
     */
    void setMeta(std::string key, std::string value);
    const std::vector<std::pair<std::string, std::string>> &
    meta() const
    {
        return meta_;
    }

    void record(TraceEvent ev);

    // --- convenience emitters (no-ops while disabled) ---

    void complete(std::uint32_t track, EventKind kind, Tick start, Tick dur,
                  std::string name, std::int64_t tensor = -1,
                  std::int64_t op = -1, std::uint64_t bytes = 0);

    void instant(std::uint32_t track, EventKind kind, Tick ts,
                 std::string name, std::int64_t tensor = -1,
                 std::int64_t op = -1, std::uint64_t bytes = 0);

    void counter(std::uint32_t track, Tick ts, std::string name,
                 double value);

    /** Open an async span; paired with spanEnd by (kind, id). `bytes`
     *  sizes the spanned object (tensor lifetime spans: alloc bytes) so
     *  post-hoc analyzers can weigh residency without the graph. */
    void spanBegin(EventKind kind, std::int64_t id, Tick ts,
                   std::string name, std::uint64_t bytes = 0);
    void spanEnd(EventKind kind, std::int64_t id, Tick ts, std::string name);

    /** Visit buffered events oldest-to-newest (emission order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (buf_.size() < capacity_) {
            for (const auto &ev : buf_)
                fn(ev);
            return;
        }
        for (std::size_t i = 0; i < buf_.size(); ++i)
            fn(buf_[(next_ + i) % buf_.size()]);
    }

    /**
     * Buffered events stable-sorted by timestamp. The sort is cached and
     * invalidated by record()/clear()/setCapacity(), so exporters and
     * analyzers that each walk the full ring share one sort. The reference
     * is invalidated by the next mutation.
     */
    const std::vector<TraceEvent> &chronological() const;

    /**
     * Copies of the events recorded at or after sequence number `mark`
     * (a prior recorded() value), in emission order. Events that have
     * already been evicted by ring wrap-around are silently missing —
     * callers sampling one iteration should size the ring accordingly.
     */
    std::vector<TraceEvent> eventsSince(std::uint64_t mark) const;

  private:
    std::vector<TraceEvent> buf_;
    mutable std::vector<TraceEvent> chrono_; ///< chronological() cache
    mutable bool chronoDirty_ = true;
    std::vector<std::pair<std::uint32_t, std::string>> trackNames_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::size_t capacity_;
    std::size_t next_ = 0; ///< overwrite cursor once the ring is full
    std::uint64_t recorded_ = 0;
    bool enabled_ = false;
};

} // namespace capu::obs

#endif // CAPU_OBS_TRACER_HH
