#include "obs/chrome_trace.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/logging.hh"

namespace capu::obs
{

namespace
{

/** Simulation ns -> trace µs, keeping full ns precision as fractions. */
std::string
micros(Tick ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

/**
 * Integral values (counters, byte totals) print exactly so the export
 * round-trips bit-for-bit through capuprof's importer; anything else gets
 * enough digits to reparse to the same double.
 */
std::string
jsonDouble(double v)
{
    char buf[40];
    if (v >= -9.2e18 && v <= 9.2e18 &&
        v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeCommonArgs(std::ostream &os, const TraceEvent &ev, bool &first)
{
    auto field = [&](const char *key, const std::string &val) {
        os << (first ? "" : ",") << '"' << key << "\":" << val;
        first = false;
    };
    if (ev.tensor >= 0)
        field("tensor", std::to_string(ev.tensor));
    if (ev.op >= 0)
        field("op", std::to_string(ev.op));
    if (ev.bytes != 0)
        field("bytes", std::to_string(ev.bytes));
}

void
writeEvent(std::ostream &os, const TraceEvent &ev)
{
    os << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
       << eventKindName(ev.kind) << "\",\"pid\":0,\"tid\":" << ev.track
       << ",\"ts\":" << micros(ev.ts);
    switch (ev.phase) {
      case EventPhase::Complete: {
        os << ",\"ph\":\"X\",\"dur\":" << micros(ev.dur);
        os << ",\"args\":{";
        bool first = true;
        writeCommonArgs(os, ev, first);
        os << "}";
        break;
      }
      case EventPhase::Instant: {
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        os << ",\"args\":{";
        bool first = true;
        writeCommonArgs(os, ev, first);
        if (ev.value != 0) { // access index: keeps the export lossless
            os << (first ? "" : ",") << "\"value\":" << jsonDouble(ev.value);
            first = false;
        }
        os << "}";
        break;
      }
      case EventPhase::Counter:
        os << ",\"ph\":\"C\",\"args\":{\"value\":" << jsonDouble(ev.value)
           << "}";
        break;
      case EventPhase::SpanBegin:
      case EventPhase::SpanEnd:
        os << ",\"ph\":\""
           << (ev.phase == EventPhase::SpanBegin ? 'b' : 'e')
           << "\",\"id\":" << ev.tensor << ",\"args\":{";
        if (ev.bytes != 0)
            os << "\"bytes\":" << ev.bytes;
        os << "}";
        break;
    }
    os << "}";
}

} // namespace

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"capusim\"}}";
    for (const auto &[track, name] : tracer.trackNames()) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
           << track << ",\"args\":{\"name\":\"" << jsonEscape(name)
           << "\"}}";
        sep();
        os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << track << ",\"args\":{\"sort_index\":" << track << "}}";
    }

    for (const auto &ev : tracer.chronological()) {
        sep();
        writeEvent(os, ev);
    }

    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"recorded\":"
       << tracer.recorded() << ",\"dropped\":" << tracer.dropped();
    for (const auto &[key, value] : tracer.meta()) {
        os << ",\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
           << "\"";
    }
    os << "}}\n";
}

bool
writeChromeTraceFile(const std::string &path, const Tracer &tracer)
{
    std::ofstream os(path);
    if (!os) {
        warn("obs: cannot open trace file '{}'", path);
        return false;
    }
    writeChromeTrace(os, tracer);
    if (tracer.dropped() > 0) {
        warn("obs: trace ring dropped {} of {} events (oldest first); "
             "profile/trace '{}' is truncated — raise --trace-cap",
             tracer.dropped(), tracer.recorded(), path);
    }
    return static_cast<bool>(os);
}

void
writeMetricsCsv(std::ostream &os, const MetricsRegistry &metrics)
{
    auto columns = metrics.snapshotColumns();
    os << "iteration";
    for (const auto &name : columns)
        os << ',' << name;
    os << '\n';
    for (const auto &snap : metrics.iterations()) {
        os << snap.iteration;
        for (const auto &name : columns) {
            os << ',';
            auto it = snap.values.find(name);
            if (it != snap.values.end())
                os << jsonDouble(it->second);
            else
                os << 0;
        }
        os << '\n';
    }
    // Histogram summary footer: full-run distributions don't fit the
    // per-iteration row model, so they ride along as comment rows.
    for (const auto &[name, hist] : metrics.histograms()) {
        os << "#histogram," << name << ",count=" << hist.count()
           << ",sum=" << hist.sum() << ",min=" << hist.min()
           << ",max=" << hist.max() << ",mean=" << jsonDouble(hist.mean())
           << ",p50=" << hist.p50() << ",p95=" << hist.p95()
           << ",p99=" << hist.p99() << '\n';
    }
}

void
writeMetricsJson(std::ostream &os, const MetricsRegistry &metrics)
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : metrics.counters()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : metrics.gauges()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << jsonDouble(value);
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : metrics.histograms()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << hist.count() << ", \"sum\": "
           << hist.sum() << ", \"min\": " << hist.min() << ", \"max\": "
           << hist.max() << ", \"mean\": " << jsonDouble(hist.mean())
           << ", \"p50\": " << hist.p50() << ", \"p95\": " << hist.p95()
           << ", \"p99\": " << hist.p99() << ", \"buckets\": [";
        for (std::size_t i = 0; i < hist.usedBuckets(); ++i)
            os << (i ? "," : "") << hist.bucket(i);
        os << "]}";
        first = false;
    }
    os << "\n  },\n  \"iterations\": [";
    first = true;
    for (const auto &snap : metrics.iterations()) {
        os << (first ? "\n" : ",\n") << "    {\"iteration\": "
           << snap.iteration;
        for (const auto &[name, value] : snap.values)
            os << ", \"" << jsonEscape(name) << "\": " << jsonDouble(value);
        os << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

bool
writeMetricsFile(const std::string &path, const MetricsRegistry &metrics)
{
    std::ofstream os(path);
    if (!os) {
        warn("obs: cannot open metrics file '{}'", path);
        return false;
    }
    bool json = path.size() >= 5 && path.compare(path.size() - 5, 5,
                                                 ".json") == 0;
    if (json)
        writeMetricsJson(os, metrics);
    else
        writeMetricsCsv(os, metrics);
    return static_cast<bool>(os);
}

} // namespace capu::obs
