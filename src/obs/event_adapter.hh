/**
 * @file
 * Trace → timeline adapter for capuverify's dynamic mode.
 *
 * The tracer's ring holds everything capuscope knows about a run. The
 * happens-before engine only needs the subset that orders memory traffic:
 * tensor accesses (compute-side touches), recompute replays, and the PCIe
 * transfers on the two lanes. This adapter flattens the ring into typed
 * TimelineRecords, chronologically ordered, so analysis code never parses
 * event labels or track ids itself.
 *
 * The ring drops its *oldest* events on wrap, so a timeline may begin
 * mid-iteration; consumers must tolerate unpaired traffic at the front
 * (the happens-before builder only forms edges between records it can
 * actually see).
 */

#ifndef CAPU_OBS_EVENT_ADAPTER_HH
#define CAPU_OBS_EVENT_ADAPTER_HH

#include <cstdint>
#include <vector>

#include "obs/tracer.hh"

namespace capu::obs
{

enum class TimelineKind : std::uint8_t
{
    Access,    ///< compute kernel touches a tensor (instant)
    Recompute, ///< lineage replay regenerates a tensor (interval)
    SwapOut,   ///< D2H transfer of a tensor (interval)
    SwapIn,    ///< H2D transfer of a tensor (interval)
};

const char *timelineKindName(TimelineKind kind);

struct TimelineRecord
{
    TimelineKind kind = TimelineKind::Access;
    std::int64_t tensor = -1;
    std::int64_t op = -1;
    Tick start = 0;
    Tick end = 0;        ///< == start for Access instants
    int accessIndex = 0; ///< Access records: 1-based index (1 = production)
    bool write = false;  ///< Access records: output access
    bool failed = false; ///< transfer aborted by an injected fault
    std::uint64_t bytes = 0;
};

/**
 * Filter + flatten a raw event list into timeline records, stable-sorted
 * by start tick (emission-order ties preserved).
 */
std::vector<TimelineRecord>
extractTimeline(const std::vector<TraceEvent> &events);

/** Convenience: extract from a tracer's buffered ring. */
std::vector<TimelineRecord> extractTimeline(const Tracer &tracer);

} // namespace capu::obs

#endif // CAPU_OBS_EVENT_ADAPTER_HH
