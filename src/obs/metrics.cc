#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <set>

namespace capu::obs
{

namespace
{

std::size_t
bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(value));
}

} // namespace

void
Histogram::observe(std::uint64_t value)
{
    std::size_t i = std::min<std::size_t>(bucketIndex(value), kBuckets - 1);
    ++buckets_[i];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::mean() const
{
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank target: the smallest rank r (1-based) with
    // cumulative(r) >= q * count.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        if (cum + buckets_[i] < rank) {
            cum += buckets_[i];
            continue;
        }
        if (i == 0)
            return std::max<std::uint64_t>(min(), 0);
        // Bucket i spans (2^(i-1), 2^i]; spread its occupants evenly.
        double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
        double hi = std::ldexp(1.0, static_cast<int>(i));
        double frac = static_cast<double>(rank - cum) /
                      static_cast<double>(buckets_[i]);
        auto v = static_cast<std::uint64_t>(lo + frac * (hi - lo));
        return std::clamp(v, min(), max_);
    }
    return max_;
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    return i < kBuckets ? buckets_[i] : 0;
}

Histogram
Histogram::deltaSince(const Histogram &prev) const
{
    Histogram d;
    for (std::size_t i = 0; i < kBuckets; ++i)
        d.buckets_[i] = buckets_[i] - prev.buckets_[i];
    d.count_ = count_ - prev.count_;
    d.sum_ = sum_ - prev.sum_;
    d.min_ = min_;
    d.max_ = max_;
    return d;
}

void
Histogram::merge(const Histogram &delta)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += delta.buckets_[i];
    count_ += delta.count_;
    sum_ += delta.sum_;
    min_ = std::min(min_, delta.min_);
    max_ = std::max(max_, delta.max_);
}

std::size_t
Histogram::usedBuckets() const
{
    std::size_t last = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets_[i] != 0)
            last = i + 1;
    }
    return last;
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    lastSnapshot_.clear();
    snapshots_.clear();
}

void
MetricsRegistry::add(std::string_view name, std::uint64_t delta)
{
    if (!enabled_)
        return;
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::setCounter(std::string_view name, std::uint64_t value)
{
    if (!enabled_)
        return;
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), value);
    else
        it->second = value;
}

void
MetricsRegistry::set(std::string_view name, double value)
{
    if (!enabled_)
        return;
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        gauges_.emplace(std::string(name), value);
    else
        it->second = value;
}

void
MetricsRegistry::observe(std::string_view name, std::uint64_t value)
{
    if (!enabled_)
        return;
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), Histogram{}).first;
    it->second.observe(value);
}

void
MetricsRegistry::mergeHistogram(std::string_view name,
                                const Histogram &delta)
{
    if (!enabled_)
        return;
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), Histogram{}).first;
    it->second.merge(delta);
}

std::uint64_t
MetricsRegistry::counter(std::string_view name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(std::string_view name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram *
MetricsRegistry::histogram(std::string_view name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::snapshotIteration(int iteration)
{
    if (!enabled_)
        return;
    IterationSnapshot snap;
    snap.iteration = iteration;
    for (const auto &[name, value] : counters_) {
        std::uint64_t prev = 0;
        auto it = lastSnapshot_.find(name);
        if (it != lastSnapshot_.end())
            prev = it->second;
        snap.values[name] = static_cast<double>(value - prev);
    }
    for (const auto &[name, value] : gauges_)
        snap.values[name] = value;
    lastSnapshot_ = counters_;
    snapshots_.push_back(std::move(snap));
}

std::vector<std::string>
MetricsRegistry::snapshotColumns() const
{
    std::set<std::string> names;
    for (const auto &snap : snapshots_) {
        for (const auto &[name, value] : snap.values)
            names.insert(name);
    }
    return {names.begin(), names.end()};
}

} // namespace capu::obs
