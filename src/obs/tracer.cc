#include "obs/tracer.hh"

#include <algorithm>

#include "support/logging.hh"

namespace capu::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Kernel: return "kernel";
      case EventKind::Recompute: return "recompute";
      case EventKind::Transfer: return "transfer";
      case EventKind::Sync: return "sync";
      case EventKind::Stall: return "stall";
      case EventKind::Access: return "access";
      case EventKind::OomStep: return "oom";
      case EventKind::Decision: return "decision";
      case EventKind::Plan: return "plan";
      case EventKind::Lifetime: return "tensor";
      case EventKind::Sample: return "sample";
      case EventKind::Marker: return "marker";
      case EventKind::Fault: return "fault";
      case EventKind::Recovery: return "recovery";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        fatal("tracer ring capacity must be nonzero");
}

void
Tracer::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        fatal("tracer ring capacity must be nonzero");
    capacity_ = capacity;
    clear();
}

void
Tracer::clear()
{
    buf_.clear();
    buf_.shrink_to_fit();
    chrono_.clear();
    chrono_.shrink_to_fit();
    chronoDirty_ = true;
    next_ = 0;
    recorded_ = 0;
}

void
Tracer::setTrackName(std::uint32_t track, std::string name)
{
    for (auto &[id, n] : trackNames_) {
        if (id == track) {
            n = std::move(name);
            return;
        }
    }
    trackNames_.emplace_back(track, std::move(name));
}

void
Tracer::setMeta(std::string key, std::string value)
{
    for (auto &[k, v] : meta_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    meta_.emplace_back(std::move(key), std::move(value));
}

void
Tracer::record(TraceEvent ev)
{
    if (!enabled_)
        return;
    ++recorded_;
    chronoDirty_ = true;
    if (buf_.size() < capacity_) {
        buf_.push_back(std::move(ev));
        return;
    }
    buf_[next_] = std::move(ev);
    next_ = (next_ + 1) % buf_.size();
}

void
Tracer::complete(std::uint32_t track, EventKind kind, Tick start, Tick dur,
                 std::string name, std::int64_t tensor, std::int64_t op,
                 std::uint64_t bytes)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.ts = start;
    ev.dur = dur;
    ev.track = track;
    ev.phase = EventPhase::Complete;
    ev.kind = kind;
    ev.tensor = tensor;
    ev.op = op;
    ev.bytes = bytes;
    ev.name = std::move(name);
    record(std::move(ev));
}

void
Tracer::instant(std::uint32_t track, EventKind kind, Tick ts,
                std::string name, std::int64_t tensor, std::int64_t op,
                std::uint64_t bytes)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.track = track;
    ev.phase = EventPhase::Instant;
    ev.kind = kind;
    ev.tensor = tensor;
    ev.op = op;
    ev.bytes = bytes;
    ev.name = std::move(name);
    record(std::move(ev));
}

void
Tracer::counter(std::uint32_t track, Tick ts, std::string name, double value)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.track = track;
    ev.phase = EventPhase::Counter;
    ev.kind = EventKind::Sample;
    ev.value = value;
    ev.name = std::move(name);
    record(std::move(ev));
}

void
Tracer::spanBegin(EventKind kind, std::int64_t id, Tick ts, std::string name,
                  std::uint64_t bytes)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.phase = EventPhase::SpanBegin;
    ev.kind = kind;
    ev.tensor = id;
    ev.bytes = bytes;
    ev.name = std::move(name);
    record(std::move(ev));
}

void
Tracer::spanEnd(EventKind kind, std::int64_t id, Tick ts, std::string name)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.phase = EventPhase::SpanEnd;
    ev.kind = kind;
    ev.tensor = id;
    ev.name = std::move(name);
    record(std::move(ev));
}

std::vector<TraceEvent>
Tracer::eventsSince(std::uint64_t mark) const
{
    std::vector<TraceEvent> out;
    // Sequence number of the oldest event still buffered.
    std::uint64_t oldest = recorded_ - buf_.size();
    if (mark >= recorded_)
        return out;
    std::uint64_t first = std::max(mark, oldest);
    out.reserve(static_cast<std::size_t>(recorded_ - first));
    std::uint64_t seq = oldest;
    forEach([&](const TraceEvent &ev) {
        if (seq >= first)
            out.push_back(ev);
        ++seq;
    });
    return out;
}

const std::vector<TraceEvent> &
Tracer::chronological() const
{
    if (!chronoDirty_)
        return chrono_;
    chrono_.clear();
    chrono_.reserve(buf_.size());
    forEach([&](const TraceEvent &ev) { chrono_.push_back(ev); });
    std::stable_sort(chrono_.begin(), chrono_.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts < b.ts;
                     });
    chronoDirty_ = false;
    return chrono_;
}

} // namespace capu::obs
