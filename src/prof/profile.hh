/**
 * @file
 * capuprof: post-hoc profile model built from the capuscope event stream.
 *
 * A Profile is everything the analytics CLI and the inline `capusim
 * --profile` summary report: wall-clock bucket attribution, per-iteration
 * windows with alignment digests, per-tensor cost accounting, per-op
 * compute totals, and the happens-before critical-path summary
 * (critical_path.hh). It is built purely from TraceEvents — the same
 * stream the Chrome-trace exporter writes — so profiles can be produced
 * live from a Tracer or offline from an exported trace file, and the
 * simulation is never perturbed (profiling is strictly post-hoc).
 *
 * Bucket taxonomy (the tentpole conservation property): the session
 * window [sessionBegin, sessionEnd] — first iteration begin to last
 * iteration end — is partitioned by a sweep over resource-occupancy
 * intervals with a fixed priority:
 *
 *   compute   > recompute  > swapStall  > oomStall   > idle
 *   (Kernel)    (Recompute)  (Stall)      (oom.wait-free)
 *
 * Every tick of the window lands in exactly one bucket, so the five
 * buckets sum to measured wall-clock *exactly* — the acceptance gate's
 * "within 1%" is satisfied by construction, and any violation indicates
 * a broken trace. PCIe lane occupancy is deliberately not a bucket:
 * transfer time only costs wall-clock when it surfaces as a Stall, which
 * is the paper's "overhead hidden under compute" claim made measurable.
 */

#ifndef CAPU_PROF_PROFILE_HH
#define CAPU_PROF_PROFILE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hh"
#include "obs/metrics.hh"
#include "prof/critical_path.hh"

namespace capu::obs
{
class Tracer;
} // namespace capu::obs

namespace capu::prof
{

/** Wall-clock partition; total() always equals the attributed window. */
struct Buckets
{
    Tick compute = 0;   ///< scheduled kernels occupying the compute stream
    Tick recompute = 0; ///< lineage-replay kernels (exposed recompute cost)
    Tick swapStall = 0; ///< host waits on swap-in/prefetch residency
    Tick oomStall = 0;  ///< allocator OOM protocol waiting on frees
    Tick idle = 0;      ///< window ticks not covered by any of the above

    Tick total() const
    {
        return compute + recompute + swapStall + oomStall + idle;
    }
    Buckets operator-(const Buckets &o) const; ///< saturating per-bucket
};

/** Prefetch outcome counts for one tensor's H2D traffic. */
struct PrefetchTimeliness
{
    int early = 0;  ///< arrived well before the back access (margin spare)
    int onTime = 0; ///< arrived before the access, inside the margin
    int late = 0;   ///< prefetch issued but the access still stalled
    int missed = 0; ///< no prefetch at all: on-demand swap-in

    int total() const { return early + onTime + late + missed; }
};

/** Cost/benefit ledger for one tensor's memory-management traffic. */
struct TensorAccount
{
    std::int64_t tensor = -1;
    std::string name;
    std::uint64_t bytes = 0; ///< wire bytes per transfer of this tensor

    std::uint64_t swapOutBytes = 0;
    std::uint64_t swapInBytes = 0;
    int swapOutCount = 0;
    int swapInCount = 0;

    Tick recomputeTicks = 0; ///< compute-stream time replaying lineage
    int recomputeOps = 0;
    Tick stallTicks = 0;     ///< host stalls charged to this tensor
    Tick transferTicks = 0;  ///< PCIe lane occupancy, both directions

    /**
     * Footprint relief: bytes x ticks spent off-device (OUT/DROPPED
     * lifetime spans) — what evicting this tensor bought.
     */
    double reliefByteTicks = 0;
    /** Overhead charged: exposed stalls + recompute replay time. */
    Tick overheadTicks = 0;

    bool residentAtPeak = false; ///< held device bytes at the peak sample
    PrefetchTimeliness prefetch;
};

/** Compute-stream totals for one scheduled op. */
struct OpAccount
{
    std::int64_t op = -1;
    std::string name;
    int count = 0;
    Tick computeTicks = 0;
};

/** One iteration window with its alignment digest and bucket split. */
struct IterationProfile
{
    int iteration = 0;
    Tick begin = 0;
    Tick end = 0;
    /**
     * FNV-1a over the iteration's events (iteration-relative ticks,
     * replay track excluded), so executed and capureplay-synthesized
     * iterations of the same steady state digest identically. Diff
     * alignment compares digest sequences index-by-index.
     */
    std::uint64_t digest = 0;
    /** Shape class from the drift track's marker; -1 on static runs. */
    int shapeClass = -1;
    Buckets buckets;
};

/**
 * Shape-class drift attribution (capudrift), built from the drift track's
 * markers. All-zero on static runs — the drift track is only named (and
 * its events only emitted) when the graph is dynamic.
 */
struct DriftSummary
{
    int classes = 0;    ///< distinct shape classes observed
    int novel = 0;      ///< first-measurement events (drift.novel)
    int remeasures = 0; ///< watchdog re-measurements (drift.remeasure)
    /** Iterations attributed to each class, indexed by class id. */
    std::vector<int> iterationsPerClass;
    /** Wall-clock per class (sum of its iteration windows). */
    std::vector<Tick> wallPerClass;
};

/**
 * Planning-service attribution (capuserve), filled from the service's
 * capu.serve.* counters. Absent (present=false, section omitted from the
 * JSON) unless the profiled run drove a PlanService.
 */
struct ServeSummary
{
    bool present = false;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t diskLoads = 0;
    std::uint64_t cacheEntries = 0;
    std::uint64_t cacheBytes = 0;
    double hitRate = 0.0;
};

struct Profile
{
    int schema = 1;
    /** Run identity carried over from the tracer's meta. */
    std::vector<std::pair<std::string, std::string>> meta;

    Tick sessionBegin = 0;
    Tick sessionEnd = 0;
    Tick wallTicks = 0; ///< sessionEnd - sessionBegin

    std::uint64_t events = 0;        ///< events the profile was built from
    std::uint64_t droppedEvents = 0; ///< ring drops reported by the source

    Buckets buckets;
    std::vector<IterationProfile> iterations;
    std::vector<TensorAccount> tensors; ///< ascending tensor id
    std::vector<OpAccount> ops;         ///< ascending op id
    CriticalPathSummary critical;
    DriftSummary drift;
    ServeSummary serve;

    std::uint64_t peakBytes = 0; ///< max gpu.bytes_in_use sample
    Tick peakTs = 0;

    /**
     * |wall - sum(buckets)| in ticks. Zero by construction on a healthy
     * trace; the CI conservation gate asserts <= 1% of wall.
     */
    Tick conservationError() const;
};

struct ProfileOptions
{
    /** Ring drops reported by the trace source (Tracer::dropped()). */
    std::uint64_t droppedEvents = 0;
    /** Run metadata to carry into the profile (Tracer::meta()). */
    std::vector<std::pair<std::string, std::string>> meta;
    /**
     * A prefetch completing more than this fraction of the mean
     * iteration duration before its back access counts as "early"
     * (pinned host memory held longer than useful).
     */
    double earlyMarginFrac = 0.10;
    /** Cap on materialized critical-path steps (totals stay exact). */
    std::size_t maxPathSteps = 64;
    bool withCriticalPath = true;
};

/**
 * Build a profile from a raw event stream (emission order is fine; the
 * builder sorts what it needs). Replay-track markers are excluded from
 * digests and buckets so replayed and executed runs profile identically.
 */
Profile buildProfile(const std::vector<obs::TraceEvent> &events,
                     const ProfileOptions &opts = {});

/** Convenience: profile a live tracer's ring (drops + meta carried over). */
/**
 * Lift a PlanService metrics registry's capu.serve.* counters and gauges
 * into a ServeSummary (present=true). The inverse of the JSON "serve"
 * section: attach the result to a Profile before writing it.
 */
ServeSummary serveSummaryFromMetrics(const obs::MetricsRegistry &metrics);

Profile buildProfile(const obs::Tracer &tracer,
                     const ProfileOptions &opts = {});

/**
 * Tensors ranked by overhead charged (stalls + recompute), heaviest
 * first; ties broken toward larger swap traffic, then lower id.
 */
std::vector<const TensorAccount *> rankTensors(const Profile &profile);

} // namespace capu::prof

#endif // CAPU_PROF_PROFILE_HH
