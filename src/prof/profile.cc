#include "prof/profile.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>

#include "obs/tracer.hh"
#include "support/rng.hh"

namespace capu::prof
{

namespace
{

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** "tensorname:PHASE" -> phase (after the last ':'); empty if malformed. */
std::string
spanPhase(const std::string &label)
{
    auto pos = label.rfind(':');
    return pos == std::string::npos ? std::string() : label.substr(pos + 1);
}

std::string
spanTensorName(const std::string &label)
{
    auto pos = label.rfind(':');
    return pos == std::string::npos ? label : label.substr(0, pos);
}

/** Bucket categories in sweep priority order (idle is the remainder). */
enum Cat : int
{
    kCompute = 0,
    kRecompute = 1,
    kOom = 2,
    kSwapStall = 3,
    kNumCats = 4,
};

struct Boundary
{
    Tick at = 0;
    int cat = 0;
    int delta = 0; ///< +1 open, -1 close
};

void
addBucket(Buckets &b, int cat, Tick amount)
{
    switch (cat) {
      case kCompute: b.compute += amount; break;
      case kRecompute: b.recompute += amount; break;
      case kOom: b.oomStall += amount; break;
      case kSwapStall: b.swapStall += amount; break;
      default: b.idle += amount; break;
    }
}

std::uint64_t
mixEvent(std::uint64_t h, const obs::TraceEvent &ev, Tick iterBegin)
{
    h = hashCombine(h, ev.track);
    h = hashCombine(h, static_cast<std::uint64_t>(ev.phase));
    h = hashCombine(h, static_cast<std::uint64_t>(ev.kind));
    h = hashCombine(h, static_cast<std::uint64_t>(ev.tensor + 1));
    h = hashCombine(h, static_cast<std::uint64_t>(ev.op + 1));
    h = hashCombine(h, ev.bytes);
    h = hashCombine(h, ev.ts - iterBegin); // shift-invariant (replay)
    h = hashCombine(h, ev.dur);
    std::uint64_t vb = 0;
    std::memcpy(&vb, &ev.value, sizeof(vb));
    h = hashCombine(h, vb);
    h = hashCombine(h, hashString(ev.name.c_str()));
    return h;
}

} // namespace

Buckets
Buckets::operator-(const Buckets &o) const
{
    auto sub = [](Tick a, Tick b) { return a >= b ? a - b : 0; };
    Buckets d;
    d.compute = sub(compute, o.compute);
    d.recompute = sub(recompute, o.recompute);
    d.swapStall = sub(swapStall, o.swapStall);
    d.oomStall = sub(oomStall, o.oomStall);
    d.idle = sub(idle, o.idle);
    return d;
}

Tick
Profile::conservationError() const
{
    Tick total = buckets.total();
    return total >= wallTicks ? total - wallTicks : wallTicks - total;
}

Profile
buildProfile(const std::vector<obs::TraceEvent> &events,
             const ProfileOptions &opts)
{
    Profile out;
    out.meta = opts.meta;
    out.droppedEvents = opts.droppedEvents;
    out.events = events.size();
    if (events.empty())
        return out;

    // Chronological working copy; the replay track carries synthesized-
    // iteration markers only and must not distinguish a replayed run
    // from an executed one.
    std::vector<const obs::TraceEvent *> evs;
    evs.reserve(events.size());
    for (const auto &ev : events) {
        if (ev.track != obs::kTrackReplay)
            evs.push_back(&ev);
    }
    std::stable_sort(evs.begin(), evs.end(),
                     [](const obs::TraceEvent *a, const obs::TraceEvent *b) {
                         return a->ts < b->ts;
                     });
    if (evs.empty())
        return out;

    // --- iteration windows + session window ---
    for (const obs::TraceEvent *ev : evs) {
        if (ev->phase == obs::EventPhase::Complete &&
            ev->kind == obs::EventKind::Marker &&
            startsWith(ev->name, "iteration:")) {
            IterationProfile it;
            it.iteration = std::atoi(ev->name.c_str() + 10);
            it.begin = ev->ts;
            it.end = ev->ts + ev->dur;
            out.iterations.push_back(it);
        }
    }
    std::sort(out.iterations.begin(), out.iterations.end(),
              [](const IterationProfile &a, const IterationProfile &b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.iteration < b.iteration;
              });
    if (!out.iterations.empty()) {
        out.sessionBegin = out.iterations.front().begin;
        out.sessionEnd = out.iterations.back().end;
    } else {
        // Aborted/partial run: attribute whatever the trace covers.
        out.sessionBegin = evs.front()->ts;
        out.sessionEnd = evs.front()->ts;
        for (const obs::TraceEvent *ev : evs)
            out.sessionEnd = std::max(out.sessionEnd, ev->ts + ev->dur);
    }
    out.wallTicks = out.sessionEnd - out.sessionBegin;

    // --- shape-class drift attribution (capudrift) ---
    // The drift track marks each iteration's class at its begin tick and
    // records novel-class / re-measurement decisions; static runs emit
    // nothing on it, leaving the summary all-zero.
    {
        std::vector<Tick> begins;
        begins.reserve(out.iterations.size());
        for (const auto &it : out.iterations)
            begins.push_back(it.begin);
        for (const obs::TraceEvent *ev : evs) {
            if (ev->track != obs::kTrackDrift)
                continue;
            if (startsWith(ev->name, "drift.class:")) {
                auto pos = std::upper_bound(begins.begin(), begins.end(),
                                            ev->ts);
                if (pos == begins.begin())
                    continue;
                std::size_t idx =
                    static_cast<std::size_t>(pos - begins.begin()) - 1;
                if (ev->ts < out.iterations[idx].end) {
                    out.iterations[idx].shapeClass =
                        std::atoi(ev->name.c_str() + 12);
                }
            } else if (startsWith(ev->name, "drift.novel")) {
                ++out.drift.novel;
            } else if (startsWith(ev->name, "drift.remeasure")) {
                ++out.drift.remeasures;
            }
        }
        for (const auto &it : out.iterations) {
            if (it.shapeClass < 0)
                continue;
            auto cls = static_cast<std::size_t>(it.shapeClass);
            if (out.drift.iterationsPerClass.size() <= cls) {
                out.drift.iterationsPerClass.resize(cls + 1, 0);
                out.drift.wallPerClass.resize(cls + 1, 0);
            }
            ++out.drift.iterationsPerClass[cls];
            out.drift.wallPerClass[cls] += it.end - it.begin;
        }
        for (int n : out.drift.iterationsPerClass)
            out.drift.classes += n > 0 ? 1 : 0;
    }

    // --- accounts keyed by tensor / op id ---
    std::map<std::int64_t, TensorAccount> tensors;
    std::map<std::int64_t, OpAccount> ops;
    auto tacc = [&](std::int64_t id) -> TensorAccount & {
        auto &acc = tensors[id];
        acc.tensor = id;
        return acc;
    };

    // --- single walk: occupancy intervals + per-tensor raw material ---
    std::vector<Boundary> bounds;
    // Per tensor: sorted access ticks, stall-end ticks, resident and
    // off-device (relief) lifetime intervals.
    std::unordered_map<std::int64_t, std::vector<Tick>> accesses;
    std::unordered_map<std::int64_t, std::vector<Tick>> stallEnds;
    struct Span
    {
        Tick begin = 0;
        std::string phase;
        std::uint64_t bytes = 0;
    };
    std::unordered_map<std::int64_t, Span> openSpans;
    struct Residency
    {
        Tick begin = 0;
        Tick end = 0;
    };
    std::unordered_map<std::int64_t, std::vector<Residency>> resident;
    struct H2d
    {
        std::int64_t tensor = -1;
        Tick start = 0;
        Tick end = 0;
        bool onDemand = false;
    };
    std::vector<H2d> h2ds;

    auto addInterval = [&](int cat, Tick a, Tick b) {
        a = std::max(a, out.sessionBegin);
        b = std::min(b, out.sessionEnd);
        if (a >= b)
            return;
        bounds.push_back({a, cat, +1});
        bounds.push_back({b, cat, -1});
    };
    auto closeSpan = [&](std::int64_t id, const Span &span, Tick endTs) {
        TensorAccount &acc = tacc(id);
        if (acc.bytes == 0)
            acc.bytes = span.bytes;
        if (span.phase == "OUT" || span.phase == "DROPPED") {
            acc.reliefByteTicks += static_cast<double>(span.bytes) *
                                   static_cast<double>(endTs - span.begin);
        } else if (!span.phase.empty()) {
            // IN / SWAPPING_IN / SWAPPING_OUT all hold device bytes.
            resident[id].push_back({span.begin, endTs});
        }
    };

    for (const obs::TraceEvent *pev : evs) {
        const obs::TraceEvent &ev = *pev;
        switch (ev.phase) {
          case obs::EventPhase::Complete:
            if (ev.track == obs::kTrackCompute) {
                if (ev.kind == obs::EventKind::Kernel) {
                    addInterval(kCompute, ev.ts, ev.ts + ev.dur);
                    if (ev.op >= 0) {
                        OpAccount &oa = ops[ev.op];
                        oa.op = ev.op;
                        if (oa.name.empty())
                            oa.name = ev.name;
                        ++oa.count;
                        oa.computeTicks += ev.dur;
                    }
                } else if (ev.kind == obs::EventKind::Recompute) {
                    addInterval(kRecompute, ev.ts, ev.ts + ev.dur);
                    if (ev.tensor >= 0) {
                        TensorAccount &acc = tacc(ev.tensor);
                        acc.recomputeTicks += ev.dur;
                        ++acc.recomputeOps;
                    }
                }
            } else if (ev.track == obs::kTrackHost) {
                if (ev.kind == obs::EventKind::Stall) {
                    addInterval(kSwapStall, ev.ts, ev.ts + ev.dur);
                    if (ev.tensor >= 0) {
                        TensorAccount &acc = tacc(ev.tensor);
                        acc.stallTicks += ev.dur;
                        if (startsWith(ev.name, "stall:") &&
                            acc.name.empty())
                            acc.name = ev.name.substr(6);
                        stallEnds[ev.tensor].push_back(ev.ts + ev.dur);
                    }
                } else if (ev.kind == obs::EventKind::OomStep) {
                    addInterval(kOom, ev.ts, ev.ts + ev.dur);
                }
            } else if (ev.track == obs::kTrackD2H ||
                       ev.track == obs::kTrackH2D) {
                if (ev.kind != obs::EventKind::Transfer || ev.tensor < 0)
                    break;
                TensorAccount &acc = tacc(ev.tensor);
                acc.transferTicks += ev.dur;
                if (endsWith(ev.name, "!fail"))
                    break; // occupancy only: the copy never completed
                acc.bytes = std::max(acc.bytes, ev.bytes);
                if (ev.track == obs::kTrackD2H) {
                    acc.swapOutBytes += ev.bytes;
                    ++acc.swapOutCount;
                    if (acc.name.empty()) {
                        if (startsWith(ev.name, "swapout:"))
                            acc.name = ev.name.substr(8);
                        else if (startsWith(ev.name, "oom-swapout:"))
                            acc.name = ev.name.substr(12);
                    }
                } else {
                    acc.swapInBytes += ev.bytes;
                    ++acc.swapInCount;
                    bool onDemand = startsWith(ev.name, "swapin:");
                    if (acc.name.empty()) {
                        acc.name = ev.name.substr(onDemand ? 7 : 9);
                    }
                    h2ds.push_back(
                        {ev.tensor, ev.ts, ev.ts + ev.dur, onDemand});
                }
            }
            break;

          case obs::EventPhase::Instant:
            if (ev.kind == obs::EventKind::Access && ev.tensor >= 0)
                accesses[ev.tensor].push_back(ev.ts);
            break;

          case obs::EventPhase::Counter:
            if (ev.track == obs::kTrackMemory &&
                ev.name == "gpu.bytes_in_use") {
                auto sampled = static_cast<std::uint64_t>(ev.value);
                if (sampled > out.peakBytes) {
                    out.peakBytes = sampled;
                    out.peakTs = ev.ts;
                }
            }
            break;

          case obs::EventPhase::SpanBegin:
            if (ev.kind == obs::EventKind::Lifetime) {
                auto it = openSpans.find(ev.tensor);
                if (it != openSpans.end())
                    closeSpan(ev.tensor, it->second, ev.ts);
                Span span;
                span.begin = ev.ts;
                span.phase = spanPhase(ev.name);
                span.bytes = ev.bytes;
                if (tacc(ev.tensor).name.empty())
                    tacc(ev.tensor).name = spanTensorName(ev.name);
                openSpans[ev.tensor] = std::move(span);
            }
            break;

          case obs::EventPhase::SpanEnd:
            if (ev.kind == obs::EventKind::Lifetime) {
                auto it = openSpans.find(ev.tensor);
                if (it != openSpans.end()) {
                    closeSpan(ev.tensor, it->second, ev.ts);
                    openSpans.erase(it);
                }
            }
            break;
        }
    }
    // Spans still open when the trace ends extend to the session edge.
    for (auto &[id, span] : openSpans)
        closeSpan(id, span, out.sessionEnd);

    // --- bucket sweep ---
    // Iteration edges join the boundary set so no segment straddles an
    // iteration window; every tick of [sessionBegin, sessionEnd] lands in
    // exactly one bucket, which is the conservation property the tests
    // and the CI smoke check assert.
    for (const auto &it : out.iterations) {
        bounds.push_back({it.begin, 0, 0});
        bounds.push_back({it.end, 0, 0});
    }
    std::sort(bounds.begin(), bounds.end(),
              [](const Boundary &a, const Boundary &b) {
                  return a.at < b.at;
              });
    std::size_t iterIdx = 0;
    int active[kNumCats] = {};
    Tick cursor = out.sessionBegin;
    std::size_t bi = 0;
    while (cursor < out.sessionEnd) {
        // Apply every boundary at `cursor`, then extend to the next one.
        for (; bi < bounds.size() && bounds[bi].at <= cursor; ++bi)
            active[bounds[bi].cat] += bounds[bi].delta;
        Tick next = bi < bounds.size()
                        ? std::min(bounds[bi].at, out.sessionEnd)
                        : out.sessionEnd;
        if (next <= cursor) {
            cursor = next == cursor ? next + 1 : next;
            continue;
        }
        int cat = kNumCats; // idle
        for (int c = 0; c < kNumCats; ++c) {
            if (active[c] > 0) {
                cat = c;
                break;
            }
        }
        Tick amount = next - cursor;
        addBucket(out.buckets, cat, amount);
        while (iterIdx < out.iterations.size() &&
               out.iterations[iterIdx].end <= cursor)
            ++iterIdx;
        if (iterIdx < out.iterations.size() &&
            out.iterations[iterIdx].begin <= cursor &&
            cursor < out.iterations[iterIdx].end)
            addBucket(out.iterations[iterIdx].buckets, cat, amount);
        cursor = next;
    }

    // --- iteration digests ---
    if (!out.iterations.empty()) {
        std::vector<Tick> begins;
        begins.reserve(out.iterations.size());
        for (const auto &it : out.iterations)
            begins.push_back(it.begin);
        for (auto &it : out.iterations)
            it.digest = 1469598103934665603ull; // FNV-1a offset basis
        for (const obs::TraceEvent *ev : evs) {
            auto pos = std::upper_bound(begins.begin(), begins.end(),
                                        ev->ts);
            if (pos == begins.begin())
                continue; // before the first iteration
            std::size_t idx =
                static_cast<std::size_t>(pos - begins.begin()) - 1;
            IterationProfile &it = out.iterations[idx];
            if (ev->ts >= it.end)
                continue; // inter-iteration gap
            it.digest = mixEvent(it.digest, *ev, it.begin);
        }
    }

    // --- prefetch timeliness ---
    for (auto &[id, ts] : accesses)
        std::sort(ts.begin(), ts.end());
    double meanIter =
        out.iterations.empty()
            ? static_cast<double>(out.wallTicks)
            : static_cast<double>(out.wallTicks) /
                  static_cast<double>(out.iterations.size());
    Tick earlyMargin = static_cast<Tick>(meanIter * opts.earlyMarginFrac);
    for (const H2d &tr : h2ds) {
        TensorAccount &acc = tacc(tr.tensor);
        if (tr.onDemand) {
            ++acc.prefetch.missed;
            continue;
        }
        auto se = stallEnds.find(tr.tensor);
        bool late = false;
        if (se != stallEnds.end()) {
            // A prefetch the back access still waited on emits a Stall
            // whose end is exactly the transfer's completion tick.
            late = std::find(se->second.begin(), se->second.end(),
                             tr.end) != se->second.end();
        }
        if (late) {
            ++acc.prefetch.late;
            continue;
        }
        const auto &acc_ts = accesses[tr.tensor];
        auto next = std::lower_bound(acc_ts.begin(), acc_ts.end(), tr.end);
        if (next == acc_ts.end()) {
            ++acc.prefetch.early; // fetched, never read before trace end
            continue;
        }
        Tick margin = *next - tr.end;
        if (margin > earlyMargin)
            ++acc.prefetch.early;
        else
            ++acc.prefetch.onTime;
    }

    // --- peak residency + finalization ---
    for (auto &[id, acc] : tensors) {
        auto it = resident.find(id);
        if (it != resident.end()) {
            for (const auto &r : it->second) {
                if (r.begin <= out.peakTs && out.peakTs < r.end) {
                    acc.residentAtPeak = true;
                    break;
                }
            }
        }
        acc.overheadTicks = acc.stallTicks + acc.recomputeTicks;
        if (acc.name.empty())
            acc.name = "tensor" + std::to_string(id);
    }

    out.tensors.reserve(tensors.size());
    for (auto &[id, acc] : tensors)
        out.tensors.push_back(std::move(acc));
    out.ops.reserve(ops.size());
    for (auto &[id, oa] : ops)
        out.ops.push_back(std::move(oa));

    if (opts.withCriticalPath) {
        out.critical = computeCriticalPath(events, opts.maxPathSteps);
    }
    return out;
}

Profile
buildProfile(const obs::Tracer &tracer, const ProfileOptions &opts)
{
    ProfileOptions effective = opts;
    effective.droppedEvents = tracer.dropped();
    if (effective.meta.empty())
        effective.meta = tracer.meta();
    return buildProfile(tracer.chronological(), effective);
}

std::vector<const TensorAccount *>
rankTensors(const Profile &profile)
{
    std::vector<const TensorAccount *> ranked;
    ranked.reserve(profile.tensors.size());
    for (const auto &acc : profile.tensors)
        ranked.push_back(&acc);
    std::sort(ranked.begin(), ranked.end(),
              [](const TensorAccount *a, const TensorAccount *b) {
                  if (a->overheadTicks != b->overheadTicks)
                      return a->overheadTicks > b->overheadTicks;
                  std::uint64_t sa = a->swapOutBytes + a->swapInBytes;
                  std::uint64_t sb = b->swapOutBytes + b->swapInBytes;
                  if (sa != sb)
                      return sa > sb;
                  return a->tensor < b->tensor;
              });
    return ranked;
}

ServeSummary
serveSummaryFromMetrics(const obs::MetricsRegistry &metrics)
{
    ServeSummary s;
    s.present = true;
    s.hits = metrics.counter("capu.serve.hit");
    s.misses = metrics.counter("capu.serve.miss");
    s.evictions = metrics.counter("capu.serve.evict");
    s.diskLoads = metrics.counter("capu.serve.disk_load");
    s.cacheEntries = static_cast<std::uint64_t>(
        metrics.gauge("capu.serve.cache.entries"));
    s.cacheBytes = static_cast<std::uint64_t>(
        metrics.gauge("capu.serve.cache.bytes"));
    s.hitRate = metrics.gauge("capu.serve.hit_rate");
    return s;
}

} // namespace capu::prof
