/**
 * @file
 * capuprof report rendering + profile JSON persistence.
 *
 * One Profile, three renderings: `text` (aligned tables for terminals),
 * `markdown` (CI artifacts / PR comments), `json` (machine-readable; the
 * input format of `capuprof diff` and loadProfileJson). The JSON schema
 * is versioned via the top-level "capuprof" field; digests are serialized
 * as fixed-width hex strings because they do not fit a double.
 */

#ifndef CAPU_PROF_REPORT_HH
#define CAPU_PROF_REPORT_HH

#include <iosfwd>
#include <string>

#include "prof/profile.hh"

namespace capu::prof
{

enum class ReportFormat
{
    Text,
    Markdown,
    Json,
};

/** Parse "text" / "md" / "markdown" / "json"; false on anything else. */
bool parseReportFormat(const std::string &name, ReportFormat &out);

/** Render `profile` to `os`; `topK` caps the costly-tensor table. */
void renderProfile(std::ostream &os, const Profile &profile,
                   ReportFormat format, std::size_t topK = 10);

/** The JSON rendering, to a file. False (with warn) on I/O failure. */
bool writeProfileJsonFile(const std::string &path, const Profile &profile);

/**
 * Load a profile previously written by the JSON renderer. Returns false
 * (reason in *err when provided) on I/O, parse, or schema mismatch.
 */
bool loadProfileJson(const std::string &path, Profile &out,
                     std::string *err = nullptr);

} // namespace capu::prof

#endif // CAPU_PROF_REPORT_HH
