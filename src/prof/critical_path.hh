/**
 * @file
 * Critical-path analysis over the dynamic happens-before DAG.
 *
 * capuverify already reconstructs the run's ordering graph from the trace
 * (event_adapter timeline -> buildTraceEventGraph): kernel accesses,
 * recompute replays, and swap transfers as point/interval events joined
 * by the executor's seven ordering rules. capuprof reuses that graph for
 * a PERT pass: with observed start/end ticks as the schedule, compute
 * each event's *slack* (how much later it could have finished without
 * moving the makespan) and extract one longest chain — the sequence of
 * memory-traffic events that actually gated the run.
 *
 * Scope note: the HB DAG orders *memory traffic*; scheduled kernels only
 * appear as access instants. So the critical path explains which swaps
 * and recomputes were ordering-critical (and how much of the path was
 * transfer vs replay vs wait), while the wall-clock bucket taxonomy in
 * profile.hh owns the conservation claim.
 */

#ifndef CAPU_PROF_CRITICAL_PATH_HH
#define CAPU_PROF_CRITICAL_PATH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace capu
{
struct HbAnalysis;
} // namespace capu

namespace capu::prof
{

/** One hop of the extracted longest chain. */
struct CriticalPathStep
{
    std::string op;     ///< hbOpName: KernelAccess, SwapInEnd, ...
    std::string stream; ///< hbStreamName: compute, d2h, h2d, deferred
    std::int64_t tensor = -1;
    std::int64_t opId = -1;
    Tick start = 0;
    Tick end = 0;
    /** Gap between the predecessor step's end and this step's start. */
    Tick wait = 0;
};

struct CriticalPathSummary
{
    bool valid = false; ///< false: no moving tensors, or a cyclic graph
    Tick makespan = 0;  ///< last HB event end - first HB event start

    std::size_t events = 0;
    std::size_t edges = 0;
    std::size_t zeroSlack = 0; ///< events that could not slip at all
    Tick maxSlack = 0;

    /** Path-time composition (sums over the extracted chain). */
    Tick onPathTransfer = 0;  ///< inside SwapOut/SwapIn start->end hops
    Tick onPathRecompute = 0; ///< RecomputeKernel durations on the path
    Tick onPathWait = 0;      ///< gaps not explained by either

    std::size_t pathLength = 0;           ///< full chain length
    std::vector<CriticalPathStep> steps;  ///< capped materialization
};

/**
 * Run the PERT pass over an already-built HB graph. `maxSteps` caps the
 * materialized chain (composition totals always cover the whole chain).
 */
CriticalPathSummary
computeCriticalPath(const HbAnalysis &hb, std::size_t maxSteps);

/** Convenience: extract the timeline, build the HB graph, analyze. */
CriticalPathSummary
computeCriticalPath(const std::vector<obs::TraceEvent> &events,
                    std::size_t maxSteps = 64);

} // namespace capu::prof

#endif // CAPU_PROF_CRITICAL_PATH_HH
