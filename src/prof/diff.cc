#include "prof/diff.hh"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/chrome_trace.hh"
#include "stats/table.hh"
#include "support/units.hh"

namespace capu::prof
{

namespace
{

std::int64_t
sub(std::uint64_t b, std::uint64_t a)
{
    return static_cast<std::int64_t>(b) - static_cast<std::int64_t>(a);
}

SignedBuckets
diffBuckets(const Buckets &a, const Buckets &b)
{
    SignedBuckets d;
    d.compute = sub(b.compute, a.compute);
    d.recompute = sub(b.recompute, a.recompute);
    d.swapStall = sub(b.swapStall, a.swapStall);
    d.oomStall = sub(b.oomStall, a.oomStall);
    d.idle = sub(b.idle, a.idle);
    return d;
}

std::string
deltaMs(std::int64_t ns)
{
    double v = static_cast<double>(ns) / 1e6;
    return (ns > 0 ? "+" : "") + cellDouble(v, 3);
}

} // namespace

ProfileDiff
diffProfiles(const Profile &a, const Profile &b)
{
    ProfileDiff d;
    d.wallDelta = sub(b.wallTicks, a.wallTicks);
    d.buckets = diffBuckets(a.buckets, b.buckets);
    d.iterationsA = a.iterations.size();
    d.iterationsB = b.iterations.size();

    // --- digest alignment ---
    std::size_t common = std::min(d.iterationsA, d.iterationsB);
    for (std::size_t i = 0; i < common; ++i) {
        if (a.iterations[i].digest != b.iterations[i].digest) {
            d.firstDivergingIteration = static_cast<std::int64_t>(i);
            d.divergingIterationBuckets = diffBuckets(
                a.iterations[i].buckets, b.iterations[i].buckets);
            break;
        }
    }
    if (d.firstDivergingIteration < 0 && d.iterationsA != d.iterationsB)
        d.firstDivergingIteration = static_cast<std::int64_t>(common);

    // --- per-tensor deltas ---
    std::map<std::int64_t, const TensorAccount *> ta;
    std::map<std::int64_t, const TensorAccount *> tb;
    for (const auto &acc : a.tensors)
        ta[acc.tensor] = &acc;
    for (const auto &acc : b.tensors)
        tb[acc.tensor] = &acc;
    static const TensorAccount kEmptyTensor;
    std::map<std::int64_t, std::pair<const TensorAccount *,
                                     const TensorAccount *>> joined;
    for (const auto &[id, acc] : ta)
        joined[id] = {acc, &kEmptyTensor};
    for (const auto &[id, acc] : tb) {
        auto it = joined.find(id);
        if (it == joined.end())
            joined[id] = {&kEmptyTensor, acc};
        else
            it->second.second = acc;
    }
    for (const auto &[id, pair] : joined) {
        const TensorAccount &ia = *pair.first;
        const TensorAccount &ib = *pair.second;
        TensorDelta td;
        td.tensor = id;
        td.name = !ib.name.empty() ? ib.name : ia.name;
        td.overheadDelta = sub(ib.overheadTicks, ia.overheadTicks);
        td.stallDelta = sub(ib.stallTicks, ia.stallTicks);
        td.recomputeDelta = sub(ib.recomputeTicks, ia.recomputeTicks);
        td.swapCountDelta =
            (ib.swapOutCount + ib.swapInCount) -
            (ia.swapOutCount + ia.swapInCount);
        td.swapBytesDelta = sub(ib.swapOutBytes + ib.swapInBytes,
                                ia.swapOutBytes + ia.swapInBytes);
        td.lateDelta = ib.prefetch.late - ia.prefetch.late;
        td.missedDelta = ib.prefetch.missed - ia.prefetch.missed;
        bool nonzero = td.overheadDelta || td.stallDelta ||
                       td.recomputeDelta || td.swapCountDelta ||
                       td.swapBytesDelta || td.lateDelta || td.missedDelta;
        if (!nonzero)
            continue;
        if (d.firstDivergingTensor < 0) {
            d.firstDivergingTensor = id;
            d.firstDivergingTensorName = td.name;
        }
        d.tensors.push_back(std::move(td));
    }
    std::sort(d.tensors.begin(), d.tensors.end(),
              [](const TensorDelta &x, const TensorDelta &y) {
                  auto ax = std::abs(x.overheadDelta);
                  auto ay = std::abs(y.overheadDelta);
                  return ax != ay ? ax > ay : x.tensor < y.tensor;
              });

    // --- per-op deltas (ascending op id == schedule order) ---
    std::map<std::int64_t, const OpAccount *> oa;
    std::map<std::int64_t, const OpAccount *> ob;
    for (const auto &acc : a.ops)
        oa[acc.op] = &acc;
    for (const auto &acc : b.ops)
        ob[acc.op] = &acc;
    static const OpAccount kEmptyOp;
    std::map<std::int64_t, std::pair<const OpAccount *, const OpAccount *>>
        joinedOps;
    for (const auto &[id, acc] : oa)
        joinedOps[id] = {acc, &kEmptyOp};
    for (const auto &[id, acc] : ob) {
        auto it = joinedOps.find(id);
        if (it == joinedOps.end())
            joinedOps[id] = {&kEmptyOp, acc};
        else
            it->second.second = acc;
    }
    for (const auto &[id, pair] : joinedOps) {
        const OpAccount &ia = *pair.first;
        const OpAccount &ib = *pair.second;
        OpDelta od;
        od.op = id;
        od.name = !ib.name.empty() ? ib.name : ia.name;
        od.countDelta = ib.count - ia.count;
        od.computeDelta = sub(ib.computeTicks, ia.computeTicks);
        if (od.countDelta == 0 && od.computeDelta == 0)
            continue;
        if (d.firstDivergingOp < 0) {
            d.firstDivergingOp = id;
            d.firstDivergingOpName = od.name;
        }
        d.ops.push_back(std::move(od));
    }

    d.identical = d.wallDelta == 0 && d.buckets.zero() &&
                  d.firstDivergingIteration < 0 && d.tensors.empty() &&
                  d.ops.empty();
    return d;
}

void
renderDiff(std::ostream &os, const Profile &a, const Profile &b,
           const ProfileDiff &diff, ReportFormat format)
{
    if (format == ReportFormat::Json) {
        os << "{\n  \"identical\": " << (diff.identical ? "true" : "false")
           << ",\n  \"wall_delta_ns\": " << diff.wallDelta
           << ",\n  \"buckets\": {\"compute\": " << diff.buckets.compute
           << ", \"recompute\": " << diff.buckets.recompute
           << ", \"swap_stall\": " << diff.buckets.swapStall
           << ", \"oom_stall\": " << diff.buckets.oomStall
           << ", \"idle\": " << diff.buckets.idle
           << "},\n  \"iterations\": {\"a\": " << diff.iterationsA
           << ", \"b\": " << diff.iterationsB
           << ", \"first_diverging\": " << diff.firstDivergingIteration
           << "},\n  \"first_diverging_op\": " << diff.firstDivergingOp
           << ",\n  \"first_diverging_tensor\": "
           << diff.firstDivergingTensor << ",\n  \"tensors\": [";
        bool first = true;
        for (const auto &td : diff.tensors) {
            os << (first ? "\n" : ",\n") << "    {\"tensor\": "
               << td.tensor << ", \"name\": \"" << obs::jsonEscape(td.name)
               << "\", \"overhead_delta_ns\": " << td.overheadDelta
               << ", \"stall_delta_ns\": " << td.stallDelta
               << ", \"recompute_delta_ns\": " << td.recomputeDelta
               << ", \"swap_count_delta\": " << td.swapCountDelta
               << ", \"swap_bytes_delta\": " << td.swapBytesDelta
               << ", \"late_delta\": " << td.lateDelta
               << ", \"missed_delta\": " << td.missedDelta << "}";
            first = false;
        }
        os << "\n  ],\n  \"ops\": [";
        first = true;
        for (const auto &od : diff.ops) {
            os << (first ? "\n" : ",\n") << "    {\"op\": " << od.op
               << ", \"name\": \"" << obs::jsonEscape(od.name)
               << "\", \"count_delta\": " << od.countDelta
               << ", \"compute_delta_ns\": " << od.computeDelta << "}";
            first = false;
        }
        os << "\n  ]\n}\n";
        return;
    }

    bool md = format == ReportFormat::Markdown;
    os << (md ? "# capuprof diff\n\n" : "capuprof diff\n");
    os << (md ? "- " : "  ") << "verdict: "
       << (diff.identical ? "IDENTICAL" : "DIFFERS") << "\n";
    os << (md ? "- " : "  ") << "wall: " << cellDouble(ticksToMs(a.wallTicks), 3)
       << " ms -> " << cellDouble(ticksToMs(b.wallTicks), 3) << " ms ("
       << deltaMs(diff.wallDelta) << " ms)\n";
    os << (md ? "- " : "  ") << "iterations: " << diff.iterationsA
       << " vs " << diff.iterationsB;
    if (diff.firstDivergingIteration >= 0)
        os << ", first diverging iteration: "
           << diff.firstDivergingIteration;
    os << "\n";
    if (diff.firstDivergingOp >= 0) {
        os << (md ? "- " : "  ") << "first diverging op: "
           << diff.firstDivergingOpName << " (op "
           << diff.firstDivergingOp << ")\n";
    }
    if (diff.firstDivergingTensor >= 0) {
        os << (md ? "- " : "  ") << "first diverging tensor: "
           << diff.firstDivergingTensorName << " (tensor "
           << diff.firstDivergingTensor << ")\n";
    }
    if (diff.identical)
        return;

    os << (md ? "\n## bucket deltas\n\n" : "\nbucket deltas\n");
    Table buckets({"bucket", "a(ms)", "b(ms)", "delta(ms)"});
    struct Row
    {
        const char *label;
        Tick Buckets::*field;
        std::int64_t SignedBuckets::*delta;
    };
    static const Row rows[] = {
        {"compute", &Buckets::compute, &SignedBuckets::compute},
        {"recompute", &Buckets::recompute, &SignedBuckets::recompute},
        {"swap-in stall", &Buckets::swapStall, &SignedBuckets::swapStall},
        {"oom protocol", &Buckets::oomStall, &SignedBuckets::oomStall},
        {"idle", &Buckets::idle, &SignedBuckets::idle},
    };
    for (const auto &row : rows) {
        buckets.addRow({row.label,
                        cellDouble(ticksToMs(a.buckets.*row.field), 3),
                        cellDouble(ticksToMs(b.buckets.*row.field), 3),
                        deltaMs(diff.buckets.*row.delta)});
    }
    buckets.print(os);

    if (!diff.tensors.empty()) {
        os << (md ? "\n## tensor deltas\n\n" : "\ntensor deltas\n");
        Table tt({"tensor", "overhead(ms)", "stall(ms)", "recompute(ms)",
                  "swaps", "late", "missed"});
        std::size_t shown = 0;
        for (const auto &td : diff.tensors) {
            if (++shown > 15)
                break;
            tt.addRow({td.name, deltaMs(td.overheadDelta),
                       deltaMs(td.stallDelta), deltaMs(td.recomputeDelta),
                       cellInt(td.swapCountDelta), cellInt(td.lateDelta),
                       cellInt(td.missedDelta)});
        }
        tt.print(os);
        if (diff.tensors.size() > 15)
            os << "(" << diff.tensors.size() - 15 << " more)\n";
    }
    if (!diff.ops.empty()) {
        os << (md ? "\n## op deltas\n\n" : "\nop deltas\n");
        Table ot({"op", "count", "compute(ms)"});
        std::size_t shown = 0;
        for (const auto &od : diff.ops) {
            if (++shown > 15)
                break;
            ot.addRow({od.name, cellInt(od.countDelta),
                       deltaMs(od.computeDelta)});
        }
        ot.print(os);
        if (diff.ops.size() > 15)
            os << "(" << diff.ops.size() - 15 << " more)\n";
    }
}

} // namespace capu::prof
