/**
 * @file
 * Differential profiling: align two runs, localize the regression.
 *
 * Alignment reuses capureplay's idea of an iteration digest: each
 * profile's iterations carry an FNV-1a hash of their (iteration-relative)
 * event stream, so two runs of the same workload align index-by-index
 * and the first index whose digests differ is the first iteration where
 * the runs actually did something different — long before the aggregate
 * numbers drift. On top of that, per-bucket and per-tensor/per-op deltas
 * say *where* the extra time went, and the lowest-id diverging op/tensor
 * localizes the first schedule point that changed.
 *
 * All deltas are B minus A (positive = B spent more).
 */

#ifndef CAPU_PROF_DIFF_HH
#define CAPU_PROF_DIFF_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "prof/report.hh"

namespace capu::prof
{

struct SignedBuckets
{
    std::int64_t compute = 0;
    std::int64_t recompute = 0;
    std::int64_t swapStall = 0;
    std::int64_t oomStall = 0;
    std::int64_t idle = 0;

    bool zero() const
    {
        return compute == 0 && recompute == 0 && swapStall == 0 &&
               oomStall == 0 && idle == 0;
    }
};

struct TensorDelta
{
    std::int64_t tensor = -1;
    std::string name;
    std::int64_t overheadDelta = 0; ///< stall + recompute, ns
    std::int64_t stallDelta = 0;
    std::int64_t recomputeDelta = 0;
    std::int64_t swapCountDelta = 0; ///< out + in transfer count
    std::int64_t swapBytesDelta = 0;
    std::int64_t lateDelta = 0;   ///< prefetch-late count
    std::int64_t missedDelta = 0; ///< on-demand swap-in count
};

struct OpDelta
{
    std::int64_t op = -1;
    std::string name;
    std::int64_t countDelta = 0;
    std::int64_t computeDelta = 0; ///< ns
};

struct ProfileDiff
{
    /** True iff every delta below is zero and all digests align. */
    bool identical = false;

    std::int64_t wallDelta = 0;
    SignedBuckets buckets;

    std::size_t iterationsA = 0;
    std::size_t iterationsB = 0;
    /**
     * Index of the first iteration whose digests differ (or the common
     * length when one run simply has more iterations); -1 when fully
     * aligned.
     */
    std::int64_t firstDivergingIteration = -1;
    /** Bucket deltas at that iteration (zero when aligned). */
    SignedBuckets divergingIterationBuckets;

    /** Nonzero rows only, by |overheadDelta| descending. */
    std::vector<TensorDelta> tensors;
    /** Nonzero rows only, ascending op id (schedule order). */
    std::vector<OpDelta> ops;

    /** Lowest-id op/tensor with any delta: the first schedule point
     *  that changed. -1 when none. */
    std::int64_t firstDivergingOp = -1;
    std::string firstDivergingOpName;
    std::int64_t firstDivergingTensor = -1;
    std::string firstDivergingTensorName;
};

ProfileDiff diffProfiles(const Profile &a, const Profile &b);

/** Render the diff (text/markdown for humans, json for machines). */
void renderDiff(std::ostream &os, const Profile &a, const Profile &b,
                const ProfileDiff &diff, ReportFormat format);

} // namespace capu::prof

#endif // CAPU_PROF_DIFF_HH
