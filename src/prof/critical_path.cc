#include "prof/critical_path.hh"

#include <algorithm>
#include <limits>

#include "analysis/happens_before.hh"
#include "obs/event_adapter.hh"

namespace capu::prof
{

namespace
{

Tick
dur(const hb::HbEvent &ev)
{
    return ev.end >= ev.start ? ev.end - ev.start : 0;
}

/** A Start/End pair bracketing one PCIe transfer on the same lane. */
bool
transferBracket(const hb::HbEvent &a, const hb::HbEvent &b)
{
    if (a.tensor != b.tensor || a.stream != b.stream)
        return false;
    return (a.op == hb::HbOp::SwapOutStart && b.op == hb::HbOp::SwapOutEnd) ||
           (a.op == hb::HbOp::SwapInStart && b.op == hb::HbOp::SwapInEnd);
}

} // namespace

CriticalPathSummary
computeCriticalPath(const HbAnalysis &hb, std::size_t maxSteps)
{
    CriticalPathSummary out;
    const auto &events = hb.events;
    const auto &edges = hb.edges;
    out.events = events.size();
    out.edges = edges.size();
    if (events.empty())
        return out; // nothing moved: no memory traffic to attribute

    // Kahn topological order; a cycle means the trace contradicts the
    // ordering rules (capuverify reports hb-cycle) — bail gracefully.
    std::vector<std::vector<std::uint32_t>> succ(events.size());
    std::vector<std::vector<std::uint32_t>> pred(events.size());
    std::vector<std::uint32_t> indeg(events.size(), 0);
    for (const auto &e : edges) {
        succ[e.from].push_back(e.to);
        pred[e.to].push_back(e.from);
        ++indeg[e.to];
    }
    std::vector<std::uint32_t> topo;
    topo.reserve(events.size());
    for (std::uint32_t i = 0; i < events.size(); ++i) {
        if (indeg[i] == 0)
            topo.push_back(i);
    }
    for (std::size_t head = 0; head < topo.size(); ++head) {
        for (std::uint32_t nxt : succ[topo[head]]) {
            if (--indeg[nxt] == 0)
                topo.push_back(nxt);
        }
    }
    if (topo.size() != events.size())
        return out; // cyclic

    Tick minStart = std::numeric_limits<Tick>::max();
    Tick maxEnd = 0;
    for (const auto &ev : events) {
        minStart = std::min(minStart, ev.start);
        maxEnd = std::max(maxEnd, ev.end);
    }
    out.makespan = maxEnd - minStart;

    // PERT backward pass over the observed schedule: LF[i] is the latest
    // finish of event i that keeps every successor's latest start, hence
    // the makespan. slack = LF - observed end (clamped: a trace that
    // violates an edge's timestamps would otherwise go negative).
    std::vector<Tick> lf(events.size(), maxEnd);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        std::uint32_t u = *it;
        for (std::uint32_t v : succ[u]) {
            Tick ls = lf[v] - std::min(lf[v], dur(events[v]));
            lf[u] = std::min(lf[u], ls);
        }
    }
    for (std::uint32_t i = 0; i < events.size(); ++i) {
        Tick slack = lf[i] >= events[i].end ? lf[i] - events[i].end : 0;
        if (slack == 0)
            ++out.zeroSlack;
        out.maxSlack = std::max(out.maxSlack, slack);
    }

    // Extract one longest chain: start from an event finishing at the
    // makespan, repeatedly hop to the predecessor that finished last —
    // the constraint that actually gated each step.
    std::uint32_t sink = 0;
    for (std::uint32_t i = 0; i < events.size(); ++i) {
        if (events[i].end == maxEnd) {
            sink = i;
            break;
        }
    }
    std::vector<std::uint32_t> chain;
    chain.push_back(sink);
    std::uint32_t cur = sink;
    while (!pred[cur].empty()) {
        std::uint32_t best = pred[cur][0];
        for (std::uint32_t p : pred[cur]) {
            if (events[p].end > events[best].end ||
                (events[p].end == events[best].end && p < best))
                best = p;
        }
        chain.push_back(best);
        cur = best;
    }
    std::reverse(chain.begin(), chain.end());
    out.pathLength = chain.size();

    // Compose the chain's time: event durations (recompute replays are
    // the only HB events with extent), transfer gaps between Start/End
    // brackets, and unexplained gaps as waits.
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const hb::HbEvent &ev = events[chain[i]];
        if (ev.op == hb::HbOp::RecomputeKernel)
            out.onPathRecompute += dur(ev);
        if (i == 0)
            continue;
        const hb::HbEvent &prev = events[chain[i - 1]];
        Tick gap = ev.start >= prev.end ? ev.start - prev.end : 0;
        if (transferBracket(prev, ev))
            out.onPathTransfer += gap;
        else
            out.onPathWait += gap;
    }

    // Materialize the tail of the chain (the part nearest the makespan).
    std::size_t first = chain.size() > maxSteps ? chain.size() - maxSteps
                                                : 0;
    out.steps.reserve(chain.size() - first);
    for (std::size_t i = first; i < chain.size(); ++i) {
        const hb::HbEvent &ev = events[chain[i]];
        CriticalPathStep step;
        step.op = hb::hbOpName(ev.op);
        step.stream = hb::hbStreamName(ev.stream);
        step.tensor = ev.tensor == kInvalidTensor
                          ? -1
                          : static_cast<std::int64_t>(ev.tensor);
        step.opId = ev.opId == kInvalidOp ? -1
                                          : static_cast<std::int64_t>(ev.opId);
        step.start = ev.start;
        step.end = ev.end;
        if (i > 0) {
            const hb::HbEvent &prev = events[chain[i - 1]];
            step.wait = ev.start >= prev.end ? ev.start - prev.end : 0;
        }
        out.steps.push_back(std::move(step));
    }

    out.valid = true;
    return out;
}

CriticalPathSummary
computeCriticalPath(const std::vector<obs::TraceEvent> &events,
                    std::size_t maxSteps)
{
    auto timeline = obs::extractTimeline(events);
    return computeCriticalPath(buildTraceEventGraph(timeline), maxSteps);
}

} // namespace capu::prof
