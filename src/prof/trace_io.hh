/**
 * @file
 * Chrome-trace import: the inverse of obs::writeChromeTrace.
 *
 * capusim exports its event ring as Chrome trace_event JSON (--trace-json)
 * for Perfetto; capuprof consumes the same artifact offline. The exporter
 * was made lossless for this purpose (instant `value`, span `bytes` ride
 * in args), so a round-tripped event list profiles identically to the
 * live ring it came from. Metadata events (process/thread names) map back
 * to track names; otherData carries the run meta and the ring's
 * recorded/dropped counts.
 */

#ifndef CAPU_PROF_TRACE_IO_HH
#define CAPU_PROF_TRACE_IO_HH

#include <string>
#include <utility>
#include <vector>

#include "obs/event.hh"

namespace capu::prof
{

struct TraceBundle
{
    std::vector<obs::TraceEvent> events;
    std::vector<std::pair<std::string, std::string>> meta;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

/**
 * Parse a writeChromeTrace() artifact. Returns false (with the reason in
 * *err when provided) on unreadable files, malformed JSON, or JSON that
 * is not a Chrome trace object.
 */
bool importChromeTrace(const std::string &path, TraceBundle &out,
                       std::string *err = nullptr);

} // namespace capu::prof

#endif // CAPU_PROF_TRACE_IO_HH
