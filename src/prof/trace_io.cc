#include "prof/trace_io.hh"

#include <cmath>
#include <cstring>

#include "support/json.hh"

namespace capu::prof
{

namespace
{

/** Inverse of eventKindName(); Marker when unrecognized. */
obs::EventKind
kindFromName(const std::string &name)
{
    using obs::EventKind;
    static const std::pair<const char *, EventKind> table[] = {
        {"kernel", EventKind::Kernel},
        {"recompute", EventKind::Recompute},
        {"transfer", EventKind::Transfer},
        {"sync", EventKind::Sync},
        {"stall", EventKind::Stall},
        {"access", EventKind::Access},
        {"oom", EventKind::OomStep},
        {"decision", EventKind::Decision},
        {"plan", EventKind::Plan},
        {"tensor", EventKind::Lifetime},
        {"sample", EventKind::Sample},
        {"marker", EventKind::Marker},
        {"fault", EventKind::Fault},
        {"recovery", EventKind::Recovery},
    };
    for (const auto &[key, kind] : table) {
        if (name == key)
            return kind;
    }
    return EventKind::Marker;
}

/** Exported µs (3 fractional digits) back to integer ns. */
Tick
ticksFromMicros(double us)
{
    return static_cast<Tick>(std::llround(us * 1000.0));
}

} // namespace

bool
importChromeTrace(const std::string &path, TraceBundle &out,
                  std::string *err)
{
    json::Value root;
    if (!json::parseFile(path, root, err))
        return false;
    if (root.kind != json::Value::Obj || !root.has("traceEvents")) {
        if (err)
            *err = "'" + path + "' is not a Chrome trace artifact";
        return false;
    }

    const json::Value &other = root["otherData"];
    out.recorded = other["recorded"].asU64();
    out.dropped = other["dropped"].asU64();
    for (const std::string &key : other.keys) {
        if (key == "recorded" || key == "dropped")
            continue;
        const json::Value &val = other[key];
        if (val.kind == json::Value::Str)
            out.meta.emplace_back(key, val.str);
    }

    for (const json::Value &jev : root["traceEvents"].arr) {
        const std::string &ph = jev["ph"].str;
        if (ph == "M")
            continue; // process/thread metadata
        obs::TraceEvent ev;
        ev.name = jev["name"].str;
        ev.kind = kindFromName(jev["cat"].str);
        ev.track = static_cast<std::uint32_t>(jev["tid"].asU64());
        ev.ts = ticksFromMicros(jev["ts"].asDouble());
        const json::Value &args = jev["args"];
        ev.tensor = args.has("tensor") ? args["tensor"].asI64() : -1;
        ev.op = args.has("op") ? args["op"].asI64() : -1;
        ev.bytes = args["bytes"].asU64();
        if (ph == "X") {
            ev.phase = obs::EventPhase::Complete;
            ev.dur = ticksFromMicros(jev["dur"].asDouble());
        } else if (ph == "i") {
            ev.phase = obs::EventPhase::Instant;
            ev.value = args["value"].asDouble();
        } else if (ph == "C") {
            ev.phase = obs::EventPhase::Counter;
            ev.value = args["value"].asDouble();
        } else if (ph == "b" || ph == "e") {
            ev.phase = ph == "b" ? obs::EventPhase::SpanBegin
                                 : obs::EventPhase::SpanEnd;
            ev.tensor = jev["id"].asI64();
        } else {
            continue; // unknown phase: skip rather than reject
        }
        out.events.push_back(std::move(ev));
    }
    return true;
}

} // namespace capu::prof
