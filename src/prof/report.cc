#include "prof/report.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/chrome_trace.hh"
#include "stats/table.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/units.hh"

namespace capu::prof
{

namespace
{

std::string
ms(Tick t)
{
    return cellDouble(ticksToMs(t), 3);
}

std::string
share(Tick part, Tick whole)
{
    if (whole == 0)
        return cellPercent(0.0);
    return cellPercent(static_cast<double>(part) /
                       static_cast<double>(whole));
}

std::string
hexDigest(std::uint64_t d)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, d);
    return buf;
}

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

struct BucketRow
{
    const char *key;
    const char *label;
    Tick Buckets::*field;
};

constexpr BucketRow kBucketRows[] = {
    {"compute", "compute", &Buckets::compute},
    {"recompute", "recompute", &Buckets::recompute},
    {"swap_stall", "swap-in stall", &Buckets::swapStall},
    {"oom_stall", "oom protocol", &Buckets::oomStall},
    {"idle", "idle", &Buckets::idle},
};

Table
bucketTable(const Profile &p)
{
    Table t({"bucket", "time(ms)", "share"});
    for (const auto &row : kBucketRows) {
        Tick v = p.buckets.*row.field;
        t.addRow({row.label, ms(v), share(v, p.wallTicks)});
    }
    t.addRow({"total", ms(p.buckets.total()),
              share(p.buckets.total(), p.wallTicks)});
    return t;
}

Table
tensorTable(const Profile &p, std::size_t topK)
{
    Table t({"tensor", "bytes", "swap out/in", "recompute(ms)",
             "stall(ms)", "prefetch e/o/l/m", "relief(GB*ms)", "peak",
             "overhead(ms)"});
    auto ranked = rankTensors(p);
    for (std::size_t i = 0; i < ranked.size() && i < topK; ++i) {
        const TensorAccount &a = *ranked[i];
        t.addRow({a.name, formatBytes(a.bytes),
                  cellInt(a.swapOutCount) + "/" + cellInt(a.swapInCount),
                  ms(a.recomputeTicks), ms(a.stallTicks),
                  cellInt(a.prefetch.early) + "/" +
                      cellInt(a.prefetch.onTime) + "/" +
                      cellInt(a.prefetch.late) + "/" +
                      cellInt(a.prefetch.missed),
                  cellDouble(a.reliefByteTicks / (1e9 * 1e6), 2),
                  a.residentAtPeak ? "y" : "-", ms(a.overheadTicks)});
    }
    return t;
}

void
renderCommon(std::ostream &os, const Profile &p, std::size_t topK,
             bool markdown)
{
    auto heading = [&](const char *text) {
        if (markdown)
            os << "\n## " << text << "\n\n";
        else
            os << "\n" << text << "\n";
    };
    auto emit = [&](Table &t) {
        if (markdown) {
            // Tables render natively in markdown via CSV -> pipes.
            std::ostringstream csv;
            t.printCsv(csv);
            std::istringstream lines(csv.str());
            std::string line;
            bool header = true;
            while (std::getline(lines, line)) {
                os << "| ";
                for (char c : line)
                    os << (c == ',' ? std::string(" | ") : std::string(1, c));
                os << " |\n";
                if (header) {
                    os << "|";
                    std::size_t cols =
                        1 + static_cast<std::size_t>(
                                std::count(line.begin(), line.end(), ','));
                    for (std::size_t i = 0; i < cols; ++i)
                        os << "---|";
                    os << "\n";
                    header = false;
                }
            }
        } else {
            t.print(os);
        }
    };

    if (markdown)
        os << "# capuprof report\n\n";
    else
        os << "capuprof report\n";
    for (const auto &[k, v] : p.meta)
        os << (markdown ? "- " : "  ") << k << ": " << v << "\n";
    os << (markdown ? "- " : "  ") << "wall: " << ms(p.wallTicks)
       << " ms over " << p.iterations.size() << " iterations ("
       << p.events << " events";
    if (p.droppedEvents > 0)
        os << ", " << p.droppedEvents << " DROPPED — profile truncated";
    os << ")\n";
    os << (markdown ? "- " : "  ") << "peak device bytes: "
       << formatBytes(p.peakBytes) << "\n";

    heading("wall-clock attribution");
    Table buckets = bucketTable(p);
    emit(buckets);
    Tick err = p.conservationError();
    os << (markdown ? "\n" : "") << "conservation error: " << err
       << " ns\n";

    if (p.drift.classes > 0) {
        heading("shape-class drift (capudrift)");
        os << p.drift.classes << " shape classes, " << p.drift.novel
           << " novel-class measurements, " << p.drift.remeasures
           << " drift re-measurements\n";
        Table d({"class", "iters", "wall(ms)", "share"});
        for (std::size_t c = 0; c < p.drift.iterationsPerClass.size();
             ++c) {
            if (p.drift.iterationsPerClass[c] == 0)
                continue;
            d.addRow({cellInt(static_cast<std::int64_t>(c)),
                      cellInt(p.drift.iterationsPerClass[c]),
                      ms(p.drift.wallPerClass[c]),
                      share(p.drift.wallPerClass[c], p.wallTicks)});
        }
        emit(d);
    }

    if (p.serve.present) {
        heading("planning service (capuserve)");
        os << p.serve.hits << " hits, " << p.serve.misses << " misses ("
           << static_cast<int>(p.serve.hitRate * 100) << "% hit rate), "
           << p.serve.evictions << " evictions, " << p.serve.diskLoads
           << " disk loads; cache " << p.serve.cacheEntries << " entries / "
           << formatBytes(p.serve.cacheBytes) << "\n";
    }

    heading("top costly tensors");
    Table tensors = tensorTable(p, topK);
    if (tensors.rows() == 0) {
        os << "(no memory-management traffic)\n";
    } else {
        emit(tensors);
    }

    heading("critical path (happens-before DAG over memory traffic)");
    const CriticalPathSummary &c = p.critical;
    if (!c.valid) {
        os << (c.events == 0 ? "(no moving tensors)\n"
                             : "(cyclic ordering graph — see capulint)\n");
        return;
    }
    os << "makespan: " << ms(c.makespan) << " ms over " << c.events
       << " events / " << c.edges << " edges; " << c.zeroSlack
       << " zero-slack, max slack " << ms(c.maxSlack) << " ms\n";
    os << "on-path: transfer " << ms(c.onPathTransfer) << " ms, recompute "
       << ms(c.onPathRecompute) << " ms, wait " << ms(c.onPathWait)
       << " ms (" << c.pathLength << " steps)\n";
    if (!c.steps.empty()) {
        Table steps({"step", "stream", "tensor", "op", "wait(ms)",
                     "at(ms)"});
        for (const auto &s : c.steps) {
            steps.addRow({s.op, s.stream,
                          s.tensor < 0 ? "-" : cellInt(s.tensor),
                          s.opId < 0 ? "-" : cellInt(s.opId), ms(s.wait),
                          ms(s.start)});
        }
        emit(steps);
    }
}

void
writeBucketsJson(std::ostream &os, const Buckets &b, const char *indent)
{
    os << "{";
    bool first = true;
    for (const auto &row : kBucketRows) {
        os << (first ? "" : ", ") << "\"" << row.key
           << "\": " << b.*row.field;
        first = false;
    }
    os << "}";
    (void)indent;
}

void
writeProfileJson(std::ostream &os, const Profile &p)
{
    os << "{\n  \"capuprof\": " << p.schema << ",\n  \"meta\": {";
    bool first = true;
    for (const auto &[k, v] : p.meta) {
        os << (first ? "\n" : ",\n") << "    \"" << obs::jsonEscape(k)
           << "\": \"" << obs::jsonEscape(v) << "\"";
        first = false;
    }
    os << "\n  },\n";
    os << "  \"session\": {\"begin\": " << p.sessionBegin
       << ", \"end\": " << p.sessionEnd << ", \"wall_ns\": " << p.wallTicks
       << ", \"events\": " << p.events << ", \"dropped\": "
       << p.droppedEvents << ", \"peak_bytes\": " << p.peakBytes
       << ", \"peak_ts\": " << p.peakTs << "},\n";
    os << "  \"buckets\": ";
    writeBucketsJson(os, p.buckets, "  ");
    os << ",\n  \"iterations\": [";
    first = true;
    for (const auto &it : p.iterations) {
        os << (first ? "\n" : ",\n") << "    {\"iteration\": "
           << it.iteration << ", \"begin\": " << it.begin << ", \"end\": "
           << it.end << ", \"digest\": \"" << hexDigest(it.digest)
           << "\", \"class\": " << it.shapeClass << ", \"buckets\": ";
        writeBucketsJson(os, it.buckets, "    ");
        os << "}";
        first = false;
    }
    os << "\n  ],\n  \"drift\": {\"classes\": " << p.drift.classes
       << ", \"novel\": " << p.drift.novel << ", \"remeasures\": "
       << p.drift.remeasures << ", \"per_class\": [";
    first = true;
    for (std::size_t c = 0; c < p.drift.iterationsPerClass.size(); ++c) {
        os << (first ? "" : ", ") << "{\"class\": " << c
           << ", \"iterations\": " << p.drift.iterationsPerClass[c]
           << ", \"wall_ns\": " << p.drift.wallPerClass[c] << "}";
        first = false;
    }
    os << "]},\n";
    if (p.serve.present) {
        // Additive section: only present when the run drove a PlanService
        // (capuserve); older readers skip unknown keys.
        os << "  \"serve\": {\"hits\": " << p.serve.hits
           << ", \"misses\": " << p.serve.misses << ", \"evictions\": "
           << p.serve.evictions << ", \"disk_loads\": " << p.serve.diskLoads
           << ", \"cache_entries\": " << p.serve.cacheEntries
           << ", \"cache_bytes\": " << p.serve.cacheBytes
           << ", \"hit_rate\": " << jsonNum(p.serve.hitRate) << "},\n";
    }
    os << "  \"tensors\": [";
    first = true;
    for (const auto &a : p.tensors) {
        os << (first ? "\n" : ",\n") << "    {\"tensor\": " << a.tensor
           << ", \"name\": \"" << obs::jsonEscape(a.name)
           << "\", \"bytes\": " << a.bytes << ", \"swap_out_bytes\": "
           << a.swapOutBytes << ", \"swap_in_bytes\": " << a.swapInBytes
           << ", \"swap_out_count\": " << a.swapOutCount
           << ", \"swap_in_count\": " << a.swapInCount
           << ", \"recompute_ns\": " << a.recomputeTicks
           << ", \"recompute_ops\": " << a.recomputeOps
           << ", \"stall_ns\": " << a.stallTicks << ", \"transfer_ns\": "
           << a.transferTicks << ", \"relief_byte_ns\": "
           << jsonNum(a.reliefByteTicks) << ", \"overhead_ns\": "
           << a.overheadTicks << ", \"resident_at_peak\": "
           << (a.residentAtPeak ? "true" : "false")
           << ", \"prefetch\": {\"early\": " << a.prefetch.early
           << ", \"on_time\": " << a.prefetch.onTime << ", \"late\": "
           << a.prefetch.late << ", \"missed\": " << a.prefetch.missed
           << "}}";
        first = false;
    }
    os << "\n  ],\n  \"ops\": [";
    first = true;
    for (const auto &o : p.ops) {
        os << (first ? "\n" : ",\n") << "    {\"op\": " << o.op
           << ", \"name\": \"" << obs::jsonEscape(o.name)
           << "\", \"count\": " << o.count << ", \"compute_ns\": "
           << o.computeTicks << "}";
        first = false;
    }
    const CriticalPathSummary &c = p.critical;
    os << "\n  ],\n  \"critical_path\": {\"valid\": "
       << (c.valid ? "true" : "false") << ", \"makespan_ns\": "
       << c.makespan << ", \"events\": " << c.events << ", \"edges\": "
       << c.edges << ", \"zero_slack\": " << c.zeroSlack
       << ", \"max_slack_ns\": " << c.maxSlack
       << ", \"on_path_transfer_ns\": " << c.onPathTransfer
       << ", \"on_path_recompute_ns\": " << c.onPathRecompute
       << ", \"on_path_wait_ns\": " << c.onPathWait
       << ", \"path_length\": " << c.pathLength << ", \"steps\": [";
    first = true;
    for (const auto &s : c.steps) {
        os << (first ? "\n" : ",\n") << "    {\"op\": \""
           << obs::jsonEscape(s.op) << "\", \"stream\": \""
           << obs::jsonEscape(s.stream) << "\", \"tensor\": " << s.tensor
           << ", \"op_id\": " << s.opId << ", \"start\": " << s.start
           << ", \"end\": " << s.end << ", \"wait\": " << s.wait << "}";
        first = false;
    }
    os << "\n  ]}\n}\n";
}

void
loadBuckets(const json::Value &j, Buckets &b)
{
    for (const auto &row : kBucketRows)
        b.*row.field = j[row.key].asU64();
}

} // namespace

bool
parseReportFormat(const std::string &name, ReportFormat &out)
{
    if (name == "text") {
        out = ReportFormat::Text;
    } else if (name == "md" || name == "markdown") {
        out = ReportFormat::Markdown;
    } else if (name == "json") {
        out = ReportFormat::Json;
    } else {
        return false;
    }
    return true;
}

void
renderProfile(std::ostream &os, const Profile &profile, ReportFormat format,
              std::size_t topK)
{
    switch (format) {
      case ReportFormat::Text:
        renderCommon(os, profile, topK, false);
        break;
      case ReportFormat::Markdown:
        renderCommon(os, profile, topK, true);
        break;
      case ReportFormat::Json:
        writeProfileJson(os, profile);
        break;
    }
}

bool
writeProfileJsonFile(const std::string &path, const Profile &profile)
{
    std::ofstream os(path);
    if (!os) {
        warn("capuprof: cannot open profile file '{}'", path);
        return false;
    }
    writeProfileJson(os, profile);
    return static_cast<bool>(os);
}

bool
loadProfileJson(const std::string &path, Profile &out, std::string *err)
{
    json::Value root;
    if (!json::parseFile(path, root, err))
        return false;
    if (root.kind != json::Value::Obj || !root.has("capuprof")) {
        if (err)
            *err = "'" + path + "' is not a capuprof profile";
        return false;
    }
    out = Profile{};
    out.schema = static_cast<int>(root["capuprof"].asI64());
    for (const std::string &k : root["meta"].keys) {
        const json::Value &v = root["meta"][k];
        if (v.kind == json::Value::Str)
            out.meta.emplace_back(k, v.str);
    }
    const json::Value &s = root["session"];
    out.sessionBegin = s["begin"].asU64();
    out.sessionEnd = s["end"].asU64();
    out.wallTicks = s["wall_ns"].asU64();
    out.events = s["events"].asU64();
    out.droppedEvents = s["dropped"].asU64();
    out.peakBytes = s["peak_bytes"].asU64();
    out.peakTs = s["peak_ts"].asU64();
    loadBuckets(root["buckets"], out.buckets);
    for (const json::Value &j : root["iterations"].arr) {
        IterationProfile it;
        it.iteration = static_cast<int>(j["iteration"].asI64());
        it.begin = j["begin"].asU64();
        it.end = j["end"].asU64();
        it.digest = std::strtoull(j["digest"].str.c_str(), nullptr, 16);
        if (j.has("class"))
            it.shapeClass = static_cast<int>(j["class"].asI64());
        loadBuckets(j["buckets"], it.buckets);
        out.iterations.push_back(it);
    }
    if (root.has("drift")) {
        const json::Value &d = root["drift"];
        out.drift.classes = static_cast<int>(d["classes"].asI64());
        out.drift.novel = static_cast<int>(d["novel"].asI64());
        out.drift.remeasures = static_cast<int>(d["remeasures"].asI64());
        for (const json::Value &j : d["per_class"].arr) {
            out.drift.iterationsPerClass.push_back(
                static_cast<int>(j["iterations"].asI64()));
            out.drift.wallPerClass.push_back(j["wall_ns"].asU64());
        }
    }
    if (root.has("serve")) {
        const json::Value &s = root["serve"];
        out.serve.present = true;
        out.serve.hits = s["hits"].asU64();
        out.serve.misses = s["misses"].asU64();
        out.serve.evictions = s["evictions"].asU64();
        out.serve.diskLoads = s["disk_loads"].asU64();
        out.serve.cacheEntries = s["cache_entries"].asU64();
        out.serve.cacheBytes = s["cache_bytes"].asU64();
        out.serve.hitRate = s["hit_rate"].asDouble();
    }
    for (const json::Value &j : root["tensors"].arr) {
        TensorAccount a;
        a.tensor = j["tensor"].asI64();
        a.name = j["name"].str;
        a.bytes = j["bytes"].asU64();
        a.swapOutBytes = j["swap_out_bytes"].asU64();
        a.swapInBytes = j["swap_in_bytes"].asU64();
        a.swapOutCount = static_cast<int>(j["swap_out_count"].asI64());
        a.swapInCount = static_cast<int>(j["swap_in_count"].asI64());
        a.recomputeTicks = j["recompute_ns"].asU64();
        a.recomputeOps = static_cast<int>(j["recompute_ops"].asI64());
        a.stallTicks = j["stall_ns"].asU64();
        a.transferTicks = j["transfer_ns"].asU64();
        a.reliefByteTicks = j["relief_byte_ns"].asDouble();
        a.overheadTicks = j["overhead_ns"].asU64();
        a.residentAtPeak = j["resident_at_peak"].b;
        const json::Value &pf = j["prefetch"];
        a.prefetch.early = static_cast<int>(pf["early"].asI64());
        a.prefetch.onTime = static_cast<int>(pf["on_time"].asI64());
        a.prefetch.late = static_cast<int>(pf["late"].asI64());
        a.prefetch.missed = static_cast<int>(pf["missed"].asI64());
        out.tensors.push_back(std::move(a));
    }
    for (const json::Value &j : root["ops"].arr) {
        OpAccount o;
        o.op = j["op"].asI64();
        o.name = j["name"].str;
        o.count = static_cast<int>(j["count"].asI64());
        o.computeTicks = j["compute_ns"].asU64();
        out.ops.push_back(std::move(o));
    }
    const json::Value &c = root["critical_path"];
    out.critical.valid = c["valid"].b;
    out.critical.makespan = c["makespan_ns"].asU64();
    out.critical.events = c["events"].asU64();
    out.critical.edges = c["edges"].asU64();
    out.critical.zeroSlack = c["zero_slack"].asU64();
    out.critical.maxSlack = c["max_slack_ns"].asU64();
    out.critical.onPathTransfer = c["on_path_transfer_ns"].asU64();
    out.critical.onPathRecompute = c["on_path_recompute_ns"].asU64();
    out.critical.onPathWait = c["on_path_wait_ns"].asU64();
    out.critical.pathLength = c["path_length"].asU64();
    for (const json::Value &j : c["steps"].arr) {
        CriticalPathStep step;
        step.op = j["op"].str;
        step.stream = j["stream"].str;
        step.tensor = j["tensor"].asI64();
        step.opId = j["op_id"].asI64();
        step.start = j["start"].asU64();
        step.end = j["end"].asU64();
        step.wait = j["wait"].asU64();
        out.critical.steps.push_back(std::move(step));
    }
    return true;
}

} // namespace capu::prof
