/**
 * @file
 * Policy Maker (PM) — the paper's §4 planning algorithms.
 *
 * From one measured iteration's access sequence the PM derives a guided-
 * execution plan:
 *
 *  1. Candidates: tensors with >1 access whose lifetime crosses the peak
 *     memory window (§4.5).
 *  2. Swap ranking by Free Time, FT = SwapInStart - SwapOutEnd (Eq. 1);
 *     pairs with FT >= 0 hide the entire round trip and are taken first.
 *  3. When hidden swaps run out, the hybrid policy (Algorithm 1) compares
 *     each remaining tensor's exposed-swap overhead against the cheapest
 *     recomputation (max MSPS, Eq. 2), with Algorithm 2's iterative MSPS /
 *     source updates as recompute targets invalidate each other's sources.
 *  4. Each swap item gets an in-trigger: the latest measured access whose
 *     (corrected) time precedes backAccessTime - SwapTime, nudged out of
 *     the peak-memory window; the runtime feedback loop shifts it earlier
 *     by 5% of SwapTime whenever a back-access still finds the tensor
 *     SWAPPING_IN.
 */

#ifndef CAPU_CORE_POLICY_MAKER_HH
#define CAPU_CORE_POLICY_MAKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/access_tracker.hh"
#include "graph/graph.hh"
#include "support/units.hh"

namespace capu
{

enum class RegenChoice
{
    Swap,
    Recompute,
};

struct PlannedEviction
{
    TensorId tensor = kInvalidTensor;
    RegenChoice mode = RegenChoice::Swap;
    std::uint64_t bytes = 0;

    /** Access index whose completion triggers the eviction. */
    int evictAfterAccess = 0;
    /** Access index of the back-access (first access after eviction). */
    int backAccess = 0;
    Tick evictTime = 0;
    Tick backTime = 0;

    // Swap-only fields.
    Tick swapTime = 0;
    Tick freeTime = 0; ///< FT of the chosen pair (may be negative)
    Tick desiredSwapInStart = 0;
    TensorId triggerTensor = kInvalidTensor;
    int triggerAccess = 0;

    // Recompute-only fields.
    Tick recomputeTime = 0;

    Tick estimatedOverhead = 0;
};

struct Plan
{
    std::vector<PlannedEviction> items;
    std::uint64_t targetBytes = 0;
    std::uint64_t plannedBytes = 0;
    PeakWindow peak;
    std::size_t swapCount = 0;
    std::size_t recomputeCount = 0;

    const PlannedEviction *find(TensorId id) const;
    std::string summary() const;
};

struct PolicyMakerOptions
{
    bool enableSwap = true;
    bool enableRecompute = true;
    /** Ignore tensors smaller than this (not worth a transfer/replay). */
    std::uint64_t minTensorBytes = 1ull << 20;
    /**
     * Use the incremental Algorithm-2 engine (exposure caching, MSPS
     * max-heap, per-source reverse indexes). Off = the original
     * full-rescan loop, kept as a byte-identical reference oracle for
     * tests and the perf harness. Both engines produce the same plan.
     */
    bool incremental = true;
};

class PolicyMaker
{
  public:
    using BytesFn = std::function<std::uint64_t(TensorId)>;
    using SwapTimeFn = std::function<Tick(std::uint64_t)>;

    PolicyMaker(const Graph &graph, const AccessTracker &tracker,
                PolicyMakerOptions opts = {});

    /**
     * Build the guided-execution plan.
     *
     * @param mem_saving_target Bytes that must leave the peak working set
     *        (from passive mode: total size of on-demand-evicted tensors).
     * @param tensor_bytes Allocation size of a tensor on this executor.
     * @param swap_time PCIe transfer time for a byte count.
     * @param gpu_capacity Pool capacity (defines the peak window).
     */
    Plan build(std::uint64_t mem_saving_target, const BytesFn &tensor_bytes,
               const SwapTimeFn &swap_time, std::uint64_t gpu_capacity);

    /**
     * Re-pick a swap item's in-trigger after a feedback adjustment of its
     * desiredSwapInStart. Returns false if no earlier access exists.
     */
    bool repickTrigger(PlannedEviction &item) const;

  private:
    const Graph &graph_;
    const AccessTracker &tracker_;
    PolicyMakerOptions opts_;

    struct Candidate
    {
        TensorId tensor = kInvalidTensor;
        std::uint64_t bytes = 0;
        // Best (max-interval) consecutive access pair.
        int evictAfterAccess = 0;
        int backAccess = 0;
        Tick evictTime = 0;
        Tick backTime = 0;
        Tick swapTime = 0;
        Tick freeTime = 0;
        // Recompute state (Algorithm 2).
        std::vector<TensorId> srcs;
        Tick rpTime = 0;
        Tick extTime = 0;
        double
        msps() const
        {
            double denom = static_cast<double>(rpTime + extTime);
            return denom <= 0 ? 1e30 : static_cast<double>(bytes) / denom;
        }
    };

    std::vector<Candidate> gatherCandidates(const BytesFn &tensor_bytes,
                                            const SwapTimeFn &swap_time,
                                            const PeakWindow &peak) const;

    void initRecomputeState(Candidate &cand,
                            const std::vector<Candidate> &all) const;
    void initRecomputeState(
        Candidate &cand,
        const std::unordered_set<TensorId> &cand_set) const;

    void chooseInTrigger(PlannedEviction &item,
                         const PeakWindow &peak) const;

    /** Original full-rescan Algorithm-2 loop (reference oracle). */
    void runReference(Plan &plan, std::vector<Candidate> cands) const;
    /** Incremental engine; emits the same plan as runReference. */
    void runIncremental(Plan &plan, std::vector<Candidate> cands) const;
};

} // namespace capu

#endif // CAPU_CORE_POLICY_MAKER_HH
