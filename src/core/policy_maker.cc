#include "core/policy_maker.hh"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"
#include "support/strfmt.hh"

namespace capu
{

const PlannedEviction *
Plan::find(TensorId id) const
{
    for (const auto &item : items) {
        if (item.tensor == id)
            return &item;
    }
    return nullptr;
}

std::string
Plan::summary() const
{
    return fmt("plan: {} items ({} swap, {} recompute), {} planned of {} "
               "target",
               items.size(), swapCount, recomputeCount,
               formatBytes(plannedBytes), formatBytes(targetBytes));
}

PolicyMaker::PolicyMaker(const Graph &graph, const AccessTracker &tracker,
                         PolicyMakerOptions opts)
    : graph_(graph), tracker_(tracker), opts_(opts)
{
}

std::vector<PolicyMaker::Candidate>
PolicyMaker::gatherCandidates(const BytesFn &tensor_bytes,
                              const SwapTimeFn &swap_time,
                              const PeakWindow &peak) const
{
    std::vector<Candidate> cands;
    cands.reserve(graph_.tensors().size());
    for (const auto &t : graph_.tensors()) {
        if (t.kind != TensorKind::FeatureMap)
            continue;
        std::uint64_t bytes = tensor_bytes(t.id);
        if (bytes < opts_.minTensorBytes)
            continue;
        const auto &recs = tracker_.accessesOf(t.id);
        if (recs.size() < 2)
            continue;
        // Candidate only if alive somewhere inside the peak window.
        if (peak.valid &&
            (recs.back().time < peak.lo || recs.front().time > peak.hi))
            continue;

        Candidate c;
        c.tensor = t.id;
        c.bytes = bytes;
        c.swapTime = swap_time(bytes);

        Tick best_interval = 0;
        bool have_pair = false;
        for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
            // The stall-corrected timeline can locally run backwards when
            // passive mode stalls faster than the clock advances; an
            // inverted pair is a measurement artifact, not a reuse gap
            // (unsigned subtraction would turn it into a huge "interval"
            // and make the pair irresistible — caught by capulint's
            // bad-interval rule).
            if (recs[i + 1].time < recs[i].time)
                continue;
            Tick interval = recs[i + 1].time - recs[i].time;
            if (interval >= best_interval) {
                best_interval = interval;
                have_pair = true;
                c.evictAfterAccess = recs[i].accessIndex;
                c.backAccess = recs[i + 1].accessIndex;
                c.evictTime = recs[i].time;
                c.backTime = recs[i + 1].time;
            }
        }
        if (!have_pair)
            continue;
        // FT = SwapInStart - SwapOutEnd
        //    = (back - SwapTime) - (evict + SwapTime)       (Eq. 1)
        // Clamped at zero; the negative part ("exposure") is recomputed at
        // selection time from the pair interval and the round-trip time.
        std::int64_t ft = static_cast<std::int64_t>(c.backTime) -
                          static_cast<std::int64_t>(c.evictTime) -
                          static_cast<std::int64_t>(2 * c.swapTime);
        c.freeTime = static_cast<Tick>(std::max<std::int64_t>(ft, 0));
        c.rpTime = 0;
        c.extTime = 0;
        cands.push_back(std::move(c));
    }
    return cands;
}

void
PolicyMaker::initRecomputeState(Candidate &cand,
                                const std::vector<Candidate> &all) const
{
    std::unordered_set<TensorId> cand_set;
    for (const auto &c : all)
        cand_set.insert(c.tensor);
    initRecomputeState(cand, cand_set);
}

void
PolicyMaker::initRecomputeState(
    Candidate &cand, const std::unordered_set<TensorId> &cand_set) const
{
    std::unordered_set<OpId> visited_ops;
    std::unordered_set<TensorId> visited_tensors;
    bool feasible = true;
    Tick rp_time = 0;
    std::vector<TensorId> srcs;
    srcs.reserve(8);

    std::vector<TensorId> stack;
    stack.reserve(16);
    auto expand_op = [&](OpId op_id) {
        visited_ops.insert(op_id);
        rp_time += tracker_.opDuration(op_id);
        for (TensorId in : graph_.op(op_id).inputs)
            stack.push_back(in);
    };

    OpId root = graph_.tensor(cand.tensor).producer;
    if (root == kInvalidOp || !graph_.op(root).recomputable ||
        !tracker_.hasOpDuration(root)) {
        cand.rpTime = 0;
        cand.srcs.clear();
        cand.extTime = 0;
        // Mark infeasible with a sentinel: empty srcs + zero rpTime means
        // "never recomputable" and is filtered at selection time.
        return;
    }
    expand_op(root);

    while (!stack.empty() && feasible) {
        TensorId x = stack.back();
        stack.pop_back();
        if (visited_tensors.count(x))
            continue;
        visited_tensors.insert(x);

        const TensorDesc &t = graph_.tensor(x);
        if (t.kind == TensorKind::Weight) {
            srcs.push_back(x);
            continue;
        }
        const auto &recs = tracker_.accessesOf(x);
        bool alive_at_back =
            !recs.empty() && recs.back().time > cand.backTime;
        if (alive_at_back || cand_set.count(x)) {
            // Alive when the recompute fires, or an eviction candidate
            // (assumed in GPU per §4.4 — Algorithm 2 repairs this later).
            srcs.push_back(x);
            continue;
        }
        OpId prod = t.producer;
        if (prod == kInvalidOp || !graph_.op(prod).recomputable ||
            !tracker_.hasOpDuration(prod)) {
            feasible = false;
            break;
        }
        if (!visited_ops.count(prod))
            expand_op(prod);
    }

    if (!feasible) {
        cand.rpTime = 0;
        cand.srcs.clear();
    } else {
        std::sort(srcs.begin(), srcs.end());
        srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
        cand.srcs = std::move(srcs);
        cand.rpTime = std::max<Tick>(rp_time, 1);
    }
    cand.extTime = 0;
}

void
PolicyMaker::chooseInTrigger(PlannedEviction &item,
                             const PeakWindow &peak) const
{
    Tick desired = item.backTime > item.swapTime
                       ? item.backTime - item.swapTime
                       : 0;
    // Do not start the fetch inside the oversubscribed window if the
    // back-access itself lies beyond it (§4.4).
    if (peak.valid && desired >= peak.lo && desired <= peak.hi &&
        item.backTime > peak.hi) {
        desired = peak.hi;
    }
    item.desiredSwapInStart = desired;
    repickTrigger(item);
}

bool
PolicyMaker::repickTrigger(PlannedEviction &item) const
{
    // Qualifying accesses lie strictly inside (evictTime, backTime) and
    // belong to another tensor; prefer the latest one at or before the
    // desired swap-in start, else the earliest in the window. Served by
    // the tracker's sorted time index instead of a full-sequence scan.
    const AccessRecord *best = tracker_.latestAtOrBefore(
        item.evictTime, item.backTime, item.desiredSwapInStart,
        item.tensor);
    if (!best) {
        // Fire as early as possible.
        best = tracker_.earliestWithin(item.evictTime, item.backTime,
                                       item.tensor);
    }
    if (!best)
        return false;
    item.triggerTensor = best->tensor;
    item.triggerAccess = best->accessIndex;
    return true;
}

namespace
{

/**
 * Pinned transfers serialize per PCIe direction (§4.4): "a swap cannot
 * start until its preceding swap finishes". A candidate's achievable
 * overlap therefore shrinks as already-chosen swaps occupy the lanes.
 * We model each lane as a FIFO over the chosen transfers — swap-outs
 * anchored at their evicted-access, swap-ins at backTime - SwapTime —
 * and charge each candidate the queueing delay it would experience.
 * Once a lane saturates the delay exceeds any recomputation cost and
 * Algorithm 1 flips to recompute.
 */
struct Xfer
{
    Tick anchor;
    Tick dur;
    bool operator<(const Xfer &o) const { return anchor < o.anchor; }
};

/**
 * Total queueing (start - anchor) waiting across a lane's transfers. An
 * early-anchored transfer that pushes every later one back by its
 * duration is charged for that damage.
 */
Tick
laneWait(const std::vector<Xfer> &lane)
{
    Tick busy = 0;
    Tick total = 0;
    for (const auto &x : lane) {
        Tick start = std::max(x.anchor, busy);
        total += start - x.anchor;
        busy = start + x.dur;
    }
    return total;
}

/** Marginal growth in total lane waiting if `probe` were added. */
Tick
queueDelay(std::vector<Xfer> lane, Xfer probe)
{
    std::sort(lane.begin(), lane.end());
    Tick before = laneWait(lane);
    lane.push_back(probe);
    std::sort(lane.begin(), lane.end());
    return laneWait(lane) - before;
}

bool
containsTensor(const std::vector<TensorId> &v, TensorId t)
{
    return std::find(v.begin(), v.end(), t) != v.end();
}

} // namespace

void
PolicyMaker::runReference(Plan &plan, std::vector<Candidate> cands) const
{
    struct Recomp
    {
        TensorId tensor;
        std::vector<TensorId> srcs;
        Tick rpTime;
    };
    std::vector<Recomp> recomps;

    std::vector<Xfer> chosen_out, chosen_in;

    auto exposure = [&](const Candidate &c) -> Tick {
        Tick interval = c.backTime - c.evictTime;
        Tick round_trip = 2 * c.swapTime;
        Tick exposed = round_trip > interval ? round_trip - interval : 0;
        exposed += queueDelay(chosen_out, Xfer{c.evictTime, c.swapTime});
        Tick in_anchor = c.backTime > c.swapTime ? c.backTime - c.swapTime
                                                 : 0;
        exposed += queueDelay(chosen_in, Xfer{in_anchor, c.swapTime});
        return exposed;
    };
    auto can_recompute = [](const Candidate &c) {
        return c.rpTime > 0;
    };

    std::int64_t saving = static_cast<std::int64_t>(plan.targetBytes);

    auto emit_swap = [&](std::size_t idx) {
        Candidate c = cands[idx];
        cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(idx));
        PlannedEviction item;
        item.tensor = c.tensor;
        item.mode = RegenChoice::Swap;
        item.bytes = c.bytes;
        item.evictAfterAccess = c.evictAfterAccess;
        item.backAccess = c.backAccess;
        item.evictTime = c.evictTime;
        item.backTime = c.backTime;
        item.swapTime = c.swapTime;
        item.freeTime = c.freeTime;
        item.estimatedOverhead = exposure(c);
        chooseInTrigger(item, plan.peak);
        plan.items.push_back(item);
        ++plan.swapCount;
        plan.plannedBytes += c.bytes;
        chosen_out.push_back(Xfer{c.evictTime, c.swapTime});
        chosen_in.push_back(
            Xfer{c.backTime > c.swapTime ? c.backTime - c.swapTime : 0,
                 c.swapTime});
        saving -= static_cast<std::int64_t>(c.bytes);
    };

    auto emit_recompute = [&](std::size_t idx) {
        Candidate c = cands[idx];
        cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(idx));

        // Algorithm 2, lines 5-12: targets whose source set contained the
        // newly chosen tensor now start from its sources instead, and the
        // shared prefix is replayed once more per such target.
        int ext_ct = 1;
        for (auto &rp : recomps) {
            if (containsTensor(rp.srcs, c.tensor)) {
                rp.srcs.erase(
                    std::remove(rp.srcs.begin(), rp.srcs.end(), c.tensor),
                    rp.srcs.end());
                for (TensorId s : c.srcs) {
                    if (!containsTensor(rp.srcs, s))
                        rp.srcs.push_back(s);
                }
                ++ext_ct;
            }
        }
        recomps.push_back(Recomp{c.tensor, c.srcs, c.rpTime});

        // Algorithm 2, lines 17-34: update the remaining candidates.
        for (auto &cand : cands) {
            if (!can_recompute(cand))
                continue;
            if (containsTensor(cand.srcs, c.tensor)) {
                cand.srcs.erase(std::remove(cand.srcs.begin(),
                                            cand.srcs.end(), c.tensor),
                                cand.srcs.end());
                for (TensorId s : c.srcs) {
                    if (!containsTensor(cand.srcs, s))
                        cand.srcs.push_back(s);
                }
                cand.rpTime += c.rpTime;
                cand.extTime = 0;
                for (const auto &rp : recomps) {
                    if (containsTensor(rp.srcs, cand.tensor))
                        cand.extTime += cand.rpTime;
                }
            }
            if (containsTensor(c.srcs, cand.tensor)) {
                cand.extTime =
                    static_cast<Tick>(ext_ct) * cand.rpTime;
            }
        }

        PlannedEviction item;
        item.tensor = c.tensor;
        item.mode = RegenChoice::Recompute;
        item.bytes = c.bytes;
        item.evictAfterAccess = c.evictAfterAccess;
        item.backAccess = c.backAccess;
        item.evictTime = c.evictTime;
        item.backTime = c.backTime;
        item.recomputeTime = c.rpTime + c.extTime;
        item.estimatedOverhead = item.recomputeTime;
        plan.items.push_back(item);
        ++plan.recomputeCount;
        plan.plannedBytes += c.bytes;
        saving -= static_cast<std::int64_t>(c.bytes);
    };

    while (saving > 0 && !cands.empty()) {
        // Best swap: maximal FT, i.e. minimal exposure.
        std::size_t s_idx = cands.size();
        if (opts_.enableSwap) {
            for (std::size_t i = 0; i < cands.size(); ++i) {
                if (s_idx == cands.size() ||
                    exposure(cands[i]) < exposure(cands[s_idx]) ||
                    (exposure(cands[i]) == exposure(cands[s_idx]) &&
                     cands[i].freeTime > cands[s_idx].freeTime)) {
                    s_idx = i;
                }
            }
        }
        if (s_idx < cands.size() && exposure(cands[s_idx]) == 0) {
            emit_swap(s_idx); // fully hidden: swap is free (§4.5)
            continue;
        }

        std::size_t r_idx = cands.size();
        if (opts_.enableRecompute) {
            for (std::size_t i = 0; i < cands.size(); ++i) {
                if (!can_recompute(cands[i]))
                    continue;
                if (r_idx == cands.size() ||
                    cands[i].msps() > cands[r_idx].msps()) {
                    r_idx = i;
                }
            }
        }

        bool have_s = s_idx < cands.size();
        bool have_r = r_idx < cands.size();
        if (have_s && have_r) {
            Tick s_over = exposure(cands[s_idx]);
            Tick r_over = cands[r_idx].rpTime + cands[r_idx].extTime;
            if (s_over <= r_over)
                emit_swap(s_idx);
            else
                emit_recompute(r_idx);
        } else if (have_s) {
            emit_swap(s_idx);
        } else if (have_r) {
            emit_recompute(r_idx);
        } else {
            break; // nothing actionable left
        }
    }

    if (saving > 0) {
        warn("policy maker covered {} of {} saving target",
             formatBytes(plan.plannedBytes), formatBytes(plan.targetBytes));
    }
}

void
PolicyMaker::runIncremental(Plan &plan, std::vector<Candidate> cands) const
{
    // Same selection rules and tie-breaks as runReference, with the
    // rescans replaced by incremental bookkeeping:
    //  - exposures are cached per candidate and stamped with a lane
    //    epoch; only an emitted swap changes the PCIe lanes, so picks
    //    that recompute invalidate nothing;
    //  - the best-MSPS candidate comes from a lazy max-heap keyed
    //    (msps desc, gather index asc) — exactly the old scan's
    //    first-occurrence-of-max order — with stale entries dropped on
    //    pop;
    //  - an emitted recompute updates only the candidates its Algorithm-2
    //    branches can touch, found through per-source reverse indexes
    //    instead of a cands × recomps sweep;
    //  - candidates are never copied or erased: a liveness flag keeps the
    //    gather order (= the old vector order under erases) for
    //    tie-breaking.
    struct Recomp
    {
        TensorId tensor;
        std::vector<TensorId> srcs;
        Tick rpTime;
    };
    std::vector<Recomp> recomps;
    recomps.reserve(cands.size());

    const std::size_t n = cands.size();
    std::vector<char> alive(n, 1);
    std::size_t alive_count = n;

    std::unordered_map<TensorId, std::size_t> cand_by_tensor;
    cand_by_tensor.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        cand_by_tensor.emplace(cands[i].tensor, i);

    // src tensor -> candidate indices whose srcs (may) contain it.
    // Entries are appended when a source enters a candidate's set and
    // validated with a containment check at use: sources are only ever
    // removed when their tensor is picked, after which that key is never
    // queried again.
    std::unordered_map<TensorId, std::vector<std::size_t>> cands_by_src;
    // src tensor -> emitted recompute indices whose srcs (may) contain it.
    std::unordered_map<TensorId, std::vector<std::size_t>> recomps_by_src;
    // Exact count of emitted recomputes whose srcs contain the tensor
    // (the old code's "for rp in recomps: contains(rp.srcs, t)" tally).
    std::unordered_map<TensorId, int> recomp_src_count;

    for (std::size_t i = 0; i < n; ++i) {
        for (TensorId s : cands[i].srcs)
            cands_by_src[s].push_back(i);
    }

    auto can_recompute = [](const Candidate &c) {
        return c.rpTime > 0;
    };

    // Lazy MSPS max-heap. Every msps change pushes a fresh entry, so the
    // entry matching a live candidate's current value is always present;
    // anything else is detected stale on pop and discarded.
    struct HeapEnt
    {
        double msps;
        std::size_t idx;
    };
    struct HeapCmp
    {
        bool operator()(const HeapEnt &a, const HeapEnt &b) const
        {
            if (a.msps != b.msps)
                return a.msps < b.msps;
            return a.idx > b.idx;
        }
    };
    std::priority_queue<HeapEnt, std::vector<HeapEnt>, HeapCmp> heap;
    if (opts_.enableRecompute) {
        for (std::size_t i = 0; i < n; ++i) {
            if (can_recompute(cands[i]))
                heap.push(HeapEnt{cands[i].msps(), i});
        }
    }
    auto top_recompute = [&]() -> std::size_t {
        while (!heap.empty()) {
            const HeapEnt &e = heap.top();
            if (alive[e.idx] && can_recompute(cands[e.idx]) &&
                cands[e.idx].msps() == e.msps)
                return e.idx;
            heap.pop();
        }
        return n;
    };

    std::vector<Xfer> chosen_out, chosen_in;
    std::uint64_t lane_epoch = 1;
    std::vector<Tick> exp_cache(n, 0);
    std::vector<std::uint64_t> exp_epoch(n, 0); // 0 = never computed

    auto exposure_of = [&](std::size_t i) -> Tick {
        if (exp_epoch[i] != lane_epoch) {
            const Candidate &c = cands[i];
            Tick interval = c.backTime - c.evictTime;
            Tick round_trip = 2 * c.swapTime;
            Tick exposed =
                round_trip > interval ? round_trip - interval : 0;
            exposed +=
                queueDelay(chosen_out, Xfer{c.evictTime, c.swapTime});
            Tick in_anchor =
                c.backTime > c.swapTime ? c.backTime - c.swapTime : 0;
            exposed += queueDelay(chosen_in, Xfer{in_anchor, c.swapTime});
            exp_cache[i] = exposed;
            exp_epoch[i] = lane_epoch;
        }
        return exp_cache[i];
    };

    std::int64_t saving = static_cast<std::int64_t>(plan.targetBytes);

    auto emit_swap = [&](std::size_t idx) {
        const Candidate &c = cands[idx];
        PlannedEviction item;
        item.tensor = c.tensor;
        item.mode = RegenChoice::Swap;
        item.bytes = c.bytes;
        item.evictAfterAccess = c.evictAfterAccess;
        item.backAccess = c.backAccess;
        item.evictTime = c.evictTime;
        item.backTime = c.backTime;
        item.swapTime = c.swapTime;
        item.freeTime = c.freeTime;
        item.estimatedOverhead = exposure_of(idx); // pre-update lanes
        chooseInTrigger(item, plan.peak);
        plan.items.push_back(item);
        ++plan.swapCount;
        plan.plannedBytes += c.bytes;
        chosen_out.push_back(Xfer{c.evictTime, c.swapTime});
        chosen_in.push_back(
            Xfer{c.backTime > c.swapTime ? c.backTime - c.swapTime : 0,
                 c.swapTime});
        ++lane_epoch; // every cached exposure is now stale
        alive[idx] = 0;
        --alive_count;
        saving -= static_cast<std::int64_t>(c.bytes);
    };

    auto emit_recompute = [&](std::size_t idx) {
        Candidate &c = cands[idx];
        alive[idx] = 0;
        --alive_count;

        // Algorithm 2, lines 5-12: targets whose source set contained the
        // newly chosen tensor now start from its sources instead, and the
        // shared prefix is replayed once more per such target.
        int ext_ct = 1;
        {
            auto cnt = recomp_src_count.find(c.tensor);
            if (cnt != recomp_src_count.end())
                ext_ct += cnt->second;
        }
        auto rit = recomps_by_src.find(c.tensor);
        if (rit != recomps_by_src.end()) {
            // Copy: appending to recomps_by_src below may rehash the map.
            std::vector<std::size_t> touched = rit->second;
            for (std::size_t rp_idx : touched) {
                Recomp &rp = recomps[rp_idx];
                if (!containsTensor(rp.srcs, c.tensor))
                    continue;
                rp.srcs.erase(std::remove(rp.srcs.begin(), rp.srcs.end(),
                                          c.tensor),
                              rp.srcs.end());
                --recomp_src_count[c.tensor];
                for (TensorId s : c.srcs) {
                    if (!containsTensor(rp.srcs, s)) {
                        rp.srcs.push_back(s);
                        ++recomp_src_count[s];
                        recomps_by_src[s].push_back(rp_idx);
                    }
                }
            }
        }
        recomps.push_back(Recomp{c.tensor, c.srcs, c.rpTime});
        std::size_t new_rp = recomps.size() - 1;
        for (TensorId s : c.srcs) {
            ++recomp_src_count[s];
            recomps_by_src[s].push_back(new_rp);
        }

        // Algorithm 2, lines 17-34, restricted to the candidates the two
        // branches can affect: srcs containing c.tensor (branch 1) and
        // members of c.srcs (branch 2).
        std::vector<std::size_t> affected;
        auto cit = cands_by_src.find(c.tensor);
        if (cit != cands_by_src.end())
            affected = cit->second; // copy; map may rehash below
        for (TensorId s : c.srcs) {
            auto t = cand_by_tensor.find(s);
            if (t != cand_by_tensor.end())
                affected.push_back(t->second);
        }
        std::sort(affected.begin(), affected.end());
        affected.erase(std::unique(affected.begin(), affected.end()),
                       affected.end());

        for (std::size_t j : affected) {
            if (!alive[j])
                continue;
            Candidate &cand = cands[j];
            if (!can_recompute(cand))
                continue;
            bool changed = false;
            if (containsTensor(cand.srcs, c.tensor)) {
                cand.srcs.erase(std::remove(cand.srcs.begin(),
                                            cand.srcs.end(), c.tensor),
                                cand.srcs.end());
                for (TensorId s : c.srcs) {
                    if (!containsTensor(cand.srcs, s)) {
                        cand.srcs.push_back(s);
                        cands_by_src[s].push_back(j);
                    }
                }
                cand.rpTime += c.rpTime;
                int rp_ct = 0;
                auto cc = recomp_src_count.find(cand.tensor);
                if (cc != recomp_src_count.end())
                    rp_ct = cc->second;
                cand.extTime = static_cast<Tick>(rp_ct) * cand.rpTime;
                changed = true;
            }
            if (containsTensor(c.srcs, cand.tensor)) {
                cand.extTime = static_cast<Tick>(ext_ct) * cand.rpTime;
                changed = true;
            }
            if (changed)
                heap.push(HeapEnt{cand.msps(), j});
        }

        PlannedEviction item;
        item.tensor = c.tensor;
        item.mode = RegenChoice::Recompute;
        item.bytes = c.bytes;
        item.evictAfterAccess = c.evictAfterAccess;
        item.backAccess = c.backAccess;
        item.evictTime = c.evictTime;
        item.backTime = c.backTime;
        item.recomputeTime = c.rpTime + c.extTime;
        item.estimatedOverhead = item.recomputeTime;
        plan.items.push_back(item);
        ++plan.recomputeCount;
        plan.plannedBytes += c.bytes;
        saving -= static_cast<std::int64_t>(c.bytes);
    };

    while (saving > 0 && alive_count > 0) {
        // Best swap: maximal FT, i.e. minimal exposure. Scan order over
        // the liveness mask equals the reference's vector order, so ties
        // resolve identically.
        std::size_t s_idx = n;
        Tick s_exp = 0;
        if (opts_.enableSwap) {
            for (std::size_t i = 0; i < n; ++i) {
                if (!alive[i])
                    continue;
                Tick e = exposure_of(i);
                if (s_idx == n || e < s_exp ||
                    (e == s_exp &&
                     cands[i].freeTime > cands[s_idx].freeTime)) {
                    s_idx = i;
                    s_exp = e;
                }
            }
        }
        if (s_idx < n && s_exp == 0) {
            emit_swap(s_idx); // fully hidden: swap is free (§4.5)
            continue;
        }

        std::size_t r_idx = opts_.enableRecompute ? top_recompute() : n;

        bool have_s = s_idx < n;
        bool have_r = r_idx < n;
        if (have_s && have_r) {
            Tick r_over = cands[r_idx].rpTime + cands[r_idx].extTime;
            if (s_exp <= r_over)
                emit_swap(s_idx);
            else
                emit_recompute(r_idx);
        } else if (have_s) {
            emit_swap(s_idx);
        } else if (have_r) {
            emit_recompute(r_idx);
        } else {
            break; // nothing actionable left
        }
    }

    if (saving > 0) {
        warn("policy maker covered {} of {} saving target",
             formatBytes(plan.plannedBytes), formatBytes(plan.targetBytes));
    }
}

Plan
PolicyMaker::build(std::uint64_t mem_saving_target,
                   const BytesFn &tensor_bytes, const SwapTimeFn &swap_time,
                   std::uint64_t gpu_capacity)
{
    Plan plan;
    plan.targetBytes = mem_saving_target;
    if (mem_saving_target == 0 || tracker_.empty())
        return plan;

    // Peak window of the hypothetical (infinite-memory) usage curve; the
    // curve covers non-weight tensors, so compare against the capacity
    // left after the persistent weights.
    std::uint64_t weight_bytes = graph_.bytesOfKind(TensorKind::Weight);
    std::uint64_t threshold =
        gpu_capacity > weight_bytes ? gpu_capacity - weight_bytes : 0;
    auto curve_bytes = [&](TensorId id) -> std::uint64_t {
        return graph_.tensor(id).kind == TensorKind::Weight
                   ? 0
                   : tensor_bytes(id);
    };
    plan.peak = tracker_.peakWindow(curve_bytes, threshold);

    std::vector<Candidate> cands =
        gatherCandidates(tensor_bytes, swap_time, plan.peak);
    if (opts_.enableRecompute) {
        if (opts_.incremental) {
            // One candidate-set for all lineage walks, not one per call.
            std::unordered_set<TensorId> cand_set;
            cand_set.reserve(cands.size());
            for (const auto &c : cands)
                cand_set.insert(c.tensor);
            for (auto &c : cands)
                initRecomputeState(c, cand_set);
        } else {
            for (auto &c : cands)
                initRecomputeState(c, cands);
        }
    }

    if (opts_.incremental)
        runIncremental(plan, std::move(cands));
    else
        runReference(plan, std::move(cands));
    return plan;
}

} // namespace capu
