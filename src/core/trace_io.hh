/**
 * @file
 * Tensor-access trace serialization.
 *
 * The access trace is Capuchin's entire world-view — persisting it makes
 * the policy machinery usable offline: capture a trace from one run (or a
 * real framework, via the same {tensor_id, access_count, timestamp}
 * schema as the paper's TAT), then replay planning experiments against it
 * without re-simulating. `capusim --dump-trace` writes this format; the
 * PolicyMaker consumes a loaded tracker directly.
 *
 * Format: CSV with a versioned header. Columns:
 *   tensor,access,time_ns,is_output,op
 * plus a tensor-table section mapping ids to {name, bytes, kind} so a
 * trace is interpretable without the producing graph.
 */

#ifndef CAPU_CORE_TRACE_IO_HH
#define CAPU_CORE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/access_tracker.hh"
#include "graph/graph.hh"

namespace capu
{

/** Tensor metadata carried alongside a trace. */
struct TraceTensorInfo
{
    TensorId id = kInvalidTensor;
    std::string name;
    std::uint64_t bytes = 0;
    TensorKind kind = TensorKind::FeatureMap;
};

struct TensorTrace
{
    std::vector<TraceTensorInfo> tensors;
    std::vector<AccessRecord> records;

    /** Rebuild an AccessTracker from the records. */
    AccessTracker toTracker() const;
};

/** Capture the tracker's sequence plus tensor metadata from `graph`. */
TensorTrace captureTrace(const AccessTracker &tracker, const Graph &graph);

/** Serialize to the versioned CSV format. */
void writeTrace(std::ostream &os, const TensorTrace &trace);

/**
 * Parse a trace written by writeTrace().
 * @throws FatalError on malformed input (bad header, wrong arity, ...).
 */
TensorTrace readTrace(std::istream &is);

/** Convenience file wrappers. @throws FatalError on I/O failure. */
void saveTraceFile(const std::string &path, const TensorTrace &trace);
TensorTrace loadTraceFile(const std::string &path);

/**
 * Rebuild a skeletal Graph from a trace alone: tensors come from the
 * tensor table (ids preserved; never-accessed ids become zero-byte
 * placeholders), ops from the records (an op's inputs are the tensors it
 * read, its outputs the ones it wrote). Ops that read nothing are marked
 * non-recomputable — they are batch sources whose replay would fabricate
 * data. Phases and categories are unknown offline and default to
 * Forward/Elementwise; everything the PolicyMaker and PlanChecker need
 * (lineage, kinds, sizes, measured durations via the tracker) survives,
 * which is what makes offline plan linting possible.
 */
Graph reconstructGraph(const TensorTrace &trace);

} // namespace capu

#endif // CAPU_CORE_TRACE_IO_HH
