/**
 * @file
 * Tensor Access Tracker (TAT) — the paper's §5.2 module.
 *
 * During measured execution it records the full tensor access sequence
 * ({tensor_id, access_count, timestamp}, plus the producing op for lineage
 * timing). Timestamps are *corrected*: the executor's cumulative
 * memory-management stall is subtracted so the sequence reflects a
 * hypothetical infinite-memory run (paper: "we need to subtract this time
 * from tensor access time").
 *
 * Derived analyses used by the PolicyMaker:
 *  - per-tensor access lists (pair selection, FT computation);
 *  - per-op measured durations (recomputation cost, the paper's
 *    "comparing the access time of output and input tensors");
 *  - the hypothetical memory-usage curve and its peak window (candidate
 *    filtering and in-trigger placement).
 */

#ifndef CAPU_CORE_ACCESS_TRACKER_HH
#define CAPU_CORE_ACCESS_TRACKER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/tensor.hh"
#include "support/units.hh"

namespace capu
{

struct AccessRecord
{
    TensorId tensor = kInvalidTensor;
    int accessIndex = 0; ///< 1-based; 1 is production
    Tick time = 0;       ///< corrected (infinite-memory) timestamp
    bool isOutput = false;
    OpId op = kInvalidOp;
};

/** Contiguous time range where hypothetical memory usage exceeds a bound. */
struct PeakWindow
{
    bool valid = false;
    Tick lo = 0;
    Tick hi = 0;
    std::uint64_t peakBytes = 0;
};

class AccessTracker
{
  public:
    void reset();

    void record(const AccessRecord &rec);

    const std::vector<AccessRecord> &sequence() const { return seq_; }

    /** Access list of one tensor, in time order. Empty if never seen. */
    const std::vector<AccessRecord> &accessesOf(TensorId id) const;

    /** Measured kernel duration of `op` (last output - first input time). */
    Tick opDuration(OpId op) const;

    bool hasOpDuration(OpId op) const;

    /**
     * Hypothetical (infinite-memory) usage curve analysis. Tensors count
     * `bytes(id)` from first to last access; return 0 from `bytes` to
     * exclude a tensor (weights, tiny tensors).
     *
     * @param threshold Usage level defining the peak window (e.g. GPU
     *        capacity minus weights).
     */
    PeakWindow peakWindow(
        const std::function<std::uint64_t(TensorId)> &bytes,
        std::uint64_t threshold) const;

    /** Peak of the hypothetical usage curve. */
    std::uint64_t hypotheticalPeak(
        const std::function<std::uint64_t(TensorId)> &bytes) const;

    /**
     * Latest access with `after < time < before`, `time <= at_or_before`
     * and tensor != exclude; among equal times the earliest sequence
     * entry wins. Null if none qualifies. Served from a lazily-built
     * (time, seq-position) index — a binary search plus a short group
     * walk instead of a full-sequence scan (the corrected timeline can
     * locally run backwards, so the raw sequence is not time-sorted).
     */
    const AccessRecord *latestAtOrBefore(Tick after, Tick before,
                                         Tick at_or_before,
                                         TensorId exclude) const;

    /**
     * Earliest access with `after < time < before` and tensor != exclude;
     * ties broken toward the earliest sequence entry. Null if none.
     */
    const AccessRecord *earliestWithin(Tick after, Tick before,
                                       TensorId exclude) const;

    std::size_t size() const { return seq_.size(); }
    bool empty() const { return seq_.empty(); }

  private:
    /** Build the sorted (time, seq-position) index if stale. Not
     *  thread-safe; a tracker belongs to exactly one Session. */
    void ensureTimeIndex() const;

    std::vector<AccessRecord> seq_;
    mutable std::vector<std::pair<Tick, std::uint32_t>> timeIndex_;
    mutable bool timeIndexDirty_ = true;
    std::unordered_map<TensorId, std::vector<AccessRecord>> perTensor_;
    struct OpTimes
    {
        Tick firstInput = 0;
        Tick lastOutput = 0;
        bool haveInput = false;
        bool haveOutput = false;
    };
    std::unordered_map<OpId, OpTimes> opTimes_;
};

} // namespace capu

#endif // CAPU_CORE_ACCESS_TRACKER_HH
