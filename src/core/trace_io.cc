#include "core/trace_io.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace capu
{

namespace
{

constexpr const char *kHeader = "# capuchin-trace v1";

TensorKind
kindFromName(const std::string &name)
{
    if (name == "feature")
        return TensorKind::FeatureMap;
    if (name == "weight")
        return TensorKind::Weight;
    if (name == "gradient")
        return TensorKind::Gradient;
    if (name == "workspace")
        return TensorKind::Workspace;
    fatal("unknown tensor kind '{}' in trace", name);
}

std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> out;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            out.push_back(cell);
            cell.clear();
        } else {
            cell += c;
        }
    }
    out.push_back(cell);
    return out;
}

} // namespace

AccessTracker
TensorTrace::toTracker() const
{
    AccessTracker tracker;
    for (const AccessRecord &rec : records)
        tracker.record(rec);
    return tracker;
}

TensorTrace
captureTrace(const AccessTracker &tracker, const Graph &graph)
{
    TensorTrace trace;
    std::vector<bool> seen(graph.numTensors(), false);
    for (const AccessRecord &rec : tracker.sequence()) {
        trace.records.push_back(rec);
        if (rec.tensor < seen.size() && !seen[rec.tensor]) {
            seen[rec.tensor] = true;
            const TensorDesc &t = graph.tensor(rec.tensor);
            trace.tensors.push_back(
                TraceTensorInfo{t.id, t.name, t.bytes, t.kind});
        }
    }
    return trace;
}

void
writeTrace(std::ostream &os, const TensorTrace &trace)
{
    os << kHeader << '\n';
    os << "tensors " << trace.tensors.size() << '\n';
    for (const auto &t : trace.tensors) {
        std::string safe_name = t.name;
        for (char &c : safe_name) {
            if (c == ',' || c == '\n')
                c = '_';
        }
        os << t.id << ',' << safe_name << ',' << t.bytes << ','
           << tensorKindName(t.kind) << '\n';
    }
    os << "records " << trace.records.size() << '\n';
    for (const auto &r : trace.records) {
        os << r.tensor << ',' << r.accessIndex << ',' << r.time << ','
           << (r.isOutput ? 1 : 0) << ','
           << (r.op == kInvalidOp ? -1 : static_cast<long long>(r.op))
           << '\n';
    }
}

TensorTrace
readTrace(std::istream &is)
{
    TensorTrace trace;
    std::string line;
    if (!std::getline(is, line) || line != kHeader)
        fatal("not a capuchin trace (bad header '{}')", line);

    std::string word;
    std::size_t count = 0;
    is >> word >> count;
    if (word != "tensors")
        fatal("trace missing tensor table");
    std::getline(is, line); // eat newline
    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(is, line))
            fatal("trace tensor table truncated at row {}", i);
        auto cells = splitCsv(line);
        if (cells.size() != 4)
            fatal("bad tensor row '{}'", line);
        TraceTensorInfo t;
        t.id = static_cast<TensorId>(std::stoul(cells[0]));
        t.name = cells[1];
        t.bytes = std::stoull(cells[2]);
        t.kind = kindFromName(cells[3]);
        trace.tensors.push_back(std::move(t));
    }

    is >> word >> count;
    if (word != "records")
        fatal("trace missing record section");
    std::getline(is, line);
    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(is, line))
            fatal("trace records truncated at row {}", i);
        auto cells = splitCsv(line);
        if (cells.size() != 5)
            fatal("bad record row '{}'", line);
        AccessRecord r;
        r.tensor = static_cast<TensorId>(std::stoul(cells[0]));
        r.accessIndex = std::stoi(cells[1]);
        r.time = std::stoull(cells[2]);
        r.isOutput = cells[3] == "1";
        long long op = std::stoll(cells[4]);
        r.op = op < 0 ? kInvalidOp : static_cast<OpId>(op);
        trace.records.push_back(r);
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const TensorTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '{}' for writing", path);
    writeTrace(os, trace);
    if (!os)
        fatal("error writing trace to '{}'", path);
}

TensorTrace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace file '{}'", path);
    return readTrace(is);
}

} // namespace capu
