#include "core/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace capu
{

namespace
{

constexpr const char *kHeader = "# capuchin-trace v1";

TensorKind
kindFromName(const std::string &name)
{
    if (name == "feature")
        return TensorKind::FeatureMap;
    if (name == "weight")
        return TensorKind::Weight;
    if (name == "gradient")
        return TensorKind::Gradient;
    if (name == "workspace")
        return TensorKind::Workspace;
    fatal("unknown tensor kind '{}' in trace", name);
}

std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> out;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            out.push_back(cell);
            cell.clear();
        } else {
            cell += c;
        }
    }
    out.push_back(cell);
    return out;
}

} // namespace

AccessTracker
TensorTrace::toTracker() const
{
    AccessTracker tracker;
    for (const AccessRecord &rec : records)
        tracker.record(rec);
    return tracker;
}

TensorTrace
captureTrace(const AccessTracker &tracker, const Graph &graph)
{
    TensorTrace trace;
    std::vector<bool> seen(graph.numTensors(), false);
    for (const AccessRecord &rec : tracker.sequence()) {
        trace.records.push_back(rec);
        if (rec.tensor < seen.size() && !seen[rec.tensor]) {
            seen[rec.tensor] = true;
            const TensorDesc &t = graph.tensor(rec.tensor);
            trace.tensors.push_back(
                TraceTensorInfo{t.id, t.name, t.bytes, t.kind});
        }
    }
    return trace;
}

void
writeTrace(std::ostream &os, const TensorTrace &trace)
{
    os << kHeader << '\n';
    os << "tensors " << trace.tensors.size() << '\n';
    for (const auto &t : trace.tensors) {
        std::string safe_name = t.name;
        for (char &c : safe_name) {
            if (c == ',' || c == '\n')
                c = '_';
        }
        os << t.id << ',' << safe_name << ',' << t.bytes << ','
           << tensorKindName(t.kind) << '\n';
    }
    os << "records " << trace.records.size() << '\n';
    for (const auto &r : trace.records) {
        os << r.tensor << ',' << r.accessIndex << ',' << r.time << ','
           << (r.isOutput ? 1 : 0) << ','
           << (r.op == kInvalidOp ? -1 : static_cast<long long>(r.op))
           << '\n';
    }
}

TensorTrace
readTrace(std::istream &is)
{
    TensorTrace trace;
    std::string line;
    if (!std::getline(is, line) || line != kHeader)
        fatal("not a capuchin trace (bad header '{}')", line);

    std::string word;
    std::size_t count = 0;
    is >> word >> count;
    if (word != "tensors")
        fatal("trace missing tensor table");
    std::getline(is, line); // eat newline
    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(is, line))
            fatal("trace tensor table truncated at row {}", i);
        auto cells = splitCsv(line);
        if (cells.size() != 4)
            fatal("bad tensor row '{}'", line);
        TraceTensorInfo t;
        t.id = static_cast<TensorId>(std::stoul(cells[0]));
        t.name = cells[1];
        t.bytes = std::stoull(cells[2]);
        t.kind = kindFromName(cells[3]);
        trace.tensors.push_back(std::move(t));
    }

    is >> word >> count;
    if (word != "records")
        fatal("trace missing record section");
    std::getline(is, line);
    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(is, line))
            fatal("trace records truncated at row {}", i);
        auto cells = splitCsv(line);
        if (cells.size() != 5)
            fatal("bad record row '{}'", line);
        AccessRecord r;
        r.tensor = static_cast<TensorId>(std::stoul(cells[0]));
        r.accessIndex = std::stoi(cells[1]);
        r.time = std::stoull(cells[2]);
        r.isOutput = cells[3] == "1";
        long long op = std::stoll(cells[4]);
        r.op = op < 0 ? kInvalidOp : static_cast<OpId>(op);
        trace.records.push_back(r);
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const TensorTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '{}' for writing", path);
    writeTrace(os, trace);
    if (!os)
        fatal("error writing trace to '{}'", path);
}

TensorTrace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace file '{}'", path);
    return readTrace(is);
}

Graph
reconstructGraph(const TensorTrace &trace)
{
    TensorId max_tensor = 0;
    OpId max_op = 0;
    bool any_op = false;
    for (const auto &t : trace.tensors)
        max_tensor = std::max(max_tensor, t.id);
    for (const auto &r : trace.records) {
        max_tensor = std::max(max_tensor, r.tensor);
        if (r.op != kInvalidOp) {
            max_op = std::max(max_op, r.op);
            any_op = true;
        }
    }

    Graph g("trace");
    if (trace.records.empty() && trace.tensors.empty())
        return g;

    // Tensor table first, ids preserved (addTensor assigns sequentially).
    std::vector<const TraceTensorInfo *> by_id(max_tensor + 1, nullptr);
    for (const auto &t : trace.tensors)
        by_id[t.id] = &t;
    for (TensorId id = 0; id <= max_tensor; ++id) {
        if (by_id[id] != nullptr) {
            g.addTensor(by_id[id]->name, by_id[id]->bytes, by_id[id]->kind);
        } else {
            g.addTensor("(unseen:" + std::to_string(id) + ")", 0,
                        TensorKind::Workspace);
        }
    }

    if (!any_op)
        return g;

    // Ops from the records: reads are inputs, writes outputs. A malformed
    // trace may claim two producers for one tensor; keep the first so the
    // graph stays constructible and let the checker flag the fallout.
    struct OpIo
    {
        std::vector<TensorId> inputs;
        std::vector<TensorId> outputs;
    };
    std::vector<OpIo> io(max_op + 1);
    std::vector<bool> produced(max_tensor + 1, false);
    auto add_unique = [](std::vector<TensorId> &v, TensorId t) {
        if (std::find(v.begin(), v.end(), t) == v.end())
            v.push_back(t);
    };
    for (const auto &r : trace.records) {
        if (r.op == kInvalidOp)
            continue;
        if (r.isOutput) {
            if (!produced[r.tensor]) {
                produced[r.tensor] = true;
                add_unique(io[r.op].outputs, r.tensor);
            }
        } else {
            add_unique(io[r.op].inputs, r.tensor);
        }
    }
    for (OpId id = 0; id <= max_op; ++id) {
        Operation op;
        op.name = "op" + std::to_string(id);
        op.inputs = std::move(io[id].inputs);
        op.outputs = std::move(io[id].outputs);
        // An op that reads nothing is a batch source: replaying it would
        // fabricate fresh data, so it must not count as recomputable.
        op.recomputable = !op.inputs.empty();
        if (op.recomputable == false)
            op.category = OpCategory::Source;
        g.addOp(std::move(op));
    }
    return g;
}

} // namespace capu
