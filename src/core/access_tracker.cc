#include "core/access_tracker.hh"

#include <algorithm>
#include <map>

namespace capu
{

void
AccessTracker::reset()
{
    seq_.clear();
    perTensor_.clear();
    opTimes_.clear();
    timeIndex_.clear();
    timeIndexDirty_ = true;
}

void
AccessTracker::record(const AccessRecord &rec)
{
    seq_.push_back(rec);
    timeIndexDirty_ = true;
    perTensor_[rec.tensor].push_back(rec);
    if (rec.op != kInvalidOp) {
        OpTimes &ot = opTimes_[rec.op];
        if (rec.isOutput) {
            ot.lastOutput = std::max(ot.lastOutput, rec.time);
            ot.haveOutput = true;
        } else {
            ot.firstInput = ot.haveInput
                                ? std::min(ot.firstInput, rec.time)
                                : rec.time;
            ot.haveInput = true;
        }
    }
}

const std::vector<AccessRecord> &
AccessTracker::accessesOf(TensorId id) const
{
    static const std::vector<AccessRecord> empty;
    auto it = perTensor_.find(id);
    return it == perTensor_.end() ? empty : it->second;
}

Tick
AccessTracker::opDuration(OpId op) const
{
    auto it = opTimes_.find(op);
    if (it == opTimes_.end() || !it->second.haveOutput)
        return 0;
    Tick start = it->second.haveInput ? it->second.firstInput
                                      : it->second.lastOutput;
    return it->second.lastOutput > start ? it->second.lastOutput - start : 0;
}

bool
AccessTracker::hasOpDuration(OpId op) const
{
    auto it = opTimes_.find(op);
    return it != opTimes_.end() && it->second.haveOutput;
}

PeakWindow
AccessTracker::peakWindow(
    const std::function<std::uint64_t(TensorId)> &bytes,
    std::uint64_t threshold) const
{
    // Sweep +size at first access, -size just after last access.
    std::map<Tick, std::int64_t> deltas;
    for (const auto &[tid, recs] : perTensor_) {
        std::uint64_t b = bytes(tid);
        if (b == 0 || recs.empty())
            continue;
        deltas[recs.front().time] += static_cast<std::int64_t>(b);
        deltas[recs.back().time + 1] -= static_cast<std::int64_t>(b);
    }
    PeakWindow win;
    std::int64_t usage = 0;
    bool above = false;
    for (const auto &[t, d] : deltas) {
        usage += d;
        win.peakBytes = std::max(win.peakBytes,
                                 static_cast<std::uint64_t>(
                                     std::max<std::int64_t>(usage, 0)));
        bool now_above = usage > static_cast<std::int64_t>(threshold);
        if (now_above && !above) {
            if (!win.valid) {
                win.valid = true;
                win.lo = t;
            }
            above = true;
        } else if (!now_above && above) {
            win.hi = t; // extend to the last crossing (union span)
            above = false;
        }
    }
    return win;
}

std::uint64_t
AccessTracker::hypotheticalPeak(
    const std::function<std::uint64_t(TensorId)> &bytes) const
{
    return peakWindow(bytes, ~0ull >> 1).peakBytes;
}

void
AccessTracker::ensureTimeIndex() const
{
    if (!timeIndexDirty_)
        return;
    timeIndex_.clear();
    timeIndex_.reserve(seq_.size());
    for (std::size_t i = 0; i < seq_.size(); ++i)
        timeIndex_.emplace_back(seq_[i].time,
                                static_cast<std::uint32_t>(i));
    std::sort(timeIndex_.begin(), timeIndex_.end());
    timeIndexDirty_ = false;
}

const AccessRecord *
AccessTracker::latestAtOrBefore(Tick after, Tick before, Tick at_or_before,
                                TensorId exclude) const
{
    if (before == 0)
        return nullptr;
    ensureTimeIndex();
    Tick cap = std::min(at_or_before, before - 1);
    auto it = std::upper_bound(
        timeIndex_.begin(), timeIndex_.end(),
        std::pair<Tick, std::uint32_t>{cap, ~std::uint32_t(0)});
    std::size_t pos = static_cast<std::size_t>(it - timeIndex_.begin());
    // Walk time groups downward; the first group with a non-excluded
    // record wins, and within a group the lowest sequence position wins
    // (matching the old scan's first-occurrence-of-max-time behaviour).
    while (pos > 0) {
        Tick t = timeIndex_[pos - 1].first;
        if (t <= after)
            break;
        std::size_t gs = pos;
        while (gs > 0 && timeIndex_[gs - 1].first == t)
            --gs;
        for (std::size_t k = gs; k < pos; ++k) {
            const AccessRecord &r = seq_[timeIndex_[k].second];
            if (r.tensor != exclude)
                return &r;
        }
        pos = gs;
    }
    return nullptr;
}

const AccessRecord *
AccessTracker::earliestWithin(Tick after, Tick before,
                              TensorId exclude) const
{
    if (before == 0)
        return nullptr;
    ensureTimeIndex();
    auto it = std::upper_bound(
        timeIndex_.begin(), timeIndex_.end(),
        std::pair<Tick, std::uint32_t>{after, ~std::uint32_t(0)});
    std::size_t pos = static_cast<std::size_t>(it - timeIndex_.begin());
    const std::size_t n = timeIndex_.size();
    while (pos < n) {
        Tick t = timeIndex_[pos].first;
        if (t >= before)
            break;
        std::size_t ge = pos;
        while (ge < n && timeIndex_[ge].first == t)
            ++ge;
        for (std::size_t k = pos; k < ge; ++k) {
            const AccessRecord &r = seq_[timeIndex_[k].second];
            if (r.tensor != exclude)
                return &r;
        }
        pos = ge;
    }
    return nullptr;
}

} // namespace capu
