/**
 * @file
 * Capuchin — the paper's memory management module, as a MemoryPolicy.
 *
 * Iteration 0 is the *measured execution*: the policy runs in passive mode
 * (on-demand synchronous swapping on allocation failure, victims taken from
 * the beginning of the tensor access list) while the Tensor Access Tracker
 * records the corrected access sequence. The total size of passively
 * evicted tensors becomes the memory-saving target.
 *
 * From iteration 1 on (*guided execution*) the PolicyMaker's plan drives
 * proactive eviction at each item's evicted-access, prefetch at its
 * in-trigger, and recomputation on back-access; the feedback loop shifts
 * in-triggers earlier by `feedbackStep` x SwapTime whenever a back-access
 * still observes SWAPPING_IN. Passive mode stays armed as a safety net.
 *
 * The policy is computation-graph agnostic in the paper's sense: decisions
 * derive from the observed access sequence; lineage is supplied by the
 * framework's runtime record of which op produced which tensor (here:
 * ExecContext::graph()).
 */

#ifndef CAPU_CORE_CAPUCHIN_POLICY_HH
#define CAPU_CORE_CAPUCHIN_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/access_tracker.hh"
#include "core/policy_maker.hh"
#include "exec/memory_policy.hh"

namespace capu
{

struct CapuchinOptions
{
    /** Allow swap in the plan (off = recompute-only, Fig. 8b). */
    bool enableSwap = true;
    /** Allow recomputation in the plan (off = swap-only, Fig. 8a). */
    bool enableRecompute = true;
    /** Feedback-driven in-trigger adjustment (FA in Fig. 8a). */
    bool enableFeedback = true;
    /** Prefetch swapped tensors at their in-trigger (off = on-demand). */
    bool enablePrefetch = true;
    /** In-trigger shift per feedback event, as fraction of SwapTime. */
    double feedbackStep = 0.05;
    /**
     * Feedback deadband: ignore back-access stalls shorter than this
     * fraction of the item's SwapTime. Without it, residual jitter-sized
     * stalls keep marching in-triggers earlier every iteration until
     * prefetches bunch up at iteration start and the loop oscillates.
     */
    double feedbackDeadband = 0.02;
    /** Ignore tensors below this size. */
    std::uint64_t minTensorBytes = 1ull << 20;
    /** Plan this much beyond the measured eviction total (headroom). */
    double savingMargin = 1.05;
    /**
     * Iterative refinement: when a guided iteration still needed passive
     * evictions, grow the saving target by those bytes and rebuild the
     * plan, up to this many times (the paper: "refined iteratively from
     * runtime feedbacks", stable "usually within 50 iterations").
     */
    int maxReplans = 20;
    /**
     * Plan-drift watchdog: during guided execution, compare each access's
     * observed iteration-relative timestamp against the measured trace the
     * plan was built from. When the mean absolute divergence exceeds this
     * fraction of the measured timeline, discard the plan and re-enter
     * measured execution (the environment changed: PCIe contention, kernel
     * slowdown, ...). 0 disables the watchdog entirely — no per-access
     * bookkeeping, guaranteeing byte-identical behaviour to builds without
     * it.
     */
    double driftThreshold = 0.0;
    /** Upper bound on drift-triggered re-measurements per shape class. */
    int maxRemeasures = 2;
    /**
     * Optional plan audit (capulint): invoked every time a plan is built
     * from a *complete* measured trace, before guided execution resumes.
     * Installed by analysis/lint_hooks::enablePlanLint; the installed
     * hook panics on error-level findings, so a broken plan dies at the
     * decision site instead of deep inside the executor.
     */
    std::function<void(const Plan &, const AccessTracker &, ExecContext &)>
        planAudit;
};

class CapuchinPolicy : public MemoryPolicy
{
  public:
    explicit CapuchinPolicy(CapuchinOptions opts = {});

    std::string name() const override { return "Capuchin"; }
    bool graphAgnostic() const override { return true; }

    void beginIteration(ExecContext &ctx) override;
    void onShapeClass(std::uint64_t cls) override;
    void onAccess(ExecContext &ctx, const AccessEvent &event) override;
    bool onAllocFailure(ExecContext &ctx, std::uint64_t bytes) override;
    void onBackAccessStall(ExecContext &ctx, TensorId id,
                           Tick stall) override;
    void endIteration(ExecContext &ctx, const IterationStats &stats) override;
    bool onIterationAbort(ExecContext &ctx) override;
    bool stableForReplay() const override;

    /**
     * Deep copy: the per-shape-class plan cache (measured traces, plans,
     * trigger maps, drift watchdog state) is duplicated entry by entry, so
     * a fork's refinements never leak back into the original.
     */
    std::unique_ptr<MemoryPolicy> clone() const override;

    /**
     * Install `plan` as shape class 0's frozen plan before the first
     * iteration, skipping measured execution entirely (capuserve: a
     * deserialized plan validated against the graph fingerprint). The
     * seeded class has no measured trace, so refinement is frozen and any
     * guided abort falls straight back to passive execution rather than
     * rebuilding from an empty tracker.
     */
    void seedPlan(Plan plan);

    // --- introspection (state of the current shape class; a static
    // session has exactly one, so these read as before capudrift) ---
    const AccessTracker &tracker() const { return cur().tracker; }
    const Plan &plan() const { return cur().plan; }
    bool planBuilt() const { return cur().planBuilt; }
    std::uint64_t measuredEvictedBytes() const
    {
        return cur().measuredEvicted;
    }
    int feedbackAdjustments() const { return feedbackAdjustments_; }
    /** Drift-triggered re-measurements, summed over all shape classes. */
    int remeasures() const;
    /** Shape classes encountered so far (>= 1 once running). */
    std::size_t shapeClassCount() const { return classes_.size(); }

  private:
    /**
     * The complete measure/plan/refine lifecycle of one shape class. A
     * static graph uses exactly class 0; a dynamic graph gets one entry
     * per recurring shape, each caching its measured trace and plan so a
     * recurring shape never re-measures (the capudrift plan cache).
     */
    struct ClassState
    {
        AccessTracker tracker;
        Plan plan;
        /** A measured iteration has completed for this class (replaces
         *  the pre-capudrift `ctx.iteration() == 0` virginity test:
         *  aborts never reach endIteration, so a virgin class keeps
         *  re-entering measured execution on each retry). */
        bool everCompleted = false;
        /** The drift track announced this class's first measurement. */
        bool novelNoted = false;
        bool measured = true;
        bool planBuilt = false;
        bool planFromPartial = false;
        bool triggersDirty = false;
        std::uint64_t measuredEvicted = 0;
        std::uint64_t targetBoost = 0;
        std::uint64_t guidedPassiveBytes = 0;
        std::uint64_t bestPassiveBytes = ~0ull;
        Plan bestPlan;
        bool refinementFrozen = false;
        int replans = 0;
        /** A feedback shift fired during the current/just-ended iter. */
        bool feedbackShiftedThisIter = false;

        // --- drift watchdog state (inert while driftThreshold == 0) ---
        int remeasures = 0;
        bool remeasureRequested = false;
        Tick iterStart = 0;
        Tick measuredIterStart = 0;
        double driftAbs = 0.0;
        double driftBase = 0.0;
        /** key(tensor, accessIndex) -> measured iteration-relative tick. */
        std::unordered_map<std::uint64_t, Tick> measuredTime;

        /** (tensor, accessIndex) keys -> plan item indices. */
        std::unordered_map<std::uint64_t, std::size_t> evictTriggers;
        std::unordered_map<std::uint64_t, std::vector<std::size_t>>
            prefetchTriggers;
        std::unordered_map<TensorId, std::size_t> itemOf;
    };

    CapuchinOptions opts_;
    int feedbackAdjustments_ = 0;
    /**
     * Shape class of the upcoming/current iteration. Set by onShapeClass
     * (fired before the replay engine asks stableForReplay) and confirmed
     * from ctx.shapeClass() at beginIteration. Always 0 on static graphs.
     */
    std::uint64_t currentClass_ = 0;
    /** Plan cache, indexed by shape class (grown on first encounter). */
    mutable std::vector<std::unique_ptr<ClassState>> classes_;

    ClassState &classFor(std::uint64_t cls) const;
    ClassState &cur() const { return classFor(currentClass_); }

    static std::uint64_t
    key(TensorId tensor, int access_index)
    {
        return (static_cast<std::uint64_t>(tensor) << 32) |
               static_cast<std::uint32_t>(access_index);
    }

    void buildPlan(ExecContext &ctx, ClassState &cs, bool audit = true);
    void rebuildTriggerMaps(ClassState &cs);
    bool passiveEvict(ExecContext &ctx, ClassState &cs, std::uint64_t bytes);
};

std::unique_ptr<MemoryPolicy> makeCapuchinPolicy(CapuchinOptions opts = {});

} // namespace capu

#endif // CAPU_CORE_CAPUCHIN_POLICY_HH
