/**
 * @file
 * Capuchin — the paper's memory management module, as a MemoryPolicy.
 *
 * Iteration 0 is the *measured execution*: the policy runs in passive mode
 * (on-demand synchronous swapping on allocation failure, victims taken from
 * the beginning of the tensor access list) while the Tensor Access Tracker
 * records the corrected access sequence. The total size of passively
 * evicted tensors becomes the memory-saving target.
 *
 * From iteration 1 on (*guided execution*) the PolicyMaker's plan drives
 * proactive eviction at each item's evicted-access, prefetch at its
 * in-trigger, and recomputation on back-access; the feedback loop shifts
 * in-triggers earlier by `feedbackStep` x SwapTime whenever a back-access
 * still observes SWAPPING_IN. Passive mode stays armed as a safety net.
 *
 * The policy is computation-graph agnostic in the paper's sense: decisions
 * derive from the observed access sequence; lineage is supplied by the
 * framework's runtime record of which op produced which tensor (here:
 * ExecContext::graph()).
 */

#ifndef CAPU_CORE_CAPUCHIN_POLICY_HH
#define CAPU_CORE_CAPUCHIN_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/access_tracker.hh"
#include "core/policy_maker.hh"
#include "exec/memory_policy.hh"

namespace capu
{

struct CapuchinOptions
{
    /** Allow swap in the plan (off = recompute-only, Fig. 8b). */
    bool enableSwap = true;
    /** Allow recomputation in the plan (off = swap-only, Fig. 8a). */
    bool enableRecompute = true;
    /** Feedback-driven in-trigger adjustment (FA in Fig. 8a). */
    bool enableFeedback = true;
    /** Prefetch swapped tensors at their in-trigger (off = on-demand). */
    bool enablePrefetch = true;
    /** In-trigger shift per feedback event, as fraction of SwapTime. */
    double feedbackStep = 0.05;
    /**
     * Feedback deadband: ignore back-access stalls shorter than this
     * fraction of the item's SwapTime. Without it, residual jitter-sized
     * stalls keep marching in-triggers earlier every iteration until
     * prefetches bunch up at iteration start and the loop oscillates.
     */
    double feedbackDeadband = 0.02;
    /** Ignore tensors below this size. */
    std::uint64_t minTensorBytes = 1ull << 20;
    /** Plan this much beyond the measured eviction total (headroom). */
    double savingMargin = 1.05;
    /**
     * Iterative refinement: when a guided iteration still needed passive
     * evictions, grow the saving target by those bytes and rebuild the
     * plan, up to this many times (the paper: "refined iteratively from
     * runtime feedbacks", stable "usually within 50 iterations").
     */
    int maxReplans = 20;
    /**
     * Plan-drift watchdog: during guided execution, compare each access's
     * observed iteration-relative timestamp against the measured trace the
     * plan was built from. When the mean absolute divergence exceeds this
     * fraction of the measured timeline, discard the plan and re-enter
     * measured execution (the environment changed: PCIe contention, kernel
     * slowdown, ...). 0 disables the watchdog entirely — no per-access
     * bookkeeping, guaranteeing byte-identical behaviour to builds without
     * it.
     */
    double driftThreshold = 0.0;
    /** Upper bound on drift-triggered re-measurements per session. */
    int maxRemeasures = 2;
    /**
     * Optional plan audit (capulint): invoked every time a plan is built
     * from a *complete* measured trace, before guided execution resumes.
     * Installed by analysis/lint_hooks::enablePlanLint; the installed
     * hook panics on error-level findings, so a broken plan dies at the
     * decision site instead of deep inside the executor.
     */
    std::function<void(const Plan &, const AccessTracker &, ExecContext &)>
        planAudit;
};

class CapuchinPolicy : public MemoryPolicy
{
  public:
    explicit CapuchinPolicy(CapuchinOptions opts = {});

    std::string name() const override { return "Capuchin"; }
    bool graphAgnostic() const override { return true; }

    void beginIteration(ExecContext &ctx) override;
    void onAccess(ExecContext &ctx, const AccessEvent &event) override;
    bool onAllocFailure(ExecContext &ctx, std::uint64_t bytes) override;
    void onBackAccessStall(ExecContext &ctx, TensorId id,
                           Tick stall) override;
    void endIteration(ExecContext &ctx, const IterationStats &stats) override;
    bool onIterationAbort(ExecContext &ctx) override;
    bool stableForReplay() const override;

    // --- introspection ---
    const AccessTracker &tracker() const { return tracker_; }
    const Plan &plan() const { return plan_; }
    bool planBuilt() const { return planBuilt_; }
    std::uint64_t measuredEvictedBytes() const { return measuredEvicted_; }
    int feedbackAdjustments() const { return feedbackAdjustments_; }
    int remeasures() const { return remeasures_; }

  private:
    CapuchinOptions opts_;
    AccessTracker tracker_;
    Plan plan_;
    bool measured_ = true;
    bool planBuilt_ = false;
    bool planFromPartial_ = false;
    bool triggersDirty_ = false;
    std::uint64_t measuredEvicted_ = 0;
    std::uint64_t targetBoost_ = 0;
    std::uint64_t guidedPassiveBytes_ = 0;
    std::uint64_t bestPassiveBytes_ = ~0ull;
    Plan bestPlan_;
    bool refinementFrozen_ = false;
    int replans_ = 0;
    int feedbackAdjustments_ = 0;
    /** A feedback shift fired during the current/just-ended iteration. */
    bool feedbackShiftedThisIter_ = false;

    // --- drift watchdog state (inert while driftThreshold == 0) ---
    int remeasures_ = 0;
    bool remeasureRequested_ = false;
    Tick iterStart_ = 0;
    Tick measuredIterStart_ = 0;
    double driftAbs_ = 0.0;
    double driftBase_ = 0.0;
    /** key(tensor, accessIndex) -> measured iteration-relative tick. */
    std::unordered_map<std::uint64_t, Tick> measuredTime_;

    /** (tensor, accessIndex) keys -> plan item indices. */
    std::unordered_map<std::uint64_t, std::size_t> evictTriggers_;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>>
        prefetchTriggers_;
    std::unordered_map<TensorId, std::size_t> itemOf_;

    static std::uint64_t
    key(TensorId tensor, int access_index)
    {
        return (static_cast<std::uint64_t>(tensor) << 32) |
               static_cast<std::uint32_t>(access_index);
    }

    void buildPlan(ExecContext &ctx, bool audit = true);
    void rebuildTriggerMaps();
    bool passiveEvict(ExecContext &ctx, std::uint64_t bytes);
};

std::unique_ptr<MemoryPolicy> makeCapuchinPolicy(CapuchinOptions opts = {});

} // namespace capu

#endif // CAPU_CORE_CAPUCHIN_POLICY_HH
