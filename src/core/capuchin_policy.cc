#include "core/capuchin_policy.hh"

#include <algorithm>
#include <unordered_set>

#include "faults/fault_engine.hh"
#include "support/logging.hh"

namespace capu
{

CapuchinPolicy::CapuchinPolicy(CapuchinOptions opts) : opts_(opts)
{
}

std::unique_ptr<MemoryPolicy>
CapuchinPolicy::clone() const
{
    auto copy = std::make_unique<CapuchinPolicy>(opts_);
    copy->feedbackAdjustments_ = feedbackAdjustments_;
    copy->currentClass_ = currentClass_;
    copy->classes_.reserve(classes_.size());
    for (const auto &cs : classes_) {
        copy->classes_.push_back(
            cs ? std::make_unique<ClassState>(*cs) : nullptr);
    }
    return copy;
}

CapuchinPolicy::ClassState &
CapuchinPolicy::classFor(std::uint64_t cls) const
{
    if (cls >= classes_.size())
        classes_.resize(cls + 1);
    if (!classes_[cls])
        classes_[cls] = std::make_unique<ClassState>();
    return *classes_[cls];
}

int
CapuchinPolicy::remeasures() const
{
    int total = 0;
    for (const auto &cs : classes_) {
        if (cs)
            total += cs->remeasures;
    }
    return total;
}

void
CapuchinPolicy::onShapeClass(std::uint64_t cls)
{
    currentClass_ = cls;
}

void
CapuchinPolicy::beginIteration(ExecContext &ctx)
{
    currentClass_ = ctx.shapeClass();
    const bool dynamic = ctx.graph().dynamic();
    ClassState &cs = cur();
    cs.iterStart = ctx.now();
    cs.driftAbs = 0.0;
    cs.driftBase = 0.0;
    cs.feedbackShiftedThisIter = false;
    if (!cs.everCompleted) {
        // First (or retried) measured execution of this shape class:
        // passive on-demand swapping only, so a novel shape degrades to
        // extra stalls instead of mis-planned OOM.
        cs.measured = true;
        cs.tracker.reset();
        cs.measuredEvicted = 0;
        cs.measuredIterStart = cs.iterStart;
        if (dynamic) {
            auto &o = ctx.obs();
            if (!cs.novelNoted) {
                cs.novelNoted = true;
                o.metrics.add("capu.drift.novel_class");
                o.tracer.instant(obs::kTrackDrift, obs::EventKind::Decision,
                                 ctx.now(), "drift.novel",
                                 static_cast<std::int64_t>(currentClass_));
            }
            o.metrics.add("capu.drift.measured_iters");
        }
        return;
    }
    if (cs.remeasureRequested) {
        // The drift watchdog fired: the environment this class's plan was
        // measured in no longer holds. Discard everything learned for the
        // class and re-enter measured execution for one clean iteration.
        cs.remeasureRequested = false;
        cs.measured = true;
        cs.tracker.reset();
        cs.measuredEvicted = 0;
        cs.planBuilt = false;
        cs.planFromPartial = false;
        cs.plan = Plan{};
        cs.bestPlan = Plan{};
        cs.evictTriggers.clear();
        cs.prefetchTriggers.clear();
        cs.itemOf.clear();
        cs.measuredTime.clear();
        cs.targetBoost = 0;
        cs.guidedPassiveBytes = 0;
        cs.bestPassiveBytes = ~0ull;
        cs.refinementFrozen = false;
        cs.replans = 0;
        cs.triggersDirty = false;
        cs.measuredIterStart = cs.iterStart;
        if (dynamic)
            ctx.obs().metrics.add("capu.drift.measured_iters");
        return;
    }
    cs.measured = false;
    if (!cs.planBuilt || cs.planFromPartial) {
        cs.planFromPartial = false;
        buildPlan(ctx, cs);
    }
}

void
CapuchinPolicy::buildPlan(ExecContext &ctx, ClassState &cs, bool audit)
{
    PolicyMakerOptions pm_opts;
    pm_opts.enableSwap = opts_.enableSwap;
    pm_opts.enableRecompute = opts_.enableRecompute;
    pm_opts.minTensorBytes = opts_.minTensorBytes;
    PolicyMaker maker(ctx.graph(), cs.tracker, pm_opts);

    auto target = static_cast<std::uint64_t>(
        static_cast<double>(cs.measuredEvicted) * opts_.savingMargin +
        static_cast<double>(cs.targetBoost));
    cs.plan = maker.build(
        target, [&](TensorId id) { return ctx.tensorBytes(id); },
        [&](std::uint64_t bytes) { return ctx.swapTime(bytes); },
        ctx.gpuCapacity());

    rebuildTriggerMaps(cs);
    cs.planBuilt = true;
    if (opts_.driftThreshold > 0.0) {
        // Baseline for the drift watchdog: the measured trace's
        // iteration-relative access times the plan assumes.
        cs.measuredTime.clear();
        for (const auto &rec : cs.tracker.sequence()) {
            Tick rel = rec.time > cs.measuredIterStart
                           ? rec.time - cs.measuredIterStart
                           : 0;
            cs.measuredTime[key(rec.tensor, rec.accessIndex)] = rel;
        }
    }
    inform("capuchin {}", cs.plan.summary());

    auto &o = ctx.obs();
    o.metrics.add("plan.builds");
    o.metrics.setCounter("plan.items", cs.plan.items.size());
    o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Plan, ctx.now(),
                     "plan.build", -1, -1, cs.plan.plannedBytes);
    if (o.tracing()) {
        for (const auto &item : cs.plan.items) {
            if (item.mode != RegenChoice::Swap ||
                item.triggerTensor == kInvalidTensor)
                continue;
            o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Plan,
                             ctx.now(), "plan.intrigger",
                             static_cast<std::int64_t>(item.tensor));
        }
    }

    if (audit && opts_.planAudit)
        opts_.planAudit(cs.plan, cs.tracker, ctx);
}

void
CapuchinPolicy::rebuildTriggerMaps(ClassState &cs)
{
    cs.evictTriggers.clear();
    cs.prefetchTriggers.clear();
    cs.itemOf.clear();
    for (std::size_t i = 0; i < cs.plan.items.size(); ++i) {
        const PlannedEviction &item = cs.plan.items[i];
        cs.evictTriggers[key(item.tensor, item.evictAfterAccess)] = i;
        cs.itemOf[item.tensor] = i;
        if (item.mode == RegenChoice::Swap &&
            item.triggerTensor != kInvalidTensor) {
            cs.prefetchTriggers[key(item.triggerTensor, item.triggerAccess)]
                .push_back(i);
        }
    }
    cs.triggersDirty = false;
}

void
CapuchinPolicy::onAccess(ExecContext &ctx, const AccessEvent &event)
{
    ClassState &cs = cur();
    if (cs.measured) {
        AccessRecord rec;
        rec.tensor = event.tensor;
        rec.accessIndex = event.accessIndex;
        // Correct to the infinite-memory timeline: remove the on-demand
        // swapping stalls accumulated so far this iteration (§5.2).
        Tick stall = ctx.memStallSoFar();
        rec.time = event.when > stall ? event.when - stall : 0;
        rec.isOutput = event.isOutput;
        rec.op = event.op;
        cs.tracker.record(rec);
        if (!cs.planBuilt)
            return;
        // A partial plan from an aborted measured attempt keeps guiding
        // while the trace is re-recorded (fall through to the triggers).
    }

    // Guided execution: fire the plan's triggers for this exact access.
    auto k = key(event.tensor, event.accessIndex);

    if (!cs.measured && opts_.driftThreshold > 0.0) {
        // Raw (stall-inclusive) timestamps: divergence caused by late
        // prefetches and slowed transfers is exactly the signal.
        auto mt = cs.measuredTime.find(k);
        if (mt != cs.measuredTime.end()) {
            Tick rel = event.when > cs.iterStart ? event.when - cs.iterStart
                                                 : 0;
            auto a = static_cast<double>(rel);
            auto b = static_cast<double>(mt->second);
            cs.driftAbs += a > b ? a - b : b - a;
            cs.driftBase += b;
        }
    }

    auto &o = ctx.obs();
    auto pf = opts_.enablePrefetch ? cs.prefetchTriggers.find(k)
                                   : cs.prefetchTriggers.end();
    if (pf != cs.prefetchTriggers.end()) {
        for (std::size_t idx : pf->second) {
            o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Decision,
                             ctx.now(), "trigger.prefetch",
                             static_cast<std::int64_t>(
                                 cs.plan.items[idx].tensor));
            o.metrics.add("trigger.prefetch");
            ctx.prefetchAsync(cs.plan.items[idx].tensor);
        }
    }

    auto ev = cs.evictTriggers.find(k);
    if (ev != cs.evictTriggers.end()) {
        const PlannedEviction &item = cs.plan.items[ev->second];
        bool swap = item.mode == RegenChoice::Swap;
        o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Decision,
                         ctx.now(),
                         swap ? "trigger.evict.swap" : "trigger.evict.drop",
                         static_cast<std::int64_t>(item.tensor));
        o.metrics.add(swap ? "trigger.evict.swap" : "trigger.evict.drop");
        if (swap)
            ctx.evictSwapAsync(item.tensor);
        else
            ctx.evictDrop(item.tensor);
    }
}

bool
CapuchinPolicy::onAllocFailure(ExecContext &ctx, std::uint64_t bytes)
{
    // Passive mode (measured execution, and safety net while guided).
    bool freed = passiveEvict(ctx, cur(), bytes);
    return freed;
}

bool
CapuchinPolicy::passiveEvict(ExecContext &ctx, ClassState &cs,
                             std::uint64_t bytes)
{
    std::uint64_t freed = 0;
    bool any = false;
    // Only the evictions needed to satisfy this request feed the plan's
    // memory-saving target; the measured-mode headroom evictions beyond
    // that point are placement insurance, not demand.
    auto minimally_satisfied = [&] {
        return ctx.canAllocateNow(bytes) || freed >= bytes + bytes / 2;
    };
    auto account = [&](std::uint64_t evicted_bytes, bool necessary) {
        freed += evicted_bytes;
        any = true;
        ctx.obs().metrics.add("passive.evicted_bytes", evicted_bytes);
        if (!necessary)
            return;
        if (cs.measured)
            cs.measuredEvicted += evicted_bytes;
        else
            cs.guidedPassiveBytes += evicted_bytes;
    };
    auto satisfied = [&] {
        if (cs.measured) {
            // Measured execution runs at the feasibility edge: evict
            // beyond the immediate request (3x headroom) so the next few
            // giant allocations find contiguous space instead of facing a
            // freshly re-packed arena.
            return ctx.canAllocateNow(bytes) && freed >= 3 * bytes;
        }
        // Guided execution: passive mode is only a safety net; evict the
        // minimum (a contiguous chunk, or enough queued swap-outs that
        // the caller's wait loop will succeed).
        return ctx.canAllocateNow(bytes) || freed >= bytes + bytes / 2;
    };

    // Dispose of a victim by the cheapest correct means: tensors the plan
    // regenerates by recomputation are simply re-dropped (no transfer, no
    // later swap-in stall); everything else is synchronously swapped.
    auto evict_victim = [&](TensorId id) {
        ctx.obs().tracer.instant(obs::kTrackPolicy,
                                 obs::EventKind::Decision, ctx.now(),
                                 "passive.evict",
                                 static_cast<std::int64_t>(id));
        if (cs.planBuilt) {
            auto it = cs.itemOf.find(id);
            if (it != cs.itemOf.end() &&
                cs.plan.items[it->second].mode == RegenChoice::Recompute &&
                ctx.accessCount(id) >=
                    cs.plan.items[it->second].evictAfterAccess &&
                ctx.status(id) == TensorStatus::In && !ctx.isPinned(id)) {
                // Past its planned eviction point: this is a collectively
                // retained rematerialization — re-dropping costs nothing.
                ctx.evictDrop(id);
                return true;
            }
        }
        if (ctx.evictSwapSync(id))
            return true;
        // Swap-out declined (host pool exhausted / transfer retries spent):
        // dispose by drop-for-recompute when that is stably safe.
        if (ctx.status(id) != TensorStatus::In || ctx.isPinned(id))
            return false;
        if (ctx.graph().tensor(id).kind == TensorKind::Weight)
            return false;
        if (!ctx.canRegenerateStably(id))
            return false;
        ctx.obs().tracer.instant(obs::kTrackRecovery,
                                 obs::EventKind::Recovery, ctx.now(),
                                 "recovery.passive-drop",
                                 static_cast<std::int64_t>(id));
        ctx.obs().metrics.add("recovery.drop_fallbacks");
        ctx.evictDrop(id);
        if (ctx.status(id) != TensorStatus::In) {
            if (auto *fe = ctx.faults())
                ++fe->stats().dropFallbacks;
            return true;
        }
        return false;
    };

    // Targeted eviction first: free the cheapest set of tensors that
    // merges with adjacent free space into a contiguous chunk of the
    // requested size (fragmentation, not total free bytes, is what blocks
    // large allocations under eviction churn).
    for (TensorId id : ctx.victimsForContiguous(bytes)) {
        bool necessary = !minimally_satisfied();
        if (evict_victim(id))
            account(ctx.tensorBytes(id), necessary);
    }
    if (any)
        return true;

    // Cheapest first: re-drop tensors the plan regenerates by recompute
    // anyway (kept alive opportunistically by collective recomputation).
    if (cs.planBuilt) {
        for (const auto &item : cs.plan.items) {
            if (satisfied())
                break;
            if (item.mode != RegenChoice::Recompute)
                continue;
            if (ctx.status(item.tensor) != TensorStatus::In ||
                ctx.isPinned(item.tensor))
                continue;
            ctx.obs().tracer.instant(obs::kTrackPolicy,
                                     obs::EventKind::Decision, ctx.now(),
                                     "passive.redrop",
                                     static_cast<std::int64_t>(item.tensor));
            ctx.evictDrop(item.tensor);
            freed += ctx.tensorBytes(item.tensor);
            ctx.obs().metrics.add("passive.evicted_bytes",
                                  ctx.tensorBytes(item.tensor));
            any = true;
        }
    }

    // Victims from the beginning of the access list: the earliest-accessed
    // resident feature maps (their reuse lies deepest in the backward
    // pass). During the very first ops of measured execution the list may
    // be short; fall back to scanning all tensors in id order. On dynamic
    // graphs other classes' tensors are all Out, so the scan degenerates
    // to this class's live set.
    std::unordered_set<TensorId> tried;
    auto try_evict = [&](TensorId id) {
        if (!tried.insert(id).second)
            return;
        const TensorDesc &t = ctx.graph().tensor(id);
        // Passive mode may evict any non-persistent tensor in the access
        // list — including gradients (their reuse point may be far away,
        // e.g. weight gradients waiting for the update phase).
        if (t.kind != TensorKind::FeatureMap &&
            t.kind != TensorKind::Gradient)
            return;
        if (ctx.tensorBytes(id) < opts_.minTensorBytes)
            return;
        if (ctx.isPinned(id) || ctx.status(id) != TensorStatus::In)
            return;
        bool necessary = !minimally_satisfied();
        if (evict_victim(id))
            account(ctx.tensorBytes(id), necessary);
    };

    for (const auto &rec : cs.tracker.sequence()) {
        if (satisfied())
            break;
        try_evict(rec.tensor);
    }
    if (!satisfied()) {
        for (TensorId id = 0; id < ctx.graph().numTensors(); ++id) {
            if (satisfied())
                break;
            try_evict(id);
        }
    }
    return any;
}

void
CapuchinPolicy::onBackAccessStall(ExecContext &ctx, TensorId id, Tick stall)
{
    ClassState &cs = cur();
    if (cs.measured || !opts_.enableFeedback || stall == 0)
        return;
    auto it = cs.itemOf.find(id);
    if (it == cs.itemOf.end())
        return;
    PlannedEviction &item = cs.plan.items[it->second];
    if (item.mode != RegenChoice::Swap)
        return;
    auto deadband = static_cast<Tick>(
        static_cast<double>(item.swapTime) * opts_.feedbackDeadband);
    if (stall <= deadband)
        return; // within tolerance: shifting earlier would over-prefetch
    ctx.obs().tracer.instant(obs::kTrackPolicy, obs::EventKind::Decision,
                             ctx.now(), "feedback.shift",
                             static_cast<std::int64_t>(id));
    ctx.obs().metrics.add("feedback.adjustments");
    // The tensor was still SWAPPING_IN (or absent) at its back-access:
    // shift the in-trigger earlier by feedbackStep x SwapTime (§4.4).
    auto shift = static_cast<Tick>(
        static_cast<double>(item.swapTime) * opts_.feedbackStep);
    shift = std::max<Tick>(shift, 1);
    Tick prev = item.desiredSwapInStart;
    item.desiredSwapInStart = prev > shift ? prev - shift : 0;
    ++feedbackAdjustments_;
    if (item.desiredSwapInStart != prev) {
        // Only an actual trigger movement dirties the maps; a shift
        // saturated at iteration start changes nothing, and treating it
        // as instability would block replay at a genuine fixed point.
        cs.triggersDirty = true;
        cs.feedbackShiftedThisIter = true;
    }
    if (auto *fe = ctx.faults())
        ++fe->stats().feedbackShifts;
}

bool
CapuchinPolicy::stableForReplay() const
{
    // Stable only once guided execution has settled *for the upcoming
    // shape class* (currentClass_, freshly announced via onShapeClass):
    // plan built and its refinement frozen, no trigger re-pick pending,
    // no re-measurement scheduled, and the class's last iteration fired
    // no feedback shift (a shift changes the next iteration's prefetch
    // timing, so the digest fixed point has not actually been reached
    // yet). A class never seen before is by definition unstable.
    if (currentClass_ >= classes_.size() || !classes_[currentClass_])
        return false;
    const ClassState &cs = *classes_[currentClass_];
    return !cs.measured && cs.planBuilt && cs.refinementFrozen &&
           !cs.triggersDirty && !cs.remeasureRequested &&
           !cs.feedbackShiftedThisIter;
}

void
CapuchinPolicy::endIteration(ExecContext &ctx, const IterationStats &stats)
{
    (void)stats;
    ClassState &cs = cur();
    if (cs.measured) {
        cs.everCompleted = true;
        return;
    }

    if (opts_.driftThreshold > 0.0 && cs.driftBase > 0.0 &&
        cs.remeasures < opts_.maxRemeasures &&
        cs.driftAbs / cs.driftBase > opts_.driftThreshold) {
        // Guided timestamps no longer match the trace the plan assumes:
        // schedule a full re-measurement instead of refining a stale plan.
        ++cs.remeasures;
        cs.remeasureRequested = true;
        int pct = static_cast<int>(cs.driftAbs / cs.driftBase * 100.0);
        auto &o = ctx.obs();
        o.tracer.instant(obs::kTrackRecovery, obs::EventKind::Recovery,
                         ctx.now(), "recovery.remeasure");
        o.metrics.add("plan.remeasures");
        if (ctx.graph().dynamic()) {
            o.metrics.add("capu.drift.remeasures");
            o.tracer.instant(obs::kTrackDrift, obs::EventKind::Recovery,
                             ctx.now(), "drift.remeasure",
                             static_cast<std::int64_t>(currentClass_));
        }
        if (auto *fe = ctx.faults())
            ++fe->stats().remeasures;
        inform("capuchin: plan drift {}% exceeds threshold; re-entering "
               "measured execution", pct);
        return;
    }

    // Iterative refinement: the plan's saving target came from passive
    // mode's eviction total, which underestimates the demand of the
    // plan-shaped timeline (proactive evictions fire later than passive
    // ones did). If this iteration still fell back to passive evictions,
    // fold those bytes into the target and rebuild — hill-climbing on the
    // residual passive traffic, keeping the best plan seen so far.
    if (!cs.refinementFrozen) {
        if (cs.guidedPassiveBytes < cs.bestPassiveBytes) {
            cs.bestPassiveBytes = cs.guidedPassiveBytes;
            cs.bestPlan = cs.plan;
        }
        bool coverage_exhausted =
            cs.plan.plannedBytes + (64ull << 20) < cs.plan.targetBytes;
        if (cs.guidedPassiveBytes == 0 || cs.replans >= opts_.maxReplans ||
            coverage_exhausted) {
            // Converged (or no further coverage available): settle on the
            // best plan observed.
            cs.refinementFrozen = true;
            if (cs.bestPassiveBytes != ~0ull && cs.guidedPassiveBytes > 0) {
                cs.plan = cs.bestPlan;
                rebuildTriggerMaps(cs);
            }
            cs.guidedPassiveBytes = 0;
        } else {
            cs.targetBoost += cs.guidedPassiveBytes;
            cs.guidedPassiveBytes = 0;
            ++cs.replans;
            ctx.obs().tracer.instant(obs::kTrackPolicy,
                                     obs::EventKind::Plan, ctx.now(),
                                     "plan.refine");
            ctx.obs().metrics.add("plan.revisions");
            buildPlan(ctx, cs);
            return;
        }
    }
    cs.guidedPassiveBytes = 0;

    if (!cs.triggersDirty)
        return;
    // Re-pick trigger accesses for the adjusted desired times.
    PolicyMaker maker(ctx.graph(), cs.tracker, PolicyMakerOptions{});
    for (auto &item : cs.plan.items) {
        if (item.mode == RegenChoice::Swap)
            maker.repickTrigger(item);
    }
    rebuildTriggerMaps(cs);
}

bool
CapuchinPolicy::onIterationAbort(ExecContext &ctx)
{
    ClassState &cs = cur();
    if (cs.measured) {
        // Measured execution died at the feasibility edge. Learn from the
        // partial access trace: build a (partial) plan whose proactive
        // evictions relieve the next attempt, letting the trace extend
        // further each retry until one measured pass completes.
        if (cs.tracker.empty())
            return false;
        // Partial trace: last-access times are truncated, so plan
        // invariants cannot be judged fairly — skip the audit here; the
        // rebuild from the eventual complete trace gets audited.
        buildPlan(ctx, cs, /*audit=*/false);
        cs.planFromPartial = true;
        return true;
    }
    // Guided execution died: grow the saving target past what passive
    // mode managed to free and rebuild, while refinement budget remains.
    // When the PolicyMaker already plans every coverable byte and still
    // falls short of the target, boosting the target further cannot change
    // the plan — every retry would fail identically. Fall back to passive
    // (measured) execution instead: it is always feasible, and the fresh
    // complete trace it records seeds the next plan.
    bool saturated = cs.planBuilt && cs.plan.plannedBytes + (64ull << 20) <
                                         cs.plan.targetBytes;
    if (saturated || cs.replans >= opts_.maxReplans) {
        if (cs.everCompleted) {
            cs.remeasureRequested = true;
            ++cs.remeasures;
            auto &o = ctx.obs();
            o.tracer.instant(obs::kTrackRecovery, obs::EventKind::Recovery,
                             ctx.now(), "recovery.passive_fallback");
            o.metrics.add("plan.remeasures");
            inform("capuchin: plan coverage saturated ({} of {}); falling "
                   "back to passive execution",
                   formatBytes(cs.plan.plannedBytes),
                   formatBytes(cs.plan.targetBytes));
            return true;
        }
        return false;
    }
    cs.targetBoost += cs.guidedPassiveBytes + (512ull << 20);
    cs.guidedPassiveBytes = 0;
    ++cs.replans;
    cs.refinementFrozen = false;
    ctx.obs().tracer.instant(obs::kTrackPolicy, obs::EventKind::Plan,
                             ctx.now(), "plan.refine");
    ctx.obs().metrics.add("plan.revisions");
    buildPlan(ctx, cs);
    return true;
}

void
CapuchinPolicy::seedPlan(Plan plan)
{
    ClassState &cs = classFor(0);
    cs.plan = std::move(plan);
    cs.bestPlan = cs.plan;
    cs.bestPassiveBytes = 0;
    cs.everCompleted = true; // skip measured execution
    cs.measured = false;
    cs.planBuilt = true;
    cs.planFromPartial = false;
    cs.refinementFrozen = true; // no trace to rebuild from
    cs.replans = opts_.maxReplans;
    rebuildTriggerMaps(cs);
}

std::unique_ptr<MemoryPolicy>
makeCapuchinPolicy(CapuchinOptions opts)
{
    return std::make_unique<CapuchinPolicy>(opts);
}

} // namespace capu
