#include "core/capuchin_policy.hh"

#include <algorithm>
#include <unordered_set>

#include "faults/fault_engine.hh"
#include "support/logging.hh"

namespace capu
{

CapuchinPolicy::CapuchinPolicy(CapuchinOptions opts) : opts_(opts)
{
}

void
CapuchinPolicy::beginIteration(ExecContext &ctx)
{
    iterStart_ = ctx.now();
    driftAbs_ = 0.0;
    driftBase_ = 0.0;
    feedbackShiftedThisIter_ = false;
    if (ctx.iteration() == 0) {
        measured_ = true;
        tracker_.reset();
        measuredEvicted_ = 0;
        measuredIterStart_ = iterStart_;
        return;
    }
    if (remeasureRequested_) {
        // The drift watchdog fired: the environment the plan was measured
        // in no longer holds. Discard everything learned and re-enter
        // measured execution for one clean iteration.
        remeasureRequested_ = false;
        measured_ = true;
        tracker_.reset();
        measuredEvicted_ = 0;
        planBuilt_ = false;
        planFromPartial_ = false;
        plan_ = Plan{};
        bestPlan_ = Plan{};
        evictTriggers_.clear();
        prefetchTriggers_.clear();
        itemOf_.clear();
        measuredTime_.clear();
        targetBoost_ = 0;
        guidedPassiveBytes_ = 0;
        bestPassiveBytes_ = ~0ull;
        refinementFrozen_ = false;
        replans_ = 0;
        triggersDirty_ = false;
        measuredIterStart_ = iterStart_;
        return;
    }
    measured_ = false;
    if (!planBuilt_ || planFromPartial_) {
        planFromPartial_ = false;
        buildPlan(ctx);
    }
}

void
CapuchinPolicy::buildPlan(ExecContext &ctx, bool audit)
{
    PolicyMakerOptions pm_opts;
    pm_opts.enableSwap = opts_.enableSwap;
    pm_opts.enableRecompute = opts_.enableRecompute;
    pm_opts.minTensorBytes = opts_.minTensorBytes;
    PolicyMaker maker(ctx.graph(), tracker_, pm_opts);

    auto target = static_cast<std::uint64_t>(
        static_cast<double>(measuredEvicted_) * opts_.savingMargin +
        static_cast<double>(targetBoost_));
    plan_ = maker.build(
        target, [&](TensorId id) { return ctx.tensorBytes(id); },
        [&](std::uint64_t bytes) { return ctx.swapTime(bytes); },
        ctx.gpuCapacity());

    rebuildTriggerMaps();
    planBuilt_ = true;
    if (opts_.driftThreshold > 0.0) {
        // Baseline for the drift watchdog: the measured trace's
        // iteration-relative access times the plan assumes.
        measuredTime_.clear();
        for (const auto &rec : tracker_.sequence()) {
            Tick rel = rec.time > measuredIterStart_
                           ? rec.time - measuredIterStart_
                           : 0;
            measuredTime_[key(rec.tensor, rec.accessIndex)] = rel;
        }
    }
    inform("capuchin {}", plan_.summary());

    auto &o = ctx.obs();
    o.metrics.add("plan.builds");
    o.metrics.setCounter("plan.items", plan_.items.size());
    o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Plan, ctx.now(),
                     "plan.build", -1, -1, plan_.plannedBytes);
    if (o.tracing()) {
        for (const auto &item : plan_.items) {
            if (item.mode != RegenChoice::Swap ||
                item.triggerTensor == kInvalidTensor)
                continue;
            o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Plan,
                             ctx.now(), "plan.intrigger",
                             static_cast<std::int64_t>(item.tensor));
        }
    }

    if (audit && opts_.planAudit)
        opts_.planAudit(plan_, tracker_, ctx);
}

void
CapuchinPolicy::rebuildTriggerMaps()
{
    evictTriggers_.clear();
    prefetchTriggers_.clear();
    itemOf_.clear();
    for (std::size_t i = 0; i < plan_.items.size(); ++i) {
        const PlannedEviction &item = plan_.items[i];
        evictTriggers_[key(item.tensor, item.evictAfterAccess)] = i;
        itemOf_[item.tensor] = i;
        if (item.mode == RegenChoice::Swap &&
            item.triggerTensor != kInvalidTensor) {
            prefetchTriggers_[key(item.triggerTensor, item.triggerAccess)]
                .push_back(i);
        }
    }
    triggersDirty_ = false;
}

void
CapuchinPolicy::onAccess(ExecContext &ctx, const AccessEvent &event)
{
    if (measured_) {
        AccessRecord rec;
        rec.tensor = event.tensor;
        rec.accessIndex = event.accessIndex;
        // Correct to the infinite-memory timeline: remove the on-demand
        // swapping stalls accumulated so far this iteration (§5.2).
        Tick stall = ctx.memStallSoFar();
        rec.time = event.when > stall ? event.when - stall : 0;
        rec.isOutput = event.isOutput;
        rec.op = event.op;
        tracker_.record(rec);
        if (!planBuilt_)
            return;
        // A partial plan from an aborted measured attempt keeps guiding
        // while the trace is re-recorded (fall through to the triggers).
    }

    // Guided execution: fire the plan's triggers for this exact access.
    auto k = key(event.tensor, event.accessIndex);

    if (!measured_ && opts_.driftThreshold > 0.0) {
        // Raw (stall-inclusive) timestamps: divergence caused by late
        // prefetches and slowed transfers is exactly the signal.
        auto mt = measuredTime_.find(k);
        if (mt != measuredTime_.end()) {
            Tick rel = event.when > iterStart_ ? event.when - iterStart_ : 0;
            auto a = static_cast<double>(rel);
            auto b = static_cast<double>(mt->second);
            driftAbs_ += a > b ? a - b : b - a;
            driftBase_ += b;
        }
    }

    auto &o = ctx.obs();
    auto pf = opts_.enablePrefetch ? prefetchTriggers_.find(k)
                                   : prefetchTriggers_.end();
    if (pf != prefetchTriggers_.end()) {
        for (std::size_t idx : pf->second) {
            o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Decision,
                             ctx.now(), "trigger.prefetch",
                             static_cast<std::int64_t>(
                                 plan_.items[idx].tensor));
            o.metrics.add("trigger.prefetch");
            ctx.prefetchAsync(plan_.items[idx].tensor);
        }
    }

    auto ev = evictTriggers_.find(k);
    if (ev != evictTriggers_.end()) {
        const PlannedEviction &item = plan_.items[ev->second];
        bool swap = item.mode == RegenChoice::Swap;
        o.tracer.instant(obs::kTrackPolicy, obs::EventKind::Decision,
                         ctx.now(),
                         swap ? "trigger.evict.swap" : "trigger.evict.drop",
                         static_cast<std::int64_t>(item.tensor));
        o.metrics.add(swap ? "trigger.evict.swap" : "trigger.evict.drop");
        if (swap)
            ctx.evictSwapAsync(item.tensor);
        else
            ctx.evictDrop(item.tensor);
    }
}

bool
CapuchinPolicy::onAllocFailure(ExecContext &ctx, std::uint64_t bytes)
{
    // Passive mode (measured execution, and safety net while guided).
    bool freed = passiveEvict(ctx, bytes);
    return freed;
}

bool
CapuchinPolicy::passiveEvict(ExecContext &ctx, std::uint64_t bytes)
{
    std::uint64_t freed = 0;
    bool any = false;
    // Only the evictions needed to satisfy this request feed the plan's
    // memory-saving target; the measured-mode headroom evictions beyond
    // that point are placement insurance, not demand.
    auto minimally_satisfied = [&] {
        return ctx.canAllocateNow(bytes) || freed >= bytes + bytes / 2;
    };
    auto account = [&](std::uint64_t evicted_bytes, bool necessary) {
        freed += evicted_bytes;
        any = true;
        ctx.obs().metrics.add("passive.evicted_bytes", evicted_bytes);
        if (!necessary)
            return;
        if (measured_)
            measuredEvicted_ += evicted_bytes;
        else
            guidedPassiveBytes_ += evicted_bytes;
    };
    auto satisfied = [&] {
        if (measured_) {
            // Measured execution runs at the feasibility edge: evict
            // beyond the immediate request (3x headroom) so the next few
            // giant allocations find contiguous space instead of facing a
            // freshly re-packed arena.
            return ctx.canAllocateNow(bytes) && freed >= 3 * bytes;
        }
        // Guided execution: passive mode is only a safety net; evict the
        // minimum (a contiguous chunk, or enough queued swap-outs that
        // the caller's wait loop will succeed).
        return ctx.canAllocateNow(bytes) || freed >= bytes + bytes / 2;
    };

    // Dispose of a victim by the cheapest correct means: tensors the plan
    // regenerates by recomputation are simply re-dropped (no transfer, no
    // later swap-in stall); everything else is synchronously swapped.
    auto evict_victim = [&](TensorId id) {
        ctx.obs().tracer.instant(obs::kTrackPolicy,
                                 obs::EventKind::Decision, ctx.now(),
                                 "passive.evict",
                                 static_cast<std::int64_t>(id));
        if (planBuilt_) {
            auto it = itemOf_.find(id);
            if (it != itemOf_.end() &&
                plan_.items[it->second].mode == RegenChoice::Recompute &&
                ctx.accessCount(id) >=
                    plan_.items[it->second].evictAfterAccess &&
                ctx.status(id) == TensorStatus::In && !ctx.isPinned(id)) {
                // Past its planned eviction point: this is a collectively
                // retained rematerialization — re-dropping costs nothing.
                ctx.evictDrop(id);
                return true;
            }
        }
        if (ctx.evictSwapSync(id))
            return true;
        // Swap-out declined (host pool exhausted / transfer retries spent):
        // dispose by drop-for-recompute when that is stably safe.
        if (ctx.status(id) != TensorStatus::In || ctx.isPinned(id))
            return false;
        if (ctx.graph().tensor(id).kind == TensorKind::Weight)
            return false;
        if (!ctx.canRegenerateStably(id))
            return false;
        ctx.obs().tracer.instant(obs::kTrackRecovery,
                                 obs::EventKind::Recovery, ctx.now(),
                                 "recovery.passive-drop",
                                 static_cast<std::int64_t>(id));
        ctx.obs().metrics.add("recovery.drop_fallbacks");
        ctx.evictDrop(id);
        if (ctx.status(id) != TensorStatus::In) {
            if (auto *fe = ctx.faults())
                ++fe->stats().dropFallbacks;
            return true;
        }
        return false;
    };

    // Targeted eviction first: free the cheapest set of tensors that
    // merges with adjacent free space into a contiguous chunk of the
    // requested size (fragmentation, not total free bytes, is what blocks
    // large allocations under eviction churn).
    for (TensorId id : ctx.victimsForContiguous(bytes)) {
        bool necessary = !minimally_satisfied();
        if (evict_victim(id))
            account(ctx.tensorBytes(id), necessary);
    }
    if (any)
        return true;

    // Cheapest first: re-drop tensors the plan regenerates by recompute
    // anyway (kept alive opportunistically by collective recomputation).
    if (planBuilt_) {
        for (const auto &item : plan_.items) {
            if (satisfied())
                break;
            if (item.mode != RegenChoice::Recompute)
                continue;
            if (ctx.status(item.tensor) != TensorStatus::In ||
                ctx.isPinned(item.tensor))
                continue;
            ctx.obs().tracer.instant(obs::kTrackPolicy,
                                     obs::EventKind::Decision, ctx.now(),
                                     "passive.redrop",
                                     static_cast<std::int64_t>(item.tensor));
            ctx.evictDrop(item.tensor);
            freed += ctx.tensorBytes(item.tensor);
            ctx.obs().metrics.add("passive.evicted_bytes",
                                  ctx.tensorBytes(item.tensor));
            any = true;
        }
    }

    // Victims from the beginning of the access list: the earliest-accessed
    // resident feature maps (their reuse lies deepest in the backward
    // pass). During the very first ops of measured execution the list may
    // be short; fall back to scanning all tensors in id order.
    std::unordered_set<TensorId> tried;
    auto try_evict = [&](TensorId id) {
        if (!tried.insert(id).second)
            return;
        const TensorDesc &t = ctx.graph().tensor(id);
        // Passive mode may evict any non-persistent tensor in the access
        // list — including gradients (their reuse point may be far away,
        // e.g. weight gradients waiting for the update phase).
        if (t.kind != TensorKind::FeatureMap &&
            t.kind != TensorKind::Gradient)
            return;
        if (ctx.tensorBytes(id) < opts_.minTensorBytes)
            return;
        if (ctx.isPinned(id) || ctx.status(id) != TensorStatus::In)
            return;
        bool necessary = !minimally_satisfied();
        if (evict_victim(id))
            account(ctx.tensorBytes(id), necessary);
    };

    for (const auto &rec : tracker_.sequence()) {
        if (satisfied())
            break;
        try_evict(rec.tensor);
    }
    if (!satisfied()) {
        for (TensorId id = 0; id < ctx.graph().numTensors(); ++id) {
            if (satisfied())
                break;
            try_evict(id);
        }
    }
    return any;
}

void
CapuchinPolicy::onBackAccessStall(ExecContext &ctx, TensorId id, Tick stall)
{
    if (measured_ || !opts_.enableFeedback || stall == 0)
        return;
    auto it = itemOf_.find(id);
    if (it == itemOf_.end())
        return;
    PlannedEviction &item = plan_.items[it->second];
    if (item.mode != RegenChoice::Swap)
        return;
    auto deadband = static_cast<Tick>(
        static_cast<double>(item.swapTime) * opts_.feedbackDeadband);
    if (stall <= deadband)
        return; // within tolerance: shifting earlier would over-prefetch
    ctx.obs().tracer.instant(obs::kTrackPolicy, obs::EventKind::Decision,
                             ctx.now(), "feedback.shift",
                             static_cast<std::int64_t>(id));
    ctx.obs().metrics.add("feedback.adjustments");
    // The tensor was still SWAPPING_IN (or absent) at its back-access:
    // shift the in-trigger earlier by feedbackStep x SwapTime (§4.4).
    auto shift = static_cast<Tick>(
        static_cast<double>(item.swapTime) * opts_.feedbackStep);
    shift = std::max<Tick>(shift, 1);
    Tick prev = item.desiredSwapInStart;
    item.desiredSwapInStart = prev > shift ? prev - shift : 0;
    ++feedbackAdjustments_;
    if (item.desiredSwapInStart != prev) {
        // Only an actual trigger movement dirties the maps; a shift
        // saturated at iteration start changes nothing, and treating it
        // as instability would block replay at a genuine fixed point.
        triggersDirty_ = true;
        feedbackShiftedThisIter_ = true;
    }
    if (auto *fe = ctx.faults())
        ++fe->stats().feedbackShifts;
}

bool
CapuchinPolicy::stableForReplay() const
{
    // Stable only once guided execution has settled: plan built and its
    // refinement frozen, no trigger re-pick pending, no re-measurement
    // scheduled, and the just-ended iteration fired no feedback shift (a
    // shift changes the next iteration's prefetch timing, so the digest
    // fixed point has not actually been reached yet).
    return !measured_ && planBuilt_ && refinementFrozen_ &&
           !triggersDirty_ && !remeasureRequested_ &&
           !feedbackShiftedThisIter_;
}

void
CapuchinPolicy::endIteration(ExecContext &ctx, const IterationStats &stats)
{
    (void)stats;
    if (measured_)
        return;

    if (opts_.driftThreshold > 0.0 && driftBase_ > 0.0 &&
        remeasures_ < opts_.maxRemeasures &&
        driftAbs_ / driftBase_ > opts_.driftThreshold) {
        // Guided timestamps no longer match the trace the plan assumes:
        // schedule a full re-measurement instead of refining a stale plan.
        ++remeasures_;
        remeasureRequested_ = true;
        int pct = static_cast<int>(driftAbs_ / driftBase_ * 100.0);
        auto &o = ctx.obs();
        o.tracer.instant(obs::kTrackRecovery, obs::EventKind::Recovery,
                         ctx.now(), "recovery.remeasure");
        o.metrics.add("plan.remeasures");
        if (auto *fe = ctx.faults())
            ++fe->stats().remeasures;
        inform("capuchin: plan drift {}% exceeds threshold; re-entering "
               "measured execution", pct);
        return;
    }

    // Iterative refinement: the plan's saving target came from passive
    // mode's eviction total, which underestimates the demand of the
    // plan-shaped timeline (proactive evictions fire later than passive
    // ones did). If this iteration still fell back to passive evictions,
    // fold those bytes into the target and rebuild — hill-climbing on the
    // residual passive traffic, keeping the best plan seen so far.
    if (!refinementFrozen_) {
        if (guidedPassiveBytes_ < bestPassiveBytes_) {
            bestPassiveBytes_ = guidedPassiveBytes_;
            bestPlan_ = plan_;
        }
        bool coverage_exhausted =
            plan_.plannedBytes + (64ull << 20) < plan_.targetBytes;
        if (guidedPassiveBytes_ == 0 || replans_ >= opts_.maxReplans ||
            coverage_exhausted) {
            // Converged (or no further coverage available): settle on the
            // best plan observed.
            refinementFrozen_ = true;
            if (bestPassiveBytes_ != ~0ull && guidedPassiveBytes_ > 0) {
                plan_ = bestPlan_;
                rebuildTriggerMaps();
            }
            guidedPassiveBytes_ = 0;
        } else {
            targetBoost_ += guidedPassiveBytes_;
            guidedPassiveBytes_ = 0;
            ++replans_;
            ctx.obs().tracer.instant(obs::kTrackPolicy,
                                     obs::EventKind::Plan, ctx.now(),
                                     "plan.refine");
            ctx.obs().metrics.add("plan.revisions");
            buildPlan(ctx);
            return;
        }
    }
    guidedPassiveBytes_ = 0;

    if (!triggersDirty_)
        return;
    // Re-pick trigger accesses for the adjusted desired times.
    PolicyMaker maker(ctx.graph(), tracker_, PolicyMakerOptions{});
    for (auto &item : plan_.items) {
        if (item.mode == RegenChoice::Swap)
            maker.repickTrigger(item);
    }
    rebuildTriggerMaps();
}

bool
CapuchinPolicy::onIterationAbort(ExecContext &ctx)
{
    if (measured_) {
        // Measured execution died at the feasibility edge. Learn from the
        // partial access trace: build a (partial) plan whose proactive
        // evictions relieve the next attempt, letting the trace extend
        // further each retry until one measured pass completes.
        if (tracker_.empty())
            return false;
        // Partial trace: last-access times are truncated, so plan
        // invariants cannot be judged fairly — skip the audit here; the
        // rebuild from the eventual complete trace gets audited.
        buildPlan(ctx, /*audit=*/false);
        planFromPartial_ = true;
        return true;
    }
    // Guided execution died: grow the saving target past what passive
    // mode managed to free and rebuild, while refinement budget remains.
    if (replans_ >= opts_.maxReplans)
        return false;
    targetBoost_ += guidedPassiveBytes_ + (512ull << 20);
    guidedPassiveBytes_ = 0;
    ++replans_;
    refinementFrozen_ = false;
    ctx.obs().tracer.instant(obs::kTrackPolicy, obs::EventKind::Plan,
                             ctx.now(), "plan.refine");
    ctx.obs().metrics.add("plan.revisions");
    buildPlan(ctx);
    return true;
}

std::unique_ptr<MemoryPolicy>
makeCapuchinPolicy(CapuchinOptions opts)
{
    return std::make_unique<CapuchinPolicy>(opts);
}

} // namespace capu
