/**
 * @file
 * Stable on-disk serialization for memory plans (capuserve).
 *
 * A serialized plan is the unit the planning service persists and ships:
 * header (magic, format version, graph fingerprint, structural digest)
 * followed by the Plan payload in fixed-width little-endian fields. The
 * digest extends the capureplay FNV-1a iteration digest to plans: it hashes
 * every field of every item plus the plan totals, so two plans with equal
 * digests are bit-identical in every way the executor can observe, and a
 * warm cache answer can be proven equal to a cold measured run by digest
 * comparison alone.
 *
 * Loading validates in order: magic, format version, graph fingerprint
 * (the plan must describe the graph the caller is about to run), payload
 * completeness, and finally the recomputed digest against the stored one —
 * a stale, truncated or corrupted file is rejected with a specific status
 * instead of steering an executor with someone else's eviction schedule.
 */

#ifndef CAPU_CORE_PLAN_IO_HH
#define CAPU_CORE_PLAN_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/policy_maker.hh"
#include "graph/graph.hh"

namespace capu
{

/** Bumped whenever the on-disk layout changes; loaders reject mismatches. */
constexpr std::uint32_t kPlanFormatVersion = 1;

/** "CAPUPLAN", little-endian. */
constexpr std::uint64_t kPlanMagic = 0x4e414c5055504143ull;

/**
 * Identity of a computation graph for plan-compatibility checks: FNV-1a
 * over the graph name, every tensor (name, bytes, kind, shape) and every
 * op (name, category, phase, edges, cost-model fields), plus the variant
 * list. Two graphs with equal fingerprints present identical planning
 * problems; a plan is only loaded into a session whose graph fingerprint
 * matches the one the plan was measured on.
 */
std::uint64_t graphFingerprint(const Graph &graph);

/**
 * Structural digest of a plan: FNV-1a over item count, totals, peak
 * window and every field of every item, in item order. Equal digests mean
 * bit-identical plans (same items, same triggers, same timing fields).
 */
std::uint64_t planDigest(const Plan &plan);

enum class PlanLoadStatus
{
    Ok,
    BadMagic,            ///< not a serialized plan
    VersionMismatch,     ///< written by an incompatible format version
    FingerprintMismatch, ///< plan describes a different graph
    Truncated,           ///< payload ends before the header says it should
    DigestMismatch,      ///< payload bytes do not hash to the stored digest
};

const char *planLoadStatusName(PlanLoadStatus status);

/** Header fields of a serialized plan (filled by loadPlan on request). */
struct PlanFileInfo
{
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t digest = 0;
};

/** Write `plan` to `os` with the current format version. */
void serializePlan(std::ostream &os, const Plan &plan,
                   std::uint64_t graph_fingerprint);

/**
 * Read a plan from `is`. `expect_fingerprint` must match the stored graph
 * fingerprint (pass the fingerprint of the graph the plan will drive).
 * On any non-Ok status `out` is left default-constructed.
 */
PlanLoadStatus loadPlan(std::istream &is, Plan &out,
                        std::uint64_t expect_fingerprint,
                        PlanFileInfo *info = nullptr);

/** File convenience wrappers. savePlanFile is false on I/O failure. */
bool savePlanFile(const std::string &path, const Plan &plan,
                  std::uint64_t graph_fingerprint);
PlanLoadStatus loadPlanFile(const std::string &path, Plan &out,
                            std::uint64_t expect_fingerprint,
                            PlanFileInfo *info = nullptr);

} // namespace capu

#endif // CAPU_CORE_PLAN_IO_HH
