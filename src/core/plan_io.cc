#include "core/plan_io.hh"

#include <bit>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/logging.hh"

namespace capu
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Byte-at-a-time FNV-1a accumulator (matches the capureplay digest). */
class Fnv
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= kFnvPrime;
        }
    }

    void
    u64(std::uint64_t v)
    {
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(buf, sizeof buf);
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = kFnvOffset;
};

/**
 * Fixed-width little-endian field I/O: the on-disk layout is identical on
 * every platform regardless of host endianness or struct padding.
 */
void
put64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, sizeof buf);
}

void
put32(std::ostream &os, std::uint32_t v)
{
    char buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, sizeof buf);
}

void puti64(std::ostream &os, std::int64_t v)
{
    put64(os, static_cast<std::uint64_t>(v));
}

void putf64(std::ostream &os, double v)
{
    put64(os, std::bit_cast<std::uint64_t>(v));
}

bool
get64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, sizeof buf))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

bool
get32(std::istream &is, std::uint32_t &v)
{
    char buf[4];
    if (!is.read(buf, sizeof buf))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

bool
geti64(std::istream &is, std::int64_t &v)
{
    std::uint64_t u = 0;
    if (!get64(is, u))
        return false;
    v = static_cast<std::int64_t>(u);
    return true;
}

bool
getf64(std::istream &is, double &v)
{
    std::uint64_t u = 0;
    if (!get64(is, u))
        return false;
    v = std::bit_cast<double>(u);
    return true;
}

} // namespace

std::uint64_t
graphFingerprint(const Graph &graph)
{
    Fnv h;
    h.str(graph.name());
    h.u64(graph.numTensors());
    for (const TensorDesc &t : graph.tensors()) {
        h.str(t.name);
        h.u64(t.bytes);
        h.u64(static_cast<std::uint64_t>(t.kind));
        h.u64(t.shape.size());
        for (std::int64_t d : t.shape)
            h.i64(d);
    }
    h.u64(graph.numOps());
    for (const Operation &op : graph.ops()) {
        h.str(op.name);
        h.u64(static_cast<std::uint64_t>(op.category));
        h.u64(static_cast<std::uint64_t>(op.phase));
        h.u64(op.inputs.size());
        for (TensorId id : op.inputs)
            h.u64(id);
        h.u64(op.outputs.size());
        for (TensorId id : op.outputs)
            h.u64(id);
        h.f64(op.flops);
        h.f64(op.memBytes);
        h.u64(op.fastWorkspaceBytes);
        h.f64(op.fallbackSlowdown);
        h.f64(op.fastAlgoSpeedup);
        h.u64(op.recomputable ? 1 : 0);
    }
    h.u64(graph.variants().size());
    for (const GraphVariant &v : graph.variants()) {
        h.str(v.name);
        h.u64(v.ops.size());
        for (OpId id : v.ops)
            h.u64(id);
    }
    return h.value();
}

std::uint64_t
planDigest(const Plan &plan)
{
    Fnv h;
    h.u64(plan.items.size());
    h.u64(plan.targetBytes);
    h.u64(plan.plannedBytes);
    h.u64(plan.peak.valid ? 1 : 0);
    h.u64(plan.peak.lo);
    h.u64(plan.peak.hi);
    h.u64(plan.peak.peakBytes);
    h.u64(plan.swapCount);
    h.u64(plan.recomputeCount);
    for (const PlannedEviction &it : plan.items) {
        h.u64(it.tensor);
        h.u64(static_cast<std::uint64_t>(it.mode));
        h.u64(it.bytes);
        h.i64(it.evictAfterAccess);
        h.i64(it.backAccess);
        h.u64(it.evictTime);
        h.u64(it.backTime);
        h.u64(it.swapTime);
        h.u64(it.freeTime);
        h.u64(it.desiredSwapInStart);
        h.u64(it.triggerTensor);
        h.i64(it.triggerAccess);
        h.u64(it.recomputeTime);
        h.u64(it.estimatedOverhead);
    }
    return h.value();
}

const char *
planLoadStatusName(PlanLoadStatus status)
{
    switch (status) {
    case PlanLoadStatus::Ok:
        return "ok";
    case PlanLoadStatus::BadMagic:
        return "bad-magic";
    case PlanLoadStatus::VersionMismatch:
        return "version-mismatch";
    case PlanLoadStatus::FingerprintMismatch:
        return "fingerprint-mismatch";
    case PlanLoadStatus::Truncated:
        return "truncated";
    case PlanLoadStatus::DigestMismatch:
        return "digest-mismatch";
    }
    return "?";
}

void
serializePlan(std::ostream &os, const Plan &plan,
              std::uint64_t graph_fingerprint)
{
    put64(os, kPlanMagic);
    put32(os, kPlanFormatVersion);
    put64(os, graph_fingerprint);
    put64(os, planDigest(plan));
    put64(os, plan.items.size());
    put64(os, plan.targetBytes);
    put64(os, plan.plannedBytes);
    put32(os, plan.peak.valid ? 1 : 0);
    put64(os, plan.peak.lo);
    put64(os, plan.peak.hi);
    put64(os, plan.peak.peakBytes);
    put64(os, plan.swapCount);
    put64(os, plan.recomputeCount);
    for (const PlannedEviction &it : plan.items) {
        put32(os, it.tensor);
        put32(os, static_cast<std::uint32_t>(it.mode));
        put64(os, it.bytes);
        puti64(os, it.evictAfterAccess);
        puti64(os, it.backAccess);
        put64(os, it.evictTime);
        put64(os, it.backTime);
        put64(os, it.swapTime);
        put64(os, it.freeTime);
        put64(os, it.desiredSwapInStart);
        put32(os, it.triggerTensor);
        puti64(os, it.triggerAccess);
        put64(os, it.recomputeTime);
        putf64(os, 0.0); // reserved (layout slack for future fields)
        put64(os, it.estimatedOverhead);
    }
}

PlanLoadStatus
loadPlan(std::istream &is, Plan &out, std::uint64_t expect_fingerprint,
         PlanFileInfo *info)
{
    out = Plan{};
    std::uint64_t magic = 0;
    if (!get64(is, magic))
        return PlanLoadStatus::Truncated;
    if (magic != kPlanMagic)
        return PlanLoadStatus::BadMagic;
    PlanFileInfo hdr;
    if (!get32(is, hdr.version))
        return PlanLoadStatus::Truncated;
    if (hdr.version != kPlanFormatVersion) {
        if (info)
            *info = hdr;
        return PlanLoadStatus::VersionMismatch;
    }
    if (!get64(is, hdr.fingerprint) || !get64(is, hdr.digest))
        return PlanLoadStatus::Truncated;
    if (info)
        *info = hdr;
    if (hdr.fingerprint != expect_fingerprint)
        return PlanLoadStatus::FingerprintMismatch;

    Plan plan;
    std::uint64_t n_items = 0;
    std::uint32_t peak_valid = 0;
    std::uint64_t tmp64 = 0;
    if (!get64(is, n_items) || !get64(is, plan.targetBytes) ||
        !get64(is, plan.plannedBytes) || !get32(is, peak_valid) ||
        !get64(is, plan.peak.lo) || !get64(is, plan.peak.hi) ||
        !get64(is, plan.peak.peakBytes))
        return PlanLoadStatus::Truncated;
    plan.peak.valid = peak_valid != 0;
    if (!get64(is, tmp64))
        return PlanLoadStatus::Truncated;
    plan.swapCount = tmp64;
    if (!get64(is, tmp64))
        return PlanLoadStatus::Truncated;
    plan.recomputeCount = tmp64;

    plan.items.reserve(n_items);
    for (std::uint64_t i = 0; i < n_items; ++i) {
        PlannedEviction it;
        std::uint32_t tensor = 0, mode = 0, trigger = 0;
        std::int64_t evict_after = 0, back = 0, trig_access = 0;
        double reserved = 0.0;
        if (!get32(is, tensor) || !get32(is, mode) || !get64(is, it.bytes) ||
            !geti64(is, evict_after) || !geti64(is, back) ||
            !get64(is, it.evictTime) || !get64(is, it.backTime) ||
            !get64(is, it.swapTime) || !get64(is, it.freeTime) ||
            !get64(is, it.desiredSwapInStart) || !get32(is, trigger) ||
            !geti64(is, trig_access) || !get64(is, it.recomputeTime) ||
            !getf64(is, reserved) || !get64(is, it.estimatedOverhead)) {
            out = Plan{};
            return PlanLoadStatus::Truncated;
        }
        it.tensor = tensor;
        it.mode = static_cast<RegenChoice>(mode);
        it.evictAfterAccess = static_cast<int>(evict_after);
        it.backAccess = static_cast<int>(back);
        it.triggerTensor = trigger;
        it.triggerAccess = static_cast<int>(trig_access);
        plan.items.push_back(it);
    }

    if (planDigest(plan) != hdr.digest) {
        out = Plan{};
        return PlanLoadStatus::DigestMismatch;
    }
    out = std::move(plan);
    return PlanLoadStatus::Ok;
}

bool
savePlanFile(const std::string &path, const Plan &plan,
             std::uint64_t graph_fingerprint)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        warn("plan_io: cannot open '{}' for writing", path);
        return false;
    }
    serializePlan(os, plan, graph_fingerprint);
    return static_cast<bool>(os);
}

PlanLoadStatus
loadPlanFile(const std::string &path, Plan &out,
             std::uint64_t expect_fingerprint, PlanFileInfo *info)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        out = Plan{};
        return PlanLoadStatus::Truncated;
    }
    return loadPlan(is, out, expect_fingerprint, info);
}

} // namespace capu
