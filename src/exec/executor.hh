/**
 * @file
 * The training executor: a sequential-host discrete-event GPU model.
 *
 * The host launches the schedule's ops in order onto one serial compute
 * stream; D2H/H2D copies run on their own PCIe lanes. Because the compute
 * stream is FIFO, the host loop can advance a master clock op-by-op while
 * remaining *exact*: every overlap, synchronization stall and PCIe
 * serialization shows up in the emitted trace events at true ticks.
 *
 * Per op the executor: (1) makes inputs resident (waiting on swap-ins,
 * running on-demand swap-ins, or replaying lineage for recomputation);
 * (2) allocates outputs + workspace under the OOM protocol (drain deferred
 * frees -> wait for earliest in-flight free -> ask the policy -> raise
 * OomError); (3) enqueues the kernel; (4) records tensor accesses and feeds
 * them to the policy; (5) releases refcount-dead tensors at kernel
 * retirement.
 *
 * Data integrity is checked with lineage fingerprints: every tensor carries
 * a 64-bit value deterministically derived from (producer op, inputs,
 * weight versions, iteration); swap must preserve it, recomputation must
 * regenerate it, and every consumption asserts it — a zero-numerics oracle
 * that swapped/recomputed data is the right data.
 *
 * The ordering constraints the executor honours between accesses,
 * transfers, frees and allocs are spelled out as explicit happens-before
 * edges in exec/ordering.hh; capuverify re-derives them from plans
 * (capulint --hb) and from traced runs (capusim --verify) and checks the
 * executor against them.
 */

#ifndef CAPU_EXEC_EXECUTOR_HH
#define CAPU_EXEC_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/cost_model.hh"
#include "exec/memory_manager.hh"
#include "exec/memory_policy.hh"
#include "faults/fault_engine.hh"
#include "faults/fault_spec.hh"
#include "graph/graph.hh"
#include "obs/obs.hh"
#include "sim/gpu_device.hh"
#include "sim/pcie_link.hh"
#include "sim/stream.hh"
#include "support/units.hh"

namespace capu
{

/**
 * Post-mortem context captured at the OOM throw site: what was executing,
 * which tensor was being materialized, and allocator-level fragmentation
 * state — enough to diagnose *why* the request could not be satisfied
 * without replaying the run under a debugger.
 */
struct OomContext
{
    OpId op = kInvalidOp;
    std::string opName;
    TensorId tensor = kInvalidTensor;
    std::string tensorName;
    std::uint64_t gpuBytesInUse = 0;
    std::uint64_t gpuBytesFree = 0;
    std::uint64_t largestFreeChunk = 0;
    std::uint64_t freeChunkCount = 0;
    double fragmentation = 0.0;
    std::uint64_t hostBytesInUse = 0;
    std::uint64_t hostCapacity = 0;
    int iteration = 0;

    /** Multi-line human-readable post-mortem report. */
    std::string describe(std::uint64_t requested_bytes) const;
};

/** Raised when memory cannot be found even with the policy's help. */
class OomError : public std::runtime_error
{
  public:
    OomError(const std::string &what, std::uint64_t bytes,
             OomContext ctx = {})
        : std::runtime_error(what), requestedBytes(bytes),
          context(std::move(ctx))
    {
    }

    std::uint64_t requestedBytes;
    OomContext context;
};

/**
 * Steady-state iteration replay (capureplay, exec/replay.hh). Once two
 * consecutive executed iterations produce identical digests, remaining
 * iterations are synthesized from the cached iteration delta instead of
 * re-executed; periodic audit iterations re-execute for real and must
 * reproduce the digest bit-for-bit or replay falls back to execution.
 */
struct ReplayOptions
{
    /**
     * Master switch. Off by default: the library preserves the exact
     * per-iteration hook sequence unless a caller opts in (capusim turns
     * it on). Forced off whenever a fault plan is active.
     */
    bool enabled = false;
    /**
     * Execute a real audit iteration after this many consecutive
     * synthesized ones. 0 disables auditing (trusted replay).
     */
    int auditInterval = 16;
    /** Audit digest mismatches tolerated before replay disables itself. */
    int maxAuditMismatches = 2;
};

/** Executed-vs-synthesized iteration accounting for one session run. */
struct ReplaySummary
{
    int executed = 0;
    int replayed = 0;
    int audits = 0;
    int auditMismatches = 0;
};

/**
 * The uniform time warp one synthesized iteration applies to every
 * absolute-tick resource: `dt` on the time axis plus the template
 * iteration's per-stream occupancy (so utilization accounting stays
 * exact across replayed spans).
 */
struct ReplayShift
{
    Tick dt = 0;
    Tick computeBusy = 0;
    Tick d2hBusy = 0;
    Tick h2dBusy = 0;
};

struct ExecConfig
{
    GpuDeviceSpec device = GpuDeviceSpec::p100();

    /** Imperative (eager) execution: sequential host, no graph opts. */
    bool eagerMode = false;

    /** Host-side dispatch cost per op in eager mode (Python interpreter). */
    Tick eagerHostOverhead = ticksFromUs(30);

    /**
     * Eager activations are allocated with this slack factor: graph mode's
     * buffer forwarding, pruning and fusion shrink the activation footprint
     * relative to op-by-op execution (paper §6.4.1: ResNet-50 fits 190 in
     * graph mode but only 122 eagerly).
     */
    double eagerActivationSlack = 1.5;

    /** Keep recompute intermediates that are themselves targets (§5.3). */
    bool collectiveRecompute = true;

    /** Verify lineage fingerprints on every consumption. */
    bool checkFingerprints = true;

    /** Observability: off, metrics-only, or metrics + event tracing. */
    obs::ObsLevel obsLevel = obs::ObsLevel::Off;

    /** Event ring capacity when tracing (oldest events drop on wrap). */
    std::size_t obsRingCapacity = obs::Tracer::kDefaultCapacity;

    /** Pinned host staging capacity (the testbed had 256 GB). */
    std::uint64_t hostPoolBytes = 256ull << 30;

    /** GPU allocator anti-fragmentation features (ablation bench). */
    BfcOptions allocator;

    /**
     * Swap-compression extension (paper section 7 cites CDMA/Gist as
     * orthogonal work): swapped tensors are compressed by a copy-engine-
     * side compressor before crossing PCIe, shrinking transfer time and
     * host footprint by this factor. 1.0 disables. Activation sparsity
     * (ReLU zeros) makes ~2x lossless ratios realistic for CNNs.
     */
    double swapCompressionRatio = 1.0;

    /**
     * Fault-injection plan (capuchaos). Default-constructed (all clauses
     * off) the executor takes the exact legacy code paths — simulated
     * timestamps are bit-identical to a build without the fault layer.
     */
    faults::FaultSpec faults;

    /** Seed for the fault engine's RNG; recorded in metrics and traces. */
    std::uint64_t seed = 0;

    /** Steady-state iteration replay (capureplay). */
    ReplayOptions replay;

    /**
     * Shape-class schedule for dynamic graphs (capudrift): variant index
     * per iteration, applied cyclically. Empty means variant 0 every
     * iteration. Ignored for static graphs.
     */
    std::vector<std::size_t> variantSchedule;
};

struct IterationStats
{
    int iteration = 0;
    Tick begin = 0;
    Tick end = 0;

    /** Compute-stream occupancy by scheduled kernels. */
    Tick kernelBusy = 0;
    /** Extra compute-stream occupancy from recomputation replays. */
    Tick recomputeBusy = 0;
    /** Waits for tensors to become resident at access time. */
    Tick inputStall = 0;
    /** Waits inside allocation (deferred frees, sync evictions). */
    Tick allocStall = 0;

    std::uint64_t swapOutBytes = 0;
    std::uint64_t swapInBytes = 0;
    int swapOutCount = 0;
    int swapInCount = 0;
    int recomputedTensors = 0;
    int recomputeOps = 0;
    int droppedTensors = 0;
    std::uint64_t droppedBytes = 0;
    /** Outputs that reused their input's buffer (graph-mode forwarding). */
    int inplaceForwards = 0;
    /** Conv kernels that fell back to the slow no-workspace algorithm. */
    int fallbackKernels = 0;
    /** Passive-mode on-demand evictions (OOM handler). */
    int oomEvictions = 0;
    /** Evictions whose D2H writeback was skipped: the host copy staged by
     *  an earlier eviction of the same tensor was still current, so the
     *  device chunk was freed without a transfer. */
    int elidedWritebacks = 0;

    /** PCIe occupancy of prefetch (policy-triggered) swap-ins. */
    Tick prefetchBusy = 0;
    /** Portion of prefetch transfers the back access had to wait out. */
    Tick prefetchStall = 0;

    std::uint64_t peakGpuBytes = 0;

    Tick duration() const { return end - begin; }

    double
    throughput(std::int64_t batch) const
    {
        return duration() == 0
                   ? 0.0
                   : static_cast<double>(batch) / ticksToSec(duration());
    }
};

/** Runtime residency + bookkeeping for one tensor. */
struct TensorState
{
    TensorStatus status = TensorStatus::Out;
    bool produced = false;
    std::optional<MemHandle> gpuHandle;
    std::uint64_t hostHandle = 0; ///< nonzero while a host copy exists
    bool hasHostCopy = false;
    Tick swapInReady = 0;
    Tick swapOutDone = 0;
    int remainingUses = 0;
    int accessCount = 0;
    int pinCount = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t expectedFp = 0;
    int weightVersion = 0;

    /** Open residency-phase span ("IN", "OUT", ...); tracing only. */
    const char *obsPhase = nullptr;
    Tick obsPhaseAt = 0;
    /** Counted in tensor.out_bytes, awaiting swap-in or host-copy death. */
    bool outWithHost = false;
};

class Executor : public ExecContext
{
  public:
    /**
     * @param policy Decision plug-in; may be nullptr (pure TF-original
     *               behaviour: OOM raises immediately).
     */
    Executor(const Graph &graph, ExecConfig config, MemoryPolicy *policy);

    /**
     * Rebinding copy (capufork): duplicate `other`'s entire simulated
     * machine — clocks, streams, allocator layout, pending frees, tensor
     * residency, replay hashes, observability buffers — against the
     * caller's graph reference and policy pointer. Every component is
     * value-semantic, so the copy is deep by construction; the only
     * post-copy surgery is re-attaching the intra-executor observer
     * pointers (streams/memory/faults -> this copy's tracer, PCIe ->
     * this copy's fault engine) so the fork never writes into the
     * original's buffers. `graph` must be the same immutable graph the
     * original was built from (forks share it; it is never mutated after
     * construction).
     */
    Executor(const Executor &other, const Graph &graph,
             MemoryPolicy *policy);

    /** Allocate weights, build the schedule, attach the policy. */
    void setup();

    /** Whether setup() already ran (forked executors arrive set up). */
    bool setupDone() const { return setupDone_; }

    /** Run one full training iteration. Throws OomError on exhaustion. */
    IterationStats runIteration();

    /**
     * Select which graph variant (shape class) the next iteration runs.
     * Only valid on dynamic graphs; notifies the policy via onShapeClass.
     * Must be called at an iteration boundary, before the replay engine's
     * canReplay() for the upcoming iteration.
     */
    void setActiveVariant(std::size_t variant);

    std::size_t activeVariant() const { return activeVariant_; }

    /**
     * Recover from a mid-iteration OomError: release every non-weight
     * tensor (GPU and host copies), drain pending frees, clear barriers.
     * The same iteration index can then be re-run.
     */
    void abortIteration();

    // --- ExecContext queries ---
    const Graph &graph() const override { return graph_; }
    const std::vector<OpId> &schedule() const override { return schedule_; }
    int iteration() const override { return iteration_; }
    TensorStatus status(TensorId id) const override;
    int accessCount(TensorId id) const override;
    bool isResident(TensorId id) const override;
    bool isPinned(TensorId id) const override;
    std::uint64_t tensorBytes(TensorId id) const override;
    std::uint64_t freeGpuBytes() const override;
    std::uint64_t gpuCapacity() const override;
    std::uint64_t hostCapacity() const override;
    bool canAllocateNow(std::uint64_t bytes) override;
    std::vector<TensorId> victimsForContiguous(std::uint64_t bytes) override;
    bool canRegenerate(TensorId id) override;
    bool canRegenerateStably(TensorId id) override;
    Tick swapTime(std::uint64_t bytes) const override;
    Tick memStallSoFar() const override;
    const CostModel &costModel() const override { return cost_; }
    Tick now() const override { return clock_; }
    std::uint64_t shapeClass() const override { return activeVariant_; }
    obs::Obs &obs() override { return obs_; }
    faults::FaultEngine *faults() override { return &faults_; }

    // --- ExecContext actions ---
    void evictSwapAsync(TensorId id) override;
    Tick evictSwapBlocking(TensorId id) override;
    bool evictSwapSync(TensorId id) override;
    void evictDrop(TensorId id) override;
    void prefetchAsync(TensorId id) override;

    // --- introspection for benches/tests ---
    Stream &computeStream() { return compute_; }
    PcieLink &pcie() { return pcie_; }
    MemoryManager &memory() { return mem_; }
    faults::FaultEngine &faultEngine() { return faults_; }
    const TensorState &tensorState(TensorId id) const;
    const ExecConfig &config() const { return config_; }

    /** Duration the cost model assigns to `op` with its preferred algo. */
    Tick nominalOpDuration(OpId id) const;

    // --- capureplay hooks (exec/replay.hh drives these) ---

    /**
     * Whether replay support is armed: config().replay.enabled and no
     * fault plan active. When armed the executor additionally maintains
     * the per-iteration access-stream hash.
     */
    bool replayArmed() const { return replayArmed_; }

    /**
     * FNV-accumulated hash of the current/last iteration's access stream
     * (tensor, access index, iteration-relative tick, op). Valid only
     * while replayArmed(); part of the iteration digest.
     */
    std::uint64_t iterationAccessHash() const { return iterAccessHash_; }

    /** Blocking-swap fence tick (digest component). */
    Tick computeBarrierTick() const { return computeBarrier_; }

    /**
     * Advance the whole simulated machine by one synthesized iteration:
     * shift clocks, stream horizons and pending deferred frees by
     * `shift.dt`, credit per-stream busy time, and bump the iteration
     * counter. Only meaningful at an iteration boundary.
     */
    void replayApply(const ReplayShift &shift);

    /**
     * Apply `bumps` weight-update version increments to tensor `id` and
     * recompute its fingerprint, exactly as `bumps` executed Update ops
     * would have.
     */
    void replayBumpWeight(TensorId id, int bumps);

    /**
     * Synthesized iterations leave raw allocator counters (bfc.splits,
     * ...) behind reality; feedIterationMetrics adds these accumulated
     * offsets when mirroring them into the registry so audited executed
     * iterations report seamless totals.
     */
    void addReplayCounterOffset(std::string_view name, std::uint64_t delta);

  private:
    const Graph &graph_;
    ExecConfig config_;
    MemoryPolicy *policy_;
    CostModel cost_;
    /// Constructed before mem_: its clampHostBytes caps the host pool.
    faults::FaultEngine faults_;
    obs::Obs obs_;
    MemoryManager mem_;
    Stream compute_;
    PcieLink pcie_;

    std::vector<OpId> schedule_;
    /// Per-variant filtered schedules (dynamic graphs only; else empty).
    std::vector<std::vector<OpId>> variantSchedules_;
    std::size_t activeVariant_ = 0;
    std::vector<TensorState> states_;
    std::vector<int> usesPerIteration_; ///< consumer count per tensor
    std::vector<int> lastUsePos_; ///< schedule index of last consumer (-1)

    Tick clock_ = 0;       ///< host-loop master clock
    Tick hostClock_ = 0;   ///< eager-mode interpreter time
    Tick computeBarrier_ = 0; ///< blocking swap-out fence (vDNN coupling)
    int iteration_ = 0;
    bool setupDone_ = false;

    OpId currentOp_ = kInvalidOp;
    Tick currentOpEnd_ = 0;

    IterationStats stats_;

    // --- capureplay state ---
    bool replayArmed_ = false;
    std::uint64_t iterAccessHash_ = 0;
    /** (metric name, accumulated offset); tiny — linear scan suffices. */
    std::vector<std::pair<std::string, std::uint64_t>> replayCounterOffsets_;

    std::uint64_t replayCounterOffset(std::string_view name) const;

    // --- helpers ---
    /** Op list the current iteration runs (variant slice when dynamic). */
    const std::vector<OpId> &activeSchedule() const;
    TensorState &state(TensorId id);
    const TensorState &state(TensorId id) const;
    std::uint64_t allocBytes(TensorId id) const;
    /** PCIe bytes after swap compression (== bytes when disabled). */
    std::uint64_t wireBytes(std::uint64_t bytes) const;
    TensorStatus effectiveStatus(const TensorState &st, Tick at) const;

    /** Allocate under the full OOM protocol; advances `at` on waits. */
    MemHandle allocateOrDie(Tick &at, std::uint64_t bytes,
                            const std::string &what,
                            TensorId tensor = kInvalidTensor);

    /** OOM post-mortem snapshot for the current op / `tensor`. */
    OomContext oomContext(TensorId tensor) const;

    /**
     * Reserve `wire_bytes` of pinned host staging for `id`, consulting the
     * fault engine's transient-failure injection first. Returns the host
     * handle or 0 (exhausted / injected failure), never throws.
     */
    std::uint64_t hostStage(TensorId id, std::uint64_t wire_bytes);

    /**
     * Degradation fallback when a swap-out cannot complete (host staging
     * failed or transfer retries exhausted): drop-for-recompute when that
     * is stably safe, otherwise leave the tensor resident. Returns true
     * if the tensor was disposed of (dropped).
     */
    bool swapToDropFallback(TensorId id);

    /** Make `id` resident at time `at`; returns the ready tick. */
    Tick ensureResident(TensorId id, Tick at);

    /** Replay lineage to regenerate `id`; returns completion tick. */
    Tick recomputeTensor(TensorId id, Tick at);

    bool regenCheck(TensorId id, bool accept_transient);
    void runOp(OpId id);
    void recordAccess(TensorId id, Tick when, bool is_output, OpId op);
    void releaseIfDead(TensorId id, Tick at);

    // --- observability (pure observers: never touch simulated time) ---
    /** Open residency phase `phase` for `id` at `at` (closes the prior). */
    void notePhase(TensorId id, const char *phase, Tick at);
    void closePhase(TensorId id, Tick at);
    /** Transition-level swap accounting (tensor.out/in/retired bytes). */
    void noteOut(TensorId id);
    void noteIn(TensorId id);
    void noteRetired(TensorId id);
    void feedIterationMetrics();
    void produceFingerprint(TensorId id, const Operation &op);
    void verifyFingerprint(TensorId id, const Operation &op);
    void setupWeights();
    void beginIterationState();
    void finishIterationState();
};

} // namespace capu

#endif // CAPU_EXEC_EXECUTOR_HH
