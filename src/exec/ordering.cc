#include "exec/ordering.hh"

#include <unordered_map>

namespace capu::hb
{

const char *
hbStreamName(HbStream s)
{
    switch (s) {
      case HbStream::Compute:
        return "compute";
      case HbStream::D2H:
        return "d2h";
      case HbStream::H2D:
        return "h2d";
      case HbStream::Deferred:
        return "deferred";
    }
    return "?";
}

const char *
hbOpName(HbOp op)
{
    switch (op) {
      case HbOp::KernelAccess:
        return "kernel-access";
      case HbOp::RecomputeKernel:
        return "recompute-kernel";
      case HbOp::SwapOutStart:
        return "swap-out-start";
      case HbOp::SwapOutEnd:
        return "swap-out-end";
      case HbOp::SwapInStart:
        return "swap-in-start";
      case HbOp::SwapInEnd:
        return "swap-in-end";
      case HbOp::BufferFree:
        return "buffer-free";
      case HbOp::BufferAlloc:
        return "buffer-alloc";
    }
    return "?";
}

std::vector<HbEdge>
enumerateOrderingEdges(const std::vector<HbEvent> &events,
                       const OrderingRules &rules)
{
    std::vector<HbEdge> edges;
    edges.reserve(events.size() * 2);
    auto edge = [&](std::int64_t from, std::size_t to, const char *rule) {
        if (from >= 0 && static_cast<std::size_t>(from) != to)
            edges.push_back(HbEdge{static_cast<std::uint32_t>(from),
                                   static_cast<std::uint32_t>(to), rule});
    };

    // Last listed event per FIFO stream (Deferred events are ordered only
    // by their causes, never chained among themselves).
    std::int64_t last_on_stream[kHbChainStreams] = {-1, -1, -1};

    // Per-tensor matching state for the cross-stream rules.
    struct TensorMatch
    {
        std::int64_t lastComputeAccess = -1; ///< latest kernel touch
        std::int64_t pendingSwapOutEnd = -1; ///< awaiting free / swap-in
        std::int64_t freeSwapOutEnd = -1;    ///< awaiting its chunk free
        std::int64_t pendingSwapInEnd = -1;  ///< awaiting the back access
        std::int64_t pendingAlloc = -1;      ///< awaiting the copy-in
    };
    std::unordered_map<TensorId, TensorMatch> match;

    for (std::size_t i = 0; i < events.size(); ++i) {
        const HbEvent &ev = events[i];

        if (rules.streamFifo && ev.stream != HbStream::Deferred) {
            auto s = static_cast<std::size_t>(ev.stream);
            edge(last_on_stream[s], i, "stream-fifo");
            last_on_stream[s] = static_cast<std::int64_t>(i);
        }
        if (rules.issueAfterCause && ev.cause >= 0)
            edge(ev.cause, i, "issue-after-cause");

        if (ev.tensor == kInvalidTensor)
            continue;
        TensorMatch &m = match[ev.tensor];
        switch (ev.op) {
          case HbOp::KernelAccess:
          case HbOp::RecomputeKernel:
            if (rules.completeBeforeUse && m.pendingSwapInEnd >= 0) {
                edge(m.pendingSwapInEnd, i, "complete-before-use");
                m.pendingSwapInEnd = -1;
            }
            m.lastComputeAccess = static_cast<std::int64_t>(i);
            break;
          case HbOp::SwapOutStart:
            if (rules.retireBeforeCopy)
                edge(m.lastComputeAccess, i, "retire-before-copy");
            break;
          case HbOp::SwapOutEnd:
            m.pendingSwapOutEnd = static_cast<std::int64_t>(i);
            m.freeSwapOutEnd = static_cast<std::int64_t>(i);
            break;
          case HbOp::SwapInStart:
            if (rules.outBeforeIn && m.pendingSwapOutEnd >= 0) {
                edge(m.pendingSwapOutEnd, i, "out-before-in");
                m.pendingSwapOutEnd = -1;
            }
            if (rules.allocBeforeCopyIn && m.pendingAlloc >= 0) {
                edge(m.pendingAlloc, i, "alloc-before-copy-in");
                m.pendingAlloc = -1;
            }
            break;
          case HbOp::SwapInEnd:
            m.pendingSwapInEnd = static_cast<std::int64_t>(i);
            break;
          case HbOp::BufferFree:
            if (rules.completeBeforeFree && m.freeSwapOutEnd >= 0) {
                edge(m.freeSwapOutEnd, i, "complete-before-free");
                m.freeSwapOutEnd = -1;
            }
            break;
          case HbOp::BufferAlloc:
            m.pendingAlloc = static_cast<std::int64_t>(i);
            break;
        }
    }
    return edges;
}

} // namespace capu::hb
