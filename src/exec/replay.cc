#include "exec/replay.hh"

#include <algorithm>
#include <cstring>

#include "support/rng.hh"

namespace capu
{

namespace
{

/**
 * Registry counters that mirror raw allocator/host counters via setCounter
 * in feedIterationMetrics. Synthesized iterations advance these through the
 * executor's replay-offset mechanism instead of a plain add, so the next
 * executed iteration's absolute mirror stays seamless.
 */
bool
isRawMirror(const std::string &name)
{
    return name == "bfc.splits" || name == "bfc.merges" ||
           name == "bfc.failed_allocs" || name == "host.failed_allocs";
}

} // namespace

ReplayEngine::ReplayEngine(Executor &exec, MemoryPolicy *policy)
    : exec_(exec), policy_(policy), opts_(exec.config().replay)
{
    if (!exec_.replayArmed())
        return;
    armed_ = true;
    const Graph &g = exec_.graph();
    for (std::size_t t = 0; t < g.numTensors(); ++t) {
        auto id = static_cast<TensorId>(t);
        if (g.tensor(id).kind == TensorKind::Weight)
            weightIds_.push_back(id);
    }
}

ReplayEngine::ReplayEngine(const ReplayEngine &other, Executor &exec,
                           MemoryPolicy *policy)
    : exec_(exec), policy_(policy), opts_(other.opts_),
      armed_(other.armed_), disabled_(other.disabled_),
      weightIds_(other.weightIds_), haveMarks_(other.haveMarks_),
      marks_(other.marks_), tracks_(other.tracks_),
      summary_(other.summary_)
{
}

ReplayEngine::Track &
ReplayEngine::trackFor(std::uint64_t cls)
{
    return tracks_[cls]; // default state: Observing
}

bool
ReplayEngine::canReplay()
{
    if (!armed_ || disabled_)
        return false;
    Track &tr = trackFor(exec_.shapeClass());
    if (tr.state != State::Steady)
        return false;
    if (policy_ && !policy_->stableForReplay())
        return false;
    if (opts_.auditInterval > 0 &&
        tr.replayedSinceAudit >= opts_.auditInterval) {
        tr.auditPending = true;
        return false;
    }
    return true;
}

void
ReplayEngine::observe(const IterationStats &stats)
{
    ++summary_.executed;
    if (!armed_ || disabled_)
        return;
    if (!haveMarks_) {
        // First executed iteration after (re)entry: only a baseline.
        captureMarks(marks_);
        haveMarks_ = true;
        return;
    }
    Delta delta = captureDelta(stats);
    captureMarks(marks_);
    bool stable = !policy_ || policy_->stableForReplay();
    // The class that just executed (Session selects it before running, so
    // it is still current here).
    Track &tr = trackFor(exec_.shapeClass());

    if (tr.state == State::Steady) {
        // An executed iteration while steady is either a due audit or a
        // fill-in forced by a policy-instability blip.
        bool was_audit = tr.auditPending;
        tr.auditPending = false;
        tr.replayedSinceAudit = 0;
        if (was_audit)
            ++summary_.audits;
        if (stable && delta.digest == tr.tpl.digest) {
            // Digest reproduced: refresh the template so its cached trace
            // events and clock offsets stay ring-fresh.
            tr.tpl = std::move(delta);
            return;
        }
        if (was_audit) {
            ++summary_.auditMismatches;
            if (summary_.auditMismatches >= opts_.maxAuditMismatches) {
                disabled_ = true;
                return;
            }
        }
        // The fixed point moved (legitimately, if the policy adapted);
        // hunt for the new one.
        tr.state = State::Observing;
        tr.lastDigest = delta.digest;
        tr.haveLastDigest = stable;
        return;
    }

    // Observing: two consecutive stable iterations of this shape class
    // with equal digests establish its fixed point.
    if (stable && tr.haveLastDigest && delta.digest == tr.lastDigest) {
        tr.tpl = std::move(delta);
        tr.state = State::Steady;
        tr.replayedSinceAudit = 0;
        return;
    }
    tr.lastDigest = delta.digest;
    tr.haveLastDigest = stable;
}

void
ReplayEngine::noteAbort()
{
    if (!armed_ || disabled_)
        return;
    // The machine was force-reset mid-iteration: every class's cached
    // steady state describes a layout that no longer exists.
    for (auto &[cls, tr] : tracks_) {
        (void)cls;
        tr.state = State::Observing;
        tr.haveLastDigest = false;
        tr.auditPending = false;
        tr.replayedSinceAudit = 0;
    }
    haveMarks_ = false;
}

IterationStats
ReplayEngine::synthesize()
{
    Track &tr = trackFor(exec_.shapeClass());
    IterationStats st = tr.tpl.stats;
    // Same begin rule as Executor::beginIterationState; at the fixed point
    // both operands equal the previous iteration's end.
    Tick now = std::max(exec_.now(), exec_.computeStream().busyUntil());
    st.iteration = exec_.iteration();
    st.begin = now;
    st.end = now + tr.tpl.shift.dt;

    emitSynthesized(st, tr.tpl);
    exec_.replayApply(tr.tpl.shift);
    for (const auto &[id, bumps] : tr.tpl.weightBumps)
        exec_.replayBumpWeight(id, bumps);

    // Re-baseline after every synthesized iteration: an eventual audit
    // must diff exactly one executed iteration, not the accumulated
    // replayed span.
    captureMarks(marks_);
    ++summary_.replayed;
    ++tr.replayedSinceAudit;
    return st;
}

void
ReplayEngine::captureMarks(Marks &into) const
{
    into.computeBusy = exec_.computeStream().busyTime();
    into.d2hBusy = exec_.pcie().lane(CopyDir::DeviceToHost).busyTime();
    into.h2dBusy = exec_.pcie().lane(CopyDir::HostToDevice).busyTime();
    into.tracerMark = exec_.obs().tracer.recorded();
    into.weightVersions.clear();
    into.weightVersions.reserve(weightIds_.size());
    for (TensorId id : weightIds_)
        into.weightVersions.push_back(exec_.tensorState(id).weightVersion);
    const auto &m = exec_.obs().metrics;
    into.counters = m.counters();
    into.gauges = m.gauges();
    into.histograms = m.histograms();
}

ReplayEngine::Delta
ReplayEngine::captureDelta(const IterationStats &stats) const
{
    Delta d;
    d.stats = stats;
    d.shift.dt = stats.duration();
    d.shift.computeBusy =
        exec_.computeStream().busyTime() - marks_.computeBusy;
    d.shift.d2hBusy =
        exec_.pcie().lane(CopyDir::DeviceToHost).busyTime() - marks_.d2hBusy;
    d.shift.h2dBusy =
        exec_.pcie().lane(CopyDir::HostToDevice).busyTime() - marks_.h2dBusy;

    for (std::size_t i = 0; i < weightIds_.size(); ++i) {
        int cur = exec_.tensorState(weightIds_[i]).weightVersion;
        int prev = marks_.weightVersions[i];
        if (cur != prev)
            d.weightBumps.emplace_back(weightIds_[i], cur - prev);
    }

    const auto &m = exec_.obs().metrics;
    for (const auto &[name, value] : m.counters()) {
        auto it = marks_.counters.find(name);
        std::uint64_t prev = it == marks_.counters.end() ? 0 : it->second;
        if (value != prev)
            d.counterDeltas.emplace(name, value - prev);
    }
    d.gauges.insert(m.gauges().begin(), m.gauges().end());
    for (const auto &[name, hist] : m.histograms()) {
        auto it = marks_.histograms.find(name);
        obs::Histogram delta = it == marks_.histograms.end()
                                   ? hist.deltaSince(obs::Histogram{})
                                   : hist.deltaSince(it->second);
        if (delta.count() > 0)
            d.histDeltas.emplace_back(name, delta);
    }

    if (exec_.obs().tracing())
        d.events = exec_.obs().tracer.eventsSince(marks_.tracerMark);

    d.digest = digestOf(d);
    return d;
}

std::uint64_t
ReplayEngine::digestOf(const Delta &d) const
{
    std::uint64_t h = hashString("capureplay/v1");
    auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    auto mixd = [&](double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        mix(bits);
    };

    mix(exec_.iterationAccessHash());

    // Iteration stats: every field but the absolute ones (iteration,
    // begin, end); duration stands in for the time axis.
    const IterationStats &s = d.stats;
    mix(s.duration());
    mix(s.kernelBusy);
    mix(s.recomputeBusy);
    mix(s.inputStall);
    mix(s.allocStall);
    mix(s.swapOutBytes);
    mix(s.swapInBytes);
    mix(static_cast<std::uint64_t>(s.swapOutCount));
    mix(static_cast<std::uint64_t>(s.swapInCount));
    mix(static_cast<std::uint64_t>(s.recomputedTensors));
    mix(static_cast<std::uint64_t>(s.recomputeOps));
    mix(static_cast<std::uint64_t>(s.droppedTensors));
    mix(s.droppedBytes);
    mix(static_cast<std::uint64_t>(s.inplaceForwards));
    mix(static_cast<std::uint64_t>(s.fallbackKernels));
    mix(static_cast<std::uint64_t>(s.oomEvictions));
    mix(s.prefetchBusy);
    mix(s.prefetchStall);
    mix(s.peakGpuBytes);

    // Resource horizons relative to iteration end, clamped to zero: a
    // horizon at or before `end` is a behavioral don't-care (an idle lane
    // stays idle however far in the past it drained), and clamping keeps
    // such lanes from blocking digest convergence.
    Tick end = s.end;
    auto rel = [end](Tick t) { return t > end ? t - end : 0; };
    mix(rel(exec_.computeStream().busyUntil()));
    mix(rel(exec_.pcie().laneBusyUntil(CopyDir::DeviceToHost)));
    mix(rel(exec_.pcie().laneBusyUntil(CopyDir::HostToDevice)));
    mix(rel(exec_.computeBarrierTick()));
    mix(rel(exec_.now()));

    // Allocator fixed point: the exact arena layout and the host pool.
    for (const auto &c : exec_.memory().gpu().snapshot()) {
        mix(c.offset);
        mix(c.size);
        mix(c.free ? 1u : 0u);
    }
    mix(exec_.memory().host().bytesInUse());
    for (const auto &[when, handle] : exec_.memory().pendingFrees()) {
        mix(rel(when));
        mix(handle);
    }

    for (const auto &[id, bumps] : d.weightBumps) {
        mix(static_cast<std::uint64_t>(id));
        mix(static_cast<std::uint64_t>(bumps));
    }

    for (const auto &[name, delta] : d.counterDeltas) {
        mix(hashString(name.c_str()));
        mix(delta);
    }
    for (const auto &[name, value] : d.gauges) {
        mix(hashString(name.c_str()));
        mixd(value);
    }
    for (const auto &[name, hist] : d.histDeltas) {
        mix(hashString(name.c_str()));
        mix(hist.count());
        mix(hist.sum());
    }
    return h;
}

void
ReplayEngine::emitSynthesized(const IterationStats &st, const Delta &tpl)
{
    obs::Obs &obs = exec_.obs();
    if (obs.tracing()) {
        Tick offset = st.begin - tpl.stats.begin;
        obs.tracer.instant(obs::kTrackReplay, obs::EventKind::Marker,
                           st.begin,
                           "replay.iter:" + std::to_string(st.iteration));
        for (const obs::TraceEvent &tev : tpl.events) {
            obs::TraceEvent ev = tev;
            ev.ts += offset;
            // Iteration boundary markers carry the index in their label.
            if (ev.name.rfind("iter:", 0) == 0)
                ev.name = "iter:" + std::to_string(st.iteration);
            else if (ev.name.rfind("iteration:", 0) == 0)
                ev.name = "iteration:" + std::to_string(st.iteration);
            obs.tracer.record(std::move(ev));
        }
    }
    if (obs.metricsOn()) {
        auto &m = obs.metrics;
        for (const auto &[name, delta] : tpl.counterDeltas) {
            m.add(name, delta);
            if (isRawMirror(name))
                exec_.addReplayCounterOffset(name, delta);
        }
        for (const auto &[name, value] : tpl.gauges)
            m.set(name, value);
        for (const auto &[name, hist] : tpl.histDeltas)
            m.mergeHistogram(name, hist);
        m.add("replay.iterations");
        m.snapshotIteration(st.iteration);
    }
}

} // namespace capu
