#include "exec/memory_manager.hh"

#include <limits>

#include "support/logging.hh"

namespace capu
{

MemoryManager::MemoryManager(std::uint64_t gpu_capacity,
                             std::uint64_t host_capacity,
                             BfcOptions gpu_options)
    : gpu_(gpu_capacity, gpu_options), host_(host_capacity)
{
}

std::optional<MemHandle>
MemoryManager::allocate(Tick now, std::uint64_t bytes,
                        BfcAllocator::Placement placement)
{
    deferred_.applyUpTo(now, gpu_);
    auto h = gpu_.allocate(bytes, placement);
    if (h)
        sampleUsage(now);
    return h;
}

std::optional<MemHandle>
MemoryManager::allocateWaiting(Tick &now, std::uint64_t bytes)
{
    while (true) {
        if (auto h = allocate(now, bytes))
            return h;
        auto next = deferred_.nextMaturity();
        if (!next)
            return std::nullopt;
        // Wait for the earliest in-flight free (swap-out / kernel retire).
        now = std::max(now, *next);
    }
}

void
MemoryManager::freeNow(Tick now, MemHandle handle)
{
    deferred_.applyUpTo(now, gpu_);
    gpu_.deallocate(handle);
    sampleUsage(now);
}

void
MemoryManager::freeAt(Tick when, MemHandle handle)
{
    deferred_.post(when, handle);
}

bool
MemoryManager::canAllocate(Tick now, std::uint64_t bytes)
{
    deferred_.applyUpTo(now, gpu_);
    return gpu_.canAllocate(bytes);
}

std::optional<Tick>
MemoryManager::nextPendingFree() const
{
    return deferred_.nextMaturity();
}

bool
MemoryManager::isFreePending(MemHandle handle) const
{
    return deferred_.isPending(handle);
}

void
MemoryManager::drainAll()
{
    deferred_.applyUpTo(std::numeric_limits<Tick>::max(), gpu_);
}

void
MemoryManager::attachTracer(obs::Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer_)
        tracer_->setTrackName(obs::kTrackMemory, "memory");
}

void
MemoryManager::sampleUsage(Tick now)
{
    if (tracer_) {
        tracer_->counter(obs::kTrackMemory, now, "gpu.bytes_in_use",
                         static_cast<double>(gpu_.bytesInUse()));
    }
}

} // namespace capu
