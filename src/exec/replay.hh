/**
 * @file
 * capureplay — steady-state iteration replay.
 *
 * Training iterations converge to a fixed point once the memory policy's
 * plan stabilizes: every subsequent iteration performs the same accesses,
 * transfers and allocations at the same iteration-relative ticks. The
 * ReplayEngine detects that fixed point with a deterministic *iteration
 * digest* — a 64-bit hash over the access stream, the iteration stats, the
 * end-relative resource horizons, the allocator layout, pending deferred
 * frees, weight-version bumps and the metrics delta. When two consecutive
 * executed iterations produce identical digests (and the policy reports
 * stableForReplay()), the session stops executing and *synthesizes* the
 * remaining iterations from the cached iteration delta: clocks, stream
 * horizons and pending frees shift uniformly by the template duration,
 * weight versions bump, and observability output (metrics deltas, trace
 * events with shifted ticks) is re-emitted — bit-identical results at a
 * tiny fraction of the cost.
 *
 * Replay is trust-but-verify: every `auditInterval` synthesized iterations
 * one *audit iteration* executes for real and must reproduce the template
 * digest exactly; a mismatch falls back to full execution (bounded by
 * maxAuditMismatches before replay disarms for the rest of the run).
 * Replay is never armed while a fault plan is active, and an unstable
 * policy (pending plan rebuild, trigger shift, re-measurement) pauses
 * synthesis until the digest re-converges.
 *
 * Dynamic workloads (capudrift): digests, templates and steady/observing
 * state are all tracked *per shape class* — a recurring class of a dynamic
 * stream reaches its own fixed point and synthesizes even while other
 * classes are still measuring. This works because every iteration returns
 * the arena to the weights-only layout: each class's iteration starts from
 * an equivalent machine state regardless of which class ran before it, so
 * per-class digests converge under interleaving. Audit mismatches count
 * globally and disarm the whole engine.
 */

#ifndef CAPU_EXEC_REPLAY_HH
#define CAPU_EXEC_REPLAY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exec/executor.hh"

namespace capu
{

class ReplayEngine
{
  public:
    /**
     * @param exec The session's executor; options come from
     *             exec.config().replay. The engine stays Disabled unless
     *             exec.replayArmed().
     * @param policy The session's policy (stability veto); may be nullptr.
     */
    ReplayEngine(Executor &exec, MemoryPolicy *policy);

    /**
     * Rebinding copy (capufork): duplicate `other`'s replay state —
     * digests, steady-state templates, audit cadence, marks, summary —
     * against a forked executor/policy pair, so a fork keeps synthesizing
     * from the very iteration the original would have.
     */
    ReplayEngine(const ReplayEngine &other, Executor &exec,
                 MemoryPolicy *policy);

    /**
     * Whether the next iteration may be synthesized. False while
     * observing, when the policy is unstable, and when an audit iteration
     * is due (the caller must then execute for real and observe()).
     */
    bool canReplay();

    /** Feed the stats of an iteration that actually executed. */
    void observe(const IterationStats &stats);

    /** An iteration aborted (OOM retry): discard steady state, re-observe. */
    void noteAbort();

    /**
     * Synthesize the next iteration from the steady-state template: shift
     * the machine, bump weights, re-emit observability. Only valid when
     * canReplay() just returned true.
     */
    IterationStats synthesize();

    const ReplaySummary &summary() const { return summary_; }

  private:
    enum class State
    {
        Observing, ///< hashing executed iterations, hunting the fixed point
        Steady,    ///< template cached; synthesizing
    };

    /** Absolute snapshots diffed across one iteration. */
    struct Marks
    {
        Tick computeBusy = 0;
        Tick d2hBusy = 0;
        Tick h2dBusy = 0;
        std::uint64_t tracerMark = 0;
        /** Parallel to weightIds_. */
        std::vector<int> weightVersions;
        std::map<std::string, std::uint64_t, std::less<>> counters;
        std::map<std::string, double, std::less<>> gauges;
        std::map<std::string, obs::Histogram, std::less<>> histograms;
    };

    /** Everything one iteration changed — the replayable template. */
    struct Delta
    {
        IterationStats stats;
        ReplayShift shift;
        std::vector<std::pair<TensorId, int>> weightBumps;
        std::map<std::string, std::uint64_t> counterDeltas;
        std::map<std::string, double> gauges;
        std::vector<std::pair<std::string, obs::Histogram>> histDeltas;
        std::vector<obs::TraceEvent> events;
        std::uint64_t digest = 0;
    };

    /**
     * Per-shape-class replay state. Static graphs use exactly class 0, so
     * a single Track reproduces the pre-capudrift behavior bit for bit.
     * Marks stay global (they snapshot the one machine), but digests,
     * fixed-point hunting and audit cadence are per class.
     */
    struct Track
    {
        State state = State::Observing;
        std::uint64_t lastDigest = 0;
        bool haveLastDigest = false;
        Delta tpl;
        int replayedSinceAudit = 0;
        bool auditPending = false;
    };

    void captureMarks(Marks &into) const;
    Delta captureDelta(const IterationStats &stats) const;
    std::uint64_t digestOf(const Delta &delta) const;
    void emitSynthesized(const IterationStats &st, const Delta &tpl);
    Track &trackFor(std::uint64_t cls);

    Executor &exec_;
    MemoryPolicy *policy_;
    ReplayOptions opts_;
    bool armed_ = false;
    /** Too many audit mismatches: the whole engine disarms. */
    bool disabled_ = false;
    std::vector<TensorId> weightIds_;

    bool haveMarks_ = false;
    Marks marks_;
    std::map<std::uint64_t, Track> tracks_;
    ReplaySummary summary_;
};

} // namespace capu

#endif // CAPU_EXEC_REPLAY_HH
