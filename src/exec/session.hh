/**
 * @file
 * Training session: owns graph + executor + policy, runs N iterations.
 *
 * A Session is the library's top-level entry point (see examples/). It also
 * provides the max-batch-size search used by the Table 2 / Table 3
 * reproductions: the largest batch for which training completes without
 * OomError.
 *
 * capufork: a mid-run session is *forkable*. Every simulated component is
 * value-semantic (clocks, streams, allocator layout, pending frees, tensor
 * residency, policy plans, replay templates), so `fork()` deep-copies the
 * live machine in O(live state) — the immutable Graph is shared, never
 * re-measured — and the fork continues bit-identically to the original:
 * running k iterations, forking, and running n-k more on the fork yields
 * exactly the stats/digests/traces of a straight n-iteration run.
 * `snapshot()` freezes the state behind the thread-safe SimState facade so
 * parallel searches can fork many what-if runs from one prefix, and
 * `speculate()` races K policy variants from the current state and picks
 * the winner deterministically.
 */

#ifndef CAPU_EXEC_SESSION_HH
#define CAPU_EXEC_SESSION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.hh"
#include "exec/replay.hh"
#include "graph/graph.hh"

namespace capu
{

struct SessionResult
{
    bool oom = false;
    std::string oomMessage;
    std::uint64_t oomRequestedBytes = 0;
    OomContext oomContext;
    std::vector<IterationStats> iterations;
    GraphStats graphStats;
    /** capureplay accounting (all-executed when replay is off). Counts are
     *  cumulative over the session's lifetime, so a continued or forked
     *  session reports the totals including its prefix. */
    ReplaySummary replay;

    /** Multi-line OOM diagnosis (empty when the run completed). */
    std::string postMortem() const;

    /**
     * Mean images(samples)/sec over iterations after `skip` warm-up
     * iterations (the paper measures once the policy is stable).
     */
    double steadyThroughput(std::int64_t batch, int skip = 2) const;

    /** Mean iteration duration after warm-up. */
    Tick steadyIterationTicks(int skip = 2) const;

    const IterationStats &last() const;
};

class Session;

/**
 * An immutable frozen copy of a mid-run session (capufork). Construction
 * deep-copies the session once; `fork()` then materializes any number of
 * independent runnable copies from it. fork() is const and performs pure
 * reads, so many worker threads may fork from one shared SimState
 * concurrently — the parallel-search idiom:
 *
 *   SimState snap = session.snapshot();     // one measured prefix
 *   // on the pool: Session s = snap.fork(); s.run(k); ...
 */
class SimState
{
  public:
    SimState(SimState &&) = default;
    SimState &operator=(SimState &&) = default;

    /** Materialize a runnable deep copy (policy cloned with its state). */
    Session fork() const;

    /**
     * Materialize a copy that continues under a *different* policy: the
     * replacement starts fresh (attached, un-measured) on the snapshot's
     * machine state, and steady-state replay re-observes from scratch
     * since the old policy's templates do not describe the new policy's
     * decisions.
     */
    Session fork(std::unique_ptr<MemoryPolicy> policy) const;

    const Graph &graph() const;

  private:
    friend class Session;
    explicit SimState(std::unique_ptr<Session> frozen);

    std::unique_ptr<Session> frozen_;
};

using PolicyFactoryFn = std::function<std::unique_ptr<MemoryPolicy>()>;

/** One what-if candidate of Session::speculate(). */
struct SpeculateCandidate
{
    std::string policyName;
    SessionResult result;
    /** Mean post-warm-up iteration duration; the ranking key. */
    Tick steadyTicks = 0;
};

/** Outcome of Session::speculate(): all candidates plus the winner. */
struct SpeculateResult
{
    std::size_t winner = 0;
    std::vector<SpeculateCandidate> candidates;
};

class Session
{
  public:
    /** Upper bound on policy-requested iteration retries per run(). */
    static constexpr int kMaxIterationAborts = 6;

    Session(Graph graph, ExecConfig config,
            std::unique_ptr<MemoryPolicy> policy);

    Session(Session &&) = default;
    Session &operator=(Session &&) = default;

    /**
     * Run `iterations` training iterations. On OomError the result reports
     * oom=true and retains the iterations that completed. May be called
     * repeatedly: a later call continues from the machine state the
     * previous one left behind, so run(k) followed by run(n-k) is
     * bit-identical to run(n) — the invariant fork determinism builds on.
     */
    SessionResult run(int iterations);

    /**
     * Deep-copy this session mid-run (capufork). The fork owns a clone of
     * the policy (with all learned state), a copy of the executor's full
     * machine state, and a copy of the replay engine's steady templates;
     * only the immutable Graph is shared. Running the fork and the
     * original produces bit-identical results. Panics if the policy does
     * not implement clone().
     */
    Session fork() const;

    /** Fork, but continue under `policy` instead (see SimState::fork). */
    Session fork(std::unique_ptr<MemoryPolicy> policy) const;

    /** Freeze a deep copy behind the shareable SimState facade. */
    SimState snapshot() const;

    /**
     * What-if search (capufork): fork this session once per variant, run
     * each fork `iterations` further iterations, and rank them by steady
     * iteration time (OOM ranks last; ties break toward the lower index).
     * With jobs > 1 the variants run concurrently on a work-stealing pool;
     * the winner is decided only after every variant finishes, from
     * simulated ticks, so the outcome is identical at any thread count.
     * The session itself is not advanced.
     */
    SpeculateResult speculate(const std::vector<PolicyFactoryFn> &variants,
                              int iterations, unsigned jobs = 1) const;

    Executor &executor() { return *exec_; }
    MemoryPolicy *policy() { return policy_.get(); }
    const Graph &graph() const { return *graph_; }

  private:
    /** Rebinding deep copy: shared graph, supplied policy. */
    Session(const Session &other, std::unique_ptr<MemoryPolicy> policy);

    /** Graph is immutable once built; forks share it (never re-measured). */
    std::shared_ptr<const Graph> graph_;
    ExecConfig config_;
    std::unique_ptr<MemoryPolicy> policy_;
    std::unique_ptr<Executor> exec_;
    /**
     * Persistent across run() calls (and copied on fork) so steady-state
     * synthesis continues seamlessly instead of re-observing per call.
     */
    std::unique_ptr<ReplayEngine> replay_;
};

using GraphBuilderFn = std::function<Graph(std::int64_t)>;

/** Probe accounting for findMaxBatch (filled when a caller asks). */
struct MaxBatchStats
{
    /** Probe sessions actually run (serial + speculative). */
    int probes = 0;
    /** Speculative probes submitted to the worker pool. */
    int speculated = 0;
    /** Speculative results the serial decision sequence consumed. */
    int servedFromWarm = 0;
    /** Speculative probes whose result was never consulted. */
    int wasted = 0;
    unsigned jobs = 1;
};

/**
 * Largest batch size in [lo, hi] that trains `iterations` iterations
 * without OOM. Returns 0 if even `lo` fails.
 *
 * Probe-efficient: per-batch feasibility is memoized (the robustness
 * check and bisection midpoints revisit batches), and the search gallops
 * up from `lo` with doubling strides before bisecting — cheap small-batch
 * sessions bracket the boundary instead of opening with a `hi`-sized run.
 *
 * With jobs > 1 upcoming probes are *speculated* on a worker pool while
 * the serial decision sequence consumes their results in its original
 * order: gallop points are fully predictable, and bisection midpoints are
 * warmed a few tree levels deep. The decision sequence only ever reads
 * memo entries it inserted itself, so the answer is bit-identical to the
 * serial search at any job count — speculation can only waste probes,
 * never change one. `builder` and `make_policy` are then invoked from
 * worker threads and must be thread-safe (pure functions of the batch).
 */
std::int64_t findMaxBatch(const GraphBuilderFn &builder,
                          const PolicyFactoryFn &make_policy,
                          const ExecConfig &config, int iterations = 3,
                          std::int64_t lo = 1, std::int64_t hi = 4096,
                          unsigned jobs = 1, MaxBatchStats *stats = nullptr);

} // namespace capu

#endif // CAPU_EXEC_SESSION_HH
