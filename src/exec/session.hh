/**
 * @file
 * Training session: owns graph + executor + policy, runs N iterations.
 *
 * A Session is the library's top-level entry point (see examples/). It also
 * provides the max-batch-size search used by the Table 2 / Table 3
 * reproductions: the largest batch for which training completes without
 * OomError.
 */

#ifndef CAPU_EXEC_SESSION_HH
#define CAPU_EXEC_SESSION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.hh"
#include "graph/graph.hh"

namespace capu
{

struct SessionResult
{
    bool oom = false;
    std::string oomMessage;
    std::uint64_t oomRequestedBytes = 0;
    OomContext oomContext;
    std::vector<IterationStats> iterations;
    GraphStats graphStats;
    /** capureplay accounting (all-executed when replay is off). */
    ReplaySummary replay;

    /** Multi-line OOM diagnosis (empty when the run completed). */
    std::string postMortem() const;

    /**
     * Mean images(samples)/sec over iterations after `skip` warm-up
     * iterations (the paper measures once the policy is stable).
     */
    double steadyThroughput(std::int64_t batch, int skip = 2) const;

    /** Mean iteration duration after warm-up. */
    Tick steadyIterationTicks(int skip = 2) const;

    const IterationStats &last() const;
};

class Session
{
  public:
    /** Upper bound on policy-requested iteration retries per run(). */
    static constexpr int kMaxIterationAborts = 6;

    Session(Graph graph, ExecConfig config,
            std::unique_ptr<MemoryPolicy> policy);

    /**
     * Run `iterations` training iterations. On OomError the result reports
     * oom=true and retains the iterations that completed.
     */
    SessionResult run(int iterations);

    Executor &executor() { return *exec_; }
    MemoryPolicy *policy() { return policy_.get(); }
    const Graph &graph() const { return graph_; }

  private:
    Graph graph_;
    ExecConfig config_;
    std::unique_ptr<MemoryPolicy> policy_;
    std::unique_ptr<Executor> exec_;
};

using GraphBuilderFn = std::function<Graph(std::int64_t)>;
using PolicyFactoryFn = std::function<std::unique_ptr<MemoryPolicy>()>;

/**
 * Largest batch size in [lo, hi] that trains `iterations` iterations
 * without OOM. Returns 0 if even `lo` fails.
 *
 * Probe-efficient: per-batch feasibility is memoized (the robustness
 * check and bisection midpoints revisit batches), and the search gallops
 * up from `lo` with doubling strides before bisecting — cheap small-batch
 * sessions bracket the boundary instead of opening with a `hi`-sized run.
 */
std::int64_t findMaxBatch(const GraphBuilderFn &builder,
                          const PolicyFactoryFn &make_policy,
                          const ExecConfig &config, int iterations = 3,
                          std::int64_t lo = 1, std::int64_t hi = 4096);

} // namespace capu

#endif // CAPU_EXEC_SESSION_HH
