#include "exec/cost_model.hh"

#include <algorithm>
#include <bit>

#include "support/rng.hh"

namespace capu
{

double
CostModel::effectiveFlopsFraction(const Operation &op) const
{
    // Saturating efficiency: kernels with ~1 GFLOP of work reach ~2/3 of
    // the plateau; tiny kernels are dominated by underutilized SMs. The
    // 0.5 GFLOP knee is a fit to published cuDNN Pascal benchmarks.
    constexpr double knee = 5e8;
    double saturation = op.flops / (op.flops + knee);
    return dev_.computeEfficiency * (0.15 + 0.85 * saturation);
}

Tick
CostModel::computeDuration(const Operation &op, bool fast_algo) const
{
    if (op.category == OpCategory::Source) {
        // Synthetic input batches materialize on-device; only launch cost.
        return dev_.launchOverhead;
    }

    double compute_s = 0;
    if (op.flops > 0) {
        double eff = dev_.peakFlops * effectiveFlopsFraction(op);
        compute_s = op.flops / eff;
        if (fast_algo && op.fastAlgoSpeedup > 1.0)
            compute_s /= op.fastAlgoSpeedup;
    }
    double memory_s = 0;
    if (op.memBytes > 0)
        memory_s = op.memBytes / (dev_.memBandwidth * dev_.memEfficiency);

    double kernel_s = std::max(compute_s, memory_s);
    if (!fast_algo && op.fastWorkspaceBytes > 0)
        kernel_s *= op.fallbackSlowdown;

    return dev_.launchOverhead + static_cast<Tick>(kernel_s * 1e9 + 0.5);
}

std::size_t
CostModel::ShapeKeyHash::operator()(const ShapeKey &k) const
{
    std::uint64_t h = (k.source ? 1u : 0u) | (k.fastAlgo ? 2u : 0u);
    h = hashCombine(h, std::bit_cast<std::uint64_t>(k.flops));
    h = hashCombine(h, std::bit_cast<std::uint64_t>(k.memBytes));
    h = hashCombine(h, k.fastWorkspaceBytes);
    h = hashCombine(h, std::bit_cast<std::uint64_t>(k.fallbackSlowdown));
    h = hashCombine(h, std::bit_cast<std::uint64_t>(k.fastAlgoSpeedup));
    return static_cast<std::size_t>(h);
}

Tick
CostModel::opDuration(const Operation &op, bool fast_algo) const
{
    if (!memoize_)
        return computeDuration(op, fast_algo);

    ShapeKey key{op.category == OpCategory::Source,
                 fast_algo,
                 op.flops,
                 op.memBytes,
                 op.fastWorkspaceBytes,
                 op.fallbackSlowdown,
                 op.fastAlgoSpeedup};
    auto it = durationCache_.find(key);
    if (it != durationCache_.end())
        return it->second;
    Tick d = computeDuration(op, fast_algo);
    durationCache_.emplace(key, d);
    return d;
}

} // namespace capu
