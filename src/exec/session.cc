#include "exec/session.hh"

#include "support/logging.hh"

namespace capu
{

double
SessionResult::steadyThroughput(std::int64_t batch, int skip) const
{
    Tick ticks = steadyIterationTicks(skip);
    if (ticks == 0)
        return 0;
    return static_cast<double>(batch) / ticksToSec(ticks);
}

Tick
SessionResult::steadyIterationTicks(int skip) const
{
    if (iterations.empty())
        return 0;
    std::size_t first = std::min<std::size_t>(skip, iterations.size() - 1);
    Tick total = 0;
    std::size_t n = 0;
    for (std::size_t i = first; i < iterations.size(); ++i) {
        total += iterations[i].duration();
        ++n;
    }
    return n == 0 ? 0 : total / n;
}

const IterationStats &
SessionResult::last() const
{
    if (iterations.empty())
        panic("no iterations recorded");
    return iterations.back();
}

Session::Session(Graph graph, ExecConfig config,
                 std::unique_ptr<MemoryPolicy> policy)
    : graph_(std::move(graph)), config_(std::move(config)),
      policy_(std::move(policy))
{
    exec_ = std::make_unique<Executor>(graph_, config_, policy_.get());
}

SessionResult
Session::run(int iterations)
{
    SessionResult result;
    result.graphStats = graph_.stats();
    try {
        exec_->setup();
        int completed = 0;
        int aborts = 0;
        while (completed < iterations) {
            try {
                result.iterations.push_back(exec_->runIteration());
                ++completed;
            } catch (const OomError &e) {
                // Give the policy one chance per abort to learn from the
                // partial iteration and retry (bounded; Capuchin's
                // iterative refinement uses this).
                if (!policy_ || aborts >= kMaxIterationAborts ||
                    !policy_->onIterationAbort(*exec_)) {
                    throw;
                }
                ++aborts;
                exec_->abortIteration();
            }
        }
    } catch (const OomError &e) {
        result.oom = true;
        result.oomMessage = e.what();
        result.oomRequestedBytes = e.requestedBytes;
        result.oomContext = e.context;
    }
    return result;
}

std::string
SessionResult::postMortem() const
{
    if (!oom)
        return "";
    return oomContext.describe(oomRequestedBytes);
}

std::int64_t
findMaxBatch(const GraphBuilderFn &builder,
             const PolicyFactoryFn &make_policy, const ExecConfig &config,
             int iterations, std::int64_t lo, std::int64_t hi)
{
    auto feasible = [&](std::int64_t batch) {
        Session session(builder(batch), config, make_policy());
        return !session.run(iterations).oom;
    };
    // Fragmentation makes raw feasibility locally non-monotone (batch b
    // can fail while b+20 happens to tile the arena); a batch only counts
    // if a slightly smaller one also works, which suppresses lucky spikes.
    auto robust = [&](std::int64_t batch) {
        std::int64_t step = std::max<std::int64_t>(1, batch / 32);
        return feasible(batch) &&
               (batch - step < lo || feasible(batch - step));
    };

    if (!feasible(lo))
        return 0;
    // Invariant: lo feasible, hi + 1 considered infeasible.
    if (robust(hi))
        return hi;
    std::int64_t good = lo;
    std::int64_t bad = hi;
    while (good + 1 < bad) {
        std::int64_t mid = good + (bad - good) / 2;
        if (robust(mid))
            good = mid;
        else
            bad = mid;
    }
    return good;
}

} // namespace capu
