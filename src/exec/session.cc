#include "exec/session.hh"

#include <algorithm>
#include <map>

#include "exec/replay.hh"
#include "support/logging.hh"

namespace capu
{

double
SessionResult::steadyThroughput(std::int64_t batch, int skip) const
{
    Tick ticks = steadyIterationTicks(skip);
    if (ticks == 0)
        return 0;
    return static_cast<double>(batch) / ticksToSec(ticks);
}

Tick
SessionResult::steadyIterationTicks(int skip) const
{
    if (iterations.empty())
        return 0;
    std::size_t first = std::min<std::size_t>(skip, iterations.size() - 1);
    Tick total = 0;
    std::size_t n = 0;
    for (std::size_t i = first; i < iterations.size(); ++i) {
        total += iterations[i].duration();
        ++n;
    }
    return n == 0 ? 0 : total / n;
}

const IterationStats &
SessionResult::last() const
{
    if (iterations.empty())
        panic("no iterations recorded");
    return iterations.back();
}

Session::Session(Graph graph, ExecConfig config,
                 std::unique_ptr<MemoryPolicy> policy)
    : graph_(std::move(graph)), config_(std::move(config)),
      policy_(std::move(policy))
{
    exec_ = std::make_unique<Executor>(graph_, config_, policy_.get());
}

SessionResult
Session::run(int iterations)
{
    SessionResult result;
    result.graphStats = graph_.stats();
    result.iterations.reserve(static_cast<std::size_t>(
        std::max(iterations, 0)));
    ReplayEngine replay(*exec_, policy_.get());
    const bool dynamic = graph_.dynamic();
    auto variantAt = [this](int iter) -> std::size_t {
        if (config_.variantSchedule.empty())
            return 0;
        return config_.variantSchedule[static_cast<std::size_t>(iter) %
                                       config_.variantSchedule.size()];
    };
    try {
        exec_->setup();
        int completed = 0;
        int aborts = 0;
        while (completed < iterations) {
            // Select the upcoming shape class before consulting the replay
            // engine: both replay arming and policy stability are per
            // class (capudrift).
            if (dynamic)
                exec_->setActiveVariant(variantAt(exec_->iteration()));
            if (replay.canReplay()) {
                result.iterations.push_back(replay.synthesize());
                ++completed;
                continue;
            }
            try {
                result.iterations.push_back(exec_->runIteration());
                replay.observe(result.iterations.back());
                ++completed;
            } catch (const OomError &e) {
                // Give the policy one chance per abort to learn from the
                // partial iteration and retry (bounded; Capuchin's
                // iterative refinement uses this).
                if (!policy_ || aborts >= kMaxIterationAborts ||
                    !policy_->onIterationAbort(*exec_)) {
                    throw;
                }
                ++aborts;
                exec_->abortIteration();
                replay.noteAbort();
            }
        }
    } catch (const OomError &e) {
        result.oom = true;
        result.oomMessage = e.what();
        result.oomRequestedBytes = e.requestedBytes;
        result.oomContext = e.context;
    }
    result.replay = replay.summary();
    return result;
}

std::string
SessionResult::postMortem() const
{
    if (!oom)
        return "";
    return oomContext.describe(oomRequestedBytes);
}

namespace
{

/**
 * Heaviest shape class of a dynamic graph: the variant whose ops produce
 * the most non-weight bytes per iteration. Used to pin max-batch probe
 * sessions to the worst case instead of cycling the whole schedule.
 */
std::size_t
worstCaseVariant(const Graph &g)
{
    std::size_t worst = 0;
    std::uint64_t worst_bytes = 0;
    for (std::size_t v = 0; v < g.variants().size(); ++v) {
        std::uint64_t bytes = 0;
        for (OpId id : g.variants()[v].ops) {
            for (TensorId out : g.op(id).outputs) {
                if (g.tensor(out).kind != TensorKind::Weight)
                    bytes += g.tensor(out).bytes;
            }
        }
        if (bytes > worst_bytes) {
            worst_bytes = bytes;
            worst = v;
        }
    }
    return worst;
}

} // namespace

std::int64_t
findMaxBatch(const GraphBuilderFn &builder,
             const PolicyFactoryFn &make_policy, const ExecConfig &config,
             int iterations, std::int64_t lo, std::int64_t hi)
{
    // Probe sessions run with steady-state replay armed: once a probe's
    // iterations stabilize the remainder are synthesized, which cannot
    // change the OOM verdict (replay is bit-identity-audited, and OOM
    // always strikes during executed iterations) but makes long
    // feasibility horizons cheap. Faulty configs disarm replay inside
    // the executor, so this is a no-op under chaos testing.
    ExecConfig probe_config = config;
    probe_config.replay.enabled = true;
    // Sessions are expensive; robust() re-probes batch - step and the
    // bisection revisits midpoints, so feasibility is memoized per batch.
    std::map<std::int64_t, bool> memo;
    bool saw_dynamic = false;
    auto feasible = [&](std::int64_t batch) {
        auto it = memo.find(batch);
        if (it != memo.end())
            return it->second;
        Graph g = builder(batch);
        ExecConfig pc = probe_config;
        if (g.dynamic()) {
            // Dynamic workload: probe the heaviest shape class only —
            // conservative on footprint and far cheaper than cycling the
            // schedule. The winner is re-validated under the true
            // schedule below.
            saw_dynamic = true;
            pc.variantSchedule = {worstCaseVariant(g)};
        }
        Session session(std::move(g), pc, make_policy());
        bool ok = !session.run(iterations).oom;
        memo.emplace(batch, ok);
        return ok;
    };
    // Fragmentation makes raw feasibility locally non-monotone (batch b
    // can fail while b+20 happens to tile the arena); a batch only counts
    // if a slightly smaller one also works, which suppresses lucky
    // spikes. Any already-memoized feasible batch inside the step window
    // serves as that witness, so the clustered probes of a converging
    // bisection rarely pay for a second session.
    auto robust = [&](std::int64_t batch) {
        if (!feasible(batch))
            return false;
        std::int64_t step = std::max<std::int64_t>(1, batch / 32);
        if (batch - step < lo)
            return true;
        for (auto it = memo.lower_bound(batch - step);
             it != memo.end() && it->first < batch; ++it) {
            if (it->second)
                return true;
        }
        return feasible(batch - step);
    };

    if (!feasible(lo))
        return 0;
    // Gallop up from lo with doubling strides: simulation cost grows with
    // batch size, so bracketing the boundary with cheap small-batch
    // sessions beats opening the search with a hi-sized run. The gallop
    // trusts single probes; the bracket anchor is re-qualified below.
    std::int64_t good = lo;
    std::int64_t bad = hi + 1;
    for (std::int64_t gap = 1;; gap *= 2) {
        std::int64_t probe = std::min(lo + gap, hi);
        if (!feasible(probe)) {
            bad = probe;
            break;
        }
        good = probe;
        if (probe == hi)
            break;
    }
    // Demote a lucky-spike anchor before bisecting (at most one extra
    // session: feasible(good) is already memoized).
    if (good > lo && !robust(good)) {
        bad = good;
        good = lo;
    }
    if (good != hi) {
        // Invariant: good robust-feasible (or lo), bad considered
        // infeasible.
        while (good + 1 < bad) {
            std::int64_t mid = good + (bad - good) / 2;
            if (robust(mid))
                good = mid;
            else
                bad = mid;
        }
    }
    if (saw_dynamic && good > 0) {
        // Worst-class probes are conservative on footprint but not on
        // fragmentation: interleaving shape classes lays the arena out
        // differently. Re-validate the witness under the caller's true
        // schedule (covering at least one full cycle so every class runs)
        // and walk the answer down if it fails.
        int horizon = std::max(
            iterations,
            static_cast<int>(config.variantSchedule.size()) + 2);
        std::map<std::int64_t, bool> memo_true;
        auto feasible_true = [&](std::int64_t batch) {
            auto it = memo_true.find(batch);
            if (it != memo_true.end())
                return it->second;
            Session session(builder(batch), probe_config, make_policy());
            bool ok = !session.run(horizon).oom;
            memo_true.emplace(batch, ok);
            return ok;
        };
        if (!feasible_true(good)) {
            std::int64_t tbad = good;
            std::int64_t tgood = feasible_true(lo) ? lo : 0;
            while (tgood > 0 && tgood + 1 < tbad) {
                std::int64_t mid = tgood + (tbad - tgood) / 2;
                if (feasible_true(mid))
                    tgood = mid;
                else
                    tbad = mid;
            }
            good = tgood;
        }
    }
    return good;
}

} // namespace capu
