#include "exec/session.hh"

#include <algorithm>
#include <atomic>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <utility>

#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace capu
{

double
SessionResult::steadyThroughput(std::int64_t batch, int skip) const
{
    Tick ticks = steadyIterationTicks(skip);
    if (ticks == 0)
        return 0;
    return static_cast<double>(batch) / ticksToSec(ticks);
}

Tick
SessionResult::steadyIterationTicks(int skip) const
{
    if (iterations.empty())
        return 0;
    std::size_t first = std::min<std::size_t>(skip, iterations.size() - 1);
    Tick total = 0;
    std::size_t n = 0;
    for (std::size_t i = first; i < iterations.size(); ++i) {
        total += iterations[i].duration();
        ++n;
    }
    return n == 0 ? 0 : total / n;
}

const IterationStats &
SessionResult::last() const
{
    if (iterations.empty())
        panic("no iterations recorded");
    return iterations.back();
}

Session::Session(Graph graph, ExecConfig config,
                 std::unique_ptr<MemoryPolicy> policy)
    : graph_(std::make_shared<const Graph>(std::move(graph))),
      config_(std::move(config)), policy_(std::move(policy))
{
    exec_ = std::make_unique<Executor>(*graph_, config_, policy_.get());
    replay_ = std::make_unique<ReplayEngine>(*exec_, policy_.get());
}

Session::Session(const Session &other, std::unique_ptr<MemoryPolicy> policy)
    : graph_(other.graph_), config_(other.config_),
      policy_(std::move(policy))
{
    exec_ = std::make_unique<Executor>(*other.exec_, *graph_,
                                       policy_.get());
    replay_ = std::make_unique<ReplayEngine>(*other.replay_, *exec_,
                                             policy_.get());
}

Session
Session::fork() const
{
    std::unique_ptr<MemoryPolicy> cloned;
    if (policy_) {
        cloned = policy_->clone();
        if (!cloned)
            panic("policy '{}' does not implement clone(); cannot fork",
                  policy_->name());
    }
    return Session(*this, std::move(cloned));
}

Session
Session::fork(std::unique_ptr<MemoryPolicy> policy) const
{
    Session s(*this, std::move(policy));
    // The replacement never saw attach() (setup already ran on the
    // original) and the copied replay templates describe the *old*
    // policy's decisions: attach it now and re-observe from scratch.
    if (s.policy_ && s.exec_->setupDone())
        s.policy_->attach(*s.graph_, s.exec_->schedule(), s.config_);
    s.replay_ = std::make_unique<ReplayEngine>(*s.exec_, s.policy_.get());
    return s;
}

SimState
Session::snapshot() const
{
    return SimState(std::make_unique<Session>(fork()));
}

SimState::SimState(std::unique_ptr<Session> frozen)
    : frozen_(std::move(frozen))
{
}

Session
SimState::fork() const
{
    return frozen_->fork();
}

Session
SimState::fork(std::unique_ptr<MemoryPolicy> policy) const
{
    return frozen_->fork(std::move(policy));
}

const Graph &
SimState::graph() const
{
    return frozen_->graph();
}

SpeculateResult
Session::speculate(const std::vector<PolicyFactoryFn> &variants,
                   int iterations, unsigned jobs) const
{
    SpeculateResult out;
    out.candidates.resize(variants.size());
    auto runOne = [&](std::size_t i) {
        Session s = fork(variants[i] ? variants[i]() : nullptr);
        SpeculateCandidate &c = out.candidates[i];
        c.policyName = s.policy_ ? s.policy_->name() : "none";
        c.result = s.run(iterations);
        c.steadyTicks = c.result.steadyIterationTicks();
    };
    if (jobs > 1 && variants.size() > 1) {
        // Each fork owns its whole machine; candidates share only the
        // immutable graph and this (const) session, so thread timing can
        // reorder wall-clock completion but never a simulated result.
        ThreadPool pool(
            std::min<unsigned>(jobs,
                               static_cast<unsigned>(variants.size())));
        pool.forEachIndex(variants.size(),
                          [&](std::size_t i) { runOne(i); });
    } else {
        for (std::size_t i = 0; i < variants.size(); ++i)
            runOne(i);
    }
    // Decide the winner only after the barrier, from simulated ticks:
    // lowest steady iteration time wins, OOM ranks last, ties break
    // toward the lower index — deterministic at any thread count.
    auto rank = [](const SpeculateCandidate &c) {
        return c.result.oom ? std::numeric_limits<Tick>::max()
                            : c.steadyTicks;
    };
    for (std::size_t i = 1; i < out.candidates.size(); ++i) {
        if (rank(out.candidates[i]) < rank(out.candidates[out.winner]))
            out.winner = i;
    }
    return out;
}

SessionResult
Session::run(int iterations)
{
    SessionResult result;
    result.graphStats = graph_->stats();
    result.iterations.reserve(static_cast<std::size_t>(
        std::max(iterations, 0)));
    ReplayEngine &replay = *replay_;
    const bool dynamic = graph_->dynamic();
    auto variantAt = [this](int iter) -> std::size_t {
        if (config_.variantSchedule.empty())
            return 0;
        return config_.variantSchedule[static_cast<std::size_t>(iter) %
                                       config_.variantSchedule.size()];
    };
    try {
        if (!exec_->setupDone())
            exec_->setup();
        int completed = 0;
        int aborts = 0;
        while (completed < iterations) {
            // Select the upcoming shape class before consulting the replay
            // engine: both replay arming and policy stability are per
            // class (capudrift).
            if (dynamic)
                exec_->setActiveVariant(variantAt(exec_->iteration()));
            if (replay.canReplay()) {
                result.iterations.push_back(replay.synthesize());
                ++completed;
                continue;
            }
            try {
                result.iterations.push_back(exec_->runIteration());
                replay.observe(result.iterations.back());
                ++completed;
            } catch (const OomError &e) {
                // Give the policy one chance per abort to learn from the
                // partial iteration and retry (bounded; Capuchin's
                // iterative refinement uses this).
                if (!policy_ || aborts >= kMaxIterationAborts ||
                    !policy_->onIterationAbort(*exec_)) {
                    throw;
                }
                ++aborts;
                exec_->abortIteration();
                replay.noteAbort();
            }
        }
    } catch (const OomError &e) {
        result.oom = true;
        result.oomMessage = e.what();
        result.oomRequestedBytes = e.requestedBytes;
        result.oomContext = e.context;
    }
    result.replay = replay.summary();
    return result;
}

std::string
SessionResult::postMortem() const
{
    if (!oom)
        return "";
    return oomContext.describe(oomRequestedBytes);
}

namespace
{

/**
 * Heaviest shape class of a dynamic graph: the variant whose ops produce
 * the most non-weight bytes per iteration. Used to pin max-batch probe
 * sessions to the worst case instead of cycling the whole schedule.
 */
std::size_t
worstCaseVariant(const Graph &g)
{
    std::size_t worst = 0;
    std::uint64_t worst_bytes = 0;
    for (std::size_t v = 0; v < g.variants().size(); ++v) {
        std::uint64_t bytes = 0;
        for (OpId id : g.variants()[v].ops) {
            for (TensorId out : g.op(id).outputs) {
                if (g.tensor(out).kind != TensorKind::Weight)
                    bytes += g.tensor(out).bytes;
            }
        }
        if (bytes > worst_bytes) {
            worst_bytes = bytes;
            worst = v;
        }
    }
    return worst;
}

} // namespace

std::int64_t
findMaxBatch(const GraphBuilderFn &builder,
             const PolicyFactoryFn &make_policy, const ExecConfig &config,
             int iterations, std::int64_t lo, std::int64_t hi,
             unsigned jobs, MaxBatchStats *stats)
{
    // Probe sessions run with steady-state replay armed: once a probe's
    // iterations stabilize the remainder are synthesized, which cannot
    // change the OOM verdict (replay is bit-identity-audited, and OOM
    // always strikes during executed iterations) but makes long
    // feasibility horizons cheap. Faulty configs disarm replay inside
    // the executor, so this is a no-op under chaos testing.
    ExecConfig probe_config = config;
    probe_config.replay.enabled = true;
    std::atomic<bool> saw_dynamic{false};
    std::atomic<int> sessions_run{0};
    // One probe = one private session over a private graph: a pure,
    // thread-safe function of the batch, runnable on any worker.
    auto probeOnce = [&](std::int64_t batch) {
        Graph g = builder(batch);
        ExecConfig pc = probe_config;
        if (g.dynamic()) {
            // Dynamic workload: probe the heaviest shape class only —
            // conservative on footprint and far cheaper than cycling the
            // schedule. The winner is re-validated under the true
            // schedule below.
            saw_dynamic.store(true, std::memory_order_relaxed);
            pc.variantSchedule = {worstCaseVariant(g)};
        }
        Session session(std::move(g), pc, make_policy());
        sessions_run.fetch_add(1, std::memory_order_relaxed);
        return !session.run(iterations).oom;
    };

    // Sessions are expensive; robust() re-probes batch - step and the
    // bisection revisits midpoints, so feasibility is memoized per batch.
    //
    // Determinism under speculation (jobs > 1): `memo` is *serial-
    // visible* — it gains an entry exactly when the serial decision
    // sequence calls feasible(), never when a speculative probe merely
    // completes. robust()'s witness scan walks memo, so warming extra
    // batches in `warm` cannot conjure a witness the serial search would
    // not have had: speculation changes where a result is computed, never
    // which results the decisions see. feasible(b) is a pure function of
    // b, so the values are order-independent by construction.
    std::map<std::int64_t, bool> memo;
    std::map<std::int64_t, std::shared_future<bool>> warm;
    int served_from_warm = 0;
    const bool parallel = jobs > 1;
    std::unique_ptr<ThreadPool> pool;
    if (parallel)
        pool = std::make_unique<ThreadPool>(jobs);
    auto speculate = [&](std::int64_t batch) {
        if (!parallel || batch < lo || batch > hi)
            return;
        if (memo.count(batch) != 0 || warm.count(batch) != 0)
            return;
        warm.emplace(batch,
                     pool->submit([&probeOnce, batch] {
                             return probeOnce(batch);
                         }).share());
    };
    auto feasible = [&](std::int64_t batch) {
        auto it = memo.find(batch);
        if (it != memo.end())
            return it->second;
        bool ok;
        auto w = warm.find(batch);
        if (w != warm.end()) {
            ok = w->second.get();
            ++served_from_warm;
        } else {
            ok = probeOnce(batch);
        }
        memo.emplace(batch, ok);
        return ok;
    };
    // Fragmentation makes raw feasibility locally non-monotone (batch b
    // can fail while b+20 happens to tile the arena); a batch only counts
    // if a slightly smaller one also works, which suppresses lucky
    // spikes. Any already-memoized feasible batch inside the step window
    // serves as that witness, so the clustered probes of a converging
    // bisection rarely pay for a second session.
    auto robust = [&](std::int64_t batch) {
        if (!feasible(batch))
            return false;
        std::int64_t step = std::max<std::int64_t>(1, batch / 32);
        if (batch - step < lo)
            return true;
        for (auto it = memo.lower_bound(batch - step);
             it != memo.end() && it->first < batch; ++it) {
            if (it->second)
                return true;
        }
        return feasible(batch - step);
    };
    auto finish = [&](std::int64_t answer, int extra_probes) {
        if (stats) {
            stats->probes =
                sessions_run.load(std::memory_order_relaxed) + extra_probes;
            stats->speculated = static_cast<int>(warm.size());
            stats->servedFromWarm = served_from_warm;
            stats->wasted =
                static_cast<int>(warm.size()) - served_from_warm;
            stats->jobs = std::max(jobs, 1u);
        }
        return answer;
    };

    // The gallop ladder lo+1, lo+2, lo+4, ... is fully predictable, so a
    // sliding window of `jobs` upcoming rungs is warmed ahead of the
    // serial cursor (the probes beyond the first infeasible rung are the
    // price of speculation — wasted work, never a changed decision).
    std::vector<std::int64_t> ladder;
    for (std::int64_t gap = 1;; gap *= 2) {
        std::int64_t probe = std::min(lo + gap, hi);
        if (ladder.empty() || ladder.back() != probe)
            ladder.push_back(probe);
        if (probe == hi)
            break;
    }
    std::size_t cursor = 0;
    auto topUpLadder = [&] {
        for (std::size_t j = cursor;
             j < ladder.size() && j < cursor + jobs; ++j)
            speculate(ladder[j]);
    };
    if (parallel)
        topUpLadder();

    if (!feasible(lo))
        return finish(0, 0);
    // Gallop up from lo with doubling strides: simulation cost grows with
    // batch size, so bracketing the boundary with cheap small-batch
    // sessions beats opening the search with a hi-sized run. The gallop
    // trusts single probes; the bracket anchor is re-qualified below.
    std::int64_t good = lo;
    std::int64_t bad = hi + 1;
    for (; cursor < ladder.size(); ++cursor) {
        if (parallel)
            topUpLadder();
        std::int64_t probe = ladder[cursor];
        if (!feasible(probe)) {
            bad = probe;
            break;
        }
        good = probe;
        if (probe == hi)
            break;
    }
    // Demote a lucky-spike anchor before bisecting (at most one extra
    // session: feasible(good) is already memoized).
    speculate(good - std::max<std::int64_t>(1, good / 32));
    if (good > lo && !robust(good)) {
        bad = good;
        good = lo;
    }
    if (good != hi) {
        // Invariant: good robust-feasible (or lo), bad considered
        // infeasible.
        while (good + 1 < bad) {
            std::int64_t mid = good + (bad - good) / 2;
            if (parallel) {
                // Warm the next few levels of the bisection tree: both
                // children of every speculated node are candidates, so
                // 2^depth - 1 probes cover `depth` future decisions no
                // matter which way each one goes.
                int depth = 1;
                for (unsigned cap = 2; cap <= jobs; cap *= 2)
                    ++depth;
                std::function<void(std::int64_t, std::int64_t, int)> warm_tree =
                    [&](std::int64_t g, std::int64_t b, int d) {
                        if (d == 0 || g + 1 >= b)
                            return;
                        std::int64_t m = g + (b - g) / 2;
                        speculate(m);
                        warm_tree(g, m, d - 1);
                        warm_tree(m, b, d - 1);
                    };
                warm_tree(good, bad, depth);
                // robust(mid)'s fallback witness, in case the memoized
                // window misses.
                speculate(mid - std::max<std::int64_t>(1, mid / 32));
            }
            if (robust(mid))
                good = mid;
            else
                bad = mid;
        }
    }
    int extra_probes = 0;
    if (saw_dynamic.load(std::memory_order_relaxed) && good > 0) {
        // Worst-class probes are conservative on footprint but not on
        // fragmentation: interleaving shape classes lays the arena out
        // differently. Re-validate the witness under the caller's true
        // schedule (covering at least one full cycle so every class runs)
        // and walk the answer down if it fails.
        int horizon = std::max(
            iterations,
            static_cast<int>(config.variantSchedule.size()) + 2);
        std::map<std::int64_t, bool> memo_true;
        auto feasible_true = [&](std::int64_t batch) {
            auto it = memo_true.find(batch);
            if (it != memo_true.end())
                return it->second;
            Session session(builder(batch), probe_config, make_policy());
            ++extra_probes;
            bool ok = !session.run(horizon).oom;
            memo_true.emplace(batch, ok);
            return ok;
        };
        if (!feasible_true(good)) {
            std::int64_t tbad = good;
            std::int64_t tgood = feasible_true(lo) ? lo : 0;
            while (tgood > 0 && tgood + 1 < tbad) {
                std::int64_t mid = tgood + (tbad - tgood) / 2;
                if (feasible_true(mid))
                    tgood = mid;
                else
                    tbad = mid;
            }
            good = tgood;
        }
    }
    return finish(good, extra_probes);
}

} // namespace capu
