/**
 * @file
 * Time-aware GPU memory manager: BFC arena + deferred frees + host staging.
 *
 * Frees in the simulator take effect at stream completion times (a
 * swap-out's chunk is reusable only when the D2H copy finishes; a kernel's
 * workspace only when the kernel retires). `allocate()` therefore first
 * applies matured frees, and `allocateWaiting()` additionally advances the
 * caller's clock to the next maturity when the arena is full — which is
 * precisely the paper's decoupled-swap rule "only synchronize the earliest
 * unfinished swapping-out when OOM occurs".
 */

#ifndef CAPU_EXEC_MEMORY_MANAGER_HH
#define CAPU_EXEC_MEMORY_MANAGER_HH

#include <cstdint>
#include <optional>

#include "memory/bfc_allocator.hh"
#include "memory/deferred_free.hh"
#include "memory/host_pool.hh"
#include "obs/tracer.hh"
#include "support/units.hh"

namespace capu
{

class MemoryManager
{
  public:
    MemoryManager(std::uint64_t gpu_capacity, std::uint64_t host_capacity,
                  BfcOptions gpu_options = {});

    /** Apply matured frees, then try a single allocation at `now`. */
    std::optional<MemHandle>
    allocate(Tick now, std::uint64_t bytes,
             BfcAllocator::Placement placement = BfcAllocator::Placement::Auto);

    /**
     * Allocate, waiting on pending deferred frees if needed. Advances `now`
     * to the maturity actually waited for. Returns nullopt only when even
     * draining every pending free cannot satisfy the request.
     */
    std::optional<MemHandle> allocateWaiting(Tick &now, std::uint64_t bytes);

    /** Free immediately (refcount hit zero at a known-past tick). */
    void freeNow(Tick now, MemHandle handle);

    /** Free effective at future tick `when`. */
    void freeAt(Tick when, MemHandle handle);

    /** Whether allocate(bytes) would succeed right now (no waiting). */
    bool canAllocate(Tick now, std::uint64_t bytes);

    BfcAllocator &gpu() { return gpu_; }
    const BfcAllocator &gpu() const { return gpu_; }
    HostPinnedPool &host() { return host_; }
    const HostPinnedPool &host() const { return host_; }

    std::optional<Tick> nextPendingFree() const;

    /** Whether the chunk at `handle` has an unmatured deferred free. */
    bool isFreePending(MemHandle handle) const;

    /** Drain every pending free (end of simulation). */
    void drainAll();

    /** capureplay: shift every pending deferred free by `delta`. */
    void shiftPendingFrees(Tick delta) { deferred_.shiftPending(delta); }

    /** Pending (maturity, handle) pairs in application order (digests). */
    std::vector<std::pair<Tick, MemHandle>>
    pendingFrees() const
    {
        return deferred_.snapshotPending();
    }

    /**
     * Emit gpu.bytes_in_use counter samples on the memory track after each
     * allocation/immediate free. nullptr detaches.
     */
    void attachTracer(obs::Tracer *tracer);

  private:
    void sampleUsage(Tick now);

    BfcAllocator gpu_;
    HostPinnedPool host_;
    DeferredFreeQueue deferred_;
    obs::Tracer *tracer_ = nullptr;
};

} // namespace capu

#endif // CAPU_EXEC_MEMORY_MANAGER_HH
