/**
 * @file
 * Analytic kernel duration model, calibrated to the paper's P100 testbed.
 *
 * duration = launch_overhead + max(compute_time, memory_time), i.e. a
 * roofline with a per-kernel fixed cost. Compute-bound kernels (conv,
 * matmul) run at a saturating fraction of peak FLOP/s — small kernels get a
 * lower fraction, which is what spreads InceptionV3's 94 convolutions over
 * the ~37x range of Figure 2. Bandwidth-bound kernels (elementwise, norm,
 * pool) run at a fixed fraction of peak memory bandwidth.
 *
 * Convolutions have two algorithms, mirroring cuDNN under a workspace
 * limit: the fast one needs `fastWorkspaceBytes` of scratch; the fallback
 * needs none but is `fallbackSlowdown`x slower (§6.3.2's VGG16 batch-228
 * regression).
 *
 * opDuration() is memoized: the duration is a pure function of the op's
 * shape fields (category, flops, memBytes, workspace, slowdown, speedup)
 * and the algorithm choice, given a fixed device spec — and real models
 * repeat the same layer shape dozens of times per iteration, so the cache
 * hit rate is high. The cache is per-CostModel (each Session owns one), so
 * no synchronization is needed even when sweeps run sessions in parallel.
 */

#ifndef CAPU_EXEC_COST_MODEL_HH
#define CAPU_EXEC_COST_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "graph/operation.hh"
#include "sim/gpu_device.hh"
#include "support/units.hh"

namespace capu
{

class CostModel
{
  public:
    explicit CostModel(GpuDeviceSpec device) : dev_(std::move(device)) {}

    /**
     * Kernel duration for `op`.
     * @param fast_algo Whether the workspace-hungry fast algorithm is used
     *                  (only meaningful when op.fastWorkspaceBytes > 0).
     */
    Tick opDuration(const Operation &op, bool fast_algo = true) const;

    /** Fraction of peak FLOP/s this op achieves (saturating in size). */
    double effectiveFlopsFraction(const Operation &op) const;

    const GpuDeviceSpec &device() const { return dev_; }

    /** Disable/enable the shape cache (tests compare against cold path). */
    void setMemoize(bool on) { memoize_ = on; }

  private:
    /**
     * The shape fields the duration is a function of, given the device.
     * Keyed exactly (not by hash alone) so a hash collision can never
     * return the wrong duration.
     */
    struct ShapeKey
    {
        bool source;
        bool fastAlgo;
        double flops;
        double memBytes;
        std::uint64_t fastWorkspaceBytes;
        double fallbackSlowdown;
        double fastAlgoSpeedup;
        bool operator==(const ShapeKey &) const = default;
    };
    struct ShapeKeyHash
    {
        std::size_t operator()(const ShapeKey &k) const;
    };

    Tick computeDuration(const Operation &op, bool fast_algo) const;

    GpuDeviceSpec dev_;
    bool memoize_ = true;
    mutable std::unordered_map<ShapeKey, Tick, ShapeKeyHash> durationCache_;
};

} // namespace capu

#endif // CAPU_EXEC_COST_MODEL_HH
