/**
 * @file
 * Analytic kernel duration model, calibrated to the paper's P100 testbed.
 *
 * duration = launch_overhead + max(compute_time, memory_time), i.e. a
 * roofline with a per-kernel fixed cost. Compute-bound kernels (conv,
 * matmul) run at a saturating fraction of peak FLOP/s — small kernels get a
 * lower fraction, which is what spreads InceptionV3's 94 convolutions over
 * the ~37x range of Figure 2. Bandwidth-bound kernels (elementwise, norm,
 * pool) run at a fixed fraction of peak memory bandwidth.
 *
 * Convolutions have two algorithms, mirroring cuDNN under a workspace
 * limit: the fast one needs `fastWorkspaceBytes` of scratch; the fallback
 * needs none but is `fallbackSlowdown`x slower (§6.3.2's VGG16 batch-228
 * regression).
 */

#ifndef CAPU_EXEC_COST_MODEL_HH
#define CAPU_EXEC_COST_MODEL_HH

#include "graph/operation.hh"
#include "sim/gpu_device.hh"
#include "support/units.hh"

namespace capu
{

class CostModel
{
  public:
    explicit CostModel(GpuDeviceSpec device) : dev_(std::move(device)) {}

    /**
     * Kernel duration for `op`.
     * @param fast_algo Whether the workspace-hungry fast algorithm is used
     *                  (only meaningful when op.fastWorkspaceBytes > 0).
     */
    Tick opDuration(const Operation &op, bool fast_algo = true) const;

    /** Fraction of peak FLOP/s this op achieves (saturating in size). */
    double effectiveFlopsFraction(const Operation &op) const;

    const GpuDeviceSpec &device() const { return dev_; }

  private:
    GpuDeviceSpec dev_;
};

} // namespace capu

#endif // CAPU_EXEC_COST_MODEL_HH
